//! Quickstart: evolve a CartPole controller with NEAT on one simulated
//! edge device, then inspect what the evolved network looks like.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use clan::core::{ClanDriver, ClanTopology};
use clan::envs::{run_episode, Workload};
use clan::neat::{FeedForwardNetwork, NeatConfig, Population};

fn main() {
    // --- Level 1: the one-liner driver API. -----------------------------
    let report = ClanDriver::builder(Workload::CartPole)
        .topology(ClanTopology::serial())
        .population_size(96)
        .seed(42)
        .build()
        .expect("valid configuration")
        .run_until_solved(40)
        .expect("run");

    println!("== CLAN quickstart: {} ==", report.workload);
    println!(
        "{:>4}  {:>8}  {:>7}  {:>10}",
        "gen", "best", "species", "sim time(s)"
    );
    for g in &report.generations {
        println!(
            "{:>4}  {:>8.1}  {:>7}  {:>10.2}",
            g.generation,
            g.best_fitness,
            g.num_species,
            g.timeline.total_s()
        );
    }
    match report.solved_at_generation {
        Some(g) => println!("solved (score >= 195) at generation {g}"),
        None => println!(
            "not solved within the budget (best {:.1})",
            report.best_fitness
        ),
    }

    // --- Level 2: the raw NEAT API, for custom fitness functions. -------
    let w = Workload::CartPole;
    let cfg = NeatConfig::builder(w.obs_dim(), w.n_actions())
        .population_size(96)
        .build()
        .expect("valid NEAT config");
    let mut pop = Population::new(cfg.clone(), 42);
    let mut env = w.make();
    for _ in 0..10 {
        pop.evaluate(|net, genome| {
            let outcome = run_episode(env.as_mut(), genome.id().0, 200, |obs| net.act_argmax(obs));
            clan::neat::population::Evaluation {
                fitness: outcome.total_reward,
                activations: outcome.steps,
            }
        });
        pop.advance_generation();
    }
    let champion = pop.best_ever().expect("evaluated population");
    let net = FeedForwardNetwork::compile(champion, &cfg);
    let (hidden, conns) = champion.complexity(&cfg);
    println!(
        "\nchampion genome: fitness {:.1}",
        champion.fitness().unwrap()
    );
    println!("  {hidden} hidden node(s), {conns} connection gene(s)");
    println!(
        "  {} genes touched per activation",
        net.genes_per_activation()
    );
    println!(
        "  total genes processed so far: {}",
        pop.counters().cumulative().total_genes()
    );
}
