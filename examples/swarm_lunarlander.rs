//! An 8-Pi edge swarm learns LunarLander-v2 under each CLAN
//! configuration; compares simulated wall-clock and communication.
//!
//! This is the paper's core comparison (Figures 4-7) on one workload:
//! CLAN_DCS distributes inference, CLAN_DDS also distributes
//! reproduction (and drowns in genome traffic), CLAN_DDA speciates
//! asynchronously on per-agent clans and barely communicates at all.
//!
//! ```text
//! cargo run --release --example swarm_lunarlander
//! ```

use clan::core::{ClanDriver, ClanTopology, RunReport};
use clan::envs::Workload;

const AGENTS: usize = 8;
const GENERATIONS: u64 = 6;

fn run(topology: ClanTopology) -> RunReport {
    ClanDriver::builder(Workload::LunarLander)
        .topology(topology)
        .agents(AGENTS)
        .population_size(150)
        .seed(7)
        .build()
        .expect("valid configuration")
        .run(GENERATIONS)
        .expect("run")
}

fn main() {
    println!("== {AGENTS}-agent Raspberry Pi swarm on LunarLander-v2 ==\n");
    let serial = ClanDriver::builder(Workload::LunarLander)
        .population_size(150)
        .seed(7)
        .build()
        .expect("valid configuration")
        .run(GENERATIONS)
        .expect("run");

    let reports = [
        serial,
        run(ClanTopology::dcs()),
        run(ClanTopology::dds()),
        run(ClanTopology::dda(AGENTS)),
    ];

    println!(
        "{:<10} {:>10} {:>10} {:>10} {:>10} {:>12} {:>9}",
        "config", "total(s)", "infer(s)", "evolve(s)", "comm(s)", "floats sent", "best fit"
    );
    for r in &reports {
        let t = r.mean_timeline;
        println!(
            "{:<10} {:>10.2} {:>10.2} {:>10.2} {:>10.2} {:>12} {:>9.1}",
            r.topology_name,
            t.total_s(),
            t.inference_s,
            t.evolution_s,
            t.communication_s,
            r.ledger.total_floats() / GENERATIONS,
            r.best_fitness,
        );
    }

    println!("\ncommunication breakdown (floats per generation):");
    println!("{:<10} {:<24} {:>12}", "config", "message kind", "floats");
    for r in &reports[1..] {
        for (kind, entry) in r.ledger.rows() {
            if entry.floats > 0 {
                println!(
                    "{:<10} {:<24} {:>12}",
                    r.topology_name,
                    kind.to_string(),
                    entry.floats / GENERATIONS
                );
            }
        }
    }

    let dcs = &reports[1];
    let dda = &reports[3];
    println!(
        "\nCLAN_DDA is {:.1}x faster per generation than CLAN_DCS and sends {:.0}x fewer floats.",
        dcs.mean_timeline.total_s() / dda.mean_timeline.total_s(),
        dcs.ledger.total_floats() as f64 / dda.ledger.total_floats().max(1) as f64
    );
    println!("(Fig 7b caveat: fewer genomes per clan costs convergence speed.)");
}
