//! The networked edge cluster, end to end, in one process: agents
//! serving real TCP sockets on `127.0.0.1` ephemeral ports evaluate a
//! CLAN_DCS run, and the result is bit-identical to a local run — the
//! exact code path a multi-device deployment uses (`clan-cli agent` +
//! `clan-cli coordinate`), minus only the physical network.
//!
//! Also prints what the analytic WiFi model *doesn't* see: the measured
//! bytes-on-the-wire of the real frame format versus the paper's
//! 4-bytes-per-gene accounting.
//!
//! ```text
//! cargo run --release --example edge_cluster_tcp
//! ```

use clan::core::{ClanDriver, ClanTopology};
use clan::envs::Workload;

const AGENTS: usize = 2;
const GENERATIONS: u64 = 3;
const POP: usize = 48;

fn main() {
    let build = || {
        ClanDriver::builder(Workload::CartPole)
            .topology(ClanTopology::dcs())
            .agents(AGENTS)
            .population_size(POP)
            .seed(11)
    };

    println!("== Loopback TCP edge cluster: {AGENTS} agents, CartPole ==\n");
    let networked = build()
        .loopback_agents(AGENTS)
        .build()
        .expect("loopback cluster binds")
        .run(GENERATIONS)
        .expect("networked run");
    let local = build()
        .build()
        .expect("local driver")
        .run(GENERATIONS)
        .expect("local run");

    print!("{}", networked.summary());

    let identical = networked
        .generations
        .iter()
        .zip(&local.generations)
        .all(|(a, b)| a == b);
    println!("\nTCP run bit-identical to local run: {identical}");
    assert!(identical, "order-independent RNG must make these equal");

    let wire = networked.transport.expect("networked run measures traffic");
    println!(
        "measured wire traffic: {} bytes in {} messages",
        wire.total_wire_bytes(),
        wire.total_messages()
    );
    println!(
        "framing overhead vs the paper's 4-byte/gene model: {:.2}x",
        wire.framing_overhead().expect("both measures recorded")
    );
}
