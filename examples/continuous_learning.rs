//! The paper's Figure-1 closed loop, end to end: an agent is deployed
//! with a CartPole expert, the physics shift underneath it (longer and
//! heavier pole, weaker actuator), the fitness monitor notices the
//! degradation, and the edge swarm re-learns a new expert — with zero
//! cloud interaction.
//!
//! ```text
//! cargo run --release --example continuous_learning
//! ```

use clan::core::{ContinuousLearner, MonitorConfig};
use clan::envs::cartpole::{CartPole, CartPoleParams};
use clan::neat::NeatConfig;

const FITNESS_THRESHOLD: f64 = 120.0;

fn main() {
    let cfg = NeatConfig::builder(4, 2)
        .population_size(96)
        .build()
        .expect("valid NEAT config");
    let mut learner = ContinuousLearner::new(
        cfg,
        MonitorConfig {
            probe_episodes: 5,
            max_steps: 200,
            max_learning_generations: 30,
        },
        2024,
    );

    // The deployment scenarios the agent will encounter, in order.
    let scenarios: Vec<(&str, CartPoleParams)> = vec![
        ("factory default", CartPoleParams::default()),
        ("same environment, revisited", CartPoleParams::default()),
        (
            "field conditions: long heavy pole, weak motor",
            CartPoleParams {
                gravity: 12.0,
                pole_half_length: 2.2,
                force_mag: 4.0,
            },
        ),
        (
            "low-gravity deployment",
            CartPoleParams {
                gravity: 3.5,
                pole_half_length: 0.5,
                force_mag: 10.0,
            },
        ),
    ];

    println!("== Continuous learning on the edge (paper Fig 1) ==\n");
    for (label, params) in scenarios {
        let mut env = CartPole::with_params(params);
        let outcome = learner
            .encounter_task(&mut env, FITNESS_THRESHOLD)
            .expect("learning phase");
        println!("scenario: {label}");
        match outcome.initial_fitness {
            Some(f) => println!("  expert fitness on arrival: {f:.1}"),
            None => println!("  no expert deployed yet"),
        }
        if outcome.triggered_learning {
            println!(
                "  fitness below threshold {FITNESS_THRESHOLD} -> learning invoked: {} generation(s)",
                outcome.learning_generations
            );
        } else {
            println!("  expert still healthy, no learning needed");
        }
        println!(
            "  deployed fitness now {:.1} ({})\n",
            outcome.final_fitness,
            if outcome.recovered {
                "recovered"
            } else {
                "budget exhausted"
            }
        );
    }

    println!("learning phases run: {}", learner.events().len());
    for e in learner.events() {
        let first = e.best_per_generation.first().copied().unwrap_or(0.0);
        let last = e.best_per_generation.last().copied().unwrap_or(0.0);
        println!(
            "  {}: best fitness {first:.1} -> {last:.1} over {} generation(s)",
            e.task,
            e.best_per_generation.len()
        );
    }

    // Persist the final expert — the artifact a real deployment would
    // flash onto the next batch of agents.
    if let Some(expert) = learner.expert() {
        let dir = std::env::temp_dir();
        let json = dir.join("clan_expert.json");
        let dot = dir.join("clan_expert.dot");
        clan::neat::checkpoint::save_genome(expert, &json).expect("write checkpoint");
        let cfg = NeatConfig::builder(4, 2).build().expect("valid config");
        std::fs::write(&dot, clan::neat::genome_to_dot(expert, &cfg)).expect("write dot");
        println!(
            "\nexpert persisted to {} and {} (render with `dot -Tpng`)",
            json.display(),
            dot.display()
        );
    }
}
