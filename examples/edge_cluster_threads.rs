//! Real distributed execution: a cluster of OS threads (one per edge
//! agent) runs CLAN_DDS generations — distributed inference *and*
//! distributed reproduction — with genuine message passing, and the
//! result is bit-identical to a serial run: the order-independent RNG
//! makes CLAN's distribution correct by construction.
//!
//! (In Rust, unlike the paper's interpreted Python, reproduction costs
//! about as much wall-clock as inference, so the DDS protocol is the one
//! that parallelizes the whole generation.)
//!
//! ```text
//! cargo run --release --example edge_cluster_threads
//! ```

use clan::core::runtime::EdgeCluster;
use clan::core::InferenceMode;
use clan::envs::Workload;
use clan::neat::{NeatConfig, Population};
use std::time::Instant;

const GENERATIONS: u64 = 6;
const POP: usize = 256;

fn main() {
    // One agent per available core (capped at the paper's small-swarm
    // scale); with fewer cores than agents the demo still proves protocol
    // correctness, just not wall-clock speedup.
    let agents = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(2)
        .clamp(2, 8);
    // The large Atari-class workload: 128-input genomes make inference
    // heavy enough for thread-level parallelism to pay off.
    let w = Workload::AirRaid;
    let cfg = NeatConfig::builder(w.obs_dim(), w.n_actions())
        .population_size(POP)
        .build()
        .expect("valid NEAT config");

    println!(
        "== Threaded edge cluster: {agents} agents, {} ==\n",
        w.name()
    );

    // Distributed run over real threads.
    let mut cluster = EdgeCluster::spawn(agents, w, InferenceMode::MultiStep, cfg.clone())
        .expect("cluster spawns");
    let mut distributed = Population::new(cfg.clone(), 99);
    let t0 = Instant::now();
    for gen in 0..GENERATIONS {
        let best = cluster
            .step_dds_generation(&mut distributed)
            .expect("cluster step");
        println!("gen {gen}: best fitness {best:.1}");
    }
    let t_dist = t0.elapsed();
    cluster.shutdown();

    // The same evolution, serially.
    let mut serial = Population::new(cfg.clone(), 99);
    let mut env = w.make();
    let t0 = Instant::now();
    for _ in 0..GENERATIONS {
        let master = serial.master_seed();
        serial.evaluate(|net, genome| {
            let seed = clan::core::Evaluator::episode_seed(
                master,
                genome.content_hash(),
                1,
                InferenceMode::MultiStep,
            );
            let outcome =
                clan::envs::run_episode(env.as_mut(), seed, 200, |obs| net.act_argmax(obs));
            clan::neat::population::Evaluation {
                fitness: outcome.total_reward,
                activations: outcome.steps,
            }
        });
        serial.advance_generation();
    }
    let t_serial = t0.elapsed();

    let identical = serial.genomes() == distributed.genomes();
    println!("\nserial wall-clock:      {t_serial:?}");
    println!("distributed wall-clock: {t_dist:?} ({agents} threads)");
    println!(
        "speedup: {:.2}x",
        t_serial.as_secs_f64() / t_dist.as_secs_f64()
    );
    println!("populations bit-identical after {GENERATIONS} generations: {identical}");
    assert!(identical, "order-independent RNG must make these equal");
}
