//! The deployment workflow of the paper's Figure 1, end to end:
//! evolve → persist the expert → restore it on a "different device" →
//! verify identical behaviour → resume learning from a population
//! checkpoint.

use clan::envs::{run_episode, Workload};
use clan::neat::checkpoint::{
    genome_from_json, genome_to_json, population_from_json, population_to_json,
};
use clan::neat::population::Evaluation;
use clan::neat::{genome_to_dot, FeedForwardNetwork, NeatConfig, Population};

fn evolve(generations: u64) -> (NeatConfig, Population) {
    let w = Workload::CartPole;
    let cfg = NeatConfig::builder(w.obs_dim(), w.n_actions())
        .population_size(48)
        .build()
        .expect("config");
    let mut pop = Population::new(cfg.clone(), 77);
    let mut env = w.make();
    for _ in 0..generations {
        pop.evaluate(|net, genome| {
            let out = run_episode(env.as_mut(), genome.id().0, 200, |obs| net.act_argmax(obs));
            Evaluation {
                fitness: out.total_reward,
                activations: out.steps,
            }
        });
        pop.advance_generation();
    }
    (cfg, pop)
}

#[test]
fn deployed_expert_behaves_identically_after_restore() {
    let (cfg, pop) = evolve(6);
    let expert = pop.best_ever().expect("evolved champion");

    let json = genome_to_json(expert).expect("serialize");
    let restored = genome_from_json(&json).expect("deserialize");
    assert_eq!(*expert, restored);

    // Same behaviour on a fresh environment, step by step.
    let original_net = FeedForwardNetwork::compile(expert, &cfg);
    let restored_net = FeedForwardNetwork::compile(&restored, &cfg);
    let mut env_a = Workload::CartPole.make();
    let mut env_b = Workload::CartPole.make();
    let out_a = run_episode(env_a.as_mut(), 5, 200, |obs| original_net.act_argmax(obs));
    let out_b = run_episode(env_b.as_mut(), 5, 200, |obs| restored_net.act_argmax(obs));
    assert_eq!(out_a, out_b);
}

#[test]
fn learning_resumes_identically_from_population_checkpoint() {
    let (_, mut original) = evolve(3);
    let snapshot = population_to_json(&original).expect("serialize");
    let mut resumed = population_from_json(&snapshot).expect("deserialize");

    let mut env_a = Workload::CartPole.make();
    let mut env_b = Workload::CartPole.make();
    for _ in 0..3 {
        original.evaluate(|net, g| {
            let out = run_episode(env_a.as_mut(), g.id().0, 200, |obs| net.act_argmax(obs));
            Evaluation {
                fitness: out.total_reward,
                activations: out.steps,
            }
        });
        original.advance_generation();
        resumed.evaluate(|net, g| {
            let out = run_episode(env_b.as_mut(), g.id().0, 200, |obs| net.act_argmax(obs));
            Evaluation {
                fitness: out.total_reward,
                activations: out.steps,
            }
        });
        resumed.advance_generation();
    }
    assert_eq!(
        original.genomes(),
        resumed.genomes(),
        "resumed evolution must be bit-identical"
    );
}

#[test]
fn checkpoints_carry_no_speciation_cache_state() {
    // The speciation distance memo is transient cache: it must never be
    // serialized (checkpoints stay loadable across builds that add or
    // drop cache fields, and carry no redundant bytes).
    let (_, pop) = evolve(3);
    let snapshot = population_to_json(&pop).expect("serialize");
    assert!(
        !snapshot.contains("distance_memo") && !snapshot.contains("memo_generation"),
        "cache fields leaked into the checkpoint"
    );
    // A checkpoint round trip starts with a cold memo but identical
    // evolutionary state (covered above); loading must also succeed when
    // the fields are absent entirely — which this snapshot proves.
    population_from_json(&snapshot).expect("deserialize");
}

#[test]
fn champion_exports_to_dot() {
    let (cfg, pop) = evolve(4);
    let expert = pop.best_ever().expect("champion");
    let dot = genome_to_dot(expert, &cfg);
    assert!(dot.contains("digraph"));
    assert!(dot.matches(" -> ").count() >= 1);
}
