//! Trace intelligence (PR 10): the offline `clan-trace` analyzer and
//! differ cross-checked against the run's own accounting, plus the
//! determinism contract of the two new observability surfaces — the
//! live status endpoint and the flight-recorder ring must leave the
//! logical event stream byte-identical.

use clan::core::telemetry::to_jsonl;
use clan::core::{ClanDriver, ClanDriverBuilder, ClanTopology, RunTrace};
use clan::envs::Workload;
use clan_trace_tools::analyze::{analyze, AnalysisMode};
use clan_trace_tools::diff::{diff, DiffOutcome};
use clan_trace_tools::{parse_jsonl, Class, Event};
use std::io::{Read, Write};

const POP: usize = 20;
const SEED: u64 = 13;
const GENS: u64 = 3;
const SIM_AGENTS: usize = 4;

fn sim_builder() -> ClanDriverBuilder {
    ClanDriver::builder(Workload::CartPole)
        .topology(ClanTopology::dda(SIM_AGENTS))
        .agents(SIM_AGENTS)
        .population_size(POP)
        .seed(SEED)
        .tracing(true)
}

fn run_trace(seed: u64) -> RunTrace {
    let driver = sim_builder().seed(seed).build().expect("build");
    let (_, trace) = driver.run_with_trace(GENS).expect("run");
    trace.expect("tracing was enabled")
}

/// Round-trips a recorded trace through the exporter's JSONL and the
/// analyzer's own independent parser — every test below therefore also
/// exercises writer/reader agreement.
fn events_of(trace: &RunTrace) -> Vec<Event> {
    parse_jsonl(&to_jsonl(trace).expect("serialize")).expect("trace-tools parses writer output")
}

#[test]
fn same_seed_traces_diff_identical() {
    let a = events_of(&run_trace(SEED));
    let b = events_of(&run_trace(SEED));
    let out = diff(&a, &b);
    assert!(
        out.is_identical(),
        "same-seed runs must not diverge: {out:?}"
    );
}

#[test]
fn different_seed_diverges_at_the_run_preamble() {
    let a = events_of(&run_trace(SEED));
    let b = events_of(&run_trace(SEED + 1));
    match diff(&a, &b) {
        DiffOutcome::Diverged {
            index, left, right, ..
        } => {
            assert_eq!(index, 0, "seed is in the preamble, so event 0 differs");
            assert!(left.context.contains("run preamble"), "{}", left.context);
            assert!(left.line.contains("seed=13"), "{}", left.line);
            assert!(right.line.contains("seed=14"), "{}", right.line);
        }
        other => panic!("expected divergence, got {other:?}"),
    }
}

#[test]
fn flipped_fitness_bit_is_pinpointed_as_the_first_divergence() {
    let a = events_of(&run_trace(SEED));
    let mut b = events_of(&run_trace(SEED));
    // Corrupt one fitness bit deep in the stream (the 7th eval), the
    // way a faulty agent or a broken reducer would.
    let mut logical_index = 0u64;
    let mut target: Option<(u64, u64)> = None; // (logical index, genome)
    let mut evals_seen = 0;
    for ev in &mut b {
        if ev.class != Class::Logical {
            continue;
        }
        if ev.kind == "EvalResult" {
            evals_seen += 1;
            if evals_seen == 7 {
                let bits = ev.fitness_bits.expect("eval carries fitness");
                ev.fitness_bits = Some(bits ^ 1);
                target = Some((logical_index, ev.genome.expect("eval carries genome")));
                break;
            }
        }
        logical_index += 1;
    }
    let (expect_index, genome) = target.expect("trace has at least 7 evals");
    match diff(&a, &b) {
        DiffOutcome::Diverged { index, left, .. } => {
            assert_eq!(
                index, expect_index,
                "must name the corrupted event, not a later one"
            );
            assert!(
                left.context.contains(&format!("eval of genome {genome}")),
                "context must frame the eval: {}",
                left.context
            );
            assert!(
                left.context.contains("gen "),
                "context carries the generation: {}",
                left.context
            );
        }
        other => panic!("expected divergence, got {other:?}"),
    }
}

#[test]
fn truncated_trace_reports_the_short_side() {
    let a = events_of(&run_trace(SEED));
    let mut b = events_of(&run_trace(SEED));
    b.truncate(b.len() - 5); // drops RunEnd (logical) among others
    match diff(&a, &b) {
        DiffOutcome::Truncated {
            short_side, common, ..
        } => {
            assert_eq!(short_side, "right");
            let b_logical = b.iter().filter(|e| e.class == Class::Logical).count() as u64;
            assert_eq!(common, b_logical);
        }
        other => panic!("expected truncation, got {other:?}"),
    }
}

#[test]
fn analyzer_round_totals_match_the_reports_gather_stats() {
    let driver = sim_builder()
        .agents(2)
        .topology(ClanTopology::dda(2))
        .loopback_agents(2)
        .build()
        .expect("build loopback");
    let (report, trace) = driver.run_with_trace(GENS).expect("run");
    let analysis = analyze(&events_of(&trace.expect("tracing on")));
    let gather = report.gather.expect("remote runs gather");

    assert_eq!(analysis.mode, AnalysisMode::Rounds);
    assert_eq!(analysis.rounds.len() as u64, gather.gathers);
    // Timing spans truncate to whole microseconds; allow that loss per
    // round/span plus float slack, nothing more.
    let makespan_err = (analysis.makespan_us as f64 / 1e6 - gather.makespan_s).abs();
    assert!(makespan_err < 5e-3, "makespan drift {makespan_err}s");
    let busy_err = (analysis.busy_us as f64 / 1e6 - gather.busy_s).abs();
    assert!(busy_err < 5e-3, "busy drift {busy_err}s");
    // Every round resolves a critical agent from its exchange spans.
    assert!(analysis.rounds.iter().all(|r| r.critical_agent.is_some()));
}

#[test]
fn analyzer_steady_state_totals_match_async_stats_and_name_the_straggler() {
    // Four virtual agents, one provisioned 4x slower: the acceptance
    // case for straggler attribution.
    let driver = ClanDriver::builder(Workload::CartPole)
        .topology(ClanTopology::dda(SIM_AGENTS))
        .agents(SIM_AGENTS)
        .population_size(POP)
        .seed(3)
        .tracing(true)
        .total_evals(200)
        .latency_ms(vec![5.0, 5.0, 5.0, 20.0])
        .build_async()
        .expect("build async");
    let outcome = driver.run().expect("async run");
    let stats = outcome.report.asynchronous.clone().expect("async stats");
    let analysis = analyze(&events_of(outcome.trace.as_ref().expect("tracing on")));

    assert_eq!(analysis.mode, AnalysisMode::SteadyState);
    assert_eq!(analysis.n_agents as usize, stats.agents);
    // Virtual time is exact: the analyzer reconstructs the same
    // makespan / busy / wasted-idle the run computed for itself.
    assert!((analysis.makespan_us as f64 / 1e6 - stats.makespan_s).abs() < 1e-6);
    assert!((analysis.busy_us as f64 / 1e6 - stats.busy_s).abs() < 1e-6);
    assert!((analysis.wasted_idle_us as f64 / 1e6 - stats.wasted_idle_s).abs() < 1e-6);

    assert_eq!(
        analysis.straggler,
        Some(3),
        "the 20ms agent is the straggler"
    );
    let slowdown = analysis.agents[3].slowdown;
    assert!(
        (3.2..=4.8).contains(&slowdown),
        "slowdown {slowdown:.2}x not within 20% of the provisioned 4x skew"
    );
    let report = analysis.render();
    assert!(
        report.contains("critical-path straggler: agent 3"),
        "{report}"
    );
}

fn http_get(addr: std::net::SocketAddr, path: &str) -> String {
    let mut stream = std::net::TcpStream::connect(addr).expect("connect status endpoint");
    let request = format!("GET {path} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n");
    stream.write_all(request.as_bytes()).expect("send");
    let mut body = String::new();
    stream.read_to_string(&mut body).expect("read");
    body
}

#[test]
fn status_endpoint_serves_snapshots_and_preserves_bit_identity() {
    let baseline = run_trace(SEED).logical_text();

    let driver = sim_builder()
        .status_addr("127.0.0.1:0")
        .build()
        .expect("build with status");
    let addr = driver.status_local_addr().expect("endpoint bound");

    let health = http_get(addr, "/health");
    assert!(health.contains("200 OK"), "{health}");
    assert!(health.contains("\"agents\""), "{health}");
    let progress = http_get(addr, "/progress");
    assert!(progress.contains("\"phase\""), "{progress}");
    let metrics = http_get(addr, "/metrics");
    assert!(metrics.contains("200 OK"), "{metrics}");
    let missing = http_get(addr, "/nope");
    assert!(missing.contains("404"), "{missing}");

    let (_, trace) = driver.run_with_trace(GENS).expect("run with endpoint");
    assert_eq!(
        trace.expect("tracing on").logical_text(),
        baseline,
        "serving status snapshots must not perturb the logical stream"
    );
}

#[test]
fn flight_recorder_ring_preserves_identity_and_keeps_a_suffix() {
    let full = run_trace(SEED).logical_text();

    // A ring larger than the run retains everything.
    let driver = sim_builder()
        .trace_ring(1 << 20)
        .build()
        .expect("build big ring");
    let (_, trace) = driver.run_with_trace(GENS).expect("run");
    assert_eq!(trace.expect("ring implies tracing").logical_text(), full);

    // A small ring retains exactly the last N events, whose logical
    // lines are a byte-for-byte suffix of the unbounded stream.
    let driver = sim_builder()
        .trace_ring(40)
        .build()
        .expect("build small ring");
    let (_, trace) = driver.run_with_trace(GENS).expect("run");
    let ring = trace.expect("ring implies tracing");
    assert_eq!(ring.events.len(), 40);
    let tail = ring.logical_text();
    assert!(!tail.is_empty(), "a 40-event tail spans logical events");
    assert!(
        full.ends_with(&tail),
        "ring tail must be a suffix of the full stream"
    );
}
