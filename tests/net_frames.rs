//! Adversarial wire-format coverage: malformed frames and misbehaving
//! peers must surface *typed* [`ClanError`]s — never a panic, never a
//! hang, never an unbounded allocation.
//!
//! Covers the ISSUE-2 checklist explicitly: truncated genome frames,
//! oversized length prefixes, and agent disconnect mid-generation, plus
//! a property-based round-trip of the frame codec.

use clan::core::runtime::EdgeCluster;
use clan::core::transport::{
    datagram_channel_pair, decode, encode, ClusterSpec, FaultConfig, FaultyTransport, Transport,
    UdpConfig, UdpTransport, WireMessage, LENGTH_PREFIX_BYTES, MAX_FRAME_BYTES,
};
use clan::core::{ClanError, FrameError, InferenceMode};
use clan::envs::Workload;
use clan::neat::population::Evaluation;
use clan::neat::reproduction::{ChildKind, ChildSpec};
use clan::neat::{Genome, GenomeId, NeatConfig, Population, SpeciesId};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::io::{Read, Write};
use std::net::TcpListener;

fn neat_cfg(pop: usize) -> NeatConfig {
    let w = Workload::CartPole;
    NeatConfig::builder(w.obs_dim(), w.n_actions())
        .population_size(pop)
        .build()
        .unwrap()
}

/// A genome with `mutations` mutation passes applied — arbitrary but
/// reproducible topology/attribute diversity.
fn genome(seed: u64, mutations: u64, with_fitness: bool) -> Genome {
    let cfg = neat_cfg(4);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = Genome::new_initial(&cfg, GenomeId(seed), &mut rng);
    for _ in 0..mutations {
        g.mutate(&cfg, &mut rng);
    }
    if with_fitness {
        g.set_fitness(seed as f64 * 0.25 - 3.0);
    }
    g
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    fn evaluate_frames_round_trip(
        seed in 0u64..1000,
        mutations in 0u64..30,
        n in 1usize..6,
        generation in any::<u64>(),
        master_seed in any::<u64>(),
    ) {
        let genomes: Vec<Genome> = (0..n)
            .map(|i| genome(seed + i as u64, mutations, i % 2 == 0))
            .collect();
        let msg = WireMessage::Evaluate { generation, master_seed, genomes };
        prop_assert_eq!(decode(&encode(&msg)).unwrap(), msg);
    }

    fn fitness_frames_round_trip(
        id in any::<u64>(),
        fitness in -1.0e6f64..1.0e6,
        activations in any::<u64>(),
        genes in any::<u64>(),
    ) {
        let msg = WireMessage::Fitness(vec![(
            GenomeId(id),
            Evaluation { fitness, activations },
            genes,
        )]);
        prop_assert_eq!(decode(&encode(&msg)).unwrap(), msg);
    }

    fn build_children_frames_round_trip(
        seed in 0u64..1000,
        mutations in 0u64..20,
        crossover in any::<bool>(),
        generation in any::<u64>(),
    ) {
        let parents = vec![genome(seed, mutations, true), genome(seed + 1, mutations, true)];
        let kind = if crossover {
            ChildKind::Crossover {
                parent1: parents[0].id(),
                parent2: parents[1].id(),
            }
        } else {
            ChildKind::Elite { source: parents[0].id() }
        };
        let msg = WireMessage::BuildChildren {
            generation,
            master_seed: seed,
            specs: vec![ChildSpec {
                child_id: GenomeId(seed + 100),
                species: SpeciesId(3),
                kind,
            }],
            parents,
        };
        prop_assert_eq!(decode(&encode(&msg)).unwrap(), msg);
    }

    fn truncated_genome_frames_never_panic(
        seed in 0u64..500,
        mutations in 0u64..25,
        cut_fraction in 0.0f64..1.0,
    ) {
        let msg = WireMessage::Evaluate {
            generation: 1,
            master_seed: 2,
            genomes: vec![genome(seed, mutations, true)],
        };
        let frame = encode(&msg);
        let cut = ((frame.len() - 1) as f64 * cut_fraction) as usize;
        prop_assert!(decode(&frame[..cut]).is_err(), "cut at {} decoded", cut);
    }

    fn corrupted_bytes_never_panic(
        seed in 0u64..500,
        pos_fraction in 0.0f64..1.0,
        xor in 1u8..255,
    ) {
        // Flip one byte anywhere: decode must return (Ok or typed Err),
        // not panic. Most flips error; attribute-byte flips legitimately
        // decode to a different message.
        let msg = WireMessage::Evaluate {
            generation: 1,
            master_seed: 2,
            genomes: vec![genome(seed, 8, false)],
        };
        let mut frame = encode(&msg);
        let pos = ((frame.len() - 1) as f64 * pos_fraction) as usize;
        frame[pos] ^= xor;
        let _ = decode(&frame);
    }
}

/// Tuning shared by the ARQ proptests: small MTUs force heavy
/// fragmentation of even tiny frames; the fast retransmit timer keeps
/// seeded loss cheap in wall-clock.
fn arq_cfg(mtu: usize) -> UdpConfig {
    UdpConfig::default()
        .with_mtu(mtu)
        .with_retransmit_interval_s(0.002)
        .with_idle_timeout_s(5.0)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(30))]

    /// The fragmentation/reassembly headline: any frame, pushed through
    /// arbitrary MTU splits with seeded drop + duplicate + reorder
    /// faults on *both* endpoints, reconstructs bit-identically (both
    /// directions, multiple frames in order) and never panics or hangs.
    fn arq_reconstructs_frames_through_arbitrary_mtu_and_faults(
        frames in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..600), 1..4),
        mtu in 1usize..96,
        drop_p in 0.0f64..0.25,
        dup_p in 0.0f64..0.25,
        reorder_p in 0.0f64..0.25,
        seed in any::<u64>(),
    ) {
        let cfg = arq_cfg(mtu);
        let plan = FaultConfig::default()
            .with_drop(drop_p)
            .with_dup(dup_p)
            .with_reorder(reorder_p);
        let (a, b) = datagram_channel_pair();
        let mut ta = UdpTransport::with_config(
            FaultyTransport::new(a, plan.clone().with_seed(seed)), &cfg);
        let mut tb = UdpTransport::with_config(
            FaultyTransport::new(b, plan.with_seed(seed ^ 0x9E3779B97F4A7C15)), &cfg);
        // Echo peer in its own thread, like a real agent session: each
        // side retransmits while *waiting*, so the pair makes progress
        // under any recoverable fault pattern.
        let echo_frames = frames.len();
        let echo = std::thread::spawn(move || -> Result<(), ClanError> {
            for _ in 0..echo_frames {
                let frame = tb.recv_frame()?;
                tb.send_frame(&frame)?;
            }
            // Keep retransmitting the last echo until the peer has it.
            // Best-effort: the *final ack* can always be lost (two
            // generals), so a drain timeout is not a failure — the peer
            // asserting it received the frame is the real check.
            let _ = tb.drain(std::time::Duration::from_millis(500));
            Ok(())
        });
        for frame in &frames {
            ta.send_frame(frame).unwrap();
            let back = ta.recv_frame().unwrap();
            prop_assert_eq!(&back, frame, "echoed frame diverged");
        }
        echo.join().expect("echo thread ran").expect("echo clean");
    }

    /// Loss-free fragmentation invariants: every frame splits into
    /// ceil(len/mtu) datagrams (min 1) and reassembles identically.
    fn fragmentation_round_trips_without_faults(
        payload in proptest::collection::vec(any::<u8>(), 0..2000),
        mtu in 1usize..256,
    ) {
        let cfg = arq_cfg(mtu);
        let (a, b) = datagram_channel_pair();
        let mut ta = UdpTransport::with_config(a, &cfg);
        let mut tb = UdpTransport::with_config(b, &cfg);
        ta.send_frame(&payload).unwrap();
        prop_assert_eq!(tb.recv_frame().unwrap(), payload);
        prop_assert_eq!(tb.take_link_stats().dup_bytes, 0);
    }
}

#[test]
fn udp_agent_gone_silent_mid_generation_is_typed_timeout_not_hang() {
    // The datagram twin of the TCP disconnect test below: a UDP "agent"
    // that swallows every datagram and never answers. The coordinator
    // cannot observe a disconnect on a connectionless socket, so the
    // liveness deadline must surface a typed Timeout instead of hanging.
    use std::net::UdpSocket;
    let sink = UdpSocket::bind("127.0.0.1:0").unwrap();
    let addr = sink.local_addr().unwrap();
    let swallow = std::thread::spawn(move || {
        sink.set_read_timeout(Some(std::time::Duration::from_millis(200)))
            .unwrap();
        let mut buf = [0u8; 65_535];
        while sink.recv(&mut buf).is_ok() {}
    });

    let cfg = neat_cfg(6);
    let spec = ClusterSpec::new(Workload::CartPole, InferenceMode::SingleStep, cfg.clone());
    let udp = UdpConfig::default()
        .with_retransmit_interval_s(0.02)
        .with_idle_timeout_s(0.3);
    let mut cluster = EdgeCluster::connect_udp_cfg(&[addr.to_string()], spec, udp).unwrap();
    let mut pop = Population::new(cfg, 1);
    let start = std::time::Instant::now();
    match cluster.evaluate(&mut pop) {
        Err(ClanError::Timeout { waited, .. }) => {
            assert!(waited >= std::time::Duration::from_millis(290));
        }
        other => panic!("expected Timeout, got {other:?}"),
    }
    assert!(
        start.elapsed() < std::time::Duration::from_secs(10),
        "silent peer must not stall the coordinator"
    );
    drop(cluster); // bounded shutdown drain, must not hang either
    swallow.join().unwrap();
}

#[test]
fn oversized_length_prefix_is_rejected_before_allocation() {
    // A raw socket announcing a frame bigger than MAX_FRAME_BYTES: the
    // coordinator must fail typed, not allocate 4 GiB or hang.
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let rogue = std::thread::spawn(move || {
        let (mut stream, _) = listener.accept().unwrap();
        // Swallow the Configure frame like a real agent would...
        let mut len = [0u8; 4];
        stream.read_exact(&mut len).unwrap();
        let mut body = vec![0u8; u32::from_le_bytes(len) as usize];
        stream.read_exact(&mut body).unwrap();
        // ...then answer the first request with a hostile length prefix.
        let mut req_len = [0u8; 4];
        stream.read_exact(&mut req_len).unwrap();
        let mut req = vec![0u8; u32::from_le_bytes(req_len) as usize];
        stream.read_exact(&mut req).unwrap();
        stream.write_all(&u32::MAX.to_le_bytes()).unwrap();
        stream.flush().unwrap();
        // Hold the socket open so the error is the prefix, not EOF.
        std::thread::sleep(std::time::Duration::from_millis(300));
    });

    let cfg = neat_cfg(6);
    let spec = ClusterSpec::new(Workload::CartPole, InferenceMode::SingleStep, cfg.clone());
    let mut cluster = EdgeCluster::connect(&[addr.to_string()], spec).unwrap();
    let mut pop = Population::new(cfg, 1);
    match cluster.evaluate(&mut pop) {
        Err(ClanError::Frame(FrameError::Oversized { announced, max })) => {
            assert_eq!(announced, u64::from(u32::MAX));
            assert_eq!(max, MAX_FRAME_BYTES);
        }
        other => panic!("expected Oversized frame error, got {other:?}"),
    }
    rogue.join().unwrap();
}

#[test]
fn agent_disconnect_mid_generation_is_typed_error_not_hang() {
    // An "agent" that accepts the session, takes the work, and dies
    // without answering — the coordinator's gather must surface
    // ClanError::Transport instead of blocking forever or panicking.
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let rogue = std::thread::spawn(move || {
        let (mut stream, _) = listener.accept().unwrap();
        for _ in 0..2 {
            // Read Configure, then the Evaluate request, then vanish.
            let mut len = [0u8; 4];
            stream.read_exact(&mut len).unwrap();
            let mut body = vec![0u8; u32::from_le_bytes(len) as usize];
            stream.read_exact(&mut body).unwrap();
        }
        drop(stream);
    });

    let cfg = neat_cfg(6);
    let spec = ClusterSpec::new(Workload::CartPole, InferenceMode::SingleStep, cfg.clone());
    let mut cluster = EdgeCluster::connect(&[addr.to_string()], spec).unwrap();
    let mut pop = Population::new(cfg, 1);
    assert!(matches!(
        cluster.evaluate(&mut pop),
        Err(ClanError::Transport { .. })
    ));
    rogue.join().unwrap();
}

#[test]
fn truncated_genome_frame_through_a_real_socket() {
    // The checklist's literal case: a genome frame cut mid-gene arriving
    // over TCP. The agent-side decode path must produce a typed error
    // (observed here as the agent closing the session, which the
    // coordinator reports as a transport failure), never a panic.
    let msg = WireMessage::Evaluate {
        generation: 0,
        master_seed: 7,
        genomes: vec![genome(3, 10, false)],
    };
    let frame = encode(&msg);
    let truncated = &frame[..frame.len() / 2];
    assert!(matches!(
        decode(truncated),
        Err(FrameError::Truncated { .. })
    ));
    // And end-to-end: wire_bytes accounting matches the announced frame.
    assert_eq!(
        clan::core::transport::wire_bytes(&frame),
        frame.len() as u64 + LENGTH_PREFIX_BYTES
    );
}
