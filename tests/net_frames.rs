//! Adversarial wire-format coverage: malformed frames and misbehaving
//! peers must surface *typed* [`ClanError`]s — never a panic, never a
//! hang, never an unbounded allocation.
//!
//! Covers the ISSUE-2 checklist explicitly: truncated genome frames,
//! oversized length prefixes, and agent disconnect mid-generation, plus
//! a property-based round-trip of the frame codec.

use clan::core::runtime::EdgeCluster;
use clan::core::transport::{
    decode, encode, ClusterSpec, WireMessage, LENGTH_PREFIX_BYTES, MAX_FRAME_BYTES,
};
use clan::core::{ClanError, FrameError, InferenceMode};
use clan::envs::Workload;
use clan::neat::population::Evaluation;
use clan::neat::reproduction::{ChildKind, ChildSpec};
use clan::neat::{Genome, GenomeId, NeatConfig, Population, SpeciesId};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::io::{Read, Write};
use std::net::TcpListener;

fn neat_cfg(pop: usize) -> NeatConfig {
    let w = Workload::CartPole;
    NeatConfig::builder(w.obs_dim(), w.n_actions())
        .population_size(pop)
        .build()
        .unwrap()
}

/// A genome with `mutations` mutation passes applied — arbitrary but
/// reproducible topology/attribute diversity.
fn genome(seed: u64, mutations: u64, with_fitness: bool) -> Genome {
    let cfg = neat_cfg(4);
    let mut rng = StdRng::seed_from_u64(seed);
    let mut g = Genome::new_initial(&cfg, GenomeId(seed), &mut rng);
    for _ in 0..mutations {
        g.mutate(&cfg, &mut rng);
    }
    if with_fitness {
        g.set_fitness(seed as f64 * 0.25 - 3.0);
    }
    g
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    fn evaluate_frames_round_trip(
        seed in 0u64..1000,
        mutations in 0u64..30,
        n in 1usize..6,
        generation in any::<u64>(),
        master_seed in any::<u64>(),
    ) {
        let genomes: Vec<Genome> = (0..n)
            .map(|i| genome(seed + i as u64, mutations, i % 2 == 0))
            .collect();
        let msg = WireMessage::Evaluate { generation, master_seed, genomes };
        prop_assert_eq!(decode(&encode(&msg)).unwrap(), msg);
    }

    fn fitness_frames_round_trip(
        id in any::<u64>(),
        fitness in -1.0e6f64..1.0e6,
        activations in any::<u64>(),
        genes in any::<u64>(),
    ) {
        let msg = WireMessage::Fitness(vec![(
            GenomeId(id),
            Evaluation { fitness, activations },
            genes,
        )]);
        prop_assert_eq!(decode(&encode(&msg)).unwrap(), msg);
    }

    fn build_children_frames_round_trip(
        seed in 0u64..1000,
        mutations in 0u64..20,
        crossover in any::<bool>(),
        generation in any::<u64>(),
    ) {
        let parents = vec![genome(seed, mutations, true), genome(seed + 1, mutations, true)];
        let kind = if crossover {
            ChildKind::Crossover {
                parent1: parents[0].id(),
                parent2: parents[1].id(),
            }
        } else {
            ChildKind::Elite { source: parents[0].id() }
        };
        let msg = WireMessage::BuildChildren {
            generation,
            master_seed: seed,
            specs: vec![ChildSpec {
                child_id: GenomeId(seed + 100),
                species: SpeciesId(3),
                kind,
            }],
            parents,
        };
        prop_assert_eq!(decode(&encode(&msg)).unwrap(), msg);
    }

    fn truncated_genome_frames_never_panic(
        seed in 0u64..500,
        mutations in 0u64..25,
        cut_fraction in 0.0f64..1.0,
    ) {
        let msg = WireMessage::Evaluate {
            generation: 1,
            master_seed: 2,
            genomes: vec![genome(seed, mutations, true)],
        };
        let frame = encode(&msg);
        let cut = ((frame.len() - 1) as f64 * cut_fraction) as usize;
        prop_assert!(decode(&frame[..cut]).is_err(), "cut at {} decoded", cut);
    }

    fn corrupted_bytes_never_panic(
        seed in 0u64..500,
        pos_fraction in 0.0f64..1.0,
        xor in 1u8..255,
    ) {
        // Flip one byte anywhere: decode must return (Ok or typed Err),
        // not panic. Most flips error; attribute-byte flips legitimately
        // decode to a different message.
        let msg = WireMessage::Evaluate {
            generation: 1,
            master_seed: 2,
            genomes: vec![genome(seed, 8, false)],
        };
        let mut frame = encode(&msg);
        let pos = ((frame.len() - 1) as f64 * pos_fraction) as usize;
        frame[pos] ^= xor;
        let _ = decode(&frame);
    }
}

#[test]
fn oversized_length_prefix_is_rejected_before_allocation() {
    // A raw socket announcing a frame bigger than MAX_FRAME_BYTES: the
    // coordinator must fail typed, not allocate 4 GiB or hang.
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let rogue = std::thread::spawn(move || {
        let (mut stream, _) = listener.accept().unwrap();
        // Swallow the Configure frame like a real agent would...
        let mut len = [0u8; 4];
        stream.read_exact(&mut len).unwrap();
        let mut body = vec![0u8; u32::from_le_bytes(len) as usize];
        stream.read_exact(&mut body).unwrap();
        // ...then answer the first request with a hostile length prefix.
        let mut req_len = [0u8; 4];
        stream.read_exact(&mut req_len).unwrap();
        let mut req = vec![0u8; u32::from_le_bytes(req_len) as usize];
        stream.read_exact(&mut req).unwrap();
        stream.write_all(&u32::MAX.to_le_bytes()).unwrap();
        stream.flush().unwrap();
        // Hold the socket open so the error is the prefix, not EOF.
        std::thread::sleep(std::time::Duration::from_millis(300));
    });

    let cfg = neat_cfg(6);
    let spec = ClusterSpec::new(Workload::CartPole, InferenceMode::SingleStep, cfg.clone());
    let mut cluster = EdgeCluster::connect(&[addr.to_string()], spec).unwrap();
    let mut pop = Population::new(cfg, 1);
    match cluster.evaluate(&mut pop) {
        Err(ClanError::Frame(FrameError::Oversized { announced, max })) => {
            assert_eq!(announced, u64::from(u32::MAX));
            assert_eq!(max, MAX_FRAME_BYTES);
        }
        other => panic!("expected Oversized frame error, got {other:?}"),
    }
    rogue.join().unwrap();
}

#[test]
fn agent_disconnect_mid_generation_is_typed_error_not_hang() {
    // An "agent" that accepts the session, takes the work, and dies
    // without answering — the coordinator's gather must surface
    // ClanError::Transport instead of blocking forever or panicking.
    let listener = TcpListener::bind("127.0.0.1:0").unwrap();
    let addr = listener.local_addr().unwrap();
    let rogue = std::thread::spawn(move || {
        let (mut stream, _) = listener.accept().unwrap();
        for _ in 0..2 {
            // Read Configure, then the Evaluate request, then vanish.
            let mut len = [0u8; 4];
            stream.read_exact(&mut len).unwrap();
            let mut body = vec![0u8; u32::from_le_bytes(len) as usize];
            stream.read_exact(&mut body).unwrap();
        }
        drop(stream);
    });

    let cfg = neat_cfg(6);
    let spec = ClusterSpec::new(Workload::CartPole, InferenceMode::SingleStep, cfg.clone());
    let mut cluster = EdgeCluster::connect(&[addr.to_string()], spec).unwrap();
    let mut pop = Population::new(cfg, 1);
    assert!(matches!(
        cluster.evaluate(&mut pop),
        Err(ClanError::Transport { .. })
    ));
    rogue.join().unwrap();
}

#[test]
fn truncated_genome_frame_through_a_real_socket() {
    // The checklist's literal case: a genome frame cut mid-gene arriving
    // over TCP. The agent-side decode path must produce a typed error
    // (observed here as the agent closing the session, which the
    // coordinator reports as a transport failure), never a panic.
    let msg = WireMessage::Evaluate {
        generation: 0,
        master_seed: 7,
        genomes: vec![genome(3, 10, false)],
    };
    let frame = encode(&msg);
    let truncated = &frame[..frame.len() / 2];
    assert!(matches!(
        decode(truncated),
        Err(FrameError::Truncated { .. })
    ));
    // And end-to-end: wire_bytes accounting matches the announced frame.
    assert_eq!(
        clan::core::transport::wire_bytes(&frame),
        frame.len() as u64 + LENGTH_PREFIX_BYTES
    );
}
