//! The elastic-membership headline: an agent **crashing mid-run** (and a
//! replacement joining later) changes nothing about the evolution.
//!
//! For every CLAN topology (Serial / DCS / DDS / DDA) and cluster size
//! (1 / 2 / 4 agents), a run whose inference executes over a cluster
//! with a seeded kill/revive schedule — the victim's transport swapped
//! for a dead stub at a scatter-round boundary, its chunks reassigned
//! to survivors, a replacement agent configured into the slot later —
//! must be *bit-identical* to the purely local run: same per-generation
//! reports (fitness, species, cost counters, modeled timelines), same
//! best-ever genome. Churn costs only time, measured in
//! `RecoveryStats`; it never leaks into the result.
//!
//! Also pinned here: chunk reassignment conserves genomes (no loss, no
//! duplication) under *arbitrary* churn schedules (proptest), mid-run
//! join over channel, TCP, and UDP transports, and the typed errors a
//! cluster degrades into when churn drains it below the policy floor.
//!
//! CI's `net-smoke` job runs this suite on every push.

use clan::core::membership::RecoveryPolicy;
use clan::core::runtime::EdgeCluster;
use clan::core::transport::{ChurnAction, ChurnSchedule, ClusterSpec};
use clan::core::{
    ClanError, DcsOrchestrator, DdaOrchestrator, DdsOrchestrator, Evaluator, GenerationReport,
    InferenceMode, Orchestrator, SerialOrchestrator,
};
use clan::distsim::Cluster;
use clan::envs::Workload;
use clan::hw::Platform;
use clan::neat::{Genome, NeatConfig, Population};
use clan::netsim::WifiModel;
use proptest::prelude::*;

const POP: usize = 20;
const SIM_AGENTS: usize = 4;
const GENERATIONS: usize = 4;
const SEED: u64 = 41;

fn neat_cfg() -> NeatConfig {
    let w = Workload::CartPole;
    NeatConfig::builder(w.obs_dim(), w.n_actions())
        .population_size(POP)
        .build()
        .unwrap()
}

/// The kill/revive plan for an `n`-agent cluster. With two or more
/// agents the last one dies before round 1 (its chunk is reassigned to
/// survivors) and a replacement joins before round 3; a lone agent gets
/// a crash-and-reboot (kill + revive at the same boundary), since there
/// is nobody left to reassign to.
fn plan_for(n_agents: usize) -> ChurnSchedule {
    if n_agents == 1 {
        ChurnSchedule::new().kill(0, 1).revive(0, 1)
    } else {
        ChurnSchedule::new()
            .kill(n_agents - 1, 1)
            .revive(n_agents - 1, 3)
    }
}

/// Builds the named orchestrator around the given evaluator.
fn orchestrator(topology: &str, evaluator: Evaluator) -> Box<dyn Orchestrator> {
    let cfg = neat_cfg();
    let sim = |n| Cluster::homogeneous(Platform::raspberry_pi(), n, WifiModel::default());
    match topology {
        "serial" => Box::new(SerialOrchestrator::new(
            Population::new(cfg, SEED),
            evaluator,
            sim(1),
        )),
        "dcs" => Box::new(DcsOrchestrator::new(
            Population::new(cfg, SEED),
            evaluator,
            sim(SIM_AGENTS),
        )),
        "dds" => Box::new(DdsOrchestrator::new(
            Population::new(cfg, SEED),
            evaluator,
            sim(SIM_AGENTS),
        )),
        "dda" => Box::new(
            DdaOrchestrator::new(cfg, evaluator, sim(SIM_AGENTS), SEED)
                .expect("clans large enough"),
        ),
        other => panic!("unknown topology {other}"),
    }
}

fn run(mut o: Box<dyn Orchestrator>) -> (Vec<GenerationReport>, Genome) {
    let reports = (0..GENERATIONS)
        .map(|_| o.step_generation().expect("generation steps"))
        .collect();
    (
        reports,
        o.best_ever().expect("evaluated runs have a best").clone(),
    )
}

fn local_evaluator() -> Evaluator {
    Evaluator::new(Workload::CartPole, InferenceMode::MultiStep)
}

/// Cache-off spec for tests that re-evaluate one fixed population to
/// probe the transport: with the fitness cache on, the repeat rounds
/// would be served center-side and no traffic would fly.
fn uncached_spec() -> ClusterSpec {
    ClusterSpec::new(Workload::CartPole, InferenceMode::MultiStep, neat_cfg()).with_engine(
        clan::core::EngineOptions {
            cache: false,
            ..Default::default()
        },
    )
}

fn churned_evaluator(n_agents: usize) -> Evaluator {
    let cluster = EdgeCluster::spawn(
        n_agents,
        Workload::CartPole,
        InferenceMode::MultiStep,
        neat_cfg(),
    )
    .expect("channel cluster spawns")
    .with_churn(plan_for(n_agents))
    .expect("plan fits the cluster");
    local_evaluator().with_remote(cluster)
}

#[test]
fn churned_runs_bit_identical_to_serial_on_all_topologies() {
    for topology in ["serial", "dcs", "dds", "dda"] {
        let (local_reports, local_best) = run(orchestrator(topology, local_evaluator()));
        for n_agents in [1usize, 2, 4] {
            let (net_reports, net_best) = run(orchestrator(topology, churned_evaluator(n_agents)));
            assert_eq!(
                local_reports, net_reports,
                "{topology} over {n_agents} churned agent(s): generation reports diverged"
            );
            assert_eq!(
                local_best, net_best,
                "{topology} over {n_agents} churned agent(s): best-ever genome diverged"
            );
        }
    }
}

#[test]
fn recovery_is_visible_in_the_stats() {
    let mut o = orchestrator("dcs", churned_evaluator(4));
    for _ in 0..GENERATIONS {
        o.step_generation().unwrap();
    }
    let stats = o.recovery_stats().expect("remote run records recovery");
    assert_eq!(stats.kills, 1);
    assert!(stats.joins >= 1, "the replacement join is counted");
    assert!(stats.failures >= 1, "the kill was observed as a failure");
    assert!(stats.reassigned_chunks >= 1);
    assert!(stats.reassigned_items >= 1);
    assert!(
        stats.agent_failures[SIM_AGENTS - 1] >= 1,
        "failures attributed to the killed slot: {stats:?}"
    );
}

#[test]
fn mid_run_join_over_tcp_and_udp_is_bit_identical() {
    let spec = uncached_spec;
    let fitness_of = |cluster: &mut EdgeCluster| {
        let mut pop = Population::new(neat_cfg(), SEED);
        cluster.evaluate(&mut pop).unwrap();
        let first: Vec<f64> = pop
            .genomes()
            .values()
            .map(|g| g.fitness().unwrap())
            .collect();
        cluster.admit_local().expect("cluster mints a replacement");
        cluster.evaluate(&mut pop).unwrap();
        let second: Vec<f64> = pop
            .genomes()
            .values()
            .map(|g| g.fitness().unwrap())
            .collect();
        (first, second)
    };
    let mut tcp = EdgeCluster::spawn_local_spec(2, spec()).expect("tcp loopback binds");
    let mut udp = EdgeCluster::spawn_local_udp_spec(2, spec()).expect("udp loopback binds");
    let (tcp_a, tcp_b) = fitness_of(&mut tcp);
    let (udp_a, udp_b) = fitness_of(&mut udp);
    assert_eq!(tcp_a, udp_a, "TCP and UDP clusters agree before the join");
    assert_eq!(tcp_b, udp_b, "...and after it");
    assert_eq!(tcp_a, tcp_b, "the join changes placement, not results");
    assert_eq!(tcp.n_agents(), 3);
    assert_eq!(udp.n_agents(), 3);
    for cluster in [&tcp, &udp] {
        assert!(
            cluster.ledger().agent_entries()[2].messages > 0,
            "the joined agent carried traffic"
        );
    }
    tcp.shutdown();
    udp.shutdown();
}

#[test]
fn churn_drained_below_the_floor_is_a_typed_error() {
    // Kill everyone, never revive: the run must fail typed, not hang.
    let cluster = EdgeCluster::spawn_spec(2, uncached_spec())
        .unwrap()
        .with_churn(ChurnSchedule::new().kill(0, 1).kill(1, 1))
        .unwrap();
    let mut evaluator = local_evaluator().with_remote(cluster);
    let mut pop = Population::new(neat_cfg(), SEED);
    let step = |ev: &mut Evaluator, pop: &mut Population| -> Result<(), ClanError> {
        // Route through the evaluator's remote cluster like the
        // orchestrators do.
        let ids_before = pop.len();
        let cluster = ev_remote(ev);
        cluster.evaluate(pop)?;
        assert_eq!(pop.len(), ids_before);
        Ok(())
    };
    step(&mut evaluator, &mut pop).expect("round 0 is churn-free");
    let err = step(&mut evaluator, &mut pop).unwrap_err();
    assert!(
        matches!(
            err,
            ClanError::Transport { .. } | ClanError::Degraded { .. }
        ),
        "expected a typed churn error, got {err}"
    );
    // And the policy floor: with min_agents 2, losing one of two agents
    // refuses to limp along on the survivor.
    let cluster = EdgeCluster::spawn_spec(2, uncached_spec())
        .unwrap()
        .with_recovery_policy(RecoveryPolicy::default().with_min_agents(2))
        .with_churn(ChurnSchedule::new().kill(0, 1))
        .unwrap();
    let mut evaluator = local_evaluator().with_remote(cluster);
    step(&mut evaluator, &mut pop).expect("round 0 is churn-free");
    let err = step(&mut evaluator, &mut pop).unwrap_err();
    assert!(
        matches!(
            err,
            ClanError::Transport { .. } | ClanError::Degraded { .. }
        ),
        "expected a floor violation, got {err}"
    );
}

/// Test-only accessor: the orchestrators reach the remote cluster
/// through `evaluate_partitioned`; here we drive it directly.
fn ev_remote(ev: &mut Evaluator) -> &mut EdgeCluster {
    ev.remote_cluster_mut().expect("evaluator has a cluster")
}

/// An arbitrary (but always-survivable) churn schedule over `agents`
/// agents: each scheduled kill targets a distinct agent below
/// `agents - 1` (so at least one agent always survives) and is revived
/// two rounds later.
fn arb_schedule(agents: usize, rounds: u64) -> impl Strategy<Value = ChurnSchedule> {
    proptest::collection::vec((0..agents.max(2) - 1, 1..rounds.max(2)), 0..3).prop_map(
        move |kills| {
            let mut plan = ChurnSchedule::new();
            let mut seen = Vec::new();
            for (agent, round) in kills {
                if seen.contains(&agent) {
                    continue;
                }
                seen.push(agent);
                plan = plan.kill(agent, round).revive(agent, round + 2);
            }
            plan
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Reassignment conserves genomes under arbitrary kill/revive
    /// schedules: every genome gets exactly one fitness, every fitness
    /// matches the serial evaluation — no loss, no duplication, no
    /// divergence.
    #[test]
    fn reassignment_conserves_genomes_under_arbitrary_churn(
        plan in arb_schedule(3, 4),
        seed in 0u64..1000,
    ) {
        let cfg = neat_cfg();
        let serial: Vec<(u64, f64)> = {
            let mut pop = Population::new(cfg.clone(), seed);
            let mut ev = local_evaluator();
            for _ in 0..4 {
                let ids: Vec<_> = pop.genomes().keys().copied().collect();
                for id in ids {
                    let net = clan::neat::FeedForwardNetwork::compile(
                        pop.genome(id).unwrap(),
                        &cfg,
                    );
                    let s = ev.seed_for(pop.master_seed(), pop.genome(id).unwrap());
                    let fit = ev.evaluate(&net, s).fitness;
                    pop.set_fitness(id, fit).unwrap();
                }
            }
            pop.genomes().iter().map(|(id, g)| (id.0, g.fitness().unwrap())).collect()
        };
        // Cache off: this property re-evaluates one fixed population per
        // round, and reassignment only happens when items actually fly.
        let mut cluster = EdgeCluster::spawn_spec(3, uncached_spec())
            .unwrap()
            .with_churn(plan)
            .unwrap();
        let mut pop = Population::new(cfg, seed);
        for _ in 0..4 {
            cluster.evaluate(&mut pop).unwrap();
        }
        let churned: Vec<(u64, f64)> = pop
            .genomes()
            .iter()
            .map(|(id, g)| (id.0, g.fitness().expect("every genome evaluated")))
            .collect();
        prop_assert_eq!(&churned, &serial, "conservation + equality");
        cluster.shutdown();
    }

    /// Seeded schedules are pure functions of their seed, and kills
    /// always pair with revivals (the generator's invariant the
    /// equivalence tests rely on).
    #[test]
    fn seeded_schedules_are_reproducible(seed in any::<u64>()) {
        let a = ChurnSchedule::seeded(seed, 4, 6, 0.25);
        prop_assert_eq!(&a, &ChurnSchedule::seeded(seed, 4, 6, 0.25));
        let kills = a.events().iter().filter(|e| e.action == ChurnAction::Kill).count();
        let revives = a.events().iter().filter(|e| e.action == ChurnAction::Revive).count();
        prop_assert_eq!(kills, revives);
    }
}
