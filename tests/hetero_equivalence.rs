//! Heterogeneity-aware scheduling must not change the evolution.
//!
//! Throughput-weighted partitioning hands different agents different
//! chunk sizes, out-of-order gather banks responses in whatever order
//! agents finish, and round-trip calibration reshapes the partition
//! every generation — and none of it may perturb a single bit of the
//! evolved result, because results always replay in genome-id order and
//! every episode seed derives from `(master_seed, genome content hash)`.
//!
//! This suite pins that contract: skewed weights over real TCP agents
//! at 1/2/4 agents on all four topologies, plus an artificially delayed
//! agent (a work-proportional [`DelayTransport`]) with calibration
//! enabled, all bit-identical to the purely local run. CI's `net-smoke`
//! job runs it on every push.

use clan::core::runtime::EdgeCluster;
use clan::core::transport::agent::serve_session;
use clan::core::transport::{channel_pair, ClusterSpec, DelayTransport, Transport};
use clan::core::{
    DcsOrchestrator, DdaOrchestrator, DdsOrchestrator, Evaluator, GenerationReport, InferenceMode,
    Orchestrator, SerialOrchestrator,
};
use clan::distsim::Cluster;
use clan::envs::Workload;
use clan::hw::Platform;
use clan::neat::{Genome, NeatConfig, Population};
use clan::netsim::WifiModel;
use std::time::Duration;

const POP: usize = 20;
const SIM_AGENTS: usize = 4;
const GENERATIONS: usize = 3;
const SEED: u64 = 29;

fn neat_cfg() -> NeatConfig {
    let w = Workload::CartPole;
    NeatConfig::builder(w.obs_dim(), w.n_actions())
        .population_size(POP)
        .build()
        .unwrap()
}

/// Deliberately lopsided capability weights for `n` agents.
fn skewed_weights(n: usize) -> Vec<f64> {
    [3.0, 0.5, 8.0, 1.0]
        .iter()
        .copied()
        .cycle()
        .take(n)
        .collect()
}

fn orchestrator(topology: &str, evaluator: Evaluator) -> Box<dyn Orchestrator> {
    let cfg = neat_cfg();
    let sim = |n| Cluster::homogeneous(Platform::raspberry_pi(), n, WifiModel::default());
    match topology {
        "serial" => Box::new(SerialOrchestrator::new(
            Population::new(cfg, SEED),
            evaluator,
            sim(1),
        )),
        "dcs" => Box::new(DcsOrchestrator::new(
            Population::new(cfg, SEED),
            evaluator,
            sim(SIM_AGENTS),
        )),
        "dds" => Box::new(DdsOrchestrator::new(
            Population::new(cfg, SEED),
            evaluator,
            sim(SIM_AGENTS),
        )),
        "dda" => Box::new(
            DdaOrchestrator::new(cfg, evaluator, sim(SIM_AGENTS), SEED)
                .expect("clans large enough"),
        ),
        other => panic!("unknown topology {other}"),
    }
}

fn run(mut o: Box<dyn Orchestrator>) -> (Vec<GenerationReport>, Genome) {
    let reports = (0..GENERATIONS)
        .map(|_| o.step_generation().expect("generation steps"))
        .collect();
    (
        reports,
        o.best_ever().expect("evaluated runs have a best").clone(),
    )
}

fn local_evaluator() -> Evaluator {
    Evaluator::new(Workload::CartPole, InferenceMode::MultiStep)
}

/// Loopback TCP agents with lopsided capability weights.
fn weighted_tcp_evaluator(n_agents: usize) -> Evaluator {
    let spec = ClusterSpec::new(Workload::CartPole, InferenceMode::MultiStep, neat_cfg());
    let cluster = EdgeCluster::spawn_local_spec(n_agents, spec)
        .expect("loopback cluster binds")
        .with_weights(&skewed_weights(n_agents))
        .expect("valid weights");
    local_evaluator().with_remote(cluster)
}

/// Channel agents where agent 0 stalls on every request (fixed latency
/// plus a per-KiB cost, so bigger chunks stall longer), with round-trip
/// calibration steering the partition — the full heterogeneous stack.
fn delayed_calibrated_evaluator(n_agents: usize) -> Evaluator {
    let mut transports: Vec<Box<dyn Transport>> = Vec::with_capacity(n_agents);
    for i in 0..n_agents {
        let (coord, mut agent_side) = channel_pair();
        std::thread::Builder::new()
            .name(format!("hetero-agent-{i}"))
            .spawn(move || {
                if i == 0 {
                    let mut slow = DelayTransport::new(agent_side, Duration::from_millis(4))
                        .with_per_kib(Duration::from_millis(4));
                    let _ = serve_session(&mut slow);
                } else {
                    let _ = serve_session(&mut agent_side);
                }
            })
            .expect("agent thread spawns");
        transports.push(Box::new(coord));
    }
    let spec = ClusterSpec::new(Workload::CartPole, InferenceMode::MultiStep, neat_cfg());
    let cluster = EdgeCluster::connect_transports(transports, spec)
        .expect("channel cluster configures")
        .with_calibration(true);
    local_evaluator().with_remote(cluster)
}

#[test]
fn skewed_weights_over_tcp_bit_identical_to_serial_on_all_topologies() {
    for topology in ["serial", "dcs", "dds", "dda"] {
        let (local_reports, local_best) = run(orchestrator(topology, local_evaluator()));
        for n_agents in [1usize, 2, 4] {
            let (net_reports, net_best) =
                run(orchestrator(topology, weighted_tcp_evaluator(n_agents)));
            assert_eq!(
                local_reports, net_reports,
                "{topology} over {n_agents} weighted TCP agent(s): reports diverged"
            );
            assert_eq!(
                local_best, net_best,
                "{topology} over {n_agents} weighted TCP agent(s): best-ever diverged"
            );
        }
    }
}

#[test]
fn delayed_agent_with_calibration_bit_identical_to_serial() {
    // The slow agent forces genuinely out-of-order arrivals (its peers
    // always finish first) and calibration reshapes the partition after
    // generation 0 — evolution must not notice either.
    for topology in ["dcs", "dds"] {
        let (local_reports, local_best) = run(orchestrator(topology, local_evaluator()));
        let (slow_reports, slow_best) =
            run(orchestrator(topology, delayed_calibrated_evaluator(3)));
        assert_eq!(
            local_reports, slow_reports,
            "{topology} with a delayed calibrated agent: reports diverged"
        );
        assert_eq!(local_best, slow_best, "{topology}: best-ever diverged");
    }
}

#[test]
fn calibration_shifts_work_away_from_the_delayed_agent() {
    // Same setup as above, but assert the *scheduling* effect: after
    // calibration kicks in, the delayed agent 0 carries measurably
    // fewer genome-bytes than the fast agents.
    let mut o = DcsOrchestrator::new(
        Population::new(neat_cfg(), SEED),
        delayed_calibrated_evaluator(3),
        Cluster::homogeneous(Platform::raspberry_pi(), 3, WifiModel::default()),
    );
    for _ in 0..4 {
        o.step_generation().unwrap();
    }
    let wire = o.transport_ledger().expect("remote run records traffic");
    let rows = wire.agent_entries();
    assert_eq!(rows.len(), 3);
    let fast_max = rows[1].wire_bytes.max(rows[2].wire_bytes);
    assert!(
        rows[0].wire_bytes < fast_max,
        "calibration should shrink the slow agent's share: {rows:?}"
    );
    let gather = o.gather_stats().expect("remote run measures gathers");
    assert!(gather.gathers >= 4);
    assert!(gather.busy_s > 0.0);
}

#[test]
fn five_genomes_on_four_agents_busy_every_agent() {
    // The old `chunks(div_ceil)` scatter made this 2/2/1 with one agent
    // idle; the partitioner must produce 2/1/1/1.
    let cfg = NeatConfig::builder(4, 2)
        .population_size(5)
        .build()
        .unwrap();
    let spec = ClusterSpec::new(Workload::CartPole, InferenceMode::MultiStep, cfg.clone());
    let mut cluster = EdgeCluster::spawn_local_spec(4, spec).unwrap();
    let mut pop = Population::new(cfg, SEED);
    cluster.evaluate(&mut pop).unwrap();
    let rows = cluster.ledger().agent_entries().to_vec();
    cluster.shutdown();
    assert_eq!(rows.len(), 4);
    for (i, row) in rows.iter().enumerate() {
        assert!(row.messages > 0, "agent {i} starved: {rows:?}");
    }
}
