//! Property-based tests (proptest) over the core data structures and
//! invariants of the CLAN stack.

use clan::distsim::{partition_even, partition_weighted};
use clan::envs::Workload;
use clan::hw::Platform;
use clan::neat::genome::Genome;
use clan::neat::rng::{derive_seed, op_rng, OpTag};
use clan::neat::{ConnKey, GenomeId, NeatConfig, NodeId, Population};
use clan::netsim::WifiModel;
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn arb_cfg() -> impl Strategy<Value = NeatConfig> {
    (1usize..6, 1usize..4).prop_map(|(inputs, outputs)| {
        NeatConfig::builder(inputs, outputs)
            .population_size(10)
            .build()
            .expect("valid config")
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    // ---------------- NEAT genome invariants ----------------

    #[test]
    fn mutation_streams_preserve_genome_invariants(
        cfg in arb_cfg(),
        seed in any::<u64>(),
        ops in proptest::collection::vec(0u8..4, 0..40),
    ) {
        let mut g = Genome::new_initial(&cfg, GenomeId(0), &mut StdRng::seed_from_u64(seed));
        let mut rng = StdRng::seed_from_u64(seed ^ 0x55);
        for op in ops {
            match op {
                0 => g.mutate_add_node(&cfg, &mut rng),
                1 => g.mutate_delete_node(&cfg, &mut rng),
                2 => g.mutate_add_connection(&cfg, &mut rng),
                _ => g.mutate_delete_connection(&mut rng),
            }
            prop_assert!(g.check_invariants(&cfg).is_ok(),
                "invariant broken after op {op}: {:?}", g.check_invariants(&cfg));
        }
    }

    #[test]
    fn distance_is_a_semimetric(
        cfg in arb_cfg(),
        s1 in any::<u64>(),
        s2 in any::<u64>(),
        n1 in 0u32..15,
        n2 in 0u32..15,
    ) {
        let mut a = Genome::new_initial(&cfg, GenomeId(0), &mut StdRng::seed_from_u64(s1));
        let mut b = Genome::new_initial(&cfg, GenomeId(1), &mut StdRng::seed_from_u64(s2));
        let mut ra = StdRng::seed_from_u64(s1 ^ 1);
        let mut rb = StdRng::seed_from_u64(s2 ^ 2);
        for _ in 0..n1 { a.mutate(&cfg, &mut ra); }
        for _ in 0..n2 { b.mutate(&cfg, &mut rb); }
        let dab = a.distance(&b, &cfg);
        let dba = b.distance(&a, &cfg);
        prop_assert!((dab - dba).abs() < 1e-9, "symmetry: {dab} vs {dba}");
        prop_assert!(dab >= 0.0);
        prop_assert_eq!(a.distance(&a, &cfg), 0.0);
    }

    #[test]
    fn crossover_never_invents_genes(
        cfg in arb_cfg(),
        s in any::<u64>(),
        muts in 0u32..10,
    ) {
        let mut p1 = Genome::new_initial(&cfg, GenomeId(0), &mut StdRng::seed_from_u64(s));
        let mut p2 = Genome::new_initial(&cfg, GenomeId(1), &mut StdRng::seed_from_u64(s ^ 9));
        let mut r = StdRng::seed_from_u64(s ^ 3);
        for _ in 0..muts {
            p1.mutate(&cfg, &mut r);
            p2.mutate(&cfg, &mut r);
        }
        let child = Genome::crossover(&p1, &p2, GenomeId(2), &mut StdRng::seed_from_u64(s ^ 4));
        for k in child.conns().keys() {
            prop_assert!(p1.conns().contains_key(k));
        }
        for k in child.nodes().keys() {
            prop_assert!(p1.nodes().contains_key(k));
        }
        prop_assert!(child.check_invariants(&cfg).is_ok());
    }

    #[test]
    fn derived_node_ids_never_collide_with_io(
        input in -100i64..0,
        output in 0i64..100,
        occurrence in 0u32..50,
    ) {
        let key = ConnKey::new(NodeId(input), NodeId(output));
        let id = NodeId::derived_from_split(key, occurrence);
        prop_assert!(id.0 >= NodeId::DERIVED_FLOOR);
    }

    // ---------------- deterministic RNG derivation ----------------

    #[test]
    fn derive_seed_is_pure(master in any::<u64>(), tags in proptest::collection::vec(any::<u64>(), 0..6)) {
        prop_assert_eq!(derive_seed(master, &tags), derive_seed(master, &tags));
    }

    #[test]
    fn op_rng_streams_differ_by_entity(master in any::<u64>(), gen in any::<u64>(), e1 in any::<u64>(), e2 in any::<u64>()) {
        prop_assume!(e1 != e2);
        use rand::Rng;
        let a = op_rng(master, gen, e1, OpTag::Mutation).gen::<u128>();
        let b = op_rng(master, gen, e2, OpTag::Mutation).gen::<u128>();
        prop_assert_ne!(a, b);
    }

    // ---------------- population-level invariants ----------------

    #[test]
    fn population_size_is_conserved(seed in any::<u64>(), gens in 1u32..5) {
        let cfg = NeatConfig::builder(3, 2).population_size(14).build().expect("config");
        let mut pop = Population::new(cfg, seed);
        for _ in 0..gens {
            pop.evaluate(|net, _| net.activate(&[0.1, 0.2, 0.3])[0]);
            pop.advance_generation();
            prop_assert_eq!(pop.len(), 14);
        }
    }

    #[test]
    fn genome_ids_strictly_increase_across_generations(seed in any::<u64>()) {
        let cfg = NeatConfig::builder(2, 1).population_size(10).build().expect("config");
        let mut pop = Population::new(cfg, seed);
        let mut prev_max = pop.genomes().keys().max().copied().expect("nonempty");
        for _ in 0..3 {
            pop.evaluate(|_, g| (g.id().0 % 5) as f64);
            pop.advance_generation();
            let min = pop.genomes().keys().min().copied().expect("nonempty");
            prop_assert!(min > prev_max, "ids must be fresh each generation");
            prev_max = pop.genomes().keys().max().copied().expect("nonempty");
        }
    }

    // ---------------- environment invariants ----------------

    #[test]
    fn environments_are_deterministic_and_bounded(
        seed in any::<u64>(),
        actions in proptest::collection::vec(0usize..2, 1..50),
    ) {
        for w in [Workload::CartPole, Workload::MountainCar, Workload::LunarLander] {
            let mut a = w.make();
            let mut b = w.make();
            prop_assert_eq!(a.reset(seed), b.reset(seed));
            for &act in &actions {
                let act = act % w.n_actions();
                let sa = a.step(act);
                let sb = b.step(act);
                prop_assert_eq!(&sa, &sb);
                prop_assert!(sa.obs.iter().all(|v| v.is_finite()));
                prop_assert!(sa.reward.is_finite());
                if sa.done { break; }
            }
        }
    }

    #[test]
    fn ram_observations_stay_normalized(seed in any::<u64>(), steps in 1usize..60) {
        let mut env = Workload::AirRaid.make();
        env.reset(seed);
        for t in 0..steps {
            let s = env.step(t % env.n_actions());
            prop_assert_eq!(s.obs.len(), 128);
            prop_assert!(s.obs.iter().all(|&v| (0.0..=1.0).contains(&v)));
            if s.done { break; }
        }
    }

    // ---------------- cost model invariants ----------------

    #[test]
    fn wifi_transfer_time_is_monotone(bytes1 in 0u64..1_000_000, extra in 0u64..1_000_000) {
        let w = WifiModel::default();
        prop_assert!(w.transfer_time_s(bytes1 + extra) >= w.transfer_time_s(bytes1));
    }

    #[test]
    fn wifi_fragmented_transfer_bounds_the_per_message_model(
        bytes in 0u64..1_000_000,
        extra in 0u64..1_000_000,
        mtu in 1u64..10_000,
    ) {
        // Per-datagram latency can only add cost: the fragmented time is
        // never below the per-message model, equals it for messages that
        // fit one datagram, charges exactly ceil(bytes/mtu) latencies,
        // and stays monotone in the message size.
        let w = WifiModel::default();
        let frag = w.transfer_time_fragmented_s(bytes, mtu);
        prop_assert!(frag >= w.transfer_time_s(bytes) - 1e-12);
        if bytes <= mtu {
            prop_assert!((frag - w.transfer_time_s(bytes)).abs() < 1e-12);
        }
        let datagrams = bytes.div_ceil(mtu).max(1);
        let expected = datagrams as f64 * w.base_latency_s
            + (bytes * 8) as f64 / w.bandwidth_bps;
        prop_assert!((frag - expected).abs() < 1e-9);
        prop_assert!(
            w.transfer_time_fragmented_s(bytes + extra, mtu) >= frag - 1e-12,
            "monotone in bytes"
        );
    }

    #[test]
    fn wifi_scaled_components_scale_exactly(
        bw_factor in 0.05f64..20.0,
        lat_factor in 0.05f64..20.0,
        bytes in 0u64..1_000_000,
    ) {
        // `scaled` now rejects degenerate factors (zero/negative/NaN
        // panic, pinned by unit tests); for every *valid* factor pair
        // the components and the resulting transfer time must scale
        // exactly as documented.
        let w = WifiModel::default();
        let s = w.scaled(bw_factor, lat_factor);
        prop_assert!((s.bandwidth_bps - w.bandwidth_bps * bw_factor).abs() < 1e-6);
        prop_assert!((s.base_latency_s - w.base_latency_s / lat_factor).abs() < 1e-12);
        prop_assert!((s.channel_setup_s - w.channel_setup_s / lat_factor).abs() < 1e-12);
        let expected = w.base_latency_s / lat_factor
            + (bytes * 8) as f64 / (w.bandwidth_bps * bw_factor);
        prop_assert!((s.transfer_time_s(bytes) - expected).abs() < 1e-9);
    }

    // ---------------- lossy-transport invariants ----------------

    #[test]
    fn fault_plan_link_seeds_are_stable_and_distinct(
        seed in any::<u64>(),
        link_a in 0usize..64,
        link_b in 0usize..64,
    ) {
        use clan::core::transport::FaultConfig;
        let plan = FaultConfig::loss(0.1).with_seed(seed);
        // Reproducible: the same link always draws the same stream.
        prop_assert_eq!(plan.for_link(link_a).seed, plan.for_link(link_a).seed);
        // Independent: different links never share a stream.
        if link_a != link_b {
            prop_assert_ne!(plan.for_link(link_a).seed, plan.for_link(link_b).seed);
        }
    }

    #[test]
    fn udp_fragmentation_reassembles_any_payload(
        payload in proptest::collection::vec(any::<u8>(), 0..1500),
        mtu in 1usize..128,
    ) {
        use clan::core::transport::{datagram_channel_pair, Transport, UdpConfig, UdpTransport};
        let cfg = UdpConfig::default().with_mtu(mtu);
        let (a, b) = datagram_channel_pair();
        let mut ta = UdpTransport::with_config(a, &cfg);
        let mut tb = UdpTransport::with_config(b, &cfg);
        ta.send_frame(&payload).unwrap();
        prop_assert_eq!(tb.recv_frame().unwrap(), payload);
    }

    #[test]
    fn platform_time_is_monotone_and_positive(genes in 1u64..100_000_000) {
        let p = Platform::raspberry_pi();
        let t = p.inference_time_s(genes);
        prop_assert!(t > 0.0);
        prop_assert!(p.inference_time_s(genes + 1) >= t);
        prop_assert!(p.evolution_time_s(genes) <= t,
            "evolution ops are modeled faster per gene than inference");
    }

    // ---------------- weighted-partition invariants ----------------

    #[test]
    fn partition_weighted_conserves_items_and_never_starves(
        items in 0usize..600,
        weights in proptest::collection::vec(0.0f64..16.0, 1..12),
    ) {
        let counts = partition_weighted(items, &weights);
        prop_assert_eq!(counts.len(), weights.len());
        prop_assert_eq!(counts.iter().sum::<usize>(), items, "counts must sum to items");
        // Whenever there is enough work to go around, every
        // positive-weight agent gets at least one item.
        let positive = weights.iter().filter(|w| **w > 0.0).count();
        if positive > 0 && items >= positive {
            for (i, (&c, &w)) in counts.iter().zip(&weights).enumerate() {
                if w > 0.0 {
                    prop_assert!(c >= 1, "agent {} (weight {}) starved: {:?}", i, w, counts);
                }
            }
        }
    }

    #[test]
    fn partition_weighted_degrades_to_even_under_equal_weights(
        items in 0usize..600,
        n in 1usize..12,
        w in 0.01f64..100.0,
    ) {
        prop_assert_eq!(
            partition_weighted(items, &vec![w; n]),
            partition_even(items, n)
        );
    }

    #[test]
    fn partition_weighted_is_deterministic_and_zero_safe(
        items in 0usize..600,
        weights in proptest::collection::vec(0.0f64..16.0, 1..12),
    ) {
        // Same inputs, same split — scatter and accounting paths may
        // both call the partitioner and must agree.
        prop_assert_eq!(
            partition_weighted(items, &weights),
            partition_weighted(items, &weights)
        );
        // A zero-weight agent only ever receives work via the even-split
        // fallback (all weights zero), never from a valid weighting.
        if weights.iter().any(|w| *w > 0.0) {
            for (&c, &w) in partition_weighted(items, &weights).iter().zip(&weights) {
                if w == 0.0 {
                    prop_assert_eq!(c, 0);
                }
            }
        }
    }

    // ---------------- telemetry exporters ----------------

    #[test]
    fn arbitrary_event_sequences_export_without_panic(
        events in proptest::collection::vec(arb_trace_event(), 0..40),
        n_agents in 0usize..8,
    ) {
        use clan::core::telemetry::{from_jsonl, parse_chrome_json, to_chrome_json, to_jsonl};
        let trace = clan::core::RunTrace { events, ..clan::core::RunTrace::default() };
        // JSONL round-trips every event bit-exactly (floats are stored
        // as IEEE-754 bits, so there is no decimal detour to lose).
        let jsonl = to_jsonl(&trace).expect("any event serializes");
        prop_assert_eq!(from_jsonl(&jsonl).expect("parses back"), trace.events.clone());
        // Chrome export stays valid trace-event JSON (required keys
        // ph/ts/pid/tid/name) for any event soup and any agent count.
        let chrome = to_chrome_json(&trace, n_agents);
        let doc = parse_chrome_json(&chrome).expect("valid Chrome trace JSON");
        prop_assert!(clan::core::telemetry::chrome_tracks_match(&doc, n_agents));
        // The logical text and hash are total functions of the events.
        let _ = trace.logical_text();
        let _ = trace.logical_hash();
    }
}

/// Strategy for one arbitrary [`clan::core::TraceEvent`]: any
/// determinism class, any kind, any sparse payload combination
/// (including nonsense ones no real emitter produces).
fn arb_trace_event() -> impl Strategy<Value = clan::core::TraceEvent> {
    use clan::core::{Determinism, EventKind, TraceEvent};
    const KINDS: [EventKind; 17] = [
        EventKind::RunStart,
        EventKind::GenerationStart,
        EventKind::EvalResult,
        EventKind::GenerationEnd,
        EventKind::Dispatch,
        EventKind::Completion,
        EventKind::Insertion,
        EventKind::ClusterInfo,
        EventKind::GatherRound,
        EventKind::AgentExchange,
        EventKind::Retransmission,
        EventKind::AgentFailure,
        EventKind::ChunkReassigned,
        EventKind::AgentKilled,
        EventKind::AgentRevived,
        EventKind::AgentJoined,
        EventKind::RunEnd,
    ];
    // Optional fields are (present, value) pairs; the label is carved
    // out of raw bits so it covers empty, short, and punctuation-heavy
    // printable strings without a regex strategy.
    (
        any::<u64>(),
        any::<bool>(),
        0usize..KINDS.len(),
        proptest::collection::vec((any::<bool>(), any::<u64>()), 8..9),
        (any::<bool>(), any::<u64>()),
    )
        .prop_map(move |(seq, logical, kind, nums, (has_label, lbits))| {
            let class = if logical {
                Determinism::Logical
            } else {
                Determinism::Timing
            };
            let opt = |i: usize| nums[i].0.then_some(nums[i].1);
            let mut ev = TraceEvent::base(class, KINDS[kind]);
            ev.seq = seq;
            ev.lseq = opt(0);
            ev.agent = opt(1);
            ev.vtime_us = opt(2);
            ev.wall_us = opt(3);
            ev.dur_us = opt(4);
            ev.genome = opt(5);
            ev.fitness_bits = opt(6);
            ev.child = opt(7);
            ev.label = has_label.then(|| {
                let len = (lbits % 25) as usize;
                (0..len)
                    .map(|i| {
                        let byte = (lbits.rotate_left(7 * i as u32) & 0xFF) as u8;
                        char::from(b' ' + byte % 95)
                    })
                    .collect()
            });
            ev
        })
}
