//! The distributed-runtime headline: running CLAN over **real TCP
//! sockets** changes nothing about the evolution.
//!
//! For every CLAN topology (Serial / DCS / DDS / DDA) and loopback
//! cluster size (1 / 2 / 4 agents), a run whose inference executes on
//! TCP agents must be *bit-identical* to the purely local run: same
//! per-generation reports (fitness, species, cost counters, modeled
//! timelines), same best-ever genome. This holds because every episode
//! seed derives from `(master_seed, genome content hash)` — never
//! from placement or arrival order — and genome attributes travel as
//! exact `f64` bits.
//!
//! CI's `net-smoke` job runs this suite on every push.

use clan::core::runtime::EdgeCluster;
use clan::core::transport::ClusterSpec;
use clan::core::{
    DcsOrchestrator, DdaOrchestrator, DdsOrchestrator, Evaluator, GenerationReport, InferenceMode,
    Orchestrator, SerialOrchestrator,
};
use clan::distsim::Cluster;
use clan::envs::Workload;
use clan::hw::Platform;
use clan::neat::{Genome, NeatConfig, Population};
use clan::netsim::{MessageKind, WifiModel};

const POP: usize = 20;
const SIM_AGENTS: usize = 4;
const GENERATIONS: usize = 3;
const SEED: u64 = 13;

fn neat_cfg() -> NeatConfig {
    let w = Workload::CartPole;
    NeatConfig::builder(w.obs_dim(), w.n_actions())
        .population_size(POP)
        .build()
        .unwrap()
}

/// Builds the named orchestrator around the given evaluator.
fn orchestrator(topology: &str, evaluator: Evaluator) -> Box<dyn Orchestrator> {
    let cfg = neat_cfg();
    let sim = |n| Cluster::homogeneous(Platform::raspberry_pi(), n, WifiModel::default());
    match topology {
        "serial" => Box::new(SerialOrchestrator::new(
            Population::new(cfg, SEED),
            evaluator,
            sim(1),
        )),
        "dcs" => Box::new(DcsOrchestrator::new(
            Population::new(cfg, SEED),
            evaluator,
            sim(SIM_AGENTS),
        )),
        "dds" => Box::new(DdsOrchestrator::new(
            Population::new(cfg, SEED),
            evaluator,
            sim(SIM_AGENTS),
        )),
        "dda" => Box::new(
            DdaOrchestrator::new(cfg, evaluator, sim(SIM_AGENTS), SEED)
                .expect("clans large enough"),
        ),
        other => panic!("unknown topology {other}"),
    }
}

/// Runs `GENERATIONS` generations, returning the reports and the final
/// best-ever genome.
fn run(mut o: Box<dyn Orchestrator>) -> (Vec<GenerationReport>, Genome) {
    let reports = (0..GENERATIONS)
        .map(|_| o.step_generation().expect("generation steps"))
        .collect();
    (
        reports,
        o.best_ever().expect("evaluated runs have a best").clone(),
    )
}

fn local_evaluator() -> Evaluator {
    Evaluator::new(Workload::CartPole, InferenceMode::MultiStep)
}

fn tcp_evaluator(n_agents: usize) -> Evaluator {
    let spec = ClusterSpec::new(Workload::CartPole, InferenceMode::MultiStep, neat_cfg());
    let cluster = EdgeCluster::spawn_local_spec(n_agents, spec).expect("loopback cluster binds");
    local_evaluator().with_remote(cluster)
}

#[test]
fn tcp_runs_bit_identical_to_serial_on_all_topologies() {
    for topology in ["serial", "dcs", "dds", "dda"] {
        let (local_reports, local_best) = run(orchestrator(topology, local_evaluator()));
        for n_agents in [1usize, 2, 4] {
            let (net_reports, net_best) = run(orchestrator(topology, tcp_evaluator(n_agents)));
            assert_eq!(
                local_reports, net_reports,
                "{topology} over {n_agents} TCP agent(s): generation reports diverged"
            );
            assert_eq!(
                local_best, net_best,
                "{topology} over {n_agents} TCP agent(s): best-ever genome diverged"
            );
        }
    }
}

#[test]
fn tcp_run_measures_wire_traffic_against_the_model() {
    let mut o = orchestrator("dcs", tcp_evaluator(2));
    for _ in 0..GENERATIONS {
        o.step_generation().unwrap();
    }
    let wire = o.transport_ledger().expect("TCP run records wire traffic");
    // One Evaluate per agent per generation, answered by one Fitness.
    let genomes = wire.entry(MessageKind::SendGenomes);
    let fitness = wire.entry(MessageKind::SendFitness);
    assert_eq!(genomes.messages, (2 * GENERATIONS) as u64);
    assert_eq!(fitness.messages, (2 * GENERATIONS) as u64);
    assert!(genomes.wire_bytes > 0 && fitness.wire_bytes > 0);
    // The real wire format (f64 attributes, i64 gene keys, framing) must
    // cost more than the paper's 4-bytes-per-gene accounting — this is
    // the measured framing overhead ROADMAP.md records.
    let overhead = wire.framing_overhead().expect("both measures present");
    assert!(
        overhead > 1.0 && overhead < 20.0,
        "framing overhead out of plausible range: {overhead}"
    );
    // The analytic (simulated) ledger is untouched by measurement: a
    // DCS orchestrator still models its own genome/fitness phases.
    assert!(o.ledger().total_floats() > 0);
    assert_eq!(o.ledger().total_wire_bytes(), 0);
}

#[test]
fn loopback_cluster_sizes_do_not_change_generation_count_semantics() {
    // Guard against partition-dependent behavior: 1, 2, and 4 agents
    // must produce identical fitness for the *initial* population too
    // (generation 0 is the easiest place to lose determinism).
    let fitness_of = |n_agents: usize| {
        let mut cluster = EdgeCluster::spawn_local(
            n_agents,
            Workload::CartPole,
            InferenceMode::MultiStep,
            neat_cfg(),
        )
        .unwrap();
        let mut pop = Population::new(neat_cfg(), SEED);
        cluster.evaluate(&mut pop).unwrap();
        pop.genomes()
            .values()
            .map(|g| g.fitness().unwrap())
            .collect::<Vec<f64>>()
    };
    let one = fitness_of(1);
    assert_eq!(one, fitness_of(2));
    assert_eq!(one, fitness_of(4));
}
