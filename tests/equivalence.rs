//! Cross-crate integration: the distributed configurations must not
//! change the evolutionary computation.
//!
//! Serial, CLAN_DCS, CLAN_DDS (analytic orchestrators), and the real
//! threaded runtime all produce bit-identical populations for a given
//! seed, because every stochastic decision derives its RNG stream from
//! the entity it concerns (episode seeds from the genome's content
//! hash, reproduction from `(seed, generation, child id)`) rather than
//! from execution order.

use clan::core::runtime::EdgeCluster;
use clan::core::{
    ClanDriver, ClanTopology, DcsOrchestrator, DdsOrchestrator, Evaluator, InferenceMode,
    Orchestrator, SerialOrchestrator,
};
use clan::distsim::Cluster;
use clan::envs::Workload;
use clan::hw::Platform;
use clan::neat::{NeatConfig, Population};
use clan::netsim::WifiModel;

const SEED: u64 = 1234;
const POP: usize = 24;
const GENS: u64 = 4;

fn neat_cfg(w: Workload) -> NeatConfig {
    NeatConfig::builder(w.obs_dim(), w.n_actions())
        .population_size(POP)
        .build()
        .expect("valid config")
}

fn cluster(agents: usize) -> Cluster {
    Cluster::homogeneous(Platform::raspberry_pi(), agents, WifiModel::default())
}

#[test]
fn parallel_evaluation_is_bit_identical_to_serial() {
    // The tentpole determinism contract: evaluating the population across
    // N worker threads must not change anything — fitness trajectory,
    // gene-level cost counters, or the best genome ever seen — because
    // every episode seed derives from (master_seed, genome content
    // hash), never from execution order. Ten generations on both a
    // small and a medium workload, at 1/2/4/8 threads.
    for workload in [Workload::CartPole, Workload::LunarLander] {
        let run = |threads: usize| {
            let mut orchestrator = SerialOrchestrator::new(
                Population::new(neat_cfg(workload), SEED),
                Evaluator::with_threads(workload, InferenceMode::MultiStep, 1, threads),
                cluster(1),
            );
            let reports: Vec<_> = (0..10)
                .map(|_| orchestrator.step_generation().expect("generation"))
                .collect();
            (
                reports,
                orchestrator.population().genomes().clone(),
                orchestrator.best_ever().cloned(),
            )
        };
        let (serial_reports, serial_genomes, serial_best) = run(1);
        for threads in [2, 4, 8] {
            let (reports, genomes, best) = run(threads);
            for (a, b) in serial_reports.iter().zip(reports.iter()) {
                assert_eq!(
                    a.best_fitness, b.best_fitness,
                    "{workload}: fitness diverged at {threads} threads, gen {}",
                    a.generation
                );
                assert_eq!(
                    a.costs, b.costs,
                    "{workload}: cost counters diverged at {threads} threads, gen {}",
                    a.generation
                );
                assert_eq!(a.num_species, b.num_species, "{workload}@{threads}");
            }
            assert_eq!(
                serial_genomes, genomes,
                "{workload}: populations diverged at {threads} threads"
            );
            assert_eq!(
                serial_best, best,
                "{workload}: best-ever diverged at {threads} threads"
            );
        }
    }
}

#[test]
fn parallel_evaluation_matches_across_all_topologies() {
    // eval_threads is orthogonal to the CLAN configuration: every
    // orchestrator runs inference through the same engine, so threading
    // must leave each topology's trajectory untouched (including DDA,
    // whose clans evaluate independently).
    for topo in [
        ClanTopology::serial(),
        ClanTopology::dcs(),
        ClanTopology::dds(),
        ClanTopology::dda(3),
    ] {
        let agents = if topo == ClanTopology::serial() { 1 } else { 3 };
        let run = |threads: usize| {
            ClanDriver::builder(Workload::CartPole)
                .topology(topo)
                .agents(agents)
                .population_size(POP)
                .seed(SEED)
                .eval_threads(threads)
                .build()
                .expect("config")
                .run(GENS)
                .expect("run")
        };
        let serial = run(1);
        let threaded = run(4);
        for (a, b) in serial.generations.iter().zip(threaded.generations.iter()) {
            assert_eq!(
                a.best_fitness, b.best_fitness,
                "{topo} gen {}",
                a.generation
            );
            assert_eq!(a.costs, b.costs, "{topo} gen {}", a.generation);
        }
    }
}

#[test]
fn serial_dcs_dds_produce_identical_populations() {
    let w = Workload::CartPole;
    let cfg = neat_cfg(w);
    let mut serial = SerialOrchestrator::new(
        Population::new(cfg.clone(), SEED),
        Evaluator::new(w, InferenceMode::MultiStep),
        cluster(1),
    );
    let mut dcs = DcsOrchestrator::new(
        Population::new(cfg.clone(), SEED),
        Evaluator::new(w, InferenceMode::MultiStep),
        cluster(5),
    );
    let mut dds = DdsOrchestrator::new(
        Population::new(cfg.clone(), SEED),
        Evaluator::new(w, InferenceMode::MultiStep),
        cluster(3),
    );
    for _ in 0..GENS {
        let a = serial.step_generation().expect("serial");
        let b = dcs.step_generation().expect("dcs");
        let c = dds.step_generation().expect("dds");
        assert_eq!(a.best_fitness, b.best_fitness);
        assert_eq!(a.best_fitness, c.best_fitness);
        assert_eq!(a.num_species, b.num_species);
    }
    assert_eq!(serial.population().genomes(), dcs.population().genomes());
    assert_eq!(serial.population().genomes(), dds.population().genomes());
}

#[test]
fn threaded_runtime_matches_analytic_orchestrators() {
    let w = Workload::MountainCar;
    let cfg = neat_cfg(w);
    let mut edge =
        EdgeCluster::spawn(3, w, InferenceMode::MultiStep, cfg.clone()).expect("cluster spawns");
    let mut threaded = Population::new(cfg.clone(), SEED);
    let mut reference = SerialOrchestrator::new(
        Population::new(cfg.clone(), SEED),
        Evaluator::new(w, InferenceMode::MultiStep),
        cluster(1),
    );
    for _ in 0..GENS {
        edge.step_dds_generation(&mut threaded).expect("threaded");
        reference.step_generation().expect("serial");
    }
    edge.shutdown();
    assert_eq!(threaded.genomes(), reference.population().genomes());
}

#[test]
fn agent_count_does_not_change_dcs_results() {
    let run = |agents: usize| {
        ClanDriver::builder(Workload::CartPole)
            .topology(ClanTopology::dcs())
            .agents(agents)
            .population_size(POP)
            .seed(SEED)
            .build()
            .expect("config")
            .run(GENS)
            .expect("run")
    };
    let r2 = run(2);
    let r7 = run(7);
    for (a, b) in r2.generations.iter().zip(r7.generations.iter()) {
        assert_eq!(a.best_fitness, b.best_fitness);
        assert_eq!(a.costs.inference_genes, b.costs.inference_genes);
    }
    // Timelines differ (that is the point of the study).
    assert_ne!(
        r2.total_timeline.communication_s,
        r7.total_timeline.communication_s
    );
}

#[test]
fn dda_differs_from_serial_by_design() {
    let serial = ClanDriver::builder(Workload::CartPole)
        .population_size(POP)
        .seed(SEED)
        .build()
        .expect("config")
        .run(GENS)
        .expect("run");
    let dda = ClanDriver::builder(Workload::CartPole)
        .topology(ClanTopology::dda(4))
        .agents(4)
        .population_size(POP)
        .seed(SEED)
        .build()
        .expect("config")
        .run(GENS)
        .expect("run");
    // Asynchronous speciation is a different algorithm: trajectories are
    // allowed (expected) to diverge.
    let same = serial
        .generations
        .iter()
        .zip(dda.generations.iter())
        .all(|(a, b)| a.best_fitness == b.best_fitness);
    assert!(!same, "clan-local evolution should diverge from global");
}

#[test]
fn single_step_mode_is_equivalent_across_configs_too() {
    let run = |topo: ClanTopology, agents: usize| {
        ClanDriver::builder(Workload::AirRaid)
            .topology(topo)
            .agents(agents)
            .population_size(POP)
            .seed(SEED)
            .single_step()
            .build()
            .expect("config")
            .run(2)
            .expect("run")
    };
    let serial = run(ClanTopology::serial(), 1);
    let dcs = run(ClanTopology::dcs(), 4);
    let dds = run(ClanTopology::dds(), 4);
    for ((a, b), c) in serial
        .generations
        .iter()
        .zip(dcs.generations.iter())
        .zip(dds.generations.iter())
    {
        assert_eq!(a.best_fitness, b.best_fitness);
        assert_eq!(a.best_fitness, c.best_fitness);
    }
}
