//! The telemetry headline: the **logical event stream is part of the
//! determinism contract**.
//!
//! For every CLAN topology (Serial / DCS / DDS / DDA), the trace's
//! logical text — run preamble, generation starts, the id-ordered
//! per-genome evaluation replay, generation ends, run end — must be
//! **byte-identical** for a given seed whether inference ran locally,
//! over loopback TCP, over UDP with 20 % injected datagram loss, or
//! through a deterministic churn schedule. Wall-clock reality
//! (retransmissions, failures, reassignments) is recorded in the
//! Timing channel and must never leak into the logical stream.
//!
//! Async virtual-time runs extend the contract: their trace is a
//! *strict superset* of the existing `--event-log` — every Completion
//! event reconstructs its event-log line exactly — and the logical
//! stream is fixed by `(seed, latency schedule)`.

use clan::core::telemetry::{from_jsonl, parse_chrome_json, to_chrome_json, to_jsonl};
use clan::core::transport::{ChurnSchedule, FaultConfig, UdpConfig};
use clan::core::{ClanDriver, ClanDriverBuilder, ClanTopology, Determinism, EventKind, RunTrace};
use clan::envs::Workload;

const POP: usize = 20;
const SIM_AGENTS: usize = 4;
const GENERATIONS: u64 = 4;
const SEED: u64 = 13;
const LOSS: f64 = 0.2;

fn topologies() -> [ClanTopology; 4] {
    [
        ClanTopology::serial(),
        ClanTopology::dcs(),
        ClanTopology::dds(),
        ClanTopology::dda(SIM_AGENTS),
    ]
}

fn base_builder(topology: ClanTopology) -> ClanDriverBuilder {
    let agents = if topology == ClanTopology::serial() {
        1
    } else {
        SIM_AGENTS
    };
    ClanDriver::builder(Workload::CartPole)
        .topology(topology)
        .agents(agents)
        .population_size(POP)
        .seed(SEED)
        .tracing(true)
}

/// A small MTU (forcing real fragmentation of every genome frame) and a
/// fast retransmit timer so 20 % loss costs milliseconds, not seconds.
fn lossy_udp() -> UdpConfig {
    UdpConfig::default()
        .with_mtu(256)
        .with_retransmit_interval_s(0.01)
        .with_idle_timeout_s(10.0)
        .with_faults(FaultConfig::loss(LOSS).with_seed(5))
}

fn traced_run(builder: ClanDriverBuilder) -> RunTrace {
    let (_, trace) = builder
        .build()
        .expect("driver builds")
        .run_with_trace(GENERATIONS)
        .expect("run completes");
    trace.expect("tracing was enabled")
}

#[test]
fn logical_stream_is_byte_identical_across_transports_on_all_topologies() {
    for topology in topologies() {
        let local = traced_run(base_builder(topology));
        let baseline = local.logical_text();
        assert!(
            !baseline.is_empty(),
            "{topology}: logical stream must not be empty"
        );
        // Preamble, per-generation markers, replayed evals, postamble.
        assert!(baseline.starts_with("l=0 k=run_start seed=13"));
        assert!(baseline.contains("k=gen_start"));
        assert!(baseline.contains("k=eval"));
        assert!(baseline.contains("k=gen_end"));
        assert!(baseline.ends_with("k=run_end gen=4\n"));

        let tcp = traced_run(base_builder(topology).loopback_agents(2));
        assert_eq!(
            baseline,
            tcp.logical_text(),
            "{topology} over loopback TCP: logical stream diverged"
        );

        let udp = traced_run(
            base_builder(topology)
                .loopback_udp_agents(2)
                .udp_config(lossy_udp()),
        );
        assert_eq!(
            baseline,
            udp.logical_text(),
            "{topology} over 20%-lossy UDP: logical stream diverged"
        );

        let churned = traced_run(
            base_builder(topology)
                .loopback_agents(3)
                .churn(ChurnSchedule::new().kill(1, 1).revive(1, 3)),
        );
        assert_eq!(
            baseline,
            churned.logical_text(),
            "{topology} through churn: logical stream diverged"
        );
        // The churn was real: the Timing channel saw it, the logical
        // channel did not.
        assert!(
            churned
                .events
                .iter()
                .any(|e| e.kind == EventKind::AgentKilled),
            "{topology}: churn schedule must surface as Timing events"
        );
        assert_eq!(local.logical_hash(), churned.logical_hash());
    }
}

#[test]
fn timing_events_differ_while_logical_hash_does_not() {
    let local = traced_run(base_builder(ClanTopology::dcs()));
    let udp = traced_run(
        base_builder(ClanTopology::dcs())
            .loopback_udp_agents(2)
            .udp_config(lossy_udp()),
    );
    let (local_logical, local_timing) = local.counts();
    let (udp_logical, udp_timing) = udp.counts();
    assert_eq!(local_logical, udp_logical);
    assert!(
        udp_timing > local_timing,
        "a lossy transport records more annotations ({udp_timing} vs {local_timing})"
    );
    assert!(
        udp.events
            .iter()
            .any(|e| e.kind == EventKind::Retransmission && e.class == Determinism::Timing),
        "20% loss must surface Retransmission annotations"
    );
    assert_eq!(local.logical_hash(), udp.logical_hash());
    // The metrics registry counted the retransmitted bytes.
    assert!(udp.metrics.counter("retrans.bytes") > 0);
    // It also absorbed the fitness-cache numbers (counters fed from the
    // generation-end events, gauges from the cache itself) — and since
    // cache hits are content-addressed, they are transport-invariant.
    assert!(local.metrics.counter("cache.lookups") > 0);
    assert_eq!(
        local.metrics.counter("cache.hits"),
        udp.metrics.counter("cache.hits")
    );
    assert!(local.metrics.gauges.contains_key("cache.hit_rate"));
}

#[test]
fn tracing_never_changes_the_evolved_result() {
    let run = |tracing: bool| {
        ClanDriver::builder(Workload::CartPole)
            .topology(ClanTopology::dcs())
            .agents(SIM_AGENTS)
            .population_size(POP)
            .seed(SEED)
            .tracing(tracing)
            .build()
            .unwrap()
            .run(GENERATIONS)
            .unwrap()
    };
    let untraced = run(false);
    let traced = run(true);
    assert_eq!(untraced.best_fitness, traced.best_fitness);
    assert_eq!(
        untraced.generations.last().unwrap().costs,
        traced.generations.last().unwrap().costs
    );
    assert!(untraced.telemetry.logical_events == 0);
    assert!(traced.telemetry.logical_events > 0);
}

#[test]
fn async_trace_is_a_strict_superset_of_the_event_log() {
    let run = || {
        ClanDriver::builder(Workload::CartPole)
            .agents(3)
            .population_size(12)
            .seed(9)
            .total_evals(40)
            .latency_ms(vec![2.0, 8.0, 2.0])
            .tracing(true)
            .build_async()
            .unwrap()
            .run()
            .unwrap()
    };
    let a = run();
    let trace = a.trace.as_ref().expect("tracing was enabled");
    // Every Completion event reconstructs its --event-log line exactly,
    // in order: the trace strictly contains the event log.
    let reconstructed: String = trace
        .events
        .iter()
        .filter_map(|e| e.async_log_line().map(|l| l + "\n"))
        .collect();
    assert_eq!(reconstructed, a.event_log);
    assert!(!a.event_log.is_empty());
    assert!(
        trace.events.len() > a.event_log.lines().count(),
        "the trace carries dispatches and the run frame on top of completions"
    );
    // Virtual-time determinism extends to the logical stream.
    let b = run();
    assert_eq!(
        trace.logical_text(),
        b.trace.as_ref().unwrap().logical_text()
    );
    assert_eq!(a.event_log, b.event_log);
}

#[test]
fn exporters_round_trip_a_real_trace() {
    let trace = traced_run(
        base_builder(ClanTopology::dcs())
            .loopback_udp_agents(2)
            .udp_config(lossy_udp()),
    );
    // JSONL: parse back every event bit-exactly.
    let jsonl = to_jsonl(&trace).expect("serializes");
    let events = from_jsonl(&jsonl).expect("parses back");
    assert_eq!(events, trace.events);
    // Chrome: valid trace-event JSON with one track per agent plus the
    // coordinator.
    let chrome = to_chrome_json(&trace, SIM_AGENTS);
    let doc = parse_chrome_json(&chrome).expect("valid Chrome trace JSON");
    assert!(clan::core::telemetry::chrome_tracks_match(&doc, SIM_AGENTS));
}
