//! The loss-tolerant-transport headline: running CLAN over **UDP with
//! 20 % injected datagram loss** changes nothing about the evolution.
//!
//! For every CLAN topology (Serial / DCS / DDS / DDA) and loopback UDP
//! cluster size (1 / 2 / 4 agents), a run whose inference executes over
//! the reliable-datagram transport — with seeded drop faults injected
//! below the ARQ layer on every link — must be *bit-identical* to the
//! purely local run: same per-generation reports (fitness, species,
//! cost counters, modeled timelines), same best-ever genome. The ARQ
//! layer retransmits, deduplicates, and reorders back everything the
//! fault injector perturbs, so loss costs only time and retransmitted
//! bytes — both measured, neither allowed to leak into the result.
//!
//! CI's `net-smoke` job runs this suite on every push.

use clan::core::runtime::EdgeCluster;
use clan::core::transport::{ClusterSpec, FaultConfig, UdpConfig};
use clan::core::{
    DcsOrchestrator, DdaOrchestrator, DdsOrchestrator, Evaluator, GenerationReport, InferenceMode,
    Orchestrator, SerialOrchestrator,
};
use clan::distsim::Cluster;
use clan::envs::Workload;
use clan::hw::Platform;
use clan::neat::{Genome, NeatConfig, Population};
use clan::netsim::WifiModel;

const POP: usize = 20;
const SIM_AGENTS: usize = 4;
const GENERATIONS: usize = 3;
const SEED: u64 = 13;
const LOSS: f64 = 0.2;

fn neat_cfg() -> NeatConfig {
    let w = Workload::CartPole;
    NeatConfig::builder(w.obs_dim(), w.n_actions())
        .population_size(POP)
        .build()
        .unwrap()
}

/// A small MTU (forcing real fragmentation of every genome frame) and a
/// fast retransmit timer so 20 % loss costs milliseconds, not seconds.
fn lossy_udp(fault_seed: u64) -> UdpConfig {
    UdpConfig::default()
        .with_mtu(256)
        .with_retransmit_interval_s(0.01)
        .with_idle_timeout_s(10.0)
        .with_faults(FaultConfig::loss(LOSS).with_seed(fault_seed))
}

/// Builds the named orchestrator around the given evaluator.
fn orchestrator(topology: &str, evaluator: Evaluator) -> Box<dyn Orchestrator> {
    let cfg = neat_cfg();
    let sim = |n| Cluster::homogeneous(Platform::raspberry_pi(), n, WifiModel::default());
    match topology {
        "serial" => Box::new(SerialOrchestrator::new(
            Population::new(cfg, SEED),
            evaluator,
            sim(1),
        )),
        "dcs" => Box::new(DcsOrchestrator::new(
            Population::new(cfg, SEED),
            evaluator,
            sim(SIM_AGENTS),
        )),
        "dds" => Box::new(DdsOrchestrator::new(
            Population::new(cfg, SEED),
            evaluator,
            sim(SIM_AGENTS),
        )),
        "dda" => Box::new(
            DdaOrchestrator::new(cfg, evaluator, sim(SIM_AGENTS), SEED)
                .expect("clans large enough"),
        ),
        other => panic!("unknown topology {other}"),
    }
}

fn run(mut o: Box<dyn Orchestrator>) -> (Vec<GenerationReport>, Genome) {
    let reports = (0..GENERATIONS)
        .map(|_| o.step_generation().expect("generation steps"))
        .collect();
    (
        reports,
        o.best_ever().expect("evaluated runs have a best").clone(),
    )
}

fn local_evaluator() -> Evaluator {
    Evaluator::new(Workload::CartPole, InferenceMode::MultiStep)
}

fn lossy_udp_evaluator(n_agents: usize, fault_seed: u64) -> Evaluator {
    let spec = ClusterSpec::new(Workload::CartPole, InferenceMode::MultiStep, neat_cfg());
    let cluster = EdgeCluster::spawn_local_udp_cfg(n_agents, spec, lossy_udp(fault_seed))
        .expect("loopback UDP cluster binds");
    local_evaluator().with_remote(cluster)
}

#[test]
fn udp_runs_with_20pct_loss_bit_identical_to_serial_on_all_topologies() {
    for topology in ["serial", "dcs", "dds", "dda"] {
        let (local_reports, local_best) = run(orchestrator(topology, local_evaluator()));
        for n_agents in [1usize, 2, 4] {
            let (net_reports, net_best) = run(orchestrator(
                topology,
                lossy_udp_evaluator(n_agents, 7 + n_agents as u64),
            ));
            assert_eq!(
                local_reports, net_reports,
                "{topology} over {n_agents} lossy UDP agent(s): generation reports diverged"
            );
            assert_eq!(
                local_best, net_best,
                "{topology} over {n_agents} lossy UDP agent(s): best-ever genome diverged"
            );
        }
    }
}

#[test]
fn injected_loss_is_visible_as_retransmitted_bytes() {
    let mut o = orchestrator("dcs", lossy_udp_evaluator(2, 99));
    for _ in 0..GENERATIONS {
        o.step_generation().unwrap();
    }
    let wire = o.transport_ledger().expect("UDP run records wire traffic");
    assert!(wire.total_wire_bytes() > 0);
    assert!(
        wire.total_retrans_bytes() > 0,
        "20% injected loss must force retransmissions"
    );
    let overhead = wire.retrans_overhead().expect("both measures present");
    assert!(
        overhead > 0.01,
        "at 20% loss the recovery overhead should be well above 1%: {overhead}"
    );
    // The per-agent rows attribute the overhead to specific links.
    assert!(wire
        .agent_entries()
        .iter()
        .any(|row| row.retrans_wire_bytes > 0));
}

#[test]
fn clean_udp_runs_have_zero_retransmission_overhead() {
    // Loopback UDP without injected faults: the ledger's loss column
    // must stay zero, proving retransmissions are measured, not noise.
    let spec = ClusterSpec::new(Workload::CartPole, InferenceMode::MultiStep, neat_cfg());
    let mut cluster = EdgeCluster::spawn_local_udp_spec(2, spec).expect("binds");
    let mut pop = Population::new(neat_cfg(), SEED);
    cluster.evaluate(&mut pop).unwrap();
    assert_eq!(cluster.ledger().total_retrans_bytes(), 0);
    assert!(cluster.ledger().total_wire_bytes() > 0);
    cluster.shutdown();
}

#[test]
fn different_fault_seeds_still_converge_to_identical_results() {
    // The determinism contract must not secretly depend on the fault
    // pattern: two different seeds (different loss patterns, different
    // retransmission histories) produce the same evolution.
    let fitness_of = |fault_seed: u64| {
        let spec = ClusterSpec::new(Workload::CartPole, InferenceMode::MultiStep, neat_cfg());
        let mut cluster = EdgeCluster::spawn_local_udp_cfg(2, spec, lossy_udp(fault_seed))
            .expect("loopback UDP cluster binds");
        let mut pop = Population::new(neat_cfg(), SEED);
        cluster.evaluate(&mut pop).unwrap();
        let fits: Vec<f64> = pop
            .genomes()
            .values()
            .map(|g| g.fitness().unwrap())
            .collect();
        cluster.shutdown();
        fits
    };
    assert_eq!(fitness_of(1), fitness_of(2));
}
