//! End-to-end learning: NEAT actually solves tasks through the full
//! CLAN stack, and the continuous-learning loop recovers from
//! environment shifts.

use clan::core::{ClanDriver, ClanTopology, ContinuousLearner, MonitorConfig};
use clan::envs::cartpole::{CartPole, CartPoleParams};
use clan::envs::Workload;
use clan::neat::{NeatConfig, Population};

#[test]
fn neat_solves_xor() {
    // The classic NEAT benchmark: XOR needs at least one hidden node, so
    // solving it proves structural evolution works end to end.
    // NEAT solves XOR on a healthy fraction of seeds given enough
    // generations (6/24 seeds within 120 in the latest calibration scan
    // against the vendored RNG); the test pins a fast seed so it stays
    // deterministic and quick.
    let cfg = NeatConfig::builder(2, 1)
        .population_size(150)
        .build()
        .expect("config");
    let mut pop = Population::new(cfg, 5);
    let cases = [
        ([0.0, 0.0], 0.0),
        ([0.0, 1.0], 1.0),
        ([1.0, 0.0], 1.0),
        ([1.0, 1.0], 0.0),
    ];
    let mut best = f64::NEG_INFINITY;
    for _ in 0..120 {
        pop.evaluate(|net, _| {
            let mut fitness = 4.0;
            for (inputs, want) in &cases {
                let got = net.activate(inputs)[0];
                fitness -= (got - want) * (got - want);
            }
            fitness
        });
        let summary = pop.advance_generation();
        best = best.max(summary.best_fitness);
        if best > 3.8 {
            break;
        }
    }
    assert!(best > 3.5, "XOR should be (nearly) solved, best {best:.3}");
}

#[test]
fn cartpole_solved_through_the_driver() {
    let report = ClanDriver::builder(Workload::CartPole)
        .topology(ClanTopology::dcs())
        .agents(4)
        .population_size(96)
        .seed(11)
        .build()
        .expect("config")
        .run_until_solved(30)
        .expect("run");
    assert!(
        report.solved_at_generation.is_some(),
        "CartPole should solve within 30 generations, best {:.1}",
        report.best_fitness
    );
}

#[test]
fn async_steady_state_matches_the_sync_baseline() {
    // The statistical-convergence gate for the barrier-free mode: a
    // seeded async virtual-time run must reach the same solved
    // threshold the generational baseline above clears (CartPole
    // solves at 195), within a pinned evaluation budget comparable to
    // the sync test's 30 generations x 96 genomes.
    let outcome = ClanDriver::builder(Workload::CartPole)
        .agents(4)
        .population_size(96)
        .seed(11)
        .total_evals(2400)
        .tournament_size(3)
        .build_async()
        .expect("config")
        .run()
        .expect("run");
    let report = &outcome.report;
    let stats = report.asynchronous.as_ref().expect("async stats");
    assert_eq!(stats.total_evals, 2400);
    assert!(
        report.best_fitness >= 195.0,
        "async steady-state must reach the sync solved threshold \
         within 2400 evals, best {:.1}",
        report.best_fitness
    );
    assert!(
        report.solved_at_generation.is_some(),
        "clearing the threshold must mark the run solved"
    );
}

#[test]
fn dda_also_learns_not_just_scales() {
    let report = ClanDriver::builder(Workload::CartPole)
        .topology(ClanTopology::dda(4))
        .agents(4)
        .population_size(96)
        .seed(12)
        .build()
        .expect("config")
        .run_until_solved(40)
        .expect("run");
    assert!(
        report.best_fitness >= 150.0,
        "clan-local evolution must still make progress, best {:.1}",
        report.best_fitness
    );
}

#[test]
fn fitness_improves_monotonically_in_trend() {
    // Not per-generation monotone (evolution is stochastic), but the
    // last-quarter mean must beat the first-quarter mean.
    let report = ClanDriver::builder(Workload::LunarLander)
        .population_size(100)
        .seed(13)
        .episodes_per_eval(2)
        .build()
        .expect("config")
        .run(16)
        .expect("run");
    let bests: Vec<f64> = report.generations.iter().map(|g| g.best_fitness).collect();
    let quarter = bests.len() / 4;
    let early: f64 = bests[..quarter].iter().sum::<f64>() / quarter as f64;
    let late: f64 = bests[bests.len() - quarter..].iter().sum::<f64>() / quarter as f64;
    assert!(
        late > early,
        "learning trend should be positive: early {early:.1} late {late:.1}"
    );
}

#[test]
fn continuous_loop_detects_shift_and_recovers() {
    let cfg = NeatConfig::builder(4, 2)
        .population_size(64)
        .build()
        .expect("config");
    let mut learner = ContinuousLearner::new(
        cfg,
        MonitorConfig {
            probe_episodes: 3,
            max_steps: 200,
            max_learning_generations: 25,
        },
        21,
    );
    let mut env = CartPole::new();
    let first = learner.encounter_task(&mut env, 100.0).expect("first task");
    assert!(first.triggered_learning, "no expert yet -> must learn");
    assert!(learner.expert().is_some());

    // A drastic physics change; if the monitor sees degradation it must
    // re-learn, and in either case the deployed expert must end healthy.
    let mut shifted = CartPole::with_params(CartPoleParams {
        gravity: 15.0,
        pole_half_length: 2.5,
        force_mag: 4.0,
    });
    let outcome = learner
        .encounter_task(&mut shifted, 100.0)
        .expect("shifted task");
    if outcome.triggered_learning {
        assert!(outcome.learning_generations >= 1);
    }
    assert!(
        outcome.final_fitness >= outcome.initial_fitness.unwrap_or(f64::NEG_INFINITY),
        "deployed expert must never get worse: {outcome:?}"
    );
}

#[test]
fn accuracy_cost_of_clans_visible_at_16() {
    // A cheap echo of Figure 7b with the bench's exact parameters:
    // speciating 16 independent clans must not beat one global
    // population. (3 seeds; the full 10-run study lives in fig7.)
    let gens_to_solve = |clans: usize, seed: u64| -> u64 {
        let topo = if clans == 1 {
            ClanTopology::serial()
        } else {
            ClanTopology::dda(clans)
        };
        let r = ClanDriver::builder(Workload::LunarLander)
            .topology(topo)
            .agents(clans)
            .population_size(150)
            .episodes_per_eval(3)
            .seed(seed)
            .build()
            .expect("config")
            .run(40)
            .expect("run");
        r.generations
            .iter()
            .find(|g| g.best_fitness >= 200.0)
            .map(|g| g.generation + 1)
            .unwrap_or(40)
    };
    let global: u64 = (0..3).map(|s| gens_to_solve(1, 99 + 1000 * s)).sum();
    let sixteen: u64 = (0..3).map(|s| gens_to_solve(16, 99 + 1000 * s)).sum();
    assert!(
        sixteen + 5 >= global,
        "16 clans should not be meaningfully faster: {sixteen} vs {global}"
    );
}
