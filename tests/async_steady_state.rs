//! Property-based pins for the async steady-state mode: the two
//! insert-replace invariants (size conservation, champion protection)
//! and the virtual-time reproducibility contract over *arbitrary*
//! seeded latency schedules — not just the hand-picked ones the unit
//! tests use.

use clan::core::{AsyncOrchestrator, Evaluator, InferenceMode, LatencySchedule};
use clan::envs::Workload;
use clan::neat::rng::{derive_seed, OpTag};
use clan::neat::steady_state::steady_state_insert;
use clan::neat::{GenomeId, NeatConfig, Population};
use proptest::prelude::*;

/// A population with every member evaluated to a fitness drawn from a
/// seeded stream (so champions land on arbitrary ids, not just id 0).
fn evaluated_pop(n: usize, seed: u64) -> Population {
    let cfg = NeatConfig::builder(2, 1)
        .population_size(n)
        .build()
        .expect("config");
    let mut pop = Population::new(cfg, seed);
    let ids: Vec<GenomeId> = pop.genomes().keys().copied().collect();
    for (i, id) in ids.iter().enumerate() {
        let f = (derive_seed(seed, &[i as u64, OpTag::Tournament as u64]) % 1000) as f64;
        pop.set_fitness(*id, f).expect("resident");
    }
    pop.note_best_ever();
    pop
}

/// Current champion: the max-fitness evaluated member, ties toward the
/// lower id (the same rule `Population::best` uses).
fn champion(pop: &Population) -> (GenomeId, f64) {
    pop.genomes()
        .iter()
        .filter_map(|(id, g)| g.fitness().map(|f| (*id, f)))
        .max_by(|a, b| a.1.partial_cmp(&b.1).expect("finite").then(b.0.cmp(&a.0)))
        .expect("at least one evaluated member")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    // ---------------- steady-state insert invariants ----------------

    #[test]
    fn insert_conserves_size_and_never_evicts_the_champion(
        seed in any::<u64>(),
        n in 4usize..14,
        tournament in 1usize..6,
        events in 1u64..30,
    ) {
        let mut pop = evaluated_pop(n, seed);
        let mut floor = champion(&pop).1;
        for e in 0..events {
            let (champ_id, champ_fit) = champion(&pop);
            let report = steady_state_insert(&mut pop, tournament, e)
                .expect("a fully evaluated population always has a victim");
            // Size conservation: one in, one out, every single event.
            prop_assert_eq!(pop.len(), n);
            // Champion protection: the best genome is never the victim,
            // stays resident, and keeps its fitness bit-for-bit.
            prop_assert_ne!(report.evicted, champ_id);
            let still = pop.genome(champ_id).expect("champion survives");
            prop_assert_eq!(still.fitness(), Some(champ_fit));
            // Therefore the resident max fitness never regresses.
            prop_assert!(champion(&pop).1 >= floor);
            floor = champion(&pop).1;
            // The child arrives unevaluated; score it (seeded, so some
            // children dethrone the champion and rotate the protected id)
            // to model the completion that would trigger the next event.
            let f = (derive_seed(seed ^ 0xA5, &[e, report.child.0]) % 1500) as f64;
            pop.set_fitness(report.child, f).expect("child resident");
            pop.note_best_ever();
        }
    }

    #[test]
    fn insert_replays_bit_identically_for_any_seed(
        seed in any::<u64>(),
        n in 4usize..12,
        tournament in 1usize..6,
        event in any::<u64>(),
    ) {
        let mut a = evaluated_pop(n, seed);
        let mut b = evaluated_pop(n, seed);
        let ra = steady_state_insert(&mut a, tournament, event).expect("victim");
        let rb = steady_state_insert(&mut b, tournament, event).expect("victim");
        prop_assert_eq!(ra, rb);
        prop_assert_eq!(
            a.genome(ra.child).expect("resident").content_hash(),
            b.genome(rb.child).expect("resident").content_hash()
        );
    }

    // ---------------- virtual-time reproducibility ----------------

    #[test]
    fn virtual_replay_is_deterministic_for_any_schedule(
        master in any::<u64>(),
        sched_seed in any::<u64>(),
        bases in proptest::collection::vec(1u64..20_000, 1..4),
        jitter in 0u32..91,
        extra_evals in 0u64..20,
    ) {
        let w = Workload::CartPole;
        let n = bases.len() + 2;
        let total = n as u64 + extra_evals;
        let schedule = LatencySchedule::new(sched_seed, bases.clone(), jitter)
            .expect("positive bases, jitter <= 90");
        let run = || {
            let cfg = NeatConfig::builder(w.obs_dim(), w.n_actions())
                .population_size(n)
                .build()
                .expect("config");
            let evaluator = Evaluator::new(w, InferenceMode::MultiStep);
            let mut orch =
                AsyncOrchestrator::new(Population::new(cfg, master), evaluator, total, 3)
                    .expect("budget covers the population");
            orch.run_virtual(&schedule).expect("virtual run");
            let stats = orch.stats().expect("run finished").clone();
            (orch.event_log_text(), stats)
        };
        let (log_a, stats_a) = run();
        let (log_b, stats_b) = run();
        // The whole contract: same (seed, schedule) => byte-identical
        // event logs, same hash, same final best fitness.
        prop_assert_eq!(&log_a, &log_b);
        prop_assert!(!log_a.is_empty());
        prop_assert_eq!(stats_a.event_log_hash, stats_b.event_log_hash);
        prop_assert_eq!(stats_a.best_fitness.to_bits(), stats_b.best_fitness.to_bits());
        prop_assert_eq!(stats_a.total_evals, total);
        prop_assert_eq!(log_a.lines().count() as u64, total);
    }

    #[test]
    fn service_times_are_pure_and_jitter_bounded(
        sched_seed in any::<u64>(),
        base in 1u64..1_000_000,
        jitter in 0u32..91,
        agent in 0usize..4,
        k in any::<u64>(),
    ) {
        let s = LatencySchedule::uniform(sched_seed, 4, base, jitter).expect("valid");
        let t = s.service_us(agent, k);
        prop_assert_eq!(t, s.service_us(agent, k), "pure in (agent, k)");
        prop_assert!(t >= 1);
        let lo = base as i128 * (100 - i128::from(jitter)) / 100;
        let hi = base as i128 * (100 + i128::from(jitter)) / 100;
        prop_assert!((t as i128) >= lo.max(1) && (t as i128) <= hi,
            "service {t} outside ±{jitter}% of {base}");
    }
}
