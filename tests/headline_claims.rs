//! The paper's headline quantitative claims, asserted end-to-end against
//! the full stack (real NEAT + environments + cost models).
//!
//! These are the bullet points of the paper's introduction:
//! - "algorithmic modifications to reduce communication by up to 3.6x
//!   during the learning phase"
//! - "allow NE to scale up to 65 nodes and show a 2 times improvement in
//!   performance over Hard Scaled NE"
//! - "bring down the share of communication to 22% vs 50% when naively
//!   scaled as is"
//! - "Price-Performance Product benefit of 2.5x"

use clan::core::{ClanDriver, ClanTopology, RunReport};
use clan::envs::Workload;
use clan::hw::PlatformKind;

const SEED: u64 = 9;
const GENS: u64 = 3;

fn run(topo: ClanTopology, agents: usize, single_step: bool, pop: usize) -> RunReport {
    let mut b = ClanDriver::builder(Workload::AirRaid)
        .topology(topo)
        .agents(agents)
        .population_size(pop)
        .seed(SEED);
    if single_step {
        b = b.single_step();
    }
    b.build().expect("config").run(GENS).expect("run")
}

fn topo(kind: &str, agents: usize) -> ClanTopology {
    if agents == 1 {
        ClanTopology::serial()
    } else if kind == "DCS" {
        ClanTopology::dcs()
    } else if kind == "DDS" {
        ClanTopology::dds()
    } else {
        ClanTopology::dda(agents)
    }
}

#[test]
fn communication_reduced_by_around_3_6x_vs_dds() {
    // Comparing steady-state traffic per generation (init amortized out).
    let dds = run(topo("DDS", 2), 2, true, 150);
    let dda = run(topo("DDA", 2), 2, true, 150);
    let dds_share = dds.mean_timeline.shares().communication;
    let dda_share = dda.mean_timeline.shares().communication;
    let ratio = dds_share / dda_share;
    assert!(
        (2.0..=8.0).contains(&ratio),
        "communication share reduction should be around the paper's 3.6x, got {ratio:.1}x"
    );
}

#[test]
fn dda_beats_dcs_by_about_2x_at_scale_single_step() {
    let mut ratios = Vec::new();
    for agents in [12usize, 24, 40, 60] {
        let dcs = run(topo("DCS", agents), agents, true, 150).mean_generation_s();
        let dda = run(topo("DDA", agents), agents, true, 150).mean_generation_s();
        ratios.push(dcs / dda);
    }
    let mean = ratios.iter().sum::<f64>() / ratios.len() as f64;
    assert!(
        (1.5..=3.0).contains(&mean),
        "mean DCS/DDA speedup should be around 2x, got {mean:.2} ({ratios:?})"
    );
}

#[test]
fn dda_scales_beyond_dcs_against_serial_baseline() {
    let serial = run(ClanTopology::serial(), 1, true, 150).mean_generation_s();
    // DCS loses to serial somewhere near 40 units.
    let dcs_40 = run(topo("DCS", 40), 40, true, 150).mean_generation_s();
    assert!(
        dcs_40 > serial * 0.85,
        "DCS at 40 units should be at or past the serial crossover: {dcs_40:.1} vs serial {serial:.1}"
    );
    // DDA is still clearly ahead at 40 and only crosses much later.
    let dda_40 = run(topo("DDA", 40), 40, true, 150).mean_generation_s();
    assert!(
        dda_40 < serial,
        "DDA at 40 units should still beat serial: {dda_40:.1} vs {serial:.1}"
    );
    let dda_100 = run(topo("DDA", 100), 100, true, 200).mean_generation_s();
    assert!(
        dda_100 > dda_40,
        "DDA must eventually degrade: {dda_100:.1} vs {dda_40:.1}"
    );
}

#[test]
fn six_pi_swarm_beats_jetson_on_price_performance() {
    let jetson = ClanDriver::builder(Workload::AirRaid)
        .platform(PlatformKind::JetsonCpu)
        .population_size(150)
        .seed(SEED)
        .build()
        .expect("config")
        .run(GENS)
        .expect("run")
        .mean_generation_s();
    let six_pi = run(ClanTopology::dda(6), 6, false, 150).mean_generation_s();
    let ppp = (600.0 * jetson) / (240.0 * six_pi);
    assert!(
        ppp > 1.5,
        "the paper reports a 2.5x PPP benefit at 6 Pis; got {ppp:.2}x"
    );
}

#[test]
fn pi_swarm_uses_less_energy_than_hpc_for_same_work() {
    // §I: "matching the performance of higher-end computing devices at
    // much lower energy and dollar cost."
    let hpc = ClanDriver::builder(Workload::AirRaid)
        .platform(PlatformKind::HpcCpu)
        .population_size(150)
        .seed(SEED)
        .build()
        .expect("config")
        .run(GENS)
        .expect("run");
    let swarm = run(ClanTopology::dda(15), 15, false, 150);
    // 15 Pis roughly match the HPC CPU's runtime (Fig 11)...
    assert!(swarm.mean_generation_s() < 1.5 * hpc.mean_generation_s());
    // ...while drawing far less energy.
    assert!(
        swarm.total_energy_j < hpc.total_energy_j / 1.2,
        "swarm {:.0} J vs HPC {:.0} J",
        swarm.total_energy_j,
        hpc.total_energy_j
    );
}

#[test]
fn communication_share_ordering_matches_figure_8() {
    let dcs = run(topo("DCS", 2), 2, true, 150).mean_timeline.shares();
    let dds = run(topo("DDS", 2), 2, true, 150).mean_timeline.shares();
    let dda = run(topo("DDA", 2), 2, true, 150).mean_timeline.shares();
    assert!(dds.communication > dcs.communication);
    assert!(dcs.communication > dda.communication);
}

#[test]
fn small_workloads_cannot_amortize_communication() {
    // Figure 8 / Figure 11's Cartpole story.
    let mut b = ClanDriver::builder(Workload::CartPole)
        .topology(ClanTopology::dcs())
        .agents(2)
        .population_size(150)
        .seed(SEED);
    b = b.single_step();
    let r = b.build().expect("config").run(GENS).expect("run");
    assert!(
        r.mean_timeline.shares().communication > 0.6,
        "single-step Cartpole should be communication-bound: {:?}",
        r.mean_timeline.shares()
    );
}
