//! The batched evaluation engine and the content-addressed fitness
//! cache must not change the evolutionary computation: cache-on,
//! cache-off, batch-on, batch-off, and every mix produce bit-identical
//! runs across all four topologies at 1/2/4 agents.
//!
//! Also pins the canonical genome hash the cache keys on: stable under
//! gene reordering and id/fitness relabeling, and colliding only on
//! structural equality.

use clan::core::{ClanDriver, ClanTopology, RunReport};
use clan::envs::Workload;
use clan::neat::genome::Genome;
use clan::neat::{GenomeId, NeatConfig};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::collections::BTreeMap;

const SEED: u64 = 1234;
const POP: usize = 24;
const GENS: u64 = 4;

/// Runs `GENS` generations of CartPole under one engine setting.
fn run(topology: ClanTopology, agents: usize, batch: bool, cache: bool) -> RunReport {
    ClanDriver::builder(Workload::CartPole)
        .topology(topology)
        .agents(agents)
        .population_size(POP)
        .seed(SEED)
        .batch_lanes(if batch { 32 } else { 1 })
        .fitness_cache(cache)
        .build()
        .expect("driver builds")
        .run(GENS)
        .expect("run completes")
}

/// Asserts two runs evolved identically, generation by generation.
fn assert_identical(a: &RunReport, b: &RunReport, label: &str) {
    assert_eq!(a.generations.len(), b.generations.len(), "{label}");
    for (ga, gb) in a.generations.iter().zip(&b.generations) {
        assert_eq!(
            ga.best_fitness, gb.best_fitness,
            "{label}: fitness diverged at gen {}",
            ga.generation
        );
        assert_eq!(
            ga.costs, gb.costs,
            "{label}: cost counters diverged at gen {}",
            ga.generation
        );
        assert_eq!(ga.num_species, gb.num_species, "{label}");
    }
    assert_eq!(a.best_fitness, b.best_fitness, "{label}");
}

#[test]
fn cache_and_batching_are_bit_identical_across_topologies() {
    let cases: Vec<(ClanTopology, usize)> = [1usize, 2, 4]
        .iter()
        .flat_map(|&n| {
            let mut v = vec![
                (ClanTopology::dcs(), n),
                (ClanTopology::dds(), n),
                (ClanTopology::dda(n), n),
            ];
            if n == 1 {
                v.push((ClanTopology::serial(), 1));
            }
            v
        })
        .collect();
    for (topology, agents) in cases {
        let label = format!("{topology}@{agents}");
        // Baseline: scalar tier, no cache.
        let plain = run(topology, agents, false, false);
        assert_eq!(plain.cache_lookups, 0, "{label}: disabled cache is silent");
        // Batching alone, caching alone, and both together.
        let batched = run(topology, agents, true, false);
        let cached = run(topology, agents, false, true);
        let both = run(topology, agents, true, true);
        assert_identical(&plain, &batched, &format!("{label} batched"));
        assert_identical(&plain, &cached, &format!("{label} cached"));
        assert_identical(&plain, &both, &format!("{label} batched+cached"));
        for (r, name) in [(&cached, "cached"), (&both, "batched+cached")] {
            assert!(r.cache_lookups > 0, "{label} {name}: cache fields lookups");
            assert!(
                r.cache_hits > 0,
                "{label} {name}: elites must hit ({}/{} lookups)",
                r.cache_hits,
                r.cache_lookups
            );
            assert!(r.cache_hit_rate() > 0.0, "{label} {name}");
        }
    }
}

#[test]
fn serial_baseline_matches_every_distributed_mode_with_cache_on() {
    // The canonical cross-topology check, now with the cache enabled on
    // both sides: serial ≡ dcs ≡ dds at matching seeds.
    let serial = run(ClanTopology::serial(), 1, true, true);
    for (topology, agents) in [
        (ClanTopology::dcs(), 2),
        (ClanTopology::dcs(), 4),
        (ClanTopology::dds(), 2),
        (ClanTopology::dds(), 4),
    ] {
        let distributed = run(topology, agents, true, true);
        assert_eq!(
            serial.best_fitness, distributed.best_fitness,
            "{topology}@{agents} diverged from serial"
        );
        for (gs, gd) in serial.generations.iter().zip(&distributed.generations) {
            assert_eq!(
                gs.best_fitness, gd.best_fitness,
                "{topology}@{agents} gen {}",
                gs.generation
            );
        }
    }
}

// ---------------------------------------------------------------------
// Canonical-hash properties
// ---------------------------------------------------------------------

fn arb_cfg() -> impl Strategy<Value = NeatConfig> {
    (1usize..5, 1usize..4).prop_map(|(inputs, outputs)| {
        NeatConfig::builder(inputs, outputs)
            .population_size(10)
            .build()
            .expect("valid config")
    })
}

/// Builds a genome and walks it through a random mutation history.
fn mutated(cfg: &NeatConfig, seed: u64, ops: &[u8]) -> Genome {
    let mut g = Genome::new_initial(cfg, GenomeId(0), &mut StdRng::seed_from_u64(seed));
    let mut rng = StdRng::seed_from_u64(seed ^ 0x9E37_79B9);
    for &op in ops {
        match op {
            0 => g.mutate_add_node(cfg, &mut rng),
            1 => g.mutate_delete_node(cfg, &mut rng),
            2 => g.mutate_add_connection(cfg, &mut rng),
            _ => g.mutate_delete_connection(&mut rng),
        }
    }
    g
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn content_hash_is_stable_under_gene_reordering(
        cfg in arb_cfg(),
        seed in any::<u64>(),
        ops in proptest::collection::vec(0u8..4, 0..30),
    ) {
        let g = mutated(&cfg, seed, &ops);
        // Rebuild with genes inserted in reverse order and a fresh id:
        // the sorted gene maps are the canonical form, so the digest
        // must not notice.
        let mut nodes_rev = BTreeMap::new();
        for (k, v) in g.nodes().iter().rev() {
            nodes_rev.insert(*k, *v);
        }
        let mut conns_rev = BTreeMap::new();
        for (k, v) in g.conns().iter().rev() {
            conns_rev.insert(*k, *v);
        }
        let mut rebuilt = Genome::from_parts(GenomeId(9999), nodes_rev, conns_rev);
        rebuilt.set_fitness(123.0);
        prop_assert_eq!(g.content_hash(), rebuilt.content_hash());
    }

    #[test]
    fn content_hash_collides_only_on_structural_equality(
        cfg in arb_cfg(),
        s1 in any::<u64>(),
        s2 in any::<u64>(),
        ops1 in proptest::collection::vec(0u8..4, 0..20),
        ops2 in proptest::collection::vec(0u8..4, 0..20),
    ) {
        let a = mutated(&cfg, s1, &ops1);
        let b = mutated(&cfg, s2, &ops2);
        let structurally_equal = a.nodes() == b.nodes() && a.conns() == b.conns();
        prop_assert_eq!(
            a.content_hash() == b.content_hash(),
            structurally_equal,
            "hash equality must coincide with structural equality"
        );
    }
}
