//! `clan-cli` — run CLAN deployments from the command line.
//!
//! ```text
//! clan-cli run --workload lunarlander --topology dda --agents 8 --generations 10
//! clan-cli solve --workload cartpole --topology dcs --agents 4 --max-generations 40
//! clan-cli agent --listen 0.0.0.0:7777
//! clan-cli coordinate --agents-at 10.0.0.2:7777,10.0.0.3:7777 --generations 10
//! clan-cli coordinate --loopback 2 --generations 3
//! clan-cli export-champion --workload cartpole --out champion.dot
//! clan-cli list
//! ```
//!
//! Argument parsing is hand-rolled (no CLI dependency); every flag has a
//! sensible default so `clan-cli run` alone works.

use clan::core::telemetry::{to_chrome_json, to_jsonl, Tracer};
use clan::core::transport::agent::{AgentServer, UdpAgentServer};
use clan::core::transport::{ChurnSchedule, FaultConfig, UdpConfig};
use clan::core::{ClanDriver, ClanDriverBuilder, ClanTopology, RunReport, RunTrace};
use clan::envs::Workload;
use clan::hw::PlatformKind;
use clan::neat::{genome_to_dot, FeedForwardNetwork, NeatConfig, Population};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    if let Err(UsageError(msg)) = validate_flags(command, &Flags(args[1..].to_vec())) {
        eprintln!("usage error: {msg}");
        eprintln!("(see `clan-cli help`)");
        return ExitCode::from(2);
    }
    let result = match command.as_str() {
        "run" => cmd_run(&args[1..], false),
        "solve" => cmd_run(&args[1..], true),
        "agent" => cmd_agent(&args[1..]),
        "coordinate" => cmd_coordinate(&args[1..]),
        "export-champion" => cmd_export(&args[1..]),
        "list" => {
            cmd_list();
            Ok(())
        }
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command `{other}`\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("error: {msg}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
clan-cli — CLAN: collaborative neuroevolution on simulated edge clusters

USAGE:
  clan-cli run   [--workload W] [--topology T] [--agents N] [--generations N]
                 [--population N] [--seed N] [--platform P] [--single-step]
                 [--episodes N] [--eval-threads N]
                 [--batch-lanes N | --no-batch] [--no-cache]
                 [--trace FILE] [--trace-chrome FILE]
                 [--trace-ring N [--postmortem FILE]] [--status-addr ADDR]
                 [--async [--total-evals N] [--tournament-size K]
                  [--latency MS,MS,...] [--jitter-pct P] [--event-log FILE]]
  clan-cli solve [same flags; runs until the workload's solved score or
                 --max-generations N]
  clan-cli agent --listen ADDR [--delay-ms N] [--udp]
                 (serve as an edge agent; workload and NEAT config arrive
                 from the coordinator over the wire; --once serves one
                 session then exits; --delay-ms stalls each request to
                 emulate a slower device; --udp serves the loss-tolerant
                 datagram transport instead of TCP)
  clan-cli coordinate [run flags] (--agents-at ADDR,ADDR,... | --loopback N)
                 [--async [--total-evals N] [--tournament-size K]
                  [--event-log FILE]]
                 [--agent-weights W,W,...] [--calibrate]
                 [--udp [--loss P] [--fault-seed S]]
                 [--max-retries N] [--min-agents N]
                 [--churn EVENTS] [--spare-at ADDR,ADDR,...]
                 [--trace FILE] [--trace-chrome FILE]
                 [--trace-ring N [--postmortem FILE]] [--status-addr ADDR]
                 (drive a run over real TCP agents; bit-identical to the
                 same run executed locally under any weights. --udp speaks
                 reliable datagrams instead; --loss injects seeded drop
                 faults on every link — the ARQ layer recovers them, so
                 the evolved result is still bit-identical, only the
                 retransmission overhead in the report grows)
  clan-cli export-champion [--workload W] [--generations N] [--seed N]
                 [--out FILE.dot]
  clan-cli list  (available workloads, topologies, platforms)

DEFAULTS: workload=cartpole topology=serial agents=1 generations=5
          population=150 seed=0 platform=pi eval-threads=1

--eval-threads N runs genome evaluation across N host threads;
results are bit-identical to serial, only wall-clock time changes.
(On a single-CPU host, extra threads cannot speed anything up — bench
reports mark such rows flat_expected.)

--batch-lanes N sets the SoA batch width for lockstep evaluation of
same-shape networks (default 32); --no-batch is --batch-lanes 1.
--no-cache disables the content-addressed fitness cache that lets
elites and unmutated survivors skip re-evaluation. Both change only
wall-clock time, never the evolved result.

--agent-weights 1,4 gives the second agent 4x the work per scatter
(heterogeneous swarms: weight ~ relative device throughput); --calibrate
recalibrates the weights every generation from measured round-trip
times. Both change only chunk sizes, never the evolved result.

--churn k1@2,r1@4 kills agent 1 before scatter round 2 and revives it
before round 4 (deterministic churn injection): the lost chunks are
reassigned to survivors and the evolved result is still bit-identical,
only the recovery overhead in the report grows. --spare-at names standby
agents a revival may connect; --max-retries/--min-agents set the
recovery policy (defaults 3 and 1).

--trace FILE records a structured run trace as JSONL: a deterministic
logical event stream (byte-identical per seed across serial, TCP, lossy
UDP, and churned runs; a strict superset of --event-log in async mode)
plus wall-clock annotations in a separate channel. --trace-chrome FILE
writes the same trace as Chrome trace-event JSON with one track per
agent (open in Perfetto or chrome://tracing). Tracing never changes the
evolved result. Analyze recorded traces offline with `clan-trace`
(critical path, stragglers, divergence diff).

--trace-ring N arms the flight recorder: tracing runs in a bounded ring
that keeps only the last N events, and if the run fails (error or
panic) the ring is dumped to --postmortem FILE (default
clan-postmortem.jsonl) for offline analysis. Combine with --trace FILE
to also write the retained tail on success.

--status-addr ADDR serves a live introspection endpoint over HTTP while
the run executes: /metrics (Prometheus text), /health (per-agent
alive/suspected/dead), /progress (generation or eval counts, best
fitness). It publishes snapshots at generation boundaries only — the
logical event stream stays byte-identical with the endpoint enabled.

--async switches to barrier-free steady-state evolution: every finished
evaluation immediately triggers a tournament reproduction (size
--tournament-size, default 3) that replaces the worst genome, until
--total-evals evaluations (default 10x population) are spent. Local runs
simulate agents under deterministic virtual time (--latency 5,20 sets
per-agent service ms, --jitter-pct the seeded jitter): two runs with the
same --seed and latency schedule produce byte-identical --event-log
files. Over real agents (coordinate --async) the arrival order is
wall-clock, so results are statistical rather than bit-identical.";

/// Where the flight recorder dumps the ring when no `--postmortem FILE`
/// overrides it.
const POSTMORTEM_DEFAULT: &str = "clan-postmortem.jsonl";

/// A command-line misuse caught before any work starts. Rendered with a
/// pointer at the usage text and exit code 2, distinct from runtime
/// failures (exit 1), so scripts can tell "you called it wrong" from
/// "the run failed".
#[derive(Debug, PartialEq, Eq)]
struct UsageError(String);

/// Cross-flag validation that runs before command dispatch. Per-flag
/// value parsing stays with each command; this pass catches
/// combinations that are individually valid but jointly meaningless.
fn validate_flags(command: &str, flags: &Flags) -> Result<(), UsageError> {
    if command == "agent" {
        for f in ["--status-addr", "--trace-ring", "--postmortem"] {
            if flags.get(f).is_some() {
                return Err(UsageError(format!(
                    "{f} is a coordinator-side flag; `agent` has no driver to \
                     introspect (use it on run/solve/coordinate)"
                )));
            }
        }
    }
    if flags.get("--postmortem").is_some() && flags.get("--trace-ring").is_none() {
        return Err(UsageError(
            "--postmortem names the flight-recorder dump file and requires --trace-ring N".into(),
        ));
    }
    if flags.get("--trace-ring").is_some() {
        let postmortem = flags.get("--postmortem").unwrap_or(POSTMORTEM_DEFAULT);
        if flags.get("--trace") == Some(postmortem) {
            return Err(UsageError(format!(
                "--trace and the flight-recorder postmortem dump both target `{postmortem}`; \
                 point --postmortem (or --trace) at a different file"
            )));
        }
    }
    Ok(())
}

struct Flags(Vec<String>);

impl Flags {
    fn get(&self, name: &str) -> Option<&str> {
        self.0
            .iter()
            .position(|a| a == name)
            .and_then(|i| self.0.get(i + 1))
            .map(String::as_str)
    }

    fn has(&self, name: &str) -> bool {
        self.0.iter().any(|a| a == name)
    }

    fn parse<T: std::str::FromStr>(&self, name: &str, default: T) -> Result<T, String> {
        match self.get(name) {
            None => Ok(default),
            Some(v) => v
                .parse()
                .map_err(|_| format!("invalid value `{v}` for {name}")),
        }
    }
}

fn parse_workload(s: &str) -> Result<Workload, String> {
    let lower = s.to_lowercase();
    Workload::ALL
        .into_iter()
        .find(|w| w.name().to_lowercase().contains(&lower))
        .ok_or_else(|| format!("unknown workload `{s}` (try `clan-cli list`)"))
}

/// Parses `--agents-at`'s comma-separated address list: trims each
/// segment, skips empties left by stray commas, and rejects duplicates
/// (a single agent serves one session at a time, so a duplicated
/// address would hang the coordinator) and effectively-empty lists with
/// a clear message instead of a confusing downstream connect error.
fn parse_agent_list(list: &str) -> Result<Vec<String>, String> {
    let mut addrs: Vec<String> = Vec::new();
    for seg in list.split(',') {
        let addr = seg.trim();
        if addr.is_empty() {
            continue;
        }
        if addrs.iter().any(|a| a == addr) {
            return Err(format!(
                "duplicate agent address `{addr}` in --agents-at (each agent serves one session)"
            ));
        }
        addrs.push(addr.to_string());
    }
    if addrs.is_empty() {
        return Err("--agents-at needs at least one HOST:PORT address".into());
    }
    Ok(addrs)
}

/// Parses `--agent-weights`'s comma-separated relative throughputs.
fn parse_weight_list(list: &str) -> Result<Vec<f64>, String> {
    list.split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(|s| {
            s.parse::<f64>()
                .map_err(|_| format!("invalid weight `{s}` in --agent-weights"))
        })
        .collect::<Result<Vec<f64>, String>>()
        .and_then(|w| {
            if w.is_empty() {
                Err("--agent-weights needs at least one weight".into())
            } else {
                Ok(w)
            }
        })
}

fn parse_platform(s: &str) -> Result<PlatformKind, String> {
    match s.to_lowercase().as_str() {
        "pi" | "raspberrypi" | "rpi" => Ok(PlatformKind::RaspberryPi),
        "jetson" | "jetson-cpu" => Ok(PlatformKind::JetsonCpu),
        "jetson-gpu" => Ok(PlatformKind::JetsonGpu),
        "hpc" | "hpc-cpu" => Ok(PlatformKind::HpcCpu),
        "hpc-gpu" => Ok(PlatformKind::HpcGpu),
        "systolic" | "accelerator" => Ok(PlatformKind::Systolic32x32),
        other => Err(format!("unknown platform `{other}`")),
    }
}

fn build_driver(flags: &Flags) -> Result<(ClanDriverBuilder, Workload), String> {
    let workload = parse_workload(flags.get("--workload").unwrap_or("cartpole"))?;
    let agents: usize = flags.parse("--agents", 1)?;
    let topology = match flags.get("--topology").unwrap_or("serial") {
        "serial" => ClanTopology::serial(),
        "dcs" => ClanTopology::dcs(),
        "dds" => ClanTopology::dds(),
        "dda" => ClanTopology::dda(agents.max(1)),
        other => return Err(format!("unknown topology `{other}`")),
    };
    let mut builder = ClanDriver::builder(workload)
        .topology(topology)
        .agents(agents)
        .population_size(flags.parse("--population", 150)?)
        .seed(flags.parse("--seed", 0)?)
        .episodes_per_eval(flags.parse("--episodes", 1)?)
        .eval_threads(flags.parse("--eval-threads", 1usize)?)
        .platform(parse_platform(flags.get("--platform").unwrap_or("pi"))?);
    if flags.has("--single-step") {
        builder = builder.single_step();
    }
    if flags.has("--no-batch") && flags.get("--batch-lanes").is_some() {
        return Err("--no-batch and --batch-lanes are mutually exclusive".into());
    }
    if flags.has("--no-batch") {
        builder = builder.batch_lanes(1);
    } else if flags.get("--batch-lanes").is_some() {
        builder = builder.batch_lanes(flags.parse("--batch-lanes", 32usize)?);
    }
    if flags.has("--no-cache") {
        builder = builder.fitness_cache(false);
    }
    if flags.get("--trace").is_some() || flags.get("--trace-chrome").is_some() {
        builder = builder.tracing(true);
    }
    if let Some(n) = flags.get("--trace-ring") {
        let n: usize = n
            .parse()
            .map_err(|_| format!("invalid value `{n}` for --trace-ring"))?;
        builder = builder.trace_ring(n);
    }
    if let Some(addr) = flags.get("--status-addr") {
        builder = builder.status_addr(addr);
    }
    Ok((builder, workload))
}

/// The flight recorder armed for this invocation, as the postmortem
/// dump path: `Some` exactly when `--trace-ring N` bounded the tracer.
fn postmortem_path(flags: &Flags) -> Option<String> {
    flags.get("--trace-ring").map(|_| {
        flags
            .get("--postmortem")
            .unwrap_or(POSTMORTEM_DEFAULT)
            .to_string()
    })
}

/// Drains the flight-recorder ring into a postmortem JSONL file. Called
/// only on failure paths (run error or panic); best-effort by design —
/// the original error stays the headline, so dump problems go to stderr
/// and are never propagated.
fn dump_postmortem(tracer: &Tracer, path: &str) {
    let dropped = tracer.ring_dropped();
    let Some(trace) = tracer.finish() else { return };
    if trace.events.is_empty() {
        return;
    }
    match to_jsonl(&trace) {
        Ok(jsonl) => match std::fs::write(path, jsonl) {
            Ok(()) => eprintln!(
                "flight recorder: last {} event(s) dumped to {path} \
                 ({dropped} older event(s) had rolled off the ring)",
                trace.events.len()
            ),
            Err(e) => eprintln!("flight recorder: cannot write {path}: {e}"),
        },
        Err(e) => eprintln!("flight recorder: cannot serialize postmortem: {e}"),
    }
}

/// Installs a panic hook that dumps the flight-recorder ring before the
/// default handler runs, so even a crash leaves a postmortem trail. A
/// clean run drains the sink on completion, after which the hook finds
/// nothing to dump.
fn arm_panic_recorder(tracer: Tracer, path: String) {
    let prev = std::panic::take_hook();
    std::panic::set_hook(Box::new(move |info| {
        dump_postmortem(&tracer, &path);
        prev(info);
    }));
}

/// Prints the live introspection endpoint's bound address when
/// `--status-addr` attached one to the driver.
fn announce_status(addr: Option<std::net::SocketAddr>) {
    if let Some(addr) = addr {
        println!("  status endpoint: http://{addr} (/metrics /health /progress)");
    }
}

/// Writes the recorded trace to the files `--trace` (JSONL event
/// stream) and `--trace-chrome` (Chrome trace-event JSON, viewable in
/// Perfetto or `chrome://tracing`) name, when tracing was enabled.
fn write_trace_outputs(
    trace: Option<&RunTrace>,
    flags: &Flags,
    n_agents: usize,
) -> Result<(), String> {
    let Some(trace) = trace else { return Ok(()) };
    if let Some(path) = flags.get("--trace") {
        let jsonl = to_jsonl(trace).map_err(|e| e.to_string())?;
        std::fs::write(path, jsonl).map_err(|e| e.to_string())?;
        let (logical, timing) = trace.counts();
        println!("  trace: {logical} logical + {timing} timing event(s) written to {path}");
    }
    if let Some(path) = flags.get("--trace-chrome") {
        std::fs::write(path, to_chrome_json(trace, n_agents)).map_err(|e| e.to_string())?;
        println!("  chrome trace: {n_agents} agent track(s) written to {path}");
    }
    Ok(())
}

/// Parses `--latency`'s comma-separated per-agent service times (ms).
fn parse_latency_list(list: &str) -> Result<Vec<f64>, String> {
    list.split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
        .map(|s| {
            s.parse::<f64>()
                .map_err(|_| format!("invalid latency `{s}` in --latency"))
        })
        .collect::<Result<Vec<f64>, String>>()
        .and_then(|l| {
            if l.is_empty() {
                Err("--latency needs at least one per-agent time in ms".into())
            } else {
                Ok(l)
            }
        })
}

/// `--async` gate: the steady-state flags are meaningless (and therefore
/// rejected) on generational runs.
fn check_async_flags(flags: &Flags) -> Result<bool, String> {
    let is_async = flags.has("--async");
    if !is_async {
        for f in [
            "--total-evals",
            "--tournament-size",
            "--latency",
            "--jitter-pct",
            "--event-log",
        ] {
            if flags.get(f).is_some() {
                return Err(format!("{f} requires --async"));
            }
        }
    }
    Ok(is_async)
}

/// Builds and runs an async steady-state deployment from an already
/// backend-configured builder, prints the report, and writes the
/// diffable event log when `--event-log FILE` asks for it.
fn run_async(mut builder: ClanDriverBuilder, flags: &Flags) -> Result<(), String> {
    if let Some(n) = flags.get("--total-evals") {
        let n: u64 = n
            .parse()
            .map_err(|_| format!("invalid value `{n}` for --total-evals"))?;
        builder = builder.total_evals(n);
    }
    if let Some(k) = flags.get("--tournament-size") {
        let k: usize = k
            .parse()
            .map_err(|_| format!("invalid value `{k}` for --tournament-size"))?;
        builder = builder.tournament_size(k);
    }
    if let Some(list) = flags.get("--latency") {
        builder = builder.latency_ms(parse_latency_list(list)?);
    }
    if let Some(p) = flags.get("--jitter-pct") {
        let p: u32 = p
            .parse()
            .map_err(|_| format!("invalid value `{p}` for --jitter-pct"))?;
        builder = builder.latency_jitter_pct(p);
    }
    let driver = builder.build_async().map_err(|e| e.to_string())?;
    match driver.schedule() {
        Some(s) => println!(
            "async steady-state run: deterministic virtual time, schedule {}",
            s.describe()
        ),
        None => println!("async steady-state run: streaming over the live cluster"),
    }
    announce_status(driver.status_local_addr());
    let postmortem = postmortem_path(flags);
    let recorder = driver.tracer_handle();
    if let Some(path) = &postmortem {
        arm_panic_recorder(recorder.clone(), path.clone());
    }
    let outcome = match driver.run() {
        Ok(o) => o,
        Err(e) => {
            if let Some(path) = &postmortem {
                dump_postmortem(&recorder, path);
            }
            return Err(e.to_string());
        }
    };
    print_report(&outcome.report);
    if let Some(path) = flags.get("--event-log") {
        std::fs::write(path, &outcome.event_log).map_err(|e| e.to_string())?;
        println!(
            "  event log: {} line(s) written to {path}",
            outcome.event_log.lines().count()
        );
    }
    write_trace_outputs(outcome.trace.as_ref(), flags, outcome.report.n_agents)?;
    Ok(())
}

fn print_report(report: &RunReport) {
    print!("{}", report.summary());
    println!("  energy: {:.0} J total", report.total_energy_j);
    // Async steady-state runs have no generations to tabulate.
    if report.generations.is_empty() {
        return;
    }
    // Only show the cache column when the cache actually fielded lookups
    // (it is absent entirely under --no-cache).
    let caching = report.cache_lookups > 0;
    if caching {
        println!("\n  gen   best     species  sim-total(s)  cache-hits");
    } else {
        println!("\n  gen   best     species  sim-total(s)");
    }
    for g in &report.generations {
        if caching {
            println!(
                "  {:>3}   {:>8.1}  {:>6}  {:>10.2}  {:>6}/{} ({:>4.1}%)",
                g.generation,
                g.best_fitness,
                g.num_species,
                g.timeline.total_s(),
                g.cache_hits,
                g.cache_lookups,
                100.0 * g.cache_hits as f64 / g.cache_lookups.max(1) as f64
            );
        } else {
            println!(
                "  {:>3}   {:>8.1}  {:>6}  {:>10.2}",
                g.generation,
                g.best_fitness,
                g.num_species,
                g.timeline.total_s()
            );
        }
    }
}

fn cmd_run(args: &[String], until_solved: bool) -> Result<(), String> {
    let flags = Flags(args.to_vec());
    let (builder, _) = build_driver(&flags)?;
    if check_async_flags(&flags)? {
        if until_solved {
            return Err(
                "--async runs to a fixed --total-evals budget; use `run`, not `solve`".into(),
            );
        }
        return run_async(builder, &flags);
    }
    let driver = builder.build().map_err(|e| e.to_string())?;
    announce_status(driver.status_local_addr());
    let postmortem = postmortem_path(&flags);
    let recorder = driver.tracer_handle();
    if let Some(path) = &postmortem {
        arm_panic_recorder(recorder.clone(), path.clone());
    }
    let result = if until_solved {
        let max = flags.parse("--max-generations", 50u64)?;
        driver.run_until_solved_with_trace(max)
    } else {
        let gens = flags.parse("--generations", 5u64)?;
        driver.run_with_trace(gens)
    };
    let (report, trace) = match result {
        Ok(v) => v,
        Err(e) => {
            if let Some(path) = &postmortem {
                dump_postmortem(&recorder, path);
            }
            return Err(e.to_string());
        }
    };
    print_report(&report);
    write_trace_outputs(trace.as_ref(), &flags, report.n_agents)?;
    Ok(())
}

fn cmd_agent(args: &[String]) -> Result<(), String> {
    let flags = Flags(args.to_vec());
    let listen = flags.get("--listen").unwrap_or("127.0.0.1:7777");
    let delay_ms: u64 = flags.parse("--delay-ms", 0)?;
    let delay = std::time::Duration::from_millis(delay_ms);
    let once = flags.has("--once");
    // Shared startup banner + serve flow over either server type.
    let banner = |addr: std::net::SocketAddr, transport: &str| {
        println!("clan agent listening on {addr}{transport}");
        if delay_ms > 0 {
            println!("  artificial per-request delay: {delay_ms} ms (heterogeneity testing)");
        }
    };
    if flags.has("--udp") {
        let mut server = UdpAgentServer::bind(listen)
            .map_err(|e| e.to_string())?
            .with_delay(delay);
        banner(server.local_addr(), " (udp)");
        if once {
            server.serve_once().map_err(|e| e.to_string())?;
        } else {
            server.serve_forever()
        }
    } else {
        let server = AgentServer::bind(listen)
            .map_err(|e| e.to_string())?
            .with_delay(delay);
        banner(server.local_addr(), "");
        if once {
            server.serve_once().map_err(|e| e.to_string())?;
        } else {
            server.serve_forever()
        }
    }
    println!("session complete");
    Ok(())
}

/// Parses `coordinate`'s UDP flags into a transport config: `--loss P`
/// (drop probability in [0, 1)) and `--fault-seed S` seed the injected
/// faults; both require `--udp`.
fn parse_udp_flags(flags: &Flags) -> Result<Option<UdpConfig>, String> {
    let loss: f64 = flags.parse("--loss", 0.0)?;
    let seed: u64 = flags.parse("--fault-seed", 0)?;
    if !flags.has("--udp") {
        if flags.get("--loss").is_some() || flags.get("--fault-seed").is_some() {
            return Err("--loss/--fault-seed require --udp".into());
        }
        return Ok(None);
    }
    if !loss.is_finite() || !(0.0..1.0).contains(&loss) {
        return Err(format!("--loss must be in [0, 1), got {loss}"));
    }
    let mut cfg = UdpConfig::default();
    if loss > 0.0 {
        cfg = cfg.with_faults(FaultConfig::loss(loss).with_seed(seed));
    }
    Ok(Some(cfg))
}

fn cmd_coordinate(args: &[String]) -> Result<(), String> {
    let flags = Flags(args.to_vec());
    let (mut builder, _) = build_driver(&flags)?;
    let loopback: usize = flags.parse("--loopback", 0)?;
    let udp = parse_udp_flags(&flags)?;
    let transport_name = if udp.is_some() { "UDP" } else { "TCP" };
    builder = match (flags.get("--agents-at"), loopback) {
        (Some(_), n) if n > 0 => {
            return Err("--agents-at and --loopback are mutually exclusive".into())
        }
        (Some(list), _) => {
            let addrs = parse_agent_list(list)?;
            println!(
                "coordinating {} remote {transport_name} agent(s): {}",
                addrs.len(),
                addrs.join(", ")
            );
            if udp.is_some() {
                builder.remote_udp_agents(addrs)
            } else {
                builder.remote_agents(addrs)
            }
        }
        (None, 0) => return Err("coordinate needs --agents-at ADDR,... or --loopback N".into()),
        (None, n) => {
            println!("coordinating {n} loopback {transport_name} agent(s)");
            if udp.is_some() {
                builder.loopback_udp_agents(n)
            } else {
                builder.loopback_agents(n)
            }
        }
    };
    if let Some(udp) = udp {
        if let Some(f) = &udp.faults {
            println!(
                "  injected faults: {:.1}% datagram loss, seed {}",
                100.0 * f.drop_p,
                f.seed
            );
        }
        builder = builder.udp_config(udp);
    }
    if let Some(list) = flags.get("--agent-weights") {
        let weights = parse_weight_list(list)?;
        println!("  agent capability weights: {weights:?}");
        builder = builder.agent_weights(weights);
    }
    if flags.has("--calibrate") {
        println!("  round-trip-time calibration enabled");
        builder = builder.calibrate(true);
    }
    if let Some(spec) = flags.get("--churn") {
        let schedule: ChurnSchedule = spec.parse()?;
        println!(
            "  churn injection: {} event(s) ({spec})",
            schedule.events().len()
        );
        builder = builder.churn(schedule);
    }
    if let Some(list) = flags.get("--spare-at") {
        let spares = parse_agent_list(list)?;
        println!("  spare agent(s) on standby: {}", spares.join(", "));
        builder = builder.spare_agents(spares);
    }
    if let Some(n) = flags.get("--max-retries") {
        let n: usize = n
            .parse()
            .map_err(|_| format!("invalid value `{n}` for --max-retries"))?;
        builder = builder.max_retries(n);
    }
    if let Some(n) = flags.get("--min-agents") {
        let n: usize = n
            .parse()
            .map_err(|_| format!("invalid value `{n}` for --min-agents"))?;
        builder = builder.min_agents(n);
    }
    if check_async_flags(&flags)? {
        return run_async(builder, &flags);
    }
    let driver = builder.build().map_err(|e| e.to_string())?;
    announce_status(driver.status_local_addr());
    let postmortem = postmortem_path(&flags);
    let recorder = driver.tracer_handle();
    if let Some(path) = &postmortem {
        arm_panic_recorder(recorder.clone(), path.clone());
    }
    let gens = flags.parse("--generations", 5u64)?;
    let (report, trace) = match driver.run_with_trace(gens) {
        Ok(v) => v,
        Err(e) => {
            if let Some(path) = &postmortem {
                dump_postmortem(&recorder, path);
            }
            return Err(e.to_string());
        }
    };
    print_report(&report);
    write_trace_outputs(trace.as_ref(), &flags, report.n_agents)?;
    if let Some(t) = &report.transport {
        println!(
            "\n  measured wire traffic: {} bytes in {} messages",
            t.total_wire_bytes(),
            t.total_messages()
        );
        if let Some(overhead) = t.framing_overhead() {
            println!(
                "  framing overhead vs 4-byte/gene model: {overhead:.2}x ({} modeled bytes)",
                t.modeled_bytes()
            );
        }
        if t.total_retrans_bytes() > 0 {
            println!(
                "  loss recovery: {} retransmitted/duplicate bytes ({:.1}% of wire traffic)",
                t.total_retrans_bytes(),
                100.0 * t.retrans_overhead().unwrap_or(0.0)
            );
        }
    }
    // One aligned per-agent table unifying wire, retransmission,
    // failure, and completion numbers (replaces the old ad-hoc rows).
    let table = report.telemetry.agent_table();
    if !table.is_empty() {
        println!("  per-agent:");
        for line in table.lines() {
            println!("    {line}");
        }
    }
    if let Some(g) = &report.gather {
        if g.gathers > 0 {
            let overlap = g
                .overlap()
                .map_or_else(|| "n/a".into(), |x| format!("{x:.2}x"));
            println!(
                "  gather timing: {} rounds, makespan {:.3} s vs per-agent busy {:.3} s (overlap {overlap})",
                g.gathers, g.makespan_s, g.busy_s
            );
        }
    }
    if let Some(r) = &report.recovery {
        if r.any_recovery() {
            println!(
                "  churn survived: {} link failure(s), {} chunk(s) reassigned, \
                 {} kill(s) + {} join(s), recovery makespan {:.3} s",
                r.failures, r.reassigned_chunks, r.kills, r.joins, r.recovery_s
            );
            for (i, n) in r.agent_failures.iter().enumerate() {
                if *n > 0 {
                    println!("    agent {i}: {n} failure(s)");
                }
            }
        }
    }
    Ok(())
}

fn cmd_export(args: &[String]) -> Result<(), String> {
    let flags = Flags(args.to_vec());
    let workload = parse_workload(flags.get("--workload").unwrap_or("cartpole"))?;
    let generations: u64 = flags.parse("--generations", 10)?;
    let seed: u64 = flags.parse("--seed", 0)?;
    let out = flags.get("--out").unwrap_or("champion.dot");

    let cfg = NeatConfig::builder(workload.obs_dim(), workload.n_actions())
        .population_size(flags.parse("--population", 96)?)
        .build()
        .map_err(|e| e.to_string())?;
    let mut pop = Population::new(cfg.clone(), seed);
    let mut env = workload.make();
    for _ in 0..generations {
        pop.evaluate(|net: &FeedForwardNetwork, genome| {
            let outcome = clan::envs::run_episode(env.as_mut(), genome.id().0, 200, |obs| {
                net.act_argmax(obs)
            });
            clan::neat::population::Evaluation {
                fitness: outcome.total_reward,
                activations: outcome.steps,
            }
        });
        pop.advance_generation();
    }
    let champion = pop
        .best_ever()
        .ok_or("no champion evolved (zero generations?)")?;
    std::fs::write(out, genome_to_dot(champion, &cfg)).map_err(|e| e.to_string())?;
    let json_path = format!("{out}.json");
    clan::neat::checkpoint::save_genome(champion, &json_path).map_err(|e| e.to_string())?;
    println!(
        "champion (fitness {:.1}) written to {out} (render with `dot -Tpng`) and {json_path}",
        champion.fitness().unwrap_or(f64::NAN)
    );
    Ok(())
}

fn cmd_list() {
    println!("workloads:");
    for w in Workload::ALL {
        println!(
            "  {:<18} {:>4} obs, {:>2} actions, solved at {:>6}, class {}",
            w.name(),
            w.obs_dim(),
            w.n_actions(),
            w.solved_at(),
            w.class()
        );
    }
    println!("\ntopologies: serial, dcs, dds, dda");
    println!("platforms: pi, jetson, jetson-gpu, hpc, hpc-gpu, systolic");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn agent_list_trims_whitespace_and_skips_stray_commas() {
        assert_eq!(
            parse_agent_list("a:1, b:2,").unwrap(),
            vec!["a:1".to_string(), "b:2".to_string()]
        );
        assert_eq!(
            parse_agent_list("  10.0.0.2:7777 ,,10.0.0.3:7777  ").unwrap(),
            vec!["10.0.0.2:7777".to_string(), "10.0.0.3:7777".to_string()]
        );
    }

    #[test]
    fn agent_list_rejects_empty_lists_with_clear_message() {
        for bad in ["", "  ", ",", " , ,, "] {
            let err = parse_agent_list(bad).unwrap_err();
            assert!(err.contains("at least one"), "{bad:?} -> {err}");
        }
    }

    #[test]
    fn agent_list_rejects_duplicates() {
        let err = parse_agent_list("a:1,b:2, a:1").unwrap_err();
        assert!(err.contains("duplicate"), "{err}");
        assert!(err.contains("a:1"), "{err}");
    }

    fn flags(args: &[&str]) -> Flags {
        Flags(args.iter().map(|s| s.to_string()).collect())
    }

    #[test]
    fn status_addr_on_agent_is_a_usage_error() {
        let err = validate_flags("agent", &flags(&["--status-addr", "127.0.0.1:0"])).unwrap_err();
        assert!(err.0.contains("--status-addr"), "{err:?}");
        assert!(validate_flags("coordinate", &flags(&["--status-addr", "127.0.0.1:0"])).is_ok());
        assert!(validate_flags("run", &flags(&["--status-addr", "127.0.0.1:0"])).is_ok());
    }

    #[test]
    fn postmortem_requires_the_ring() {
        let err = validate_flags("run", &flags(&["--postmortem", "pm.jsonl"])).unwrap_err();
        assert!(err.0.contains("--trace-ring"), "{err:?}");
        assert!(validate_flags(
            "run",
            &flags(&["--trace-ring", "64", "--postmortem", "pm.jsonl"])
        )
        .is_ok());
    }

    #[test]
    fn trace_and_postmortem_must_differ() {
        let err = validate_flags(
            "run",
            &flags(&["--trace-ring", "64", "--trace", "clan-postmortem.jsonl"]),
        )
        .unwrap_err();
        assert!(err.0.contains("both target"), "default collision: {err:?}");
        let err = validate_flags(
            "run",
            &flags(&[
                "--trace-ring",
                "64",
                "--trace",
                "t.jsonl",
                "--postmortem",
                "t.jsonl",
            ]),
        )
        .unwrap_err();
        assert!(err.0.contains("t.jsonl"), "{err:?}");
        assert!(validate_flags(
            "run",
            &flags(&[
                "--trace-ring",
                "64",
                "--trace",
                "t.jsonl",
                "--postmortem",
                "pm.jsonl"
            ]),
        )
        .is_ok());
    }

    #[test]
    fn postmortem_path_is_some_exactly_when_the_ring_is_armed() {
        assert_eq!(postmortem_path(&flags(&["--trace", "t.jsonl"])), None);
        assert_eq!(
            postmortem_path(&flags(&["--trace-ring", "64"])),
            Some(POSTMORTEM_DEFAULT.to_string())
        );
        assert_eq!(
            postmortem_path(&flags(&["--trace-ring", "64", "--postmortem", "pm.jsonl"])),
            Some("pm.jsonl".to_string())
        );
    }

    #[test]
    fn weight_list_parses_and_validates() {
        assert_eq!(parse_weight_list("1, 4,2.5,").unwrap(), vec![1.0, 4.0, 2.5]);
        assert!(parse_weight_list("1,x").unwrap_err().contains("invalid"));
        assert!(parse_weight_list(" , ").unwrap_err().contains("at least"));
    }
}
