//! # CLAN — Continuous Learning using Asynchronous Neuroevolution
//!
//! Facade crate re-exporting the full CLAN reproduction (Mannan, Samajdar,
//! Krishna — ISPASS 2020): a closed-loop collaborative learning system in
//! which a swarm of commodity edge devices (Raspberry Pis over WiFi)
//! evolves NEAT networks with distributed inference, distributed
//! reproduction, and asynchronous speciation.
//!
//! The workspace is organized bottom-up:
//!
//! - [`neat`] — the NEAT algorithm itself, with gene-level cost accounting
//! - [`envs`] — a gym-like RL environment suite (CartPole, MountainCar,
//!   LunarLander, synthetic Atari-RAM machines)
//! - [`hw`] — hardware platform models (Raspberry Pi, Jetson TX2, HPC,
//!   systolic-array accelerator)
//! - [`netsim`] — the WiFi cost model and communication ledger
//! - [`distsim`] — the per-generation cluster timeline simulator
//! - [`core`] — the CLAN orchestrators (Serial / DCS / DDS / DDA), the
//!   continuous-learning loop, and a real networked edge runtime
//!   (threads, loopback TCP, or remote `clan-cli agent` devices)
//!
//! ## Quickstart
//!
//! ```
//! use clan::core::{ClanDriver, ClanTopology, DriverConfig};
//! use clan::envs::Workload;
//!
//! let driver = ClanDriver::builder(Workload::CartPole)
//!     .topology(ClanTopology::dda(4))
//!     .agents(4)
//!     .population_size(32)
//!     .seed(7)
//!     .build()?;
//! let report = driver.run(3)?;
//! assert_eq!(report.generations.len(), 3);
//! # Ok::<(), clan::core::ClanError>(())
//! ```

pub use clan_core as core;
pub use clan_distsim as distsim;
pub use clan_envs as envs;
pub use clan_hw as hw;
pub use clan_neat as neat;
pub use clan_netsim as netsim;
