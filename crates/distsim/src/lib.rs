//! # clan-distsim — analytic cluster timeline simulation
//!
//! The paper's measurements decompose each generation into compute phases
//! (inference, evolution) and communication phases over the shared WiFi
//! medium. This crate provides the cluster description ([`Cluster`]) and
//! the per-generation timeline bookkeeping ([`GenerationTimeline`],
//! [`TimelineRecorder`]) that the CLAN orchestrators fill in:
//!
//! - parallel compute phases cost the *maximum* over agents (barrier
//!   synchronization, as in the paper's lockstep generations);
//! - messages serialize over the single wireless medium, so a phase's
//!   communication cost is the *sum* of its message times.
//!
//! Because the model is analytic, "extrapolation" beyond the paper's
//! 15-Pi testbed (Figure 9, up to 100 units) is simply running the same
//! model with more agents.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod cluster;
pub mod timeline;

pub use cluster::{partition_even, partition_weighted, Cluster};
pub use timeline::{GenerationTimeline, ShareBreakdown, TimelineRecorder};
