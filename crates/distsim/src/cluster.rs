//! Cluster description: one center, N agents, a shared wireless medium.

use clan_hw::Platform;
use clan_netsim::WifiModel;
use serde::{Deserialize, Serialize};

/// A CLAN deployment: a central coordinator plus worker agents.
///
/// In the paper's testbed every node is a Raspberry Pi and one of them
/// doubles as the center; [`Cluster::homogeneous`] models exactly that.
/// Heterogeneous clusters (e.g. systolic-accelerated agents, Fig 10c) use
/// [`Cluster::new`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Cluster {
    center: Platform,
    agents: Vec<Platform>,
    net: WifiModel,
}

impl Cluster {
    /// Builds a cluster from explicit parts.
    ///
    /// # Panics
    ///
    /// Panics if `agents` is empty.
    pub fn new(center: Platform, agents: Vec<Platform>, net: WifiModel) -> Cluster {
        assert!(!agents.is_empty(), "a cluster needs at least one agent");
        Cluster {
            center,
            agents,
            net,
        }
    }

    /// A cluster of `n_agents` identical nodes (the paper's Pi testbed);
    /// the center runs on the same platform kind.
    pub fn homogeneous(platform: Platform, n_agents: usize, net: WifiModel) -> Cluster {
        Cluster::new(platform, vec![platform; n_agents], net)
    }

    /// The central coordinator's platform.
    pub fn center(&self) -> &Platform {
        &self.center
    }

    /// Worker agents.
    pub fn agents(&self) -> &[Platform] {
        &self.agents
    }

    /// Number of worker agents.
    pub fn n_agents(&self) -> usize {
        self.agents.len()
    }

    /// The wireless medium model.
    pub fn net(&self) -> &WifiModel {
        &self.net
    }

    /// Replaces the network model (Figure 10's what-if links).
    pub fn with_net(mut self, net: WifiModel) -> Cluster {
        self.net = net;
        self
    }

    /// Splits `items` work units across agents as evenly as possible;
    /// returns per-agent counts (earlier agents get the remainder).
    pub fn partition(&self, items: usize) -> Vec<usize> {
        let n = self.agents.len();
        let base = items / n;
        let rem = items % n;
        (0..n).map(|i| base + usize::from(i < rem)).collect()
    }

    /// Barrier-synchronized parallel inference: the phase costs the
    /// slowest agent's time.
    pub fn parallel_inference_time_s(&self, genes_per_agent: &[u64]) -> f64 {
        assert_eq!(genes_per_agent.len(), self.agents.len());
        self.agents
            .iter()
            .zip(genes_per_agent)
            .map(|(p, &g)| p.inference_time_s(g))
            .fold(0.0, f64::max)
    }

    /// Barrier-synchronized parallel evolution work.
    pub fn parallel_evolution_time_s(&self, genes_per_agent: &[u64]) -> f64 {
        assert_eq!(genes_per_agent.len(), self.agents.len());
        self.agents
            .iter()
            .zip(genes_per_agent)
            .map(|(p, &g)| p.evolution_time_s(g))
            .fold(0.0, f64::max)
    }

    /// Serialized communication: each message of `genes_per_message`
    /// genes occupies the shared medium in turn.
    pub fn serialized_comm_time_s<I>(&self, genes_per_message: I) -> f64
    where
        I: IntoIterator<Item = u64>,
    {
        genes_per_message
            .into_iter()
            .map(|g| self.net.gene_transfer_time_s(g))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clan_hw::PlatformKind;

    fn pi_cluster(n: usize) -> Cluster {
        Cluster::homogeneous(Platform::raspberry_pi(), n, WifiModel::default())
    }

    #[test]
    fn partition_balanced() {
        let c = pi_cluster(4);
        assert_eq!(c.partition(150), vec![38, 38, 37, 37]);
        assert_eq!(c.partition(4), vec![1, 1, 1, 1]);
        assert_eq!(c.partition(2), vec![1, 1, 0, 0]);
        assert_eq!(c.partition(0), vec![0, 0, 0, 0]);
    }

    #[test]
    fn partition_sums_to_items() {
        for n in 1..20 {
            let c = pi_cluster(n);
            for items in [0usize, 1, 7, 150, 151] {
                assert_eq!(c.partition(items).iter().sum::<usize>(), items);
            }
        }
    }

    #[test]
    fn parallel_time_is_max() {
        let c = pi_cluster(3);
        let t = c.parallel_inference_time_s(&[10_000, 30_000, 20_000]);
        let slowest = Platform::raspberry_pi().inference_time_s(30_000);
        assert_eq!(t, slowest);
    }

    #[test]
    fn serialized_comm_is_sum() {
        let c = pi_cluster(2);
        let t = c.serialized_comm_time_s([100, 100, 100]);
        let one = WifiModel::default().gene_transfer_time_s(100);
        assert!((t - 3.0 * one).abs() < 1e-12);
    }

    #[test]
    fn heterogeneous_cluster_uses_each_platform() {
        let fast = Platform::new(PlatformKind::Systolic32x32);
        let slow = Platform::raspberry_pi();
        let c = Cluster::new(slow, vec![fast, slow], WifiModel::default());
        let t = c.parallel_inference_time_s(&[1_000_000, 10_000]);
        // The Pi's 10k genes (1 s) outlast the accelerator's 1M genes (1 s at 1e6 g/s).
        assert!(t <= slow.inference_time_s(10_000) + 1.1);
    }

    #[test]
    #[should_panic(expected = "at least one agent")]
    fn empty_cluster_rejected() {
        Cluster::new(Platform::raspberry_pi(), vec![], WifiModel::default());
    }
}
