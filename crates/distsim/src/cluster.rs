//! Cluster description: one center, N agents, a shared wireless medium,
//! and the work partitioners (even and throughput-weighted) every
//! scatter path routes through.

use clan_hw::Platform;
use clan_netsim::WifiModel;
use serde::{Deserialize, Serialize};

/// Splits `items` into `shares` counts as evenly as possible (earlier
/// shares get the remainder). Zero shares yields an empty split instead
/// of a divide-by-zero panic.
pub fn partition_even(items: usize, shares: usize) -> Vec<usize> {
    if shares == 0 {
        return Vec::new();
    }
    let base = items / shares;
    let rem = items % shares;
    (0..shares).map(|i| base + usize::from(i < rem)).collect()
}

/// Splits `items` across `weights.len()` shares proportionally to the
/// weights, using largest-remainder rounding (ties broken toward lower
/// indices, so the split is deterministic).
///
/// Guarantees:
///
/// - the counts always sum to exactly `items`;
/// - equal weights degrade to [`partition_even`] bit-for-bit;
/// - no share with a positive weight is starved (left at zero) while
///   `items` is at least the number of positive-weight shares;
/// - non-finite, negative, or all-zero weights fall back to the even
///   split rather than producing garbage.
pub fn partition_weighted(items: usize, weights: &[f64]) -> Vec<usize> {
    let n = weights.len();
    if n == 0 {
        return Vec::new();
    }
    let total: f64 = weights.iter().sum();
    if !weights.iter().all(|w| w.is_finite() && *w >= 0.0) || total <= 0.0 {
        return partition_even(items, n);
    }
    // Largest-remainder method: floor every quota, then hand the
    // leftover items to the largest fractional parts.
    let mut counts = Vec::with_capacity(n);
    let mut fractions: Vec<(f64, usize)> = Vec::with_capacity(n);
    let mut assigned = 0usize;
    for (i, &w) in weights.iter().enumerate() {
        let quota = items as f64 * (w / total);
        let base = quota.floor() as usize;
        counts.push(base);
        assigned += base;
        fractions.push((quota - base as f64, i));
    }
    fractions.sort_by(|a, b| {
        b.0.partial_cmp(&a.0)
            .expect("fractions are finite")
            .then(a.1.cmp(&b.1))
    });
    // Exact arithmetic leaves at most n-1 items; cycling guards against
    // floating-point quotas summing a hair under `items`.
    for k in 0..items.saturating_sub(assigned) {
        counts[fractions[k % n].1] += 1;
    }
    // No-starve pass: while there are enough items to go around, every
    // positive-weight share gets at least one (taken from the current
    // largest allocation — deterministically the lowest such index).
    let positive = weights.iter().filter(|w| **w > 0.0).count();
    if items >= positive {
        for i in 0..n {
            if weights[i] > 0.0 && counts[i] == 0 {
                let donor = (0..n)
                    .max_by(|&a, &b| counts[a].cmp(&counts[b]).then(b.cmp(&a)))
                    .expect("n > 0");
                if counts[donor] >= 2 {
                    counts[donor] -= 1;
                    counts[i] += 1;
                }
            }
        }
    }
    counts
}

/// A CLAN deployment: a central coordinator plus worker agents.
///
/// In the paper's testbed every node is a Raspberry Pi and one of them
/// doubles as the center; [`Cluster::homogeneous`] models exactly that.
/// Heterogeneous clusters (e.g. systolic-accelerated agents, Fig 10c) use
/// [`Cluster::new`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Cluster {
    center: Platform,
    agents: Vec<Platform>,
    net: WifiModel,
}

impl Cluster {
    /// Builds a cluster from explicit parts.
    ///
    /// # Panics
    ///
    /// Panics if `agents` is empty.
    pub fn new(center: Platform, agents: Vec<Platform>, net: WifiModel) -> Cluster {
        assert!(!agents.is_empty(), "a cluster needs at least one agent");
        Cluster {
            center,
            agents,
            net,
        }
    }

    /// A cluster of `n_agents` identical nodes (the paper's Pi testbed);
    /// the center runs on the same platform kind.
    pub fn homogeneous(platform: Platform, n_agents: usize, net: WifiModel) -> Cluster {
        Cluster::new(platform, vec![platform; n_agents], net)
    }

    /// The central coordinator's platform.
    pub fn center(&self) -> &Platform {
        &self.center
    }

    /// Worker agents.
    pub fn agents(&self) -> &[Platform] {
        &self.agents
    }

    /// Number of worker agents.
    pub fn n_agents(&self) -> usize {
        self.agents.len()
    }

    /// The wireless medium model.
    pub fn net(&self) -> &WifiModel {
        &self.net
    }

    /// Replaces the network model (Figure 10's what-if links).
    pub fn with_net(mut self, net: WifiModel) -> Cluster {
        self.net = net;
        self
    }

    /// Splits `items` work units across agents as evenly as possible;
    /// returns per-agent counts (earlier agents get the remainder).
    /// An agent-less cluster yields an empty split, never a panic.
    pub fn partition(&self, items: usize) -> Vec<usize> {
        partition_even(items, self.agents.len())
    }

    /// Splits `items` across agents proportionally to `weights` (see
    /// [`partition_weighted`] for the rounding and no-starve rules).
    ///
    /// # Panics
    ///
    /// Panics if `weights.len()` differs from the agent count.
    pub fn partition_weighted(&self, items: usize, weights: &[f64]) -> Vec<usize> {
        assert_eq!(
            weights.len(),
            self.agents.len(),
            "one weight per agent required"
        );
        partition_weighted(items, weights)
    }

    /// Per-agent capability weights from the static platform throughput
    /// model (inference genes/second) — the seed for heterogeneity-aware
    /// partitioning before any round-trip times are measured.
    pub fn inference_weights(&self) -> Vec<f64> {
        self.agents
            .iter()
            .map(|p| p.inference_genes_per_sec)
            .collect()
    }

    /// [`partition`](Cluster::partition) weighted by each agent's
    /// modeled inference throughput: a Jetson in a swarm of Pis gets a
    /// proportionally larger chunk.
    pub fn partition_by_throughput(&self, items: usize) -> Vec<usize> {
        partition_weighted(items, &self.inference_weights())
    }

    /// Barrier-synchronized parallel inference: the phase costs the
    /// slowest agent's time.
    pub fn parallel_inference_time_s(&self, genes_per_agent: &[u64]) -> f64 {
        assert_eq!(genes_per_agent.len(), self.agents.len());
        self.agents
            .iter()
            .zip(genes_per_agent)
            .map(|(p, &g)| p.inference_time_s(g))
            .fold(0.0, f64::max)
    }

    /// Barrier-synchronized parallel evolution work.
    pub fn parallel_evolution_time_s(&self, genes_per_agent: &[u64]) -> f64 {
        assert_eq!(genes_per_agent.len(), self.agents.len());
        self.agents
            .iter()
            .zip(genes_per_agent)
            .map(|(p, &g)| p.evolution_time_s(g))
            .fold(0.0, f64::max)
    }

    /// Serialized communication: each message of `genes_per_message`
    /// genes occupies the shared medium in turn.
    pub fn serialized_comm_time_s<I>(&self, genes_per_message: I) -> f64
    where
        I: IntoIterator<Item = u64>,
    {
        genes_per_message
            .into_iter()
            .map(|g| self.net.gene_transfer_time_s(g))
            .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clan_hw::PlatformKind;

    fn pi_cluster(n: usize) -> Cluster {
        Cluster::homogeneous(Platform::raspberry_pi(), n, WifiModel::default())
    }

    #[test]
    fn partition_balanced() {
        let c = pi_cluster(4);
        assert_eq!(c.partition(150), vec![38, 38, 37, 37]);
        assert_eq!(c.partition(4), vec![1, 1, 1, 1]);
        assert_eq!(c.partition(2), vec![1, 1, 0, 0]);
        assert_eq!(c.partition(0), vec![0, 0, 0, 0]);
    }

    #[test]
    fn partition_sums_to_items() {
        for n in 1..20 {
            let c = pi_cluster(n);
            for items in [0usize, 1, 7, 150, 151] {
                assert_eq!(c.partition(items).iter().sum::<usize>(), items);
            }
        }
    }

    #[test]
    fn parallel_time_is_max() {
        let c = pi_cluster(3);
        let t = c.parallel_inference_time_s(&[10_000, 30_000, 20_000]);
        let slowest = Platform::raspberry_pi().inference_time_s(30_000);
        assert_eq!(t, slowest);
    }

    #[test]
    fn serialized_comm_is_sum() {
        let c = pi_cluster(2);
        let t = c.serialized_comm_time_s([100, 100, 100]);
        let one = WifiModel::default().gene_transfer_time_s(100);
        assert!((t - 3.0 * one).abs() < 1e-12);
    }

    #[test]
    fn heterogeneous_cluster_uses_each_platform() {
        let fast = Platform::new(PlatformKind::Systolic32x32);
        let slow = Platform::raspberry_pi();
        let c = Cluster::new(slow, vec![fast, slow], WifiModel::default());
        let t = c.parallel_inference_time_s(&[1_000_000, 10_000]);
        // The Pi's 10k genes (1 s) outlast the accelerator's 1M genes (1 s at 1e6 g/s).
        assert!(t <= slow.inference_time_s(10_000) + 1.1);
    }

    #[test]
    #[should_panic(expected = "at least one agent")]
    fn empty_cluster_rejected() {
        Cluster::new(Platform::raspberry_pi(), vec![], WifiModel::default());
    }

    #[test]
    fn partition_even_zero_shares_is_empty_not_a_panic() {
        assert_eq!(partition_even(0, 0), Vec::<usize>::new());
        assert_eq!(partition_even(150, 0), Vec::<usize>::new());
        assert_eq!(partition_weighted(150, &[]), Vec::<usize>::new());
    }

    #[test]
    fn weighted_matches_even_under_equal_weights() {
        for items in [0usize, 1, 2, 5, 150, 151] {
            for n in 1..8 {
                assert_eq!(
                    partition_weighted(items, &vec![3.5; n]),
                    partition_even(items, n),
                    "items={items} n={n}"
                );
            }
        }
    }

    #[test]
    fn weighted_tracks_throughput_skew() {
        // One agent 4x faster than the other three: it takes ~4/7 of
        // the work, and everyone still gets a share.
        let counts = partition_weighted(140, &[4.0, 1.0, 1.0, 1.0]);
        assert_eq!(counts.iter().sum::<usize>(), 140);
        assert_eq!(counts, vec![80, 20, 20, 20]);
    }

    #[test]
    fn weighted_never_starves_positive_weight_shares() {
        // 5 items over 4 agents must busy every agent (the even-split
        // `chunks(div_ceil)` bug left one idle).
        let counts = partition_weighted(5, &[1.0, 1.0, 1.0, 1.0]);
        assert_eq!(counts, vec![2, 1, 1, 1]);
        // Extreme skew: the slow agent still gets one item.
        let counts = partition_weighted(10, &[1000.0, 1.0]);
        assert_eq!(counts.iter().sum::<usize>(), 10);
        assert!(counts[1] >= 1, "slow agent starved: {counts:?}");
    }

    #[test]
    fn weighted_degenerate_weights_fall_back_to_even() {
        assert_eq!(partition_weighted(9, &[0.0, 0.0, 0.0]), vec![3, 3, 3]);
        assert_eq!(partition_weighted(9, &[f64::NAN, 1.0, 1.0]), vec![3, 3, 3]);
        assert_eq!(partition_weighted(9, &[-1.0, 2.0, 2.0]), vec![3, 3, 3]);
    }

    #[test]
    fn zero_weight_agents_get_nothing_when_weights_are_valid() {
        let counts = partition_weighted(12, &[1.0, 0.0, 2.0]);
        assert_eq!(counts.iter().sum::<usize>(), 12);
        assert_eq!(counts[1], 0);
    }

    #[test]
    fn cluster_partitions_by_modeled_throughput() {
        let fast = Platform::new(PlatformKind::JetsonCpu); // 3.5x a Pi
        let slow = Platform::raspberry_pi();
        let c = Cluster::new(slow, vec![fast, slow], WifiModel::default());
        let counts = c.partition_by_throughput(90);
        assert_eq!(counts.iter().sum::<usize>(), 90);
        assert_eq!(counts, vec![70, 20], "3.5:1 throughput ratio");
        assert_eq!(c.inference_weights().len(), 2);
    }
}
