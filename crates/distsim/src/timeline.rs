//! Per-generation execution timelines and compute-share breakdowns.

use serde::{Deserialize, Serialize};
use std::ops::{Add, AddAssign};

/// Simulated wall-clock time of one generation, split the way the paper
/// plots it: inference compute, evolution compute (speciation +
/// generation planning + reproduction), and communication.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct GenerationTimeline {
    /// Seconds spent in the inference block.
    pub inference_s: f64,
    /// Seconds spent in evolution blocks.
    pub evolution_s: f64,
    /// Seconds the shared medium was busy with messages.
    pub communication_s: f64,
}

impl GenerationTimeline {
    /// Total generation time.
    pub fn total_s(&self) -> f64 {
        self.inference_s + self.evolution_s + self.communication_s
    }

    /// Fractional share of each component (sums to 1 unless empty).
    pub fn shares(&self) -> ShareBreakdown {
        let total = self.total_s();
        if total <= 0.0 {
            return ShareBreakdown::default();
        }
        ShareBreakdown {
            inference: self.inference_s / total,
            evolution: self.evolution_s / total,
            communication: self.communication_s / total,
        }
    }
}

impl Add for GenerationTimeline {
    type Output = GenerationTimeline;

    fn add(self, rhs: GenerationTimeline) -> GenerationTimeline {
        GenerationTimeline {
            inference_s: self.inference_s + rhs.inference_s,
            evolution_s: self.evolution_s + rhs.evolution_s,
            communication_s: self.communication_s + rhs.communication_s,
        }
    }
}

impl AddAssign for GenerationTimeline {
    fn add_assign(&mut self, rhs: GenerationTimeline) {
        *self = *self + rhs;
    }
}

/// Fractions of total time per component (the paper's Figure 8 pies).
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct ShareBreakdown {
    /// Inference share in `[0, 1]`.
    pub inference: f64,
    /// Evolution share in `[0, 1]`.
    pub evolution: f64,
    /// Communication share in `[0, 1]`.
    pub communication: f64,
}

/// Accumulates timelines across generations, mirroring
/// `clan_neat::CostCounters` for time instead of genes.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct TimelineRecorder {
    current: GenerationTimeline,
    history: Vec<GenerationTimeline>,
}

impl TimelineRecorder {
    /// Creates an empty recorder.
    pub fn new() -> TimelineRecorder {
        TimelineRecorder::default()
    }

    /// Adds inference compute time to the in-progress generation.
    pub fn add_inference(&mut self, seconds: f64) {
        debug_assert!(seconds >= 0.0);
        self.current.inference_s += seconds;
    }

    /// Adds evolution compute time.
    pub fn add_evolution(&mut self, seconds: f64) {
        debug_assert!(seconds >= 0.0);
        self.current.evolution_s += seconds;
    }

    /// Adds communication time.
    pub fn add_communication(&mut self, seconds: f64) {
        debug_assert!(seconds >= 0.0);
        self.current.communication_s += seconds;
    }

    /// The in-progress generation's timeline.
    pub fn current(&self) -> GenerationTimeline {
        self.current
    }

    /// Closes the current generation and returns its timeline.
    pub fn finish_generation(&mut self) -> GenerationTimeline {
        let snap = self.current;
        self.history.push(snap);
        self.current = GenerationTimeline::default();
        snap
    }

    /// Closed generations, oldest first.
    pub fn history(&self) -> &[GenerationTimeline] {
        &self.history
    }

    /// Sum over all closed generations plus the in-progress one.
    pub fn cumulative(&self) -> GenerationTimeline {
        self.history
            .iter()
            .copied()
            .fold(self.current, |acc, t| acc + t)
    }

    /// Mean timeline over closed generations (zero if none).
    pub fn mean(&self) -> GenerationTimeline {
        if self.history.is_empty() {
            return GenerationTimeline::default();
        }
        let sum = self
            .history
            .iter()
            .copied()
            .fold(GenerationTimeline::default(), |acc, t| acc + t);
        let n = self.history.len() as f64;
        GenerationTimeline {
            inference_s: sum.inference_s / n,
            evolution_s: sum.evolution_s / n,
            communication_s: sum.communication_s / n,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn totals_and_shares() {
        let t = GenerationTimeline {
            inference_s: 2.0,
            evolution_s: 1.0,
            communication_s: 1.0,
        };
        assert_eq!(t.total_s(), 4.0);
        let s = t.shares();
        assert!((s.inference - 0.5).abs() < 1e-12);
        assert!((s.evolution - 0.25).abs() < 1e-12);
        assert!((s.communication - 0.25).abs() < 1e-12);
    }

    #[test]
    fn empty_shares_zero() {
        let s = GenerationTimeline::default().shares();
        assert_eq!(s.inference, 0.0);
        assert_eq!(s.communication, 0.0);
    }

    #[test]
    fn recorder_lifecycle() {
        let mut r = TimelineRecorder::new();
        r.add_inference(1.0);
        r.add_evolution(0.5);
        r.add_communication(0.25);
        let g = r.finish_generation();
        assert_eq!(g.total_s(), 1.75);
        assert_eq!(r.current(), GenerationTimeline::default());
        r.add_inference(3.0);
        r.finish_generation();
        assert_eq!(r.history().len(), 2);
        assert!((r.cumulative().inference_s - 4.0).abs() < 1e-12);
        assert!((r.mean().inference_s - 2.0).abs() < 1e-12);
    }

    #[test]
    fn add_is_fieldwise() {
        let a = GenerationTimeline {
            inference_s: 1.0,
            evolution_s: 2.0,
            communication_s: 3.0,
        };
        let b = a + a;
        assert_eq!(b.evolution_s, 4.0);
        assert_eq!(b.total_s(), 12.0);
    }
}
