//! Criterion comparison of the batched SoA activation tier against the
//! scalar `activate_into` tier across topology shapes: small vs large
//! I/O arities and sparse initial genomes vs structurally densified ones.
//!
//! Each benchmark activates the same N same-shape networks once per
//! iteration — scalar runs them one at a time through a `Scratch`,
//! batched runs all lanes in lockstep through one `BatchedNetwork` —
//! so throughput is directly comparable (networks/iteration is equal).

use clan_neat::{
    BatchedNetwork, FeedForwardNetwork, Genome, GenomeId, NeatConfig, Scratch, ShapeKey,
};
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// Deterministic splitmix64 step, returning a perturbation in
/// roughly [-0.1, 0.1].
fn next_jitter(state: &mut u64) -> f64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    (z as f64 / u64::MAX as f64 - 0.5) * 0.2
}

/// Clones `template` with every connection weight and node bias nudged
/// by a lane-specific jitter. Attribute-only edits can never change the
/// compiled shape, so the clone batches with the template by
/// construction.
fn perturbed_clone(template: &Genome, lane: u64) -> Genome {
    let mut state = lane.wrapping_mul(0x9E37_79B9_7F4A_7C15) ^ 0xD1B5_4A32_D192_ED03;
    let mut nodes = template.nodes().clone();
    let mut conns = template.conns().clone();
    for gene in conns.values_mut() {
        gene.weight += next_jitter(&mut state);
    }
    for gene in nodes.values_mut() {
        gene.bias += next_jitter(&mut state);
    }
    Genome::from_parts(GenomeId(lane + 1), nodes, conns)
}

/// Builds `n` same-shape networks: one template genome (optionally
/// densified with node/connection splits) plus weight-perturbed clones.
fn same_shape_nets(cfg: &NeatConfig, structural_rounds: u32, n: usize) -> Vec<FeedForwardNetwork> {
    let mut template = Genome::new_initial(cfg, GenomeId(0), &mut StdRng::seed_from_u64(11));
    let mut rng = StdRng::seed_from_u64(12);
    for _ in 0..structural_rounds {
        template.mutate_add_node(cfg, &mut rng);
        template.mutate_add_connection(cfg, &mut rng);
    }
    let nets: Vec<FeedForwardNetwork> = (0..n)
        .map(|lane| FeedForwardNetwork::compile(&perturbed_clone(&template, lane as u64), cfg))
        .collect();
    let key = ShapeKey::of(&nets[0]);
    assert!(
        nets.iter().all(|net| ShapeKey::of(net) == key),
        "attribute perturbation must preserve the compiled shape"
    );
    nets
}

fn bench_batched_vs_scalar(c: &mut Criterion) {
    const LANES: usize = 32;
    let mut group = c.benchmark_group("batched_vs_scalar");
    // (label, inputs, outputs, structural-mutation rounds): sparse
    // CartPole-sized genomes up to dense Atari-class ones.
    for (name, inputs, outputs, structural_rounds) in [
        ("cartpole_sparse", 4, 2, 0),
        ("cartpole_dense", 4, 2, 40),
        ("lander_sparse", 8, 4, 0),
        ("atari_sparse", 128, 18, 0),
        ("atari_dense", 128, 18, 40),
    ] {
        let cfg = NeatConfig::builder(inputs, outputs).build().unwrap();
        let nets = same_shape_nets(&cfg, structural_rounds, LANES);
        let obs = vec![0.5; inputs];

        group.bench_function(BenchmarkId::new("scalar_activate_into", name), |b| {
            let mut scratch = Scratch::new();
            b.iter(|| {
                for net in &nets {
                    black_box(net.activate_into(black_box(&obs), &mut scratch));
                }
            })
        });

        group.bench_function(BenchmarkId::new("batched_soa", name), |b| {
            let mut bank = BatchedNetwork::from_template(&nets[0], LANES);
            for (lane, net) in nets.iter().enumerate() {
                bank.load_lane(lane, net);
            }
            for lane in 0..LANES {
                bank.set_input(lane, &obs);
            }
            b.iter(|| {
                bank.activate();
                black_box(bank.output(LANES - 1, 0))
            })
        });
    }
    group.finish();
}

criterion_group!(benches, bench_batched_vs_scalar);
criterion_main!(benches);
