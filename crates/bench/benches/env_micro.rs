//! Criterion microbenchmarks of the environment suite: per-step and
//! per-episode throughput of each workload.

use clan_envs::{run_episode, Workload};
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_env_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("env_step");
    for w in Workload::ALL {
        group.bench_function(BenchmarkId::new("step", w.name()), |b| {
            let mut env = w.make();
            let mut remaining = 0u32;
            b.iter(|| {
                if remaining == 0 {
                    env.reset(7);
                    remaining = 64;
                }
                let s = env.step(0);
                if s.done {
                    remaining = 0;
                } else {
                    remaining -= 1;
                }
                black_box(s.reward)
            })
        });
    }
    group.finish();
}

fn bench_episode(c: &mut Criterion) {
    let mut group = c.benchmark_group("episode_200_steps");
    for w in [Workload::CartPole, Workload::LunarLander, Workload::AirRaid] {
        group.bench_function(BenchmarkId::new("episode", w.name()), |b| {
            let mut env = w.make();
            let mut seed = 0u64;
            b.iter(|| {
                seed += 1;
                black_box(run_episode(env.as_mut(), seed, 200, |obs| {
                    usize::from(obs[0] > 0.5)
                }))
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_env_step, bench_episode
}
criterion_main!(benches);
