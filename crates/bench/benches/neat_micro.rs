//! Criterion microbenchmarks of the NEAT primitives: the per-gene costs
//! that the CLAN cost model abstracts as genes/second.

use clan_neat::{FeedForwardNetwork, Genome, GenomeId, NeatConfig, Population};
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn cfg(inputs: usize, outputs: usize) -> NeatConfig {
    NeatConfig::builder(inputs, outputs).build().unwrap()
}

fn evolved_genome(cfg: &NeatConfig, seed: u64, mutations: u32) -> Genome {
    let mut g = Genome::new_initial(cfg, GenomeId(0), &mut StdRng::seed_from_u64(seed));
    let mut rng = StdRng::seed_from_u64(seed + 1);
    for _ in 0..mutations {
        g.mutate(cfg, &mut rng);
    }
    g
}

fn bench_network_activation(c: &mut Criterion) {
    let mut group = c.benchmark_group("network_activation");
    for (name, inputs, outputs) in [("cartpole", 4, 2), ("lander", 8, 4), ("atari", 128, 18)] {
        let cfg = cfg(inputs, outputs);
        let genome = evolved_genome(&cfg, 7, 30);
        let net = FeedForwardNetwork::compile(&genome, &cfg);
        let obs = vec![0.5; inputs];
        group.bench_function(BenchmarkId::new("activate", name), |b| {
            b.iter(|| black_box(net.activate(black_box(&obs))))
        });
    }
    group.finish();
}

fn bench_genome_ops(c: &mut Criterion) {
    let cfg = cfg(128, 18);
    let a = evolved_genome(&cfg, 1, 30);
    let b2 = evolved_genome(&cfg, 2, 30);
    let mut group = c.benchmark_group("genome_ops");
    group.bench_function("distance_atari", |b| {
        b.iter(|| black_box(a.distance(black_box(&b2), &cfg)))
    });
    group.bench_function("crossover_atari", |b| {
        let mut rng = StdRng::seed_from_u64(3);
        b.iter(|| black_box(Genome::crossover(&a, &b2, GenomeId(9), &mut rng)))
    });
    group.bench_function("compile_atari", |b| {
        b.iter(|| black_box(FeedForwardNetwork::compile(&a, &cfg)))
    });
    group.bench_function("mutate_atari", |b| {
        let mut rng = StdRng::seed_from_u64(4);
        b.iter_batched(
            || a.clone(),
            |mut g| {
                g.mutate(&cfg, &mut rng);
                black_box(g)
            },
            criterion::BatchSize::SmallInput,
        )
    });
    group.finish();
}

fn bench_speciation(c: &mut Criterion) {
    // Speciation + planning + reproduction at the paper's population size.
    let cfg = NeatConfig::builder(8, 4)
        .population_size(150)
        .build()
        .unwrap();
    c.bench_function("full_evolution_phase_pop150", |b| {
        b.iter_batched(
            || {
                let mut pop = Population::new(cfg.clone(), 5);
                pop.evaluate(|_, g| (g.id().0 % 17) as f64);
                pop
            },
            |mut pop| {
                pop.advance_generation();
                black_box(pop.generation())
            },
            criterion::BatchSize::SmallInput,
        )
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = bench_network_activation, bench_genome_ops, bench_speciation
}
criterion_main!(benches);
