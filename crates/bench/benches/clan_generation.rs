//! Criterion benchmarks of one full CLAN generation under each
//! configuration (real compute; simulated cluster time is free).

use clan_core::{ClanDriver, ClanTopology};
use clan_envs::Workload;
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("clan_generation_pop48");
    for (name, topo, agents) in [
        ("serial", ClanTopology::serial(), 1usize),
        ("dcs", ClanTopology::dcs(), 4),
        ("dds", ClanTopology::dds(), 4),
        ("dda", ClanTopology::dda(4), 4),
    ] {
        group.bench_function(BenchmarkId::new("cartpole", name), |b| {
            b.iter(|| {
                let report = ClanDriver::builder(Workload::CartPole)
                    .topology(topo)
                    .agents(agents)
                    .population_size(48)
                    .seed(7)
                    .build()
                    .expect("valid config")
                    .run(1)
                    .expect("run");
                black_box(report.best_fitness)
            })
        });
    }
    group.finish();
}

fn bench_threaded_runtime(c: &mut Criterion) {
    use clan_core::runtime::EdgeCluster;
    use clan_core::InferenceMode;
    use clan_neat::{NeatConfig, Population};

    let w = Workload::CartPole;
    let cfg = NeatConfig::builder(w.obs_dim(), w.n_actions())
        .population_size(48)
        .build()
        .unwrap();
    let cluster = EdgeCluster::spawn(4, w, InferenceMode::MultiStep, cfg.clone());
    c.bench_function("threaded_dcs_generation_pop48", |b| {
        b.iter_batched(
            || Population::new(cfg.clone(), 11),
            |mut pop| {
                cluster.step_dcs_generation(&mut pop).expect("step");
                black_box(pop.generation())
            },
            criterion::BatchSize::SmallInput,
        )
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_generation, bench_threaded_runtime
}
criterion_main!(benches);
