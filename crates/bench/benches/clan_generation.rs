//! Criterion benchmarks of one full CLAN generation under each
//! configuration (real compute; simulated cluster time is free).

use clan_core::{ClanDriver, ClanTopology};
use clan_envs::Workload;
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};

fn bench_generation(c: &mut Criterion) {
    let mut group = c.benchmark_group("clan_generation_pop48");
    for (name, topo, agents) in [
        ("serial", ClanTopology::serial(), 1usize),
        ("dcs", ClanTopology::dcs(), 4),
        ("dds", ClanTopology::dds(), 4),
        ("dda", ClanTopology::dda(4), 4),
    ] {
        group.bench_function(BenchmarkId::new("cartpole", name), |b| {
            b.iter(|| {
                let report = ClanDriver::builder(Workload::CartPole)
                    .topology(topo)
                    .agents(agents)
                    .population_size(48)
                    .seed(7)
                    .build()
                    .expect("valid config")
                    .run(1)
                    .expect("run");
                black_box(report.best_fitness)
            })
        });
    }
    group.finish();
}

fn bench_activation_tiers(c: &mut Criterion) {
    use clan_neat::network::Scratch;
    use clan_neat::{FeedForwardNetwork, Genome, GenomeId, NeatConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    let mut group = c.benchmark_group("activation_tiers");
    for (name, inputs, outputs) in [("cartpole", 4usize, 2usize), ("atari", 128, 18)] {
        let cfg = NeatConfig::builder(inputs, outputs).build().unwrap();
        let mut genome = Genome::new_initial(&cfg, GenomeId(0), &mut StdRng::seed_from_u64(7));
        let mut rng = StdRng::seed_from_u64(8);
        for _ in 0..30 {
            genome.mutate(&cfg, &mut rng);
        }
        let net = FeedForwardNetwork::compile(&genome, &cfg);
        let obs = vec![0.5; inputs];
        group.bench_function(BenchmarkId::new("activate", name), |b| {
            b.iter(|| black_box(net.activate(black_box(&obs))))
        });
        group.bench_function(BenchmarkId::new("activate_into", name), |b| {
            let mut scratch = Scratch::new();
            b.iter(|| black_box(net.activate_into(black_box(&obs), &mut scratch)[0]))
        });
    }
    group.finish();
}

fn bench_eval_thread_scaling(c: &mut Criterion) {
    use clan_core::{Evaluator, InferenceMode, Orchestrator, SerialOrchestrator};
    use clan_distsim::Cluster;
    use clan_hw::Platform;
    use clan_neat::{NeatConfig, Population};
    use clan_netsim::WifiModel;

    // Full-generation throughput at 1/2/4/8 evaluation threads: the
    // trajectories are bit-identical (asserted in tests/equivalence.rs),
    // so this measures pure wall-clock scaling of the Inference block.
    // The orchestrator (and therefore the persistent worker pool) is
    // built *outside* the timed loop: spawn/join cost must not be
    // charged to the per-generation numbers.
    let w = Workload::CartPole;
    let cfg = NeatConfig::builder(w.obs_dim(), w.n_actions())
        .population_size(96)
        .build()
        .unwrap();
    let mut group = c.benchmark_group("generation_pop96_threads");
    for threads in [1usize, 2, 4, 8] {
        let mut orchestrator = SerialOrchestrator::new(
            Population::new(cfg.clone(), 7),
            Evaluator::with_threads(w, InferenceMode::MultiStep, 1, threads),
            Cluster::homogeneous(Platform::raspberry_pi(), 1, WifiModel::default()),
        );
        group.bench_function(BenchmarkId::new("cartpole", threads), |b| {
            b.iter(|| {
                let report = orchestrator.step_generation().expect("generation");
                black_box(report.best_fitness)
            })
        });
    }
    group.finish();
}

fn bench_threaded_runtime(c: &mut Criterion) {
    use clan_core::runtime::EdgeCluster;
    use clan_core::InferenceMode;
    use clan_neat::{NeatConfig, Population};

    let w = Workload::CartPole;
    let cfg = NeatConfig::builder(w.obs_dim(), w.n_actions())
        .population_size(48)
        .build()
        .unwrap();
    let mut cluster =
        EdgeCluster::spawn(4, w, InferenceMode::MultiStep, cfg.clone()).expect("cluster spawns");
    c.bench_function("threaded_dcs_generation_pop48", |b| {
        b.iter_batched(
            || Population::new(cfg.clone(), 11),
            |mut pop| {
                cluster.step_dcs_generation(&mut pop).expect("step");
                black_box(pop.generation())
            },
            criterion::BatchSize::SmallInput,
        )
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = bench_generation, bench_activation_tiers, bench_eval_thread_scaling,
        bench_threaded_runtime
}
criterion_main!(benches);
