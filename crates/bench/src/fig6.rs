//! Figure 6 — CLAN_DDS at scale: evolution + communication time.
//!
//! The paper's negative result: "evolution does not scale beyond 2
//! agents ... communication starts to dominate from the outset since the
//! entire population needs to be accessed multiple times during
//! evolution."

use crate::output::{fmt, OutputSink};
use crate::{BENCH_SEED, POPULATION};
use clan_core::{ClanDriver, ClanTopology, RunReport};
use clan_envs::Workload;
use std::io;

const GENERATIONS: u64 = 3;
const SCALES: [usize; 5] = [1, 2, 4, 6, 8];

fn run_dds(workload: Workload, agents: usize) -> RunReport {
    ClanDriver::builder(workload)
        .topology(if agents == 1 {
            ClanTopology::serial()
        } else {
            ClanTopology::dds()
        })
        .agents(agents)
        .population_size(POPULATION)
        .seed(BENCH_SEED)
        .build()
        .expect("valid driver config")
        .run(GENERATIONS)
        .expect("run")
}

/// Runs the DDS scaling sweep (inference omitted, as in the paper).
///
/// # Errors
///
/// Propagates output failures.
pub fn run(sink: &OutputSink) -> io::Result<()> {
    let mut rows = Vec::new();
    for workload in Workload::FIGURES {
        let mut best_n = 1;
        let mut best = f64::INFINITY;
        for n in SCALES {
            let report = run_dds(workload, n);
            let t = report.mean_timeline;
            let evo_comm = t.evolution_s + t.communication_s;
            if evo_comm < best {
                best = evo_comm;
                best_n = n;
            }
            rows.push(vec![
                workload.name().to_string(),
                n.to_string(),
                fmt(t.evolution_s),
                fmt(t.communication_s),
                fmt(evo_comm),
            ]);
        }
        sink.note(&format!(
            "{}: evolution+comm minimized at {} agents (paper: never beyond 2)",
            workload.name(),
            best_n
        ));
    }
    sink.table(
        "fig6_dds_scaling",
        "Figure 6: CLAN_DDS evolution + communication vs agents (s)",
        &["workload", "agents", "evolution_s", "comm_s", "evo+comm_s"],
        &rows,
    )?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dds_does_not_scale() {
        // Adding agents must not help evolution+comm beyond ~2 agents.
        let at = |n: usize| {
            let r = run_dds(Workload::CartPole, n);
            r.mean_timeline.evolution_s + r.mean_timeline.communication_s
        };
        let two = at(2);
        let eight = at(8);
        assert!(
            eight > two,
            "DDS must get worse with scale: 2 agents {two:.2}s vs 8 agents {eight:.2}s"
        );
    }
}
