//! Figure 10 — technology what-ifs on Airraid-ram-v0:
//! (a, b) a 2x better network, (c) systolic-array accelerators as nodes.
//!
//! Expected shapes: better links push the single-step scaling knee from
//! ~10 to ~12 units and un-stagnate multi-step scaling; with accelerator
//! nodes (inference ~100x faster, evolution still on the host CPU),
//! communication dominates so hard that DCS cannot scale at all, DDA
//! scales to ~7 nodes and is >2.5x better, and by ~30 nodes even serial
//! wins.

use crate::output::{fmt, OutputSink};
use crate::{BENCH_SEED, POPULATION};
use clan_core::{ClanDriver, ClanTopology, InferenceMode};
use clan_envs::Workload;
use clan_hw::PlatformKind;
use clan_netsim::WifiModel;
use std::io;

const GENERATIONS: u64 = 3;

fn total_time(agents: usize, mode: InferenceMode, net: WifiModel, platform: PlatformKind) -> f64 {
    let topology = if agents == 1 {
        ClanTopology::serial()
    } else {
        ClanTopology::dda(agents)
    };
    total_time_with(topology, agents, mode, net, platform)
}

fn total_time_with(
    topology: ClanTopology,
    agents: usize,
    mode: InferenceMode,
    net: WifiModel,
    platform: PlatformKind,
) -> f64 {
    let mut b = ClanDriver::builder(Workload::AirRaid)
        .topology(topology)
        .agents(agents)
        .population_size(POPULATION)
        .seed(BENCH_SEED)
        .net(net)
        .platform(platform);
    if mode == InferenceMode::SingleStep {
        b = b.single_step();
    }
    b.build()
        .expect("valid driver config")
        .run(GENERATIONS)
        .expect("run")
        .mean_timeline
        .total_s()
}

/// Runs all three panels.
///
/// # Errors
///
/// Propagates output failures.
pub fn run(sink: &OutputSink) -> io::Result<()> {
    let base = WifiModel::default();
    let better = base.scaled(2.0, 2.0);

    // (a) Better network, single-step.
    let scales_a = [1usize, 8, 12, 18, 40, 70];
    let mut rows = Vec::new();
    for &n in &scales_a {
        let dcs_topo = if n == 1 {
            ClanTopology::serial()
        } else {
            ClanTopology::dcs()
        };
        rows.push(vec![
            n.to_string(),
            fmt(total_time_with(
                dcs_topo,
                n,
                InferenceMode::SingleStep,
                better,
                PlatformKind::RaspberryPi,
            )),
            fmt(total_time(
                n,
                InferenceMode::SingleStep,
                better,
                PlatformKind::RaspberryPi,
            )),
        ]);
    }
    sink.table(
        "fig10a_better_net_single_step",
        "Figure 10a: halved communication cost, single-step total time (s)",
        &["units", "T-CLAN_DCS", "T-CLAN_DDA"],
        &rows,
    )?;

    // (b) Better network, multi-step.
    let scales_b = [1usize, 8, 18, 40, 70];
    let mut rows_b = Vec::new();
    for &n in &scales_b {
        let dcs_topo = if n == 1 {
            ClanTopology::serial()
        } else {
            ClanTopology::dcs()
        };
        rows_b.push(vec![
            n.to_string(),
            fmt(total_time_with(
                dcs_topo,
                n,
                InferenceMode::MultiStep,
                better,
                PlatformKind::RaspberryPi,
            )),
            fmt(total_time(
                n,
                InferenceMode::MultiStep,
                better,
                PlatformKind::RaspberryPi,
            )),
        ]);
    }
    sink.table(
        "fig10b_better_net_multi_step",
        "Figure 10b: halved communication cost, multi-step total time (s)",
        &["units", "T-CLAN_DCS", "T-CLAN_DDA"],
        &rows_b,
    )?;

    // (c) Systolic accelerator nodes, multi-step, stock network.
    let scales_c = [1usize, 4, 7, 15, 30, 45, 70];
    let mut rows_c = Vec::new();
    let mut dda_best = (1usize, f64::INFINITY);
    for &n in &scales_c {
        let dcs_topo = if n == 1 {
            ClanTopology::serial()
        } else {
            ClanTopology::dcs()
        };
        let dcs = total_time_with(
            dcs_topo,
            n,
            InferenceMode::MultiStep,
            base,
            PlatformKind::Systolic32x32,
        );
        let dda = total_time(
            n,
            InferenceMode::MultiStep,
            base,
            PlatformKind::Systolic32x32,
        );
        if dda < dda_best.1 {
            dda_best = (n, dda);
        }
        rows_c.push(vec![n.to_string(), fmt(dcs), fmt(dda)]);
    }
    sink.table(
        "fig10c_custom_hw",
        "Figure 10c: 32x32 systolic nodes, multi-step total time (s)",
        &["units", "T-CLAN_DCS", "T-CLAN_DDA"],
        &rows_c,
    )?;
    sink.note(&format!(
        "Custom HW: DDA's best scale is {} nodes (paper: ~7); beyond that communication swamps the accelerated compute.",
        dda_best.0
    ));
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn better_network_extends_scaling() {
        let base = WifiModel::default();
        let better = base.scaled(2.0, 2.0);
        let t_base = total_time(
            40,
            InferenceMode::MultiStep,
            base,
            PlatformKind::RaspberryPi,
        );
        let t_better = total_time(
            40,
            InferenceMode::MultiStep,
            better,
            PlatformKind::RaspberryPi,
        );
        assert!(t_better < t_base);
    }

    #[test]
    fn accelerators_make_communication_the_bottleneck() {
        // With 100x faster inference, a few accelerator nodes beat one,
        // but scaling dies quickly (paper: ~7 nodes max for DDA).
        let base = WifiModel::default();
        let t1 = total_time(
            1,
            InferenceMode::MultiStep,
            base,
            PlatformKind::Systolic32x32,
        );
        let t4 = total_time(
            4,
            InferenceMode::MultiStep,
            base,
            PlatformKind::Systolic32x32,
        );
        let t70 = total_time(
            70,
            InferenceMode::MultiStep,
            base,
            PlatformKind::Systolic32x32,
        );
        assert!(t4 < t1, "small clusters still help: {t4:.2} vs {t1:.2}");
        assert!(t70 > t4, "scaling must die at large node counts");
    }
}
