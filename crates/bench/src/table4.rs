//! Table IV — platform specifications and prices.

use crate::output::{fmt, OutputSink};
use clan_hw::{EnergyModel, Platform};
use std::io;

/// Prints the platform table with the calibrated model constants.
///
/// # Errors
///
/// Propagates output failures.
pub fn run(sink: &OutputSink) -> io::Result<()> {
    let rows: Vec<Vec<String>> = Platform::table_iv()
        .iter()
        .map(|p| {
            let e = EnergyModel::for_kind(p.kind);
            vec![
                p.kind.to_string(),
                format!("${:.0}", p.price_usd),
                fmt(p.inference_genes_per_sec),
                fmt(p.evolution_genes_per_sec),
                fmt(e.active_watts),
            ]
        })
        .collect();
    sink.table(
        "table4_platforms",
        "Table IV: Platform Specifications (calibrated model)",
        &[
            "platform",
            "price",
            "inference genes/s",
            "evolution genes/s",
            "active W",
        ],
        &rows,
    )
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runs_and_writes() {
        let dir = std::env::temp_dir().join("clan-bench-test-table4");
        let sink = OutputSink::new(&dir).unwrap();
        run(&sink).unwrap();
        assert!(dir.join("table4_platforms.csv").exists());
        let _ = std::fs::remove_dir_all(dir);
    }
}
