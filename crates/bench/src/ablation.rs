//! Ablation studies for design choices this reproduction makes beyond
//! the paper's explicit experiments.
//!
//! 1. **Periodic global speciation** — the paper's future-work idea
//!    (§IV-C): "One can think of many ways to mitigate this problem such
//!    as allowing periodic global speciation". We implement it
//!    (`DdaOrchestrator::with_resync_every`) and measure the
//!    accuracy-vs-communication trade-off it buys.
//! 2. **Dynamic compatibility thresholding** — this reproduction's
//!    speciation controller. Ablating it shows why a fixed threshold
//!    cannot serve both 4-gene XOR genomes and 800-gene Atari genomes.
//! 3. **Channel-invocation cost sensitivity** — the calibrated constant
//!    the paper blames for DDS's collapse; sweeping it shows how the
//!    Figure-9 crossover points move with communication technology.

use crate::output::{fmt, OutputSink};
use crate::{BENCH_SEED, POPULATION};
use clan_core::{ClanDriver, ClanTopology};
use clan_envs::Workload;
use clan_neat::{NeatConfig, Population};
use clan_netsim::WifiModel;
use std::io;

/// Runs all three ablations.
///
/// # Errors
///
/// Propagates output failures.
pub fn run(sink: &OutputSink) -> io::Result<()> {
    resync_ablation(sink)?;
    dynamic_threshold_ablation(sink)?;
    channel_cost_ablation(sink)
}

/// Convergence and traffic vs. DDA resync period (LunarLander, 8 clans).
fn resync_ablation(sink: &OutputSink) -> io::Result<()> {
    const RUNS: u64 = 5;
    const MAX_GENS: u64 = 40;
    let mut rows = Vec::new();
    for resync in [None, Some(10u64), Some(5), Some(2)] {
        let mut total_gens = 0u64;
        let mut total_floats = 0u64;
        for run in 0..RUNS {
            let mut b = ClanDriver::builder(Workload::LunarLander)
                .topology(ClanTopology::dda(8))
                .agents(8)
                .population_size(POPULATION)
                .episodes_per_eval(3)
                .seed(BENCH_SEED + 1000 * run);
            if let Some(r) = resync {
                b = b.resync_every(r);
            }
            let report = b.build().expect("config").run(MAX_GENS).expect("run");
            total_gens += report
                .generations
                .iter()
                .find(|g| g.best_fitness >= 200.0)
                .map(|g| g.generation + 1)
                .unwrap_or(MAX_GENS);
            total_floats += report.ledger.total_floats();
        }
        rows.push(vec![
            resync.map_or("never".to_string(), |r| format!("every {r}")),
            fmt(total_gens as f64 / RUNS as f64),
            (total_floats / RUNS / MAX_GENS).to_string(),
        ]);
    }
    sink.table(
        "ablation_resync",
        "Ablation: periodic global speciation (paper future work), LunarLander, 8 clans",
        &[
            "resync period",
            "generations to converge",
            "floats/generation",
        ],
        &rows,
    )?;
    sink.note("Trade-off: more frequent resync buys back convergence speed at the cost of genome traffic.");
    Ok(())
}

/// XOR solve rate with and without dynamic compatibility thresholding.
fn dynamic_threshold_ablation(sink: &OutputSink) -> io::Result<()> {
    const SEEDS: u64 = 6;
    const MAX_GENS: u64 = 200;
    let xor_run = |dynamic: bool, threshold: f64, seed: u64| -> (bool, u64) {
        let cfg = NeatConfig::builder(2, 1)
            .population_size(POPULATION)
            .dynamic_compatibility(dynamic)
            .compatibility_threshold(threshold)
            .build()
            .expect("config");
        let mut pop = Population::new(cfg, seed);
        let cases = [
            ([0.0, 0.0], 0.0),
            ([0.0, 1.0], 1.0),
            ([1.0, 0.0], 1.0),
            ([1.0, 1.0], 0.0),
        ];
        for gen in 0..MAX_GENS {
            pop.evaluate(|net, _| {
                let mut f = 4.0;
                for (i, want) in &cases {
                    let got = net.activate(i)[0];
                    f -= (got - want) * (got - want);
                }
                f
            });
            let s = pop.advance_generation();
            if s.best_fitness > 3.8 {
                return (true, gen + 1);
            }
        }
        (false, MAX_GENS)
    };
    let mut rows = Vec::new();
    for (label, dynamic, threshold) in [
        ("dynamic (ours)", true, 3.0),
        ("fixed 3.0", false, 3.0),
        ("fixed 1.7", false, 1.7),
    ] {
        let mut solved = 0;
        let mut gens = 0;
        for seed in 0..SEEDS {
            let (ok, g) = xor_run(dynamic, threshold, seed);
            solved += u64::from(ok);
            gens += g;
        }
        rows.push(vec![
            label.to_string(),
            format!("{solved}/{SEEDS}"),
            fmt(gens as f64 / SEEDS as f64),
        ]);
    }
    sink.table(
        "ablation_dynamic_threshold",
        "Ablation: dynamic compatibility threshold on XOR (200-generation budget)",
        &["speciation threshold", "solved", "mean generations"],
        &rows,
    )?;
    Ok(())
}

/// Figure-9a DCS-vs-serial crossover as a function of channel setup cost.
fn channel_cost_ablation(sink: &OutputSink) -> io::Result<()> {
    let mut rows = Vec::new();
    for setup_ms in [50.0, 100.0, 150.0, 300.0] {
        let net = WifiModel {
            channel_setup_s: setup_ms / 1000.0,
            ..WifiModel::default()
        };
        let total = |agents: usize| -> f64 {
            let topo = if agents == 1 {
                ClanTopology::serial()
            } else {
                ClanTopology::dcs()
            };
            ClanDriver::builder(Workload::AirRaid)
                .topology(topo)
                .agents(agents)
                .population_size(POPULATION)
                .seed(BENCH_SEED)
                .single_step()
                .net(net)
                .build()
                .expect("config")
                .run(3)
                .expect("run")
                .mean_generation_s()
        };
        let serial = total(1);
        let crossover = [6usize, 12, 24, 40, 60, 100]
            .iter()
            .find(|&&n| total(n) > serial)
            .map_or(">100".to_string(), |n| n.to_string());
        rows.push(vec![format!("{setup_ms:.0} ms"), crossover, fmt(serial)]);
    }
    sink.table(
        "ablation_channel_cost",
        "Ablation: single-step DCS-vs-serial crossover point vs channel setup cost",
        &["channel setup", "crossover (units)", "serial total (s)"],
        &rows,
    )?;
    sink.note(
        "Cheaper channel invocation pushes the crossover out — the technology lever of Figure 10.",
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dynamic_threshold_beats_fixed_17_on_xor() {
        // The controller should never lose to the shattering fixed-1.7
        // configuration; run a single fast seed to keep test time low.
        let dir = std::env::temp_dir().join("clan-bench-test-ablation");
        let sink = OutputSink::new(&dir).unwrap();
        dynamic_threshold_ablation(&sink).unwrap();
        let csv = std::fs::read_to_string(dir.join("ablation_dynamic_threshold.csv")).unwrap();
        let lines: Vec<&str> = csv.lines().collect();
        let solved = |line: &str| -> u64 {
            line.split(',')
                .nth(1)
                .unwrap()
                .split('/')
                .next()
                .unwrap()
                .parse()
                .unwrap()
        };
        assert!(
            solved(lines[1]) >= solved(lines[3]),
            "dynamic should solve at least as often as fixed 1.7:\n{csv}"
        );
        let _ = std::fs::remove_dir_all(dir);
    }
}
