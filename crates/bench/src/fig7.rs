//! Figure 7 — CLAN_DDA: (a) evolution + communication at scale,
//! (b) accuracy cost of Asynchronous Speciation (generations to converge
//! vs. number of clans on LunarLander-v2).
//!
//! (a) shows the payoff: with genomes pinned to agents, communication
//! stays negligible and evolution scales alongside inference.
//! (b) shows the price: speciating over 1/k of the population reduces
//! exploration, so convergence slows as clans multiply.

use crate::output::{fmt, OutputSink};
use crate::{BENCH_SEED, POPULATION};
use clan_core::{ClanDriver, ClanTopology, RunReport};
use clan_envs::Workload;
use std::io;

const GENERATIONS: u64 = 3;
const SCALES: [usize; 8] = [1, 2, 4, 6, 8, 10, 12, 15];
/// Clan counts for the accuracy study (paper: 1, 2, 4, 8, 16).
const CLAN_COUNTS: [usize; 5] = [1, 2, 4, 8, 16];
/// Runs averaged per data point ("We perform 10 runs and average").
const ACCURACY_RUNS: u64 = 10;
/// Generation cap for the convergence study. The paper's y-axis tops at
/// 40; we allow 60 so the cap compresses the slow (many-clan) points
/// less.
const MAX_GENERATIONS: u64 = 60;
/// Convergence criterion: gym's LunarLander-v2 solved score. Fitness is
/// the mean of [`ACCURACY_EPISODES`] episodes, so reaching 200 requires a
/// genuinely reliable landing policy, not one lucky rollout.
const CONVERGENCE_FITNESS: f64 = 200.0;
/// Episodes averaged per genome evaluation in the accuracy study.
const ACCURACY_EPISODES: u32 = 3;

fn run_dda(workload: Workload, agents: usize) -> RunReport {
    ClanDriver::builder(workload)
        .topology(if agents == 1 {
            ClanTopology::serial()
        } else {
            ClanTopology::dda(agents)
        })
        .agents(agents)
        .population_size(POPULATION)
        .seed(BENCH_SEED)
        .build()
        .expect("valid driver config")
        .run(GENERATIONS)
        .expect("run")
}

/// Generations for one convergence run (capped).
fn generations_to_converge(clans: usize, seed: u64) -> u64 {
    let driver = ClanDriver::builder(Workload::LunarLander)
        .topology(if clans == 1 {
            ClanTopology::serial()
        } else {
            ClanTopology::dda(clans)
        })
        .agents(clans)
        .population_size(POPULATION)
        .episodes_per_eval(ACCURACY_EPISODES)
        .seed(seed)
        .build()
        .expect("valid driver config");
    let report = driver.run(MAX_GENERATIONS).expect("run");
    report
        .generations
        .iter()
        .find(|g| g.best_fitness >= CONVERGENCE_FITNESS)
        .map(|g| g.generation + 1)
        .unwrap_or(MAX_GENERATIONS)
}

/// Runs both panels.
///
/// # Errors
///
/// Propagates output failures.
pub fn run(sink: &OutputSink) -> io::Result<()> {
    // (a) Evolution + communication at scale.
    let mut rows = Vec::new();
    for workload in Workload::FIGURES {
        for n in SCALES {
            let report = run_dda(workload, n);
            let t = report.mean_timeline;
            rows.push(vec![
                workload.name().to_string(),
                n.to_string(),
                fmt(t.evolution_s),
                fmt(t.communication_s),
                fmt(t.evolution_s + t.communication_s),
            ]);
        }
    }
    sink.table(
        "fig7a_dda_scaling",
        "Figure 7a: CLAN_DDA evolution + communication vs agents (s)",
        &["workload", "agents", "evolution_s", "comm_s", "evo+comm_s"],
        &rows,
    )?;

    // (b) Accuracy vs clans.
    let mut rows_b = Vec::new();
    let mut means = Vec::new();
    for clans in CLAN_COUNTS {
        let mut total = 0u64;
        for run_idx in 0..ACCURACY_RUNS {
            total += generations_to_converge(clans, BENCH_SEED + 1000 * run_idx);
        }
        let mean = total as f64 / ACCURACY_RUNS as f64;
        means.push(mean);
        rows_b.push(vec![clans.to_string(), fmt(mean)]);
    }
    sink.table(
        "fig7b_accuracy_vs_clans",
        "Figure 7b: LunarLander-v2 generations to converge vs clans (10-run mean)",
        &["clans", "generations"],
        &rows_b,
    )?;
    let increasing = means.first().unwrap_or(&0.0) <= means.last().unwrap_or(&0.0);
    sink.note(if increasing {
        "PAPER CLAIM HOLDS: convergence slows (gradually) as clans increase"
    } else {
        "WARNING: convergence did not slow with clan count"
    });
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dda_evolution_scales_down_with_agents() {
        let r1 = run_dda(Workload::AirRaid, 1);
        let r8 = run_dda(Workload::AirRaid, 8);
        assert!(r8.mean_timeline.evolution_s < r1.mean_timeline.evolution_s);
    }

    #[test]
    fn dda_comm_stays_small() {
        let r = run_dda(Workload::AirRaid, 15);
        // Steady-state DDA communication is fitness scalars only; even
        // amortizing the one-time init, comm must stay below evolution+inference.
        let t = r.mean_timeline;
        assert!(t.communication_s < t.inference_s + t.evolution_s);
    }
}
