//! Figure 3 — cost analysis of (a) Inference, (b) Reproduction,
//! (c) Speciation across generations, in genes processed.
//!
//! The paper's takeaway: "inference is the costliest operation by orders
//! of magnitude followed by Speciation and lastly by Reproduction" —
//! which drives the entire distribution strategy (inference first).

use crate::output::OutputSink;
use crate::{BENCH_SEED, POPULATION};
use clan_core::ClanDriver;
use clan_envs::Workload;
use std::io;

/// Generations traced per workload.
const GENERATIONS: u64 = 8;

/// Runs the serial cost trace on every figure workload.
///
/// # Errors
///
/// Propagates output failures; panics on internal orchestration errors
/// (they indicate a bug, not an environmental condition).
pub fn run(sink: &OutputSink) -> io::Result<()> {
    let mut rows = Vec::new();
    for workload in Workload::FIGURES {
        let report = ClanDriver::builder(workload)
            .population_size(POPULATION)
            .seed(BENCH_SEED)
            .build()
            .expect("valid driver config")
            .run(GENERATIONS)
            .expect("serial run");
        for g in &report.generations {
            rows.push(vec![
                workload.name().to_string(),
                g.generation.to_string(),
                g.costs.inference_genes.to_string(),
                g.costs.speciation_genes.to_string(),
                g.costs.reproduction_genes.to_string(),
            ]);
        }
    }
    sink.table(
        "fig3_cost_analysis",
        "Figure 3: genes processed per generation by compute block",
        &[
            "workload",
            "generation",
            "inference",
            "speciation",
            "reproduction",
        ],
        &rows,
    )?;

    // The ordering claim, checked over the whole trace.
    let mut ok = true;
    for chunk in rows.chunks(GENERATIONS as usize) {
        let (mut inf, mut spec, mut rep) = (0u64, 0u64, 0u64);
        for r in chunk {
            inf += r[2].parse::<u64>().expect("own output");
            spec += r[3].parse::<u64>().expect("own output");
            rep += r[4].parse::<u64>().expect("own output");
        }
        ok &= inf > spec && spec > rep;
        sink.note(&format!(
            "{}: inference/speciation = {:.1}x, speciation/reproduction = {:.1}x",
            chunk[0][0],
            inf as f64 / spec.max(1) as f64,
            spec as f64 / rep.max(1) as f64
        ));
    }
    sink.note(if ok {
        "PAPER CLAIM HOLDS: inference > speciation > reproduction on every workload"
    } else {
        "WARNING: cost ordering deviates from the paper on some workload"
    });
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn writes_csv() {
        let dir = std::env::temp_dir().join("clan-bench-test-fig3");
        let sink = OutputSink::new(&dir).unwrap();
        run(&sink).unwrap();
        let csv = std::fs::read_to_string(dir.join("fig3_cost_analysis.csv")).unwrap();
        assert!(csv.lines().count() > 1 + 5 * GENERATIONS as usize - 1);
        let _ = std::fs::remove_dir_all(dir);
    }
}
