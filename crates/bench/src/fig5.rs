//! Figure 5 — CLAN_DCS at scale: (a) execution time vs. agent count for
//! all workloads, (b) inference-vs-communication breakdown on Cartpole.
//!
//! Expected shapes (paper §IV-B): small workloads stop scaling after
//! 5–10 units because communication catches up with the shrinking
//! inference time; large (Atari) workloads scale linearly across the
//! whole 15-Pi testbed.

use crate::output::{fmt, OutputSink};
use crate::{BENCH_SEED, POPULATION};
use clan_core::{ClanDriver, ClanTopology, RunReport};
use clan_envs::Workload;
use std::io;

const GENERATIONS: u64 = 3;

fn run_dcs(workload: Workload, agents: usize) -> RunReport {
    ClanDriver::builder(workload)
        .topology(if agents == 1 {
            ClanTopology::serial()
        } else {
            ClanTopology::dcs()
        })
        .agents(agents)
        .population_size(POPULATION)
        .seed(BENCH_SEED)
        .build()
        .expect("valid driver config")
        .run(GENERATIONS)
        .expect("run")
}

/// Runs the DCS scaling sweep.
///
/// # Errors
///
/// Propagates output failures.
pub fn run(sink: &OutputSink) -> io::Result<()> {
    // (a) Execution time at scale.
    let mut rows = Vec::new();
    for workload in Workload::FIGURES {
        let scales: &[usize] = match workload.class() {
            clan_envs::WorkloadClass::Small => &[1, 3, 5, 7, 10],
            _ => &[1, 3, 5, 7, 10, 15],
        };
        let mut best_total = f64::INFINITY;
        let mut best_n = 1;
        for &n in scales {
            let report = run_dcs(workload, n);
            let t = report.mean_timeline;
            if t.inference_s + t.communication_s < best_total {
                best_total = t.inference_s + t.communication_s;
                best_n = n;
            }
            rows.push(vec![
                workload.name().to_string(),
                n.to_string(),
                fmt(t.inference_s),
                fmt(t.communication_s),
                fmt(t.inference_s + t.communication_s),
            ]);
        }
        sink.note(&format!(
            "{}: best inference+comm time at {} agents",
            workload.name(),
            best_n
        ));
    }
    sink.table(
        "fig5a_dcs_scaling",
        "Figure 5a: CLAN_DCS per-generation time vs agents (s)",
        &["workload", "agents", "inference_s", "comm_s", "total_s"],
        &rows,
    )?;

    // (b) Cartpole breakdown, 2..6 agents.
    let mut rows_b = Vec::new();
    for n in 2..=6usize {
        let report = run_dcs(Workload::CartPole, n);
        let t = report.mean_timeline;
        rows_b.push(vec![
            n.to_string(),
            fmt(t.inference_s),
            fmt(t.communication_s),
        ]);
    }
    sink.table(
        "fig5b_cartpole_breakdown",
        "Figure 5b: Cartpole-v0 inference vs communication (s)",
        &["agents", "inference_s", "comm_s"],
        &rows_b,
    )?;
    sink.note(
        "Expected shape: inference shrinks ~1/n while communication grows, so small workloads stop scaling at 5-10 agents.",
    );
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn inference_scales_communication_grows() {
        let r1 = run_dcs(Workload::CartPole, 1);
        let r10 = run_dcs(Workload::CartPole, 10);
        assert!(r10.mean_timeline.inference_s < r1.mean_timeline.inference_s / 4.0);
        assert!(r10.mean_timeline.communication_s > r1.mean_timeline.communication_s);
    }

    #[test]
    fn atari_scales_linearly_to_testbed_limit() {
        let r1 = run_dcs(Workload::AirRaid, 1);
        let r15 = run_dcs(Workload::AirRaid, 15);
        let speedup = (r1.mean_timeline.inference_s + r1.mean_timeline.communication_s)
            / (r15.mean_timeline.inference_s + r15.mean_timeline.communication_s);
        assert!(speedup > 6.0, "large workloads keep scaling: {speedup:.1}x");
    }
}
