//! Regenerates the paper's fig11. See `clan_bench::fig11`.
use clan_bench::{fig11, OutputSink};

fn main() -> std::io::Result<()> {
    let sink = OutputSink::default_dir()?;
    fig11::run(&sink)
}
