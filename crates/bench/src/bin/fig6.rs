//! Regenerates the paper's fig6. See `clan_bench::fig6`.
use clan_bench::{fig6, OutputSink};

fn main() -> std::io::Result<()> {
    let sink = OutputSink::default_dir()?;
    fig6::run(&sink)
}
