//! Regenerates the paper's fig10. See `clan_bench::fig10`.
use clan_bench::{fig10, OutputSink};

fn main() -> std::io::Result<()> {
    let sink = OutputSink::default_dir()?;
    fig10::run(&sink)
}
