//! Runs the reproduction's ablation studies. See `clan_bench::ablation`.
use clan_bench::{ablation, OutputSink};

fn main() -> std::io::Result<()> {
    let sink = OutputSink::default_dir()?;
    ablation::run(&sink)
}
