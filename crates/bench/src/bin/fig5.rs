//! Regenerates the paper's fig5. See `clan_bench::fig5`.
use clan_bench::{fig5, OutputSink};

fn main() -> std::io::Result<()> {
    let sink = OutputSink::default_dir()?;
    fig5::run(&sink)
}
