//! Regenerates every table and figure of the CLAN paper in one go,
//! plus the reproduction's ablation studies.
use clan_bench::{
    ablation, fig10, fig11, fig3, fig4, fig5, fig6, fig7, fig8, fig9, table4, OutputSink,
};

/// One experiment: display name plus its entry point.
type Experiment = (&'static str, fn(&OutputSink) -> std::io::Result<()>);

fn main() -> std::io::Result<()> {
    let sink = OutputSink::default_dir()?;
    let experiments: Vec<Experiment> = vec![
        ("Table IV", table4::run),
        ("Figure 3", fig3::run),
        ("Figure 4", fig4::run),
        ("Figure 5", fig5::run),
        ("Figure 6", fig6::run),
        ("Figure 7", fig7::run),
        ("Figure 8", fig8::run),
        ("Figure 9", fig9::run),
        ("Figure 10", fig10::run),
        ("Figure 11", fig11::run),
        ("Ablations", ablation::run),
    ];
    for (name, run) in experiments {
        eprintln!(">>> {name}");
        run(&sink)?;
    }
    eprintln!(">>> done; CSVs in {}", sink.results_dir().display());
    Ok(())
}
