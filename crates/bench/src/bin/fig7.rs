//! Regenerates the paper's fig7. See `clan_bench::fig7`.
use clan_bench::{fig7, OutputSink};

fn main() -> std::io::Result<()> {
    let sink = OutputSink::default_dir()?;
    fig7::run(&sink)
}
