//! Regenerates the paper's fig9. See `clan_bench::fig9`.
use clan_bench::{fig9, OutputSink};

fn main() -> std::io::Result<()> {
    let sink = OutputSink::default_dir()?;
    fig9::run(&sink)
}
