//! Regenerates the paper's fig3. See `clan_bench::fig3`.
use clan_bench::{fig3, OutputSink};

fn main() -> std::io::Result<()> {
    let sink = OutputSink::default_dir()?;
    fig3::run(&sink)
}
