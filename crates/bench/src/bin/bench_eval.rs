//! Emits `BENCH_eval.json`: evaluation-engine throughput (genomes/sec,
//! steps/sec, activation ns) serially and at 2/4/8 threads, tracked
//! across PRs.
//!
//! `--smoke` runs a seconds-long reduced profile (CI uses it to keep the
//! bench pipeline and artifact upload exercised on every push; the
//! numbers are not comparable to full runs).

fn main() -> std::io::Result<()> {
    let smoke = std::env::args().any(|a| a == "--smoke");
    if smoke {
        println!("bench_eval --smoke: reduced CI profile, numbers not comparable to full runs");
    }
    let report = clan_bench::eval_perf::run_and_write_profile("BENCH_eval.json", smoke)?;
    println!("host cpus: {}", report.host_cpus);
    println!(
        "activation: {:.0} ns seed-baseline | {:.0} ns activate | {:.0} ns activate_into ({:.2}x vs seed)",
        report.activation.seed_baseline_ns,
        report.activation.activate_ns,
        report.activation.activate_into_ns,
        report.activation.speedup_vs_seed
    );
    println!(
        "compile: {:.0} ns seed-baseline | {:.0} ns indexed ({:.2}x vs seed)",
        report.compile.seed_baseline_ns, report.compile.compile_ns, report.compile.speedup_vs_seed
    );
    if report.host_cpus == 1 {
        println!(
            "note: single-CPU host — multi-thread rows are marked flat-expected \
             (no speedup is possible, the rows only prove bit-identity)"
        );
    }
    println!(
        "evaluation-only throughput ({} episodes/genome):",
        report.episodes_per_eval
    );
    let flat = |f: bool| if f { "  [flat expected]" } else { "" };
    for t in &report.evaluation {
        println!(
            "  {} thread(s): {:>9.0} genomes/s {:>12.0} steps/s ({:.2}x){}",
            t.threads,
            t.genomes_per_s,
            t.steps_per_s,
            t.speedup,
            flat(t.flat_expected)
        );
    }
    println!("full-generation throughput:");
    for t in &report.generation {
        println!(
            "  {} thread(s): {:>9.0} genomes/s {:>12.0} inference-genes/s ({:.2}x){}",
            t.threads,
            t.genomes_per_s,
            t.inference_genes_per_s,
            t.speedup,
            flat(t.flat_expected)
        );
    }
    println!("batched SoA inference (shape-homogeneous population):");
    for b in &report.batched {
        println!(
            "  {:>2} lane(s): {:>9.0} genomes/s ({:.2}x vs scalar)",
            b.lanes, b.genomes_per_s, b.speedup_vs_scalar
        );
    }
    let fc = &report.cache;
    println!(
        "fitness cache over {} generations: {} hit(s) / {} lookup(s) ({:.1}% hit rate), bit-identical: {}",
        fc.generations,
        fc.hits,
        fc.lookups,
        100.0 * fc.hit_rate,
        fc.bit_identical
    );
    let h = &report.hetero;
    println!(
        "hetero ({} agents, one {}x slower, {} rounds):",
        h.agents, h.slow_factor, h.rounds
    );
    println!(
        "  measured makespan: {:.1} ms even | {:.1} ms weighted ({:.2}x)",
        h.measured_even_makespan_s * 1e3,
        h.measured_weighted_makespan_s * 1e3,
        h.measured_speedup
    );
    println!(
        "  modeled  makespan: {:.2} s even | {:.2} s weighted ({:.2}x)",
        h.model_even_makespan_s, h.model_weighted_makespan_s, h.model_speedup
    );
    let l = &report.lossy;
    println!(
        "lossy UDP ({} agents, {} rounds, fault seed {}):",
        l.agents, l.rounds, l.fault_seed
    );
    for row in &l.rows {
        println!(
            "  {:>4.0}% loss: {:>7.1} ms/round makespan, {:>8} wire B, {:>8} retrans B ({:.1}% overhead)",
            row.loss * 100.0,
            row.mean_makespan_s * 1e3,
            row.wire_bytes,
            row.retrans_bytes,
            row.retrans_overhead * 100.0
        );
    }
    println!("  WifiModel validation (emulated 62.24 Mbps / 8.83 ms link):");
    for w in &l.wifi {
        println!(
            "    {:>6} B frame ({:>2} datagrams): measured {:>7.2} ms vs modeled {:>6.2} ms ({:.2}x)",
            w.frame_bytes,
            w.datagrams,
            w.measured_transfer_s * 1e3,
            w.modeled_transfer_s * 1e3,
            w.measured_over_modeled
        );
    }
    let c = &report.churn;
    println!(
        "churn ({} agents, {} rounds, kill @{} revive @{}):",
        c.agents, c.rounds, c.kill_round, c.revive_round
    );
    println!(
        "  mean makespan: {:.1} ms clean | {:.1} ms churned ({:.2}x overhead)",
        c.clean_mean_makespan_s * 1e3,
        c.churn_mean_makespan_s * 1e3,
        c.overhead
    );
    println!(
        "  {} link failure(s), {} chunk(s)/{} genome(s) reassigned, retry makespan {:.1} ms",
        c.failures,
        c.reassigned_chunks,
        c.reassigned_genomes,
        c.recovery_s * 1e3
    );
    let a = &report.async_steady;
    println!(
        "async steady-state ({} agents, one {}x slower, {} evals):",
        a.agents, a.slow_factor, a.total_evals
    );
    println!(
        "  makespan: {:.1} ms sync-barrier | {:.1} ms async ({:.2}x speedup)",
        a.sync_makespan_s * 1e3,
        a.async_makespan_s * 1e3,
        a.speedup
    );
    println!(
        "  wasted idle: {:.1} ms sync | {:.1} ms async ({:.1} ms recovered)",
        a.sync_wasted_idle_s * 1e3,
        a.async_wasted_idle_s * 1e3,
        a.idle_recovered_s * 1e3
    );
    println!(
        "  churn variant: {} re-dispatch(es), {}/{} evals still completed",
        a.churn_redispatches, a.churn_total_evals, a.total_evals
    );
    let t = &report.telemetry;
    println!(
        "telemetry ({} generations, 4-agent DCS): {} logical + {} timing event(s), {:.0} events/s",
        t.generations, t.logical_events, t.timing_events, t.events_per_s
    );
    println!(
        "  wall-clock: {:.1} ms untraced | {:.1} ms traced ({:+.1}% overhead), bit-identical: {}",
        t.untraced_s * 1e3,
        t.traced_s * 1e3,
        t.overhead_pct,
        t.bit_identical
    );
    println!("wrote BENCH_eval.json");
    Ok(())
}
