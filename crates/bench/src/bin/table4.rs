//! Regenerates the paper's table4. See `clan_bench::table4`.
use clan_bench::{table4, OutputSink};

fn main() -> std::io::Result<()> {
    let sink = OutputSink::default_dir()?;
    table4::run(&sink)
}
