//! Regenerates the paper's fig8. See `clan_bench::fig8`.
use clan_bench::{fig8, OutputSink};

fn main() -> std::io::Result<()> {
    let sink = OutputSink::default_dir()?;
    fig8::run(&sink)
}
