//! Regenerates the paper's fig4. See `clan_bench::fig4`.
use clan_bench::{fig4, OutputSink};

fn main() -> std::io::Result<()> {
    let sink = OutputSink::default_dir()?;
    fig4::run(&sink)
}
