//! Figure 11 — performance per dollar: CLAN's Pi swarm vs. single
//! higher-end platforms (Table IV).
//!
//! Paper headline: at 6 Pis ($240) the swarm matches the Jetson TX2
//! ($600) on larger workloads — a 2.5x price-performance-product win —
//! and at 15 Pis ($600) it rivals the HPC CPU ($1500), a 1.2x PPP win.
//! GPU bars stay out of reach of the single-core Pi experiments.

use crate::output::{fmt, OutputSink};
use crate::{BENCH_SEED, POPULATION};
use clan_core::{ClanDriver, ClanTopology};
use clan_envs::Workload;
use clan_hw::{Platform, PlatformKind};
use std::io;

const GENERATIONS: u64 = 3;
const PI_SCALES: [usize; 6] = [1, 2, 4, 6, 10, 15];

/// `(mean s/generation, mean J/generation)` for a single node of `platform`.
fn serial_run(workload: Workload, platform: PlatformKind) -> (f64, f64) {
    let r = ClanDriver::builder(workload)
        .platform(platform)
        .population_size(POPULATION)
        .seed(BENCH_SEED)
        .build()
        .expect("valid driver config")
        .run(GENERATIONS)
        .expect("run");
    (r.mean_generation_s(), r.mean_generation_energy_j())
}

fn serial_time(workload: Workload, platform: PlatformKind) -> f64 {
    serial_run(workload, platform).0
}

/// `(mean s/generation, mean J/generation)` for a CLAN_DDA swarm of `n` Pis.
fn swarm_run(workload: Workload, n: usize) -> (f64, f64) {
    let topology = if n == 1 {
        ClanTopology::serial()
    } else {
        ClanTopology::dda(n)
    };
    let r = ClanDriver::builder(workload)
        .topology(topology)
        .agents(n)
        .population_size(POPULATION)
        .seed(BENCH_SEED)
        .build()
        .expect("valid driver config")
        .run(GENERATIONS)
        .expect("run");
    (r.mean_generation_s(), r.mean_generation_energy_j())
}

fn swarm_time(workload: Workload, n: usize) -> f64 {
    swarm_run(workload, n).0
}

/// Runs the platform comparison on the paper's four panels.
///
/// # Errors
///
/// Propagates output failures.
pub fn run(sink: &OutputSink) -> io::Result<()> {
    let platforms = [
        PlatformKind::HpcGpu,
        PlatformKind::HpcCpu,
        PlatformKind::JetsonGpu,
        PlatformKind::JetsonCpu,
    ];
    let panels = [
        Workload::CartPole,
        Workload::MountainCar,
        Workload::LunarLander,
        Workload::AirRaid,
    ];
    let pi_price = Platform::raspberry_pi().price_usd;
    let mut rows = Vec::new();
    for workload in panels {
        for p in platforms {
            let (t, e) = serial_run(workload, p);
            let price = Platform::new(p).price_usd;
            rows.push(vec![
                workload.name().to_string(),
                p.to_string(),
                format!("${price:.0}"),
                fmt(t),
                fmt(price * t),
                fmt(e),
            ]);
        }
        for n in PI_SCALES {
            let (t, e) = swarm_run(workload, n);
            let price = pi_price * n as f64;
            rows.push(vec![
                workload.name().to_string(),
                format!("{n} pi"),
                format!("${price:.0}"),
                fmt(t),
                fmt(price * t),
                fmt(e),
            ]);
        }
    }
    sink.table(
        "fig11_perf_per_dollar",
        "Figure 11: average time per generation (s), price-performance product, energy",
        &[
            "workload",
            "platform",
            "price",
            "s/generation",
            "PPP ($*s)",
            "J/generation",
        ],
        &rows,
    )?;

    // Headline PPP claims on the large workload.
    let jetson = serial_time(Workload::AirRaid, PlatformKind::JetsonCpu);
    let hpc = serial_time(Workload::AirRaid, PlatformKind::HpcCpu);
    let six_pi = swarm_time(Workload::AirRaid, 6);
    let fifteen_pi = swarm_time(Workload::AirRaid, 15);
    let ppp_vs_jetson = (600.0 * jetson) / (240.0 * six_pi);
    let ppp_vs_hpc = (1500.0 * hpc) / (600.0 * fifteen_pi);
    sink.note(&format!(
        "Airraid: 6 Pis {six_pi:.1}s vs Jetson CPU {jetson:.1}s -> PPP benefit {ppp_vs_jetson:.1}x (paper: 2.5x)"
    ));
    sink.note(&format!(
        "Airraid: 15 Pis {fifteen_pi:.1}s vs HPC CPU {hpc:.1}s -> PPP benefit {ppp_vs_hpc:.1}x (paper: 1.2x)"
    ));
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn swarm_achieves_ppp_benefit_on_large_workload() {
        let jetson = serial_time(Workload::AirRaid, PlatformKind::JetsonCpu);
        let six_pi = swarm_time(Workload::AirRaid, 6);
        let ppp = (600.0 * jetson) / (240.0 * six_pi);
        assert!(ppp > 1.5, "6-Pi swarm should win on PPP: {ppp:.2}x");
    }

    #[test]
    fn cartpole_swarm_not_competitive() {
        // "Performance is not comparable for extremely small workloads."
        let one = swarm_time(Workload::CartPole, 1);
        let ten = swarm_time(Workload::CartPole, 10);
        let speedup = one / ten;
        assert!(
            speedup < 8.0,
            "communication should cap small-workload speedup: {speedup:.1}x"
        );
    }
}
