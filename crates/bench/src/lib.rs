//! # clan-bench — the paper's evaluation, regenerated
//!
//! One module per table/figure of the CLAN paper (ISPASS 2020). Each
//! module exposes `run(&OutputSink) -> io::Result<()>` that executes the
//! experiment, prints the same rows/series the paper plots, and writes a
//! CSV under `results/`. Thin binaries (`fig3` .. `fig11`, `table4`,
//! `run_all`) wrap these, so the whole evaluation reproduces with:
//!
//! ```text
//! cargo run -p clan-bench --release --bin run_all
//! ```
//!
//! Absolute times come from the calibrated platform models (`clan-hw`);
//! the claims under test are the *shapes*: who wins, by what factor, and
//! where the crossovers fall. `EXPERIMENTS.md` records paper-vs-measured
//! values per experiment.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ablation;
pub mod eval_perf;
pub mod fig10;
pub mod fig11;
pub mod fig3;
pub mod fig4;
pub mod fig5;
pub mod fig6;
pub mod fig7;
pub mod fig8;
pub mod fig9;
pub mod output;
pub mod table4;

pub use output::OutputSink;

/// The master seed shared by every experiment (reproducibility).
pub const BENCH_SEED: u64 = 20200824;

/// The paper's population size.
pub const POPULATION: usize = 150;
