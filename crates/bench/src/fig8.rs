//! Figure 8 — compute-share breakdown (Evolution / Inference /
//! Communication) under single-step inference with two nodes.
//!
//! Single-step inference removes the multi-timestep crutch that hides
//! evolution and communication costs. Paper numbers for Airraid-ram-v0:
//! communication is ~36% of DCS, ~50% of DDS, and only ~22% of DDA
//! (3.6x less than DDS); for Cartpole-v0 communication swamps everything
//! (~93%) in every configuration.

use crate::output::{fmt, OutputSink};
use crate::{BENCH_SEED, POPULATION};
use clan_core::{ClanDriver, ClanTopology};
use clan_distsim::ShareBreakdown;
use clan_envs::Workload;
use std::io;

const AGENTS: usize = 2;
const GENERATIONS: u64 = 6;

fn shares(workload: Workload, topology: ClanTopology) -> ShareBreakdown {
    let report = ClanDriver::builder(workload)
        .topology(topology)
        .agents(AGENTS)
        .population_size(POPULATION)
        .seed(BENCH_SEED)
        .single_step()
        .build()
        .expect("valid driver config")
        .run(GENERATIONS)
        .expect("run");
    report.mean_timeline.shares()
}

/// Runs the share analysis on both panels' workloads.
///
/// # Errors
///
/// Propagates output failures.
pub fn run(sink: &OutputSink) -> io::Result<()> {
    let mut rows = Vec::new();
    let mut comm_share = std::collections::BTreeMap::new();
    for workload in [Workload::CartPole, Workload::AirRaid] {
        for topology in [
            ClanTopology::dcs(),
            ClanTopology::dds(),
            ClanTopology::dda(AGENTS),
        ] {
            let s = shares(workload, topology);
            comm_share.insert((workload.name(), topology.name()), s.communication);
            rows.push(vec![
                workload.name().to_string(),
                topology.name(),
                fmt(100.0 * s.evolution),
                fmt(100.0 * s.inference),
                fmt(100.0 * s.communication),
            ]);
        }
    }
    sink.table(
        "fig8_compute_share",
        "Figure 8: compute share (%) with single-step inference, 2 nodes",
        &[
            "workload",
            "config",
            "evolution %",
            "inference %",
            "communication %",
        ],
        &rows,
    )?;

    let air = |c: &str| comm_share[&("Airraid-ram-v0", c.to_string())];
    let ratio = air("CLAN_DDS") / air("CLAN_DDA");
    sink.note(&format!(
        "Airraid communication share: DCS {:.0}% / DDS {:.0}% / DDA {:.0}% — DDS/DDA ratio {:.1}x (paper: 3.6x)",
        100.0 * air("CLAN_DCS"),
        100.0 * air("CLAN_DDS"),
        100.0 * air("CLAN_DDA"),
        ratio
    ));
    let cart_dcs = comm_share[&("Cartpole-v0", "CLAN_DCS".to_string())];
    sink.note(&format!(
        "Cartpole communication share under DCS: {:.0}% (paper: ~93% — tiny compute cannot amortize channel costs)",
        100.0 * cart_dcs
    ));
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dda_comm_share_smallest_on_large_workload() {
        let dcs = shares(Workload::AirRaid, ClanTopology::dcs()).communication;
        let dds = shares(Workload::AirRaid, ClanTopology::dds()).communication;
        let dda = shares(Workload::AirRaid, ClanTopology::dda(AGENTS)).communication;
        assert!(dda < dcs, "DDA {dda:.2} should beat DCS {dcs:.2}");
        assert!(dda < dds, "DDA {dda:.2} should beat DDS {dds:.2}");
        assert!(dds / dda > 2.0, "DDS/DDA share ratio should be large");
    }

    #[test]
    fn small_workload_is_communication_bound() {
        let s = shares(Workload::CartPole, ClanTopology::dcs());
        assert!(
            s.communication > 0.5,
            "single-step Cartpole must be comm-dominated: {:.2}",
            s.communication
        );
    }
}
