//! Output plumbing shared by the figure binaries: stdout tables + CSVs.

use clan_core::report::text_table;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// Where experiment output goes: pretty tables to stdout, raw series to
/// CSV files under a results directory.
#[derive(Debug, Clone)]
pub struct OutputSink {
    results_dir: PathBuf,
}

impl OutputSink {
    /// Creates a sink writing CSVs under `results_dir` (created if
    /// missing).
    ///
    /// # Errors
    ///
    /// Propagates directory-creation failures.
    pub fn new<P: AsRef<Path>>(results_dir: P) -> io::Result<OutputSink> {
        fs::create_dir_all(&results_dir)?;
        Ok(OutputSink {
            results_dir: results_dir.as_ref().to_path_buf(),
        })
    }

    /// Default sink: `results/` under the current directory.
    ///
    /// # Errors
    ///
    /// Propagates directory-creation failures.
    pub fn default_dir() -> io::Result<OutputSink> {
        OutputSink::new("results")
    }

    /// The directory CSVs are written to.
    pub fn results_dir(&self) -> &Path {
        &self.results_dir
    }

    /// Prints a titled table to stdout and writes it as `name.csv`.
    ///
    /// # Errors
    ///
    /// Propagates file-write failures.
    pub fn table(
        &self,
        name: &str,
        title: &str,
        headers: &[&str],
        rows: &[Vec<String>],
    ) -> io::Result<()> {
        println!("\n=== {title} ===");
        print!("{}", text_table(headers, rows));
        let mut csv = String::new();
        csv.push_str(&headers.join(","));
        csv.push('\n');
        for row in rows {
            csv.push_str(&row.join(","));
            csv.push('\n');
        }
        fs::write(self.results_dir.join(format!("{name}.csv")), csv)
    }

    /// Prints a free-form note to stdout.
    pub fn note(&self, text: &str) {
        println!("{text}");
    }
}

/// Formats a float with sensible precision for tables.
pub fn fmt(v: f64) -> String {
    if v == 0.0 {
        "0".to_string()
    } else if v.abs() >= 1000.0 {
        format!("{v:.0}")
    } else if v.abs() >= 1.0 {
        format!("{v:.2}")
    } else {
        format!("{v:.4}")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sink_writes_csv() {
        let dir = std::env::temp_dir().join("clan-bench-test-sink");
        let sink = OutputSink::new(&dir).unwrap();
        sink.table("t", "Test", &["a", "b"], &[vec!["1".into(), "2".into()]])
            .unwrap();
        let csv = std::fs::read_to_string(dir.join("t.csv")).unwrap();
        assert_eq!(csv, "a,b\n1,2\n");
        let _ = std::fs::remove_dir_all(dir);
    }

    #[test]
    fn fmt_precision() {
        assert_eq!(fmt(0.0), "0");
        assert_eq!(fmt(1234.6), "1235");
        assert_eq!(fmt(12.345), "12.35");
        assert_eq!(fmt(0.01234), "0.0123");
    }
}
