//! Figure 9 — scaling beyond the 15-Pi testbed (up to 100 units),
//! Airraid-ram-v0.
//!
//! The paper extrapolates measured trends; our cluster model is analytic,
//! so we simply run it at the larger sizes. Expected shapes:
//!
//! - (a) single-step: both configurations stop improving around 10
//!   units; DCS drops below the serial baseline near 40 units while DDA
//!   holds on until ~65, averaging ~2x faster than DCS;
//! - (b) multi-step: total time stagnates around 50 units, DDA ~1.1x
//!   ahead of DCS throughout.

use crate::output::{fmt, OutputSink};
use crate::{BENCH_SEED, POPULATION};
use clan_core::{ClanDriver, ClanTopology, InferenceMode, RunReport};
use clan_distsim::GenerationTimeline;
use clan_envs::Workload;
use std::io;

const GENERATIONS: u64 = 3;
const SINGLE_STEP_SCALES: [usize; 10] = [1, 6, 12, 24, 30, 40, 50, 60, 80, 100];
const MULTI_STEP_SCALES: [usize; 7] = [15, 24, 35, 45, 60, 80, 100];

fn run_at(topology: ClanTopology, agents: usize, mode: InferenceMode) -> RunReport {
    // Beyond 75 DDA clans a population of 150 leaves clans below the
    // 2-genome minimum; grow the population just enough, mirroring the
    // paper's reduced-population emulation of higher scale (§IV-D).
    let population = POPULATION.max(2 * agents);
    let mut b = ClanDriver::builder(Workload::AirRaid)
        .topology(topology)
        .agents(agents)
        .population_size(population)
        .seed(BENCH_SEED);
    if mode == InferenceMode::SingleStep {
        b = b.single_step();
    }
    b.build()
        .expect("valid driver config")
        .run(GENERATIONS)
        .expect("run")
}

fn topo_for(kind: &str, agents: usize) -> ClanTopology {
    if agents == 1 {
        ClanTopology::serial()
    } else if kind == "DCS" {
        ClanTopology::dcs()
    } else {
        ClanTopology::dda(agents)
    }
}

/// `(timeline, total)` means at one scale point.
fn point(kind: &str, agents: usize, mode: InferenceMode) -> (GenerationTimeline, f64) {
    let r = run_at(topo_for(kind, agents), agents, mode);
    let t = r.mean_timeline;
    (t, t.total_s())
}

/// Runs both extrapolation panels.
///
/// # Errors
///
/// Propagates output failures.
pub fn run(sink: &OutputSink) -> io::Result<()> {
    // (a) single-step, total time + components.
    let serial_total = point("DCS", 1, InferenceMode::SingleStep).1;
    let mut rows = Vec::new();
    let mut dcs_cross = None;
    let mut dda_cross = None;
    let mut ratio_sum = 0.0;
    let mut ratio_n = 0;
    for &n in &SINGLE_STEP_SCALES {
        let (t_dcs, dcs_total) = point("DCS", n, InferenceMode::SingleStep);
        let (t_dda, dda_total) = point("DDA", n, InferenceMode::SingleStep);
        if n > 1 {
            if dcs_total > serial_total && dcs_cross.is_none() {
                dcs_cross = Some(n);
            }
            if dda_total > serial_total && dda_cross.is_none() {
                dda_cross = Some(n);
            }
            ratio_sum += dcs_total / dda_total;
            ratio_n += 1;
        }
        rows.push(vec![
            n.to_string(),
            fmt(dcs_total),
            fmt(t_dcs.communication_s),
            fmt(dda_total),
            fmt(t_dda.communication_s),
            fmt(serial_total),
        ]);
    }
    sink.table(
        "fig9a_single_step_scaling",
        "Figure 9a: Airraid single-step total time vs units (s)",
        &[
            "units",
            "T-CLAN_DCS",
            "C-CLAN_DCS",
            "T-CLAN_DDA",
            "C-CLAN_DDA",
            "serial",
        ],
        &rows,
    )?;
    sink.note(&format!(
        "Single-step: DCS falls below serial at {:?} units (paper: ~40); DDA at {:?} (paper: ~65); mean DCS/DDA total ratio {:.2}x (paper: ~2x)",
        dcs_cross, dda_cross, ratio_sum / ratio_n.max(1) as f64
    ));

    // (b) multi-step, evolution/inference components.
    let mut rows_b = Vec::new();
    for &n in &MULTI_STEP_SCALES {
        let (t_dcs, dcs_total) = point("DCS", n, InferenceMode::MultiStep);
        let (t_dda, dda_total) = point("DDA", n, InferenceMode::MultiStep);
        rows_b.push(vec![
            n.to_string(),
            fmt(t_dcs.evolution_s),
            fmt(t_dda.evolution_s),
            fmt(t_dcs.inference_s),
            fmt(dcs_total),
            fmt(dda_total),
        ]);
    }
    sink.table(
        "fig9b_multi_step_scaling",
        "Figure 9b: Airraid multi-step component times vs units (s)",
        &[
            "units",
            "E-CLAN_DCS",
            "E-CLAN_DDA",
            "I-CLAN_DDA/DCS",
            "T-CLAN_DCS",
            "T-CLAN_DDA",
        ],
        &rows_b,
    )?;
    sink.note("Multi-step: DDA total stays below DCS throughout the scale (paper: ~1.1x better).");
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dda_beats_dcs_in_total_time() {
        for n in [12usize, 40] {
            let dcs = point("DCS", n, InferenceMode::SingleStep).1;
            let dda = point("DDA", n, InferenceMode::SingleStep).1;
            assert!(dda < dcs, "{n} units: DDA {dda:.2}s vs DCS {dcs:.2}s");
        }
    }

    #[test]
    fn dcs_eventually_loses_to_serial_dda_lasts_longer() {
        let serial = point("DCS", 1, InferenceMode::SingleStep).1;
        let dcs_100 = point("DCS", 100, InferenceMode::SingleStep).1;
        assert!(
            dcs_100 > serial,
            "at 100 units single-step DCS must be worse than serial"
        );
        let dda_12 = point("DDA", 12, InferenceMode::SingleStep).1;
        assert!(dda_12 < serial, "DDA should still beat serial at 12 units");
    }
}
