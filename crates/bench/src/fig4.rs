//! Figure 4 — breakdown of communication cost (floats transferred per
//! generation) for CLAN_DCS / CLAN_DDS / CLAN_DDA.
//!
//! The paper's counter-intuitive result: distributing reproduction (DDS)
//! *increases* traffic — parent genomes and children ping-pong between
//! agents and the center — while asynchronous speciation (DDA) pays for
//! genomes once at initialization and then sends only fitness scalars.

use crate::output::OutputSink;
use crate::{BENCH_SEED, POPULATION};
use clan_core::{ClanDriver, ClanTopology, RunReport};
use clan_envs::Workload;
use clan_netsim::MessageKind;
use std::io;

const AGENTS: usize = 2;
const GENERATIONS: u64 = 4;

fn run_config(workload: Workload, topology: ClanTopology) -> RunReport {
    ClanDriver::builder(workload)
        .topology(topology)
        .agents(AGENTS)
        .population_size(POPULATION)
        .seed(BENCH_SEED)
        .build()
        .expect("valid driver config")
        .run(GENERATIONS)
        .expect("run")
}

/// Runs the communication breakdown for the paper's four panels.
///
/// # Errors
///
/// Propagates output failures.
pub fn run(sink: &OutputSink) -> io::Result<()> {
    let panels = [
        Workload::CartPole,
        Workload::MountainCar,
        Workload::LunarLander,
        Workload::AirRaid,
    ];
    let mut rows = Vec::new();
    let mut totals: Vec<(String, String, u64)> = Vec::new();
    for workload in panels {
        for topology in [
            ClanTopology::dcs(),
            ClanTopology::dds(),
            ClanTopology::dda(AGENTS),
        ] {
            let report = run_config(workload, topology);
            let per_gen = |floats: u64| floats / GENERATIONS;
            for (kind, entry) in report.ledger.rows() {
                rows.push(vec![
                    workload.name().to_string(),
                    topology.name(),
                    kind.to_string(),
                    per_gen(entry.floats).to_string(),
                ]);
            }
            totals.push((
                workload.name().to_string(),
                topology.name(),
                per_gen(report.ledger.total_floats()),
            ));
        }
    }
    sink.table(
        "fig4_comm_breakdown",
        "Figure 4: floats transferred per generation, by message kind",
        &["workload", "config", "message kind", "floats/generation"],
        &rows,
    )?;

    // Shape checks matching the paper's reading of the figure.
    let total = |w: &str, c: &str| -> u64 {
        totals
            .iter()
            .find(|(tw, tc, _)| tw == w && tc == c)
            .map(|&(_, _, t)| t)
            .expect("config present")
    };
    let mut ok = true;
    for w in panels {
        let dcs = total(w.name(), "CLAN_DCS");
        let dds = total(w.name(), "CLAN_DDS");
        let dda = total(w.name(), "CLAN_DDA");
        ok &= dds > dcs && dda < dcs / 2;
        sink.note(&format!(
            "{}: DCS {dcs} / DDS {dds} / DDA {dda} floats per generation (DDS/DDA = {:.0}x)",
            w.name(),
            dds as f64 / dda.max(1) as f64
        ));
    }
    sink.note(if ok {
        "PAPER CLAIM HOLDS: DDS > DCS >> DDA communication on every workload"
    } else {
        "WARNING: communication ordering deviates from the paper"
    });

    // DDA's traffic after initialization is fitness-only.
    let report = run_config(Workload::CartPole, ClanTopology::dda(AGENTS));
    let genome_floats = report.ledger.entry(MessageKind::SendGenomes).floats;
    sink.note(&format!(
        "DDA pays genome transfer only at initialization: {genome_floats} floats total across {GENERATIONS} generations"
    ));
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dds_exceeds_dcs_exceeds_dda() {
        let dcs = run_config(Workload::CartPole, ClanTopology::dcs());
        let dds = run_config(Workload::CartPole, ClanTopology::dds());
        let dda = run_config(Workload::CartPole, ClanTopology::dda(AGENTS));
        assert!(dds.ledger.total_floats() > dcs.ledger.total_floats());
        assert!(dcs.ledger.total_floats() > dda.ledger.total_floats());
    }
}
