//! Evaluation-engine throughput tracking: measures the inference hot
//! path against a reconstruction of the seed implementation, serially
//! and at several thread counts, and emits `BENCH_eval.json` so the
//! performance trajectory is comparable across PRs.
//!
//! Three measurements:
//!
//! 1. **Activation micro** — ns per forward pass: the seed-style path
//!    (three heap allocations per step, see [`seed_baseline`]), the
//!    compatibility tier (`activate`), and the zero-allocation tier
//!    (`activate_into`).
//! 2. **Compile micro** — ns per genome compilation: seed-style
//!    `BTreeMap` plumbing vs. the indexed-`Vec` passes.
//! 3. **Throughput** — evaluation-only and full-generation genomes/sec
//!    and env-steps/sec at 1/2/4/8 worker threads. Thread counts above
//!    `host_cpus` cannot speed anything up (the report records the host
//!    so cross-PR numbers are interpreted correctly); results are
//!    bit-identical at every thread count regardless.

use clan_core::transport::agent::serve_session;
use clan_core::transport::{
    channel_pair, datagram_channel_pair, ClusterSpec, DelayTransport, FaultConfig, FaultyTransport,
    Transport, UdpConfig, UdpTransport,
};
use clan_core::{
    AsyncOrchestrator, EdgeCluster, EngineOptions, Evaluator, InferenceMode, Orchestrator,
    ParallelEvaluator, SerialOrchestrator,
};
use clan_distsim::Cluster;
use clan_envs::Workload;
use clan_hw::Platform;
use clan_neat::network::Scratch;
use clan_neat::{FeedForwardNetwork, Genome, GenomeId, NeatConfig, Population};
use clan_netsim::WifiModel;
use rand::rngs::StdRng;
use rand::SeedableRng;
use serde::{Deserialize, Serialize};
use std::time::{Duration, Instant};

/// Faithful reconstruction of the seed's inference hot path, kept as the
/// measurement baseline: `BTreeMap`-based compilation and an activation
/// that heap-allocates its value, staging, and output buffers on every
/// step. Never used outside benchmarking.
pub mod seed_baseline {
    use clan_neat::activation::{Activation, Aggregation};
    use clan_neat::{Genome, NeatConfig, NodeId};
    use std::collections::{BTreeMap, BTreeSet, VecDeque};

    struct EvalNode {
        bias: f64,
        response: f64,
        activation: Activation,
        aggregation: Aggregation,
        incoming: Vec<(usize, f64)>,
    }

    /// Seed-style compiled network (benchmark baseline only).
    pub struct BaselineNetwork {
        num_inputs: usize,
        nodes: Vec<EvalNode>,
        output_slots: Vec<usize>,
    }

    impl BaselineNetwork {
        /// The seed's map-based compile pass.
        pub fn compile(genome: &Genome, cfg: &NeatConfig) -> BaselineNetwork {
            let outputs: BTreeSet<NodeId> = (0..cfg.num_outputs).map(NodeId::output).collect();
            let mut rev: BTreeMap<NodeId, Vec<NodeId>> = BTreeMap::new();
            for (key, gene) in genome.conns() {
                if gene.enabled {
                    rev.entry(key.output).or_default().push(key.input);
                }
            }
            let mut required: BTreeSet<NodeId> = BTreeSet::new();
            let mut queue: VecDeque<NodeId> = outputs.iter().copied().collect();
            while let Some(n) = queue.pop_front() {
                if n.is_input() || !required.insert(n) {
                    continue;
                }
                if let Some(srcs) = rev.get(&n) {
                    queue.extend(srcs.iter().copied());
                }
            }
            let mut indeg: BTreeMap<NodeId, usize> = required.iter().map(|&n| (n, 0)).collect();
            let mut adj: BTreeMap<NodeId, Vec<NodeId>> = BTreeMap::new();
            for (key, gene) in genome.conns() {
                if !gene.enabled || !required.contains(&key.output) {
                    continue;
                }
                if !key.input.is_input() && !required.contains(&key.input) {
                    continue;
                }
                if !key.input.is_input() {
                    *indeg.get_mut(&key.output).expect("required node") += 1;
                    adj.entry(key.input).or_default().push(key.output);
                }
            }
            let mut order: Vec<NodeId> = Vec::with_capacity(required.len());
            let mut ready: VecDeque<NodeId> = indeg
                .iter()
                .filter(|&(_, &d)| d == 0)
                .map(|(&n, _)| n)
                .collect();
            while let Some(n) = ready.pop_front() {
                order.push(n);
                if let Some(nexts) = adj.get(&n) {
                    for &m in nexts {
                        let d = indeg.get_mut(&m).expect("required node");
                        *d -= 1;
                        if *d == 0 {
                            ready.push_back(m);
                        }
                    }
                }
            }
            let slot_of = |n: NodeId, node_slots: &BTreeMap<NodeId, usize>| -> usize {
                if n.is_input() {
                    (-n.0 - 1) as usize
                } else {
                    node_slots[&n]
                }
            };
            let mut node_slots: BTreeMap<NodeId, usize> = BTreeMap::new();
            for (i, &n) in order.iter().enumerate() {
                node_slots.insert(n, cfg.num_inputs + i);
            }
            let mut incoming_of: BTreeMap<NodeId, Vec<(usize, f64)>> = BTreeMap::new();
            for (key, cg) in genome.conns() {
                if cg.enabled
                    && required.contains(&key.output)
                    && (key.input.is_input() || required.contains(&key.input))
                {
                    incoming_of
                        .entry(key.output)
                        .or_default()
                        .push((slot_of(key.input, &node_slots), cg.weight));
                }
            }
            let mut nodes = Vec::with_capacity(order.len());
            for &n in &order {
                let gene = genome.nodes()[&n];
                nodes.push(EvalNode {
                    bias: gene.bias,
                    response: gene.response,
                    activation: gene.activation,
                    aggregation: gene.aggregation,
                    incoming: incoming_of.remove(&n).unwrap_or_default(),
                });
            }
            let output_slots = (0..cfg.num_outputs)
                .map(|o| node_slots[&NodeId::output(o)])
                .collect();
            BaselineNetwork {
                num_inputs: cfg.num_inputs,
                nodes,
                output_slots,
            }
        }

        /// The seed's activation: three heap allocations per call.
        pub fn activate(&self, inputs: &[f64]) -> Vec<f64> {
            let mut values = vec![0.0f64; self.num_inputs + self.nodes.len()];
            values[..self.num_inputs].copy_from_slice(inputs);
            let mut weighted = Vec::new();
            for (i, node) in self.nodes.iter().enumerate() {
                weighted.clear();
                weighted.extend(node.incoming.iter().map(|&(slot, w)| values[slot] * w));
                let agg = node.aggregation.apply(&weighted);
                values[self.num_inputs + i] =
                    node.activation.apply(node.bias + node.response * agg);
            }
            self.output_slots.iter().map(|&s| values[s]).collect()
        }
    }
}

/// Throughput at one thread count.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ThreadedThroughput {
    /// Worker threads used (1 = serial engine).
    pub threads: usize,
    /// Genome evaluations per wall-clock second.
    pub genomes_per_s: f64,
    /// Environment steps (network activations) per wall-clock second.
    pub steps_per_s: f64,
    /// Speedup over the single-thread row.
    pub speedup: f64,
    /// True when `threads` exceeds the host's CPUs: no speedup is
    /// physically possible, so a flat row is expected, not a regression.
    #[serde(default)]
    pub flat_expected: bool,
}

/// Full-generation throughput at one thread count. Distinct from
/// [`ThreadedThroughput`] because the per-work unit here is *inference
/// genes* (the paper's exact cost metric), not env steps — the two must
/// never be compared under one field name.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GenerationThroughput {
    /// Worker threads used (1 = serial engine).
    pub threads: usize,
    /// Genome evaluations per wall-clock second.
    pub genomes_per_s: f64,
    /// Inference genes processed per wall-clock second.
    pub inference_genes_per_s: f64,
    /// Speedup over the single-thread row.
    pub speedup: f64,
    /// True when `threads` exceeds the host's CPUs: no speedup is
    /// physically possible, so a flat row is expected, not a regression.
    #[serde(default)]
    pub flat_expected: bool,
}

/// Per-step activation cost across the three implementations.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ActivationMicro {
    /// Seed-style path: three heap allocations per step.
    pub seed_baseline_ns: f64,
    /// Compatibility tier (`activate`): thread-local scratch plus one
    /// output `Vec`.
    pub activate_ns: f64,
    /// Zero-allocation tier (`activate_into`).
    pub activate_into_ns: f64,
    /// `seed_baseline_ns / activate_into_ns` — the hot-path win this
    /// overhaul delivers.
    pub speedup_vs_seed: f64,
}

/// Per-genome compilation cost, seed-style maps vs. indexed Vec passes.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CompileMicro {
    /// Seed-style `BTreeMap` compile.
    pub seed_baseline_ns: f64,
    /// Indexed-`Vec` compile.
    pub compile_ns: f64,
    /// `seed_baseline_ns / compile_ns`.
    pub speedup_vs_seed: f64,
}

/// Heterogeneous-cluster scheduling: per-generation makespan with one
/// agent ~4x slower than its three peers, even split vs.
/// throughput-weighted partitioning.
///
/// `measured_*` comes from a real 4-agent channel cluster whose slow
/// agent is wrapped in a work-proportional
/// [`DelayTransport`]; `model_*` is the analytic platform model's
/// barrier time for the same skew. Both should show weighted
/// partitioning beating the even split by roughly the skew's
/// theoretical `(slow + 3·fast)/(4·slow)` factor.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct HeteroBench {
    /// Agents in the skewed cluster.
    pub agents: usize,
    /// Throughput ratio fast:slow.
    pub slow_factor: f64,
    /// Evaluation rounds averaged in the measured numbers.
    pub rounds: u64,
    /// Measured mean per-round makespan, even split, seconds.
    pub measured_even_makespan_s: f64,
    /// Measured mean per-round makespan, weighted split, seconds.
    pub measured_weighted_makespan_s: f64,
    /// `measured_even / measured_weighted`.
    pub measured_speedup: f64,
    /// Modeled barrier inference time, even split, seconds.
    pub model_even_makespan_s: f64,
    /// Modeled barrier inference time, throughput-weighted, seconds.
    pub model_weighted_makespan_s: f64,
    /// `model_even / model_weighted`.
    pub model_speedup: f64,
}

/// Loss-tolerant transport cost at one injected-loss rate: real UDP
/// loopback sockets, seeded drop faults on every link, 2 agents.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LossRow {
    /// Injected datagram-loss probability (each direction).
    pub loss: f64,
    /// Measured mean per-round gather makespan, seconds.
    pub mean_makespan_s: f64,
    /// First-transmission wire bytes over the run.
    pub wire_bytes: u64,
    /// Retransmitted + duplicate bytes the ARQ layer spent recovering.
    pub retrans_bytes: u64,
    /// `retrans_bytes / wire_bytes`.
    pub retrans_overhead: f64,
}

/// Measured transfer time of one frame over an emulated link
/// (bandwidth + per-datagram latency faults) against
/// [`WifiModel::transfer_time_s`] for the same bytes — the validation
/// the ROADMAP's UDP open item asked for.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct WifiValidationRow {
    /// Frame payload size, bytes.
    pub frame_bytes: usize,
    /// Datagrams the frame fragments into at the bench MTU.
    pub datagrams: u64,
    /// Wall-clock seconds from send to reassembled delivery.
    pub measured_transfer_s: f64,
    /// The analytic model's transfer time for the same bytes.
    pub modeled_transfer_s: f64,
    /// `measured / modeled`. ≈ 1 for single-datagram frames; grows with
    /// fragment count because the real stack pays the per-message
    /// latency once per *datagram* while the model charges it once per
    /// *message*.
    pub measured_over_modeled: f64,
}

/// Elastic-membership section of the bench report: the measured cost of
/// surviving an agent kill + replacement join mid-run, against the same
/// run without churn.
///
/// Both runs use the same 4-agent channel cluster and population; the
/// churned one kills one agent before round `kill_round` (its chunk is
/// reassigned to the survivors) and revives a replacement before round
/// `revive_round`. The overhead ratio is the whole-run mean gather
/// makespan churned / clean — the price of losing a quarter of the
/// cluster for two rounds plus the reassignment retries.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChurnBench {
    /// Agents in the cluster.
    pub agents: usize,
    /// Evaluation rounds per run.
    pub rounds: u64,
    /// Round the kill fires before.
    pub kill_round: u64,
    /// Round the replacement joins before.
    pub revive_round: u64,
    /// Clean run's mean per-round gather makespan, seconds.
    pub clean_mean_makespan_s: f64,
    /// Churned run's mean per-round gather makespan, seconds.
    pub churn_mean_makespan_s: f64,
    /// `churn_mean_makespan_s / clean_mean_makespan_s`.
    pub overhead: f64,
    /// Measured wall-clock spent in reassignment retries, seconds.
    pub recovery_s: f64,
    /// Link failures the membership layer observed.
    pub failures: u64,
    /// Chunks reassigned to survivors.
    pub reassigned_chunks: u64,
    /// Genomes inside those chunks.
    pub reassigned_genomes: u64,
}

/// Async steady-state vs. generation-sync scheduling on a skewed
/// cluster: the same evaluation budget over the same 4-agent channel
/// cluster with one agent ~4x slower than its peers, once with the
/// gather barrier (every round waits for the slow agent) and once
/// barrier-free (dispatch-on-completion steady state). The async run
/// should beat the sync makespan and shrink the wasted idle the barrier
/// burns, and the churn variant shows a mid-stream agent death costing
/// only re-dispatched in-flight work, not the run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct AsyncBench {
    /// Agents in the skewed cluster.
    pub agents: usize,
    /// Throughput ratio fast:slow.
    pub slow_factor: f64,
    /// Evaluations completed by each mode.
    pub total_evals: u64,
    /// Generation-sync wall-clock over the budget (summed gather
    /// makespans), seconds.
    pub sync_makespan_s: f64,
    /// `agents x makespan - busy` for the sync run: idle the barrier
    /// forced onto the fast agents, seconds.
    pub sync_wasted_idle_s: f64,
    /// Async steady-state wall-clock over the same budget, seconds.
    pub async_makespan_s: f64,
    /// The async run's wasted idle, seconds.
    pub async_wasted_idle_s: f64,
    /// `sync_makespan_s / async_makespan_s` — the scheduling win.
    pub speedup: f64,
    /// `sync_wasted_idle_s - async_wasted_idle_s`: idle capacity the
    /// barrier-free loop recovered, seconds.
    pub idle_recovered_s: f64,
    /// Churn variant: evaluations re-dispatched after one agent died
    /// mid-stream (must be >= 1 — the death is injected).
    pub churn_redispatches: u64,
    /// Churn variant: evaluations still completed (must reach the same
    /// budget — losing an agent costs work, not the run).
    pub churn_total_evals: u64,
}

/// Batched SoA inference at one lane count, on a shape-homogeneous
/// population (every genome shares one topology, so a single bank packs
/// full lanes — the best case the batched tier is built for).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct BatchRow {
    /// Maximum lanes per SoA bank (1 = the scalar `Scratch` tier).
    pub lanes: usize,
    /// Genome evaluations per wall-clock second.
    pub genomes_per_s: f64,
    /// Speedup over the `lanes = 1` row.
    pub speedup_vs_scalar: f64,
}

/// Tracing-overhead section: the same seeded DCS run twice, tracer off
/// then on. The logical stream is part of the determinism contract, so
/// the traced run must reproduce the untraced result bit-for-bit; the
/// overhead column is the wall-clock price of recording it.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct TelemetryBench {
    /// Generations in each measured run.
    pub generations: u64,
    /// Logical (deterministic-stream) events the traced run recorded.
    pub logical_events: u64,
    /// Timing (wall-clock annotation) events the traced run recorded.
    pub timing_events: u64,
    /// Events recorded per wall-clock second of the traced run.
    pub events_per_s: f64,
    /// Untraced run wall-clock, seconds.
    pub untraced_s: f64,
    /// Traced run wall-clock, seconds.
    pub traced_s: f64,
    /// `100 * (traced_s - untraced_s) / untraced_s`. Noisy at smoke
    /// scale; meaningful on the full profile.
    pub overhead_pct: f64,
    /// Whether the traced run evolved the exact same result as the
    /// untraced one. Must always be true.
    pub bit_identical: bool,
}

/// Fitness-cache effectiveness over a default NEAT run: elites and
/// unmutated survivors recur across generations, so a content-addressed
/// cache should field hits from generation 1 on — without changing a
/// single evaluated bit.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct CacheBench {
    /// Generations in the measured run.
    pub generations: u64,
    /// Cache hits over the run.
    pub hits: u64,
    /// Cache lookups over the run.
    pub lookups: u64,
    /// `hits / lookups`.
    pub hit_rate: f64,
    /// Whether the cache-on run's final population was bit-identical to
    /// a cache-off run of the same seed. Must always be true.
    pub bit_identical: bool,
}

/// Lossy-transport section of the bench report: makespan + retransmitted
/// bytes at several injected loss rates, plus the WifiModel validation.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LossyBench {
    /// Agents in the UDP loopback cluster.
    pub agents: usize,
    /// Evaluation rounds averaged per loss rate.
    pub rounds: u64,
    /// Seed of the injected fault streams.
    pub fault_seed: u64,
    /// One row per injected loss rate (0 / 5 / 20 %).
    pub rows: Vec<LossRow>,
    /// Measured-vs-modeled transfer times on the emulated WiFi link.
    pub wifi: Vec<WifiValidationRow>,
}

/// The full evaluation-performance report.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct EvalPerfReport {
    /// Workload measured.
    pub workload: String,
    /// CPUs available to this process — thread counts beyond this cannot
    /// speed anything up, so cross-PR comparisons must hold it fixed.
    pub host_cpus: usize,
    /// Population size per measurement.
    pub population: usize,
    /// Episodes per genome in the evaluation-throughput measurement.
    pub episodes_per_eval: u32,
    /// Activation microbenchmark on an evolved mid-size genome.
    pub activation: ActivationMicro,
    /// Compilation microbenchmark on the same genome.
    pub compile: CompileMicro,
    /// Evaluation-only throughput (exact step counts) per thread count.
    pub evaluation: Vec<ThreadedThroughput>,
    /// Full-generation throughput (inference + evolution) per thread
    /// count, in inference-genes/sec.
    pub generation: Vec<GenerationThroughput>,
    /// Skewed-cluster makespan: even vs. throughput-weighted splits.
    pub hetero: HeteroBench,
    /// Loss-tolerant UDP transport: cost of injected datagram loss and
    /// the WifiModel transfer-time validation.
    pub lossy: LossyBench,
    /// Elastic membership: measured recovery overhead of an agent kill
    /// + replacement join mid-run.
    pub churn: ChurnBench,
    /// Batched SoA inference vs. the scalar tier at several lane counts.
    #[serde(default)]
    pub batched: Vec<BatchRow>,
    /// Content-addressed fitness-cache hit rate over a default NEAT run,
    /// with the cache-on/cache-off bit-identity check. Defaults to an
    /// all-zero section when absent from older reports.
    #[serde(default)]
    pub cache: CacheBench,
    /// Async steady-state vs. generation-sync scheduling at 4x skew,
    /// plus the mid-stream churn variant. Defaults to an all-zero
    /// section when absent from older reports.
    #[serde(rename = "async", default)]
    pub async_steady: AsyncBench,
    /// Tracing overhead: events/sec and the wall-clock delta of running
    /// the same seeded evolution with the tracer on vs. off. Defaults to
    /// an all-zero section when absent from older reports.
    #[serde(default)]
    pub telemetry: TelemetryBench,
}

/// Cache-off cluster spec: the transport benches re-evaluate one fixed
/// population for several rounds as a workload generator, which the
/// fitness cache would short-circuit after round one.
fn uncached_spec(cfg: &NeatConfig) -> ClusterSpec {
    ClusterSpec::new(Workload::CartPole, InferenceMode::MultiStep, cfg.clone()).with_engine(
        EngineOptions {
            cache: false,
            ..EngineOptions::default()
        },
    )
}

fn evolved_genome(inputs: usize, outputs: usize, mutations: u32) -> (NeatConfig, Genome) {
    let cfg = NeatConfig::builder(inputs, outputs)
        .build()
        .expect("valid config");
    let mut genome = Genome::new_initial(&cfg, GenomeId(0), &mut StdRng::seed_from_u64(7));
    let mut rng = StdRng::seed_from_u64(8);
    for _ in 0..mutations {
        genome.mutate(&cfg, &mut rng);
    }
    (cfg, genome)
}

fn activation_micro(iters: u32) -> ActivationMicro {
    let (cfg, genome) = evolved_genome(8, 4, 60);
    let net = FeedForwardNetwork::compile(&genome, &cfg);
    let baseline = seed_baseline::BaselineNetwork::compile(&genome, &cfg);
    let inputs = [0.4, -0.2, 0.9, 0.0, 0.5, -0.7, 0.1, 1.0];
    let mut sink = 0.0f64;

    let start = Instant::now();
    for _ in 0..iters {
        sink += baseline.activate(std::hint::black_box(&inputs))[0];
    }
    let seed_baseline_ns = start.elapsed().as_nanos() as f64 / f64::from(iters);

    let start = Instant::now();
    for _ in 0..iters {
        sink += net.activate(std::hint::black_box(&inputs))[0];
    }
    let activate_ns = start.elapsed().as_nanos() as f64 / f64::from(iters);

    let mut scratch = Scratch::new();
    let start = Instant::now();
    for _ in 0..iters {
        sink += net.activate_into(std::hint::black_box(&inputs), &mut scratch)[0];
    }
    let activate_into_ns = start.elapsed().as_nanos() as f64 / f64::from(iters);
    std::hint::black_box(sink);

    ActivationMicro {
        seed_baseline_ns,
        activate_ns,
        activate_into_ns,
        speedup_vs_seed: seed_baseline_ns / activate_into_ns.max(1e-9),
    }
}

fn compile_micro(iters: u32) -> CompileMicro {
    let (cfg, genome) = evolved_genome(8, 4, 60);

    let start = Instant::now();
    for _ in 0..iters {
        std::hint::black_box(seed_baseline::BaselineNetwork::compile(
            std::hint::black_box(&genome),
            &cfg,
        ));
    }
    let seed_baseline_ns = start.elapsed().as_nanos() as f64 / f64::from(iters);

    let start = Instant::now();
    for _ in 0..iters {
        std::hint::black_box(FeedForwardNetwork::compile(
            std::hint::black_box(&genome),
            &cfg,
        ));
    }
    let compile_ns = start.elapsed().as_nanos() as f64 / f64::from(iters);

    CompileMicro {
        seed_baseline_ns,
        compile_ns,
        speedup_vs_seed: seed_baseline_ns / compile_ns.max(1e-9),
    }
}

/// Evaluation-only throughput: every genome of a fixed population, with
/// exact step counts from the per-genome evaluations.
fn evaluation_throughput(
    workload: Workload,
    population: usize,
    episodes: u32,
    rounds: u32,
    threads: usize,
) -> (f64, f64) {
    let cfg = NeatConfig::builder(workload.obs_dim(), workload.n_actions())
        .population_size(population)
        .build()
        .expect("valid config");
    let pop = Population::new(cfg, 7);
    let mut steps = 0u64;
    let secs = if threads <= 1 {
        let mut evaluator = Evaluator::with_episodes(workload, InferenceMode::MultiStep, episodes);
        let start = Instant::now();
        for _ in 0..rounds {
            for genome in pop.genomes().values() {
                let net = FeedForwardNetwork::compile(genome, pop.config());
                let seed = evaluator.seed_for(pop.master_seed(), genome);
                steps += evaluator.evaluate(&net, seed).activations;
            }
        }
        start.elapsed().as_secs_f64()
    } else {
        let pool = ParallelEvaluator::spawn(workload, InferenceMode::MultiStep, episodes, threads);
        let start = Instant::now();
        for _ in 0..rounds {
            for (_, eval, _) in pool.evaluate_population(&pop) {
                steps += eval.activations;
            }
        }
        start.elapsed().as_secs_f64()
    }
    .max(1e-9);
    (
        (population as u32 * rounds) as f64 / secs,
        steps as f64 / secs,
    )
}

/// Full-generation throughput (inference + speciation + reproduction).
fn generation_throughput(
    workload: Workload,
    population: usize,
    generations: u64,
    threads: usize,
) -> (f64, f64) {
    let cfg = NeatConfig::builder(workload.obs_dim(), workload.n_actions())
        .population_size(population)
        .build()
        .expect("valid config");
    let mut orchestrator = SerialOrchestrator::new(
        Population::new(cfg, 7),
        Evaluator::with_threads(workload, InferenceMode::MultiStep, 1, threads),
        Cluster::homogeneous(Platform::raspberry_pi(), 1, WifiModel::default()),
    );
    let start = Instant::now();
    let mut genes = 0u64;
    for _ in 0..generations {
        let report = orchestrator.step_generation().expect("generation");
        genes += report.costs.inference_genes;
    }
    let secs = start.elapsed().as_secs_f64().max(1e-9);
    (
        (population as u64 * generations) as f64 / secs,
        genes as f64 / secs,
    )
}

/// Builds a 4-agent channel cluster whose first agent stalls
/// proportionally to the work it receives (a `DelayTransport` on its
/// session), emulating a device ~`slow_factor`x slower than its peers.
fn skewed_channel_cluster(cfg: &NeatConfig, per_kib: Duration, agents: usize) -> EdgeCluster {
    let mut transports: Vec<Box<dyn Transport>> = Vec::with_capacity(agents);
    for i in 0..agents {
        let (coord, mut agent_side) = channel_pair();
        std::thread::Builder::new()
            .name(format!("bench-agent-{i}"))
            .spawn(move || {
                if i == 0 {
                    let mut delayed =
                        DelayTransport::new(agent_side, Duration::ZERO).with_per_kib(per_kib);
                    let _ = serve_session(&mut delayed);
                } else {
                    let _ = serve_session(&mut agent_side);
                }
            })
            .expect("agent thread spawns");
        transports.push(Box::new(coord));
    }
    EdgeCluster::connect_transports(transports, uncached_spec(cfg))
        .expect("channel cluster configures")
}

/// Measures the skewed-cluster makespan win of throughput-weighted
/// partitioning (real runtime + analytic model).
fn hetero_bench(population: usize, rounds: u64) -> HeteroBench {
    const AGENTS: usize = 4;
    const SLOW_FACTOR: f64 = 4.0;
    let per_kib = Duration::from_millis(10);
    let cfg = NeatConfig::builder(Workload::CartPole.obs_dim(), Workload::CartPole.n_actions())
        .population_size(population)
        .build()
        .expect("valid config");

    let run = |weights: Option<[f64; AGENTS]>| -> f64 {
        let mut cluster = skewed_channel_cluster(&cfg, per_kib, AGENTS);
        if let Some(w) = weights {
            cluster.set_weights(&w).expect("valid weights");
        }
        let mut pop = Population::new(cfg.clone(), 7);
        for _ in 0..rounds {
            cluster.evaluate(&mut pop).expect("cluster evaluates");
        }
        let stats = cluster.gather_stats();
        cluster.shutdown();
        stats.mean_makespan_s()
    };
    let measured_even = run(None);
    let measured_weighted = run(Some([1.0, SLOW_FACTOR, SLOW_FACTOR, SLOW_FACTOR]));

    // Analytic counterpart: same skew through the platform model.
    let slow = Platform::raspberry_pi();
    let fast = Platform {
        inference_genes_per_sec: slow.inference_genes_per_sec * SLOW_FACTOR,
        ..slow
    };
    let cluster = Cluster::new(slow, vec![slow, fast, fast, fast], WifiModel::default());
    let genes = 200_000usize;
    let as_genes = |counts: Vec<usize>| counts.iter().map(|&c| c as u64).collect::<Vec<u64>>();
    let model_even = cluster.parallel_inference_time_s(&as_genes(cluster.partition(genes)));
    let model_weighted =
        cluster.parallel_inference_time_s(&as_genes(cluster.partition_by_throughput(genes)));

    HeteroBench {
        agents: AGENTS,
        slow_factor: SLOW_FACTOR,
        rounds,
        measured_even_makespan_s: measured_even,
        measured_weighted_makespan_s: measured_weighted,
        measured_speedup: measured_even / measured_weighted.max(1e-9),
        model_even_makespan_s: model_even,
        model_weighted_makespan_s: model_weighted,
        model_speedup: model_even / model_weighted.max(1e-9),
    }
}

/// Measures the loss-tolerant UDP transport: per-round gather makespan
/// and retransmission overhead at 0 / 5 / 20 % injected datagram loss
/// (real loopback UDP sockets, seeded faults), plus measured transfer
/// times on an emulated link with the paper's WiFi constants compared
/// against [`WifiModel::transfer_time_s`].
fn lossy_bench(population: usize, rounds: u64) -> LossyBench {
    const AGENTS: usize = 2;
    const FAULT_SEED: u64 = 7;
    let cfg = NeatConfig::builder(Workload::CartPole.obs_dim(), Workload::CartPole.n_actions())
        .population_size(population)
        .build()
        .expect("valid config");

    let udp_cfg = |loss: f64| {
        let base = UdpConfig::default()
            .with_mtu(1024)
            .with_retransmit_interval_s(0.01)
            .with_idle_timeout_s(30.0);
        if loss > 0.0 {
            base.with_faults(FaultConfig::loss(loss).with_seed(FAULT_SEED))
        } else {
            base
        }
    };
    let rows = [0.0, 0.05, 0.2]
        .into_iter()
        .map(|loss| {
            let spec = uncached_spec(&cfg);
            let mut cluster = EdgeCluster::spawn_local_udp_cfg(AGENTS, spec, udp_cfg(loss))
                .expect("UDP loopback cluster binds");
            let mut pop = Population::new(cfg.clone(), 7);
            for _ in 0..rounds {
                cluster.evaluate(&mut pop).expect("cluster evaluates");
            }
            let makespan = cluster.gather_stats().mean_makespan_s();
            let wire = cluster.ledger().total_wire_bytes();
            let retrans = cluster.ledger().total_retrans_bytes();
            cluster.shutdown();
            LossRow {
                loss,
                mean_makespan_s: makespan,
                wire_bytes: wire,
                retrans_bytes: retrans,
                retrans_overhead: retrans as f64 / wire.max(1) as f64,
            }
        })
        .collect();

    // WifiModel validation: a frame through an in-process datagram link
    // whose fault wrapper charges the paper's measured bandwidth and
    // per-datagram latency. One datagram ≈ one modeled message; a
    // fragmented frame shows the per-datagram latency the analytic
    // model does not charge.
    let wifi_model = WifiModel::default();
    let mtu = 1024usize;
    let wifi = [512usize, 16 * 1024]
        .into_iter()
        .map(|frame_bytes| {
            let medium = FaultConfig::default()
                .with_delay_s(wifi_model.base_latency_s)
                .with_bandwidth_bps(wifi_model.bandwidth_bps);
            let link_cfg = UdpConfig::default()
                .with_mtu(mtu)
                .with_retransmit_interval_s(5.0) // no spurious retransmits
                .with_idle_timeout_s(30.0);
            let (a, b) = datagram_channel_pair();
            let mut sender = UdpTransport::with_config(FaultyTransport::new(a, medium), &link_cfg);
            let mut receiver = UdpTransport::with_config(b, &link_cfg);
            let frame = vec![0xA5u8; frame_bytes];
            let start = Instant::now();
            sender.send_frame(&frame).expect("emulated send");
            let got = receiver.recv_frame().expect("emulated recv");
            let measured = start.elapsed().as_secs_f64();
            assert_eq!(got.len(), frame_bytes);
            let modeled = wifi_model.transfer_time_s(frame_bytes as u64);
            WifiValidationRow {
                frame_bytes,
                datagrams: frame_bytes.div_ceil(mtu).max(1) as u64,
                measured_transfer_s: measured,
                modeled_transfer_s: modeled,
                measured_over_modeled: measured / modeled,
            }
        })
        .collect();

    LossyBench {
        agents: AGENTS,
        rounds,
        fault_seed: FAULT_SEED,
        rows,
        wifi,
    }
}

/// Measures the cost of surviving an agent kill + replacement join
/// mid-run (see [`ChurnBench`]): the same evaluation workload over a
/// 4-agent channel cluster, once clean and once with a
/// [`ChurnSchedule`] killing agent 1 early and reviving it two rounds
/// later.
fn churn_bench(population: usize, rounds: u64) -> ChurnBench {
    use clan_core::transport::ChurnSchedule;
    const AGENTS: usize = 4;
    let rounds = rounds.max(5);
    let kill_round = 1;
    let revive_round = 3;
    let cfg = NeatConfig::builder(Workload::CartPole.obs_dim(), Workload::CartPole.n_actions())
        .population_size(population)
        .build()
        .expect("valid config");

    let run = |churn: Option<ChurnSchedule>| {
        let mut cluster =
            EdgeCluster::spawn_spec(AGENTS, uncached_spec(&cfg)).expect("channel cluster spawns");
        if let Some(plan) = churn {
            cluster.set_churn(plan).expect("plan fits cluster");
        }
        let mut pop = Population::new(cfg.clone(), 7);
        for _ in 0..rounds {
            cluster.evaluate(&mut pop).expect("cluster evaluates");
        }
        let makespan = cluster.gather_stats().mean_makespan_s();
        let recovery = cluster.recovery_stats();
        cluster.shutdown();
        (makespan, recovery)
    };
    let (clean_makespan, _) = run(None);
    let (churn_makespan, recovery) = run(Some(
        ChurnSchedule::new()
            .kill(1, kill_round)
            .revive(1, revive_round),
    ));

    ChurnBench {
        agents: AGENTS,
        rounds,
        kill_round,
        revive_round,
        clean_mean_makespan_s: clean_makespan,
        churn_mean_makespan_s: churn_makespan,
        overhead: churn_makespan / clean_makespan.max(1e-9),
        recovery_s: recovery.recovery_s,
        failures: recovery.failures,
        reassigned_chunks: recovery.reassigned_chunks,
        reassigned_genomes: recovery.reassigned_items,
    }
}

/// Coordinator-side transport wrapper that serves `survive_recvs`
/// responses and then fails every call with a churn-class
/// [`ClanError::Transport`] — a deterministic mid-stream agent death,
/// below the recovery layer, for benching async re-dispatch.
struct DyingTransport<T: Transport> {
    inner: T,
    recvs_left: usize,
}

impl<T: Transport> Transport for DyingTransport<T> {
    fn send_frame(&mut self, frame: &[u8]) -> Result<(), clan_core::ClanError> {
        if self.recvs_left == 0 {
            return Err(clan_core::ClanError::Transport {
                peer: self.inner.peer(),
                reason: "bench-injected mid-stream death".into(),
            });
        }
        self.inner.send_frame(frame)
    }

    fn recv_frame(&mut self) -> Result<Vec<u8>, clan_core::ClanError> {
        if self.recvs_left == 0 {
            return Err(clan_core::ClanError::Transport {
                peer: self.inner.peer(),
                reason: "bench-injected mid-stream death".into(),
            });
        }
        self.recvs_left -= 1;
        self.inner.recv_frame()
    }

    fn peer(&self) -> String {
        self.inner.peer()
    }
}

/// A 4-agent channel cluster whose first agent dies after serving
/// `survive_recvs` responses (see [`DyingTransport`]).
fn dying_channel_cluster(cfg: &NeatConfig, agents: usize, survive_recvs: usize) -> EdgeCluster {
    let mut transports: Vec<Box<dyn Transport>> = Vec::with_capacity(agents);
    for i in 0..agents {
        let (coord, mut agent_side) = channel_pair();
        std::thread::Builder::new()
            .name(format!("bench-dying-agent-{i}"))
            .spawn(move || {
                let _ = serve_session(&mut agent_side);
            })
            .expect("agent thread spawns");
        if i == 0 {
            transports.push(Box::new(DyingTransport {
                inner: coord,
                recvs_left: survive_recvs,
            }));
        } else {
            transports.push(Box::new(coord));
        }
    }
    EdgeCluster::connect_transports(transports, uncached_spec(cfg))
        .expect("channel cluster configures")
}

/// Measures the async steady-state scheduling win (see [`AsyncBench`]):
/// the same eval budget over the same skewed 4-agent channel cluster,
/// generation-sync vs. barrier-free, plus a churn variant where one
/// agent dies mid-stream and its in-flight work is re-dispatched.
fn async_bench(population: usize, rounds: u64) -> AsyncBench {
    const AGENTS: usize = 4;
    const SLOW_FACTOR: f64 = 4.0;
    let per_kib = Duration::from_millis(10);
    let cfg = NeatConfig::builder(Workload::CartPole.obs_dim(), Workload::CartPole.n_actions())
        .population_size(population)
        .build()
        .expect("valid config");
    let total_evals = population as u64 * rounds;

    // Generation-sync side: `rounds` gather rounds of the full
    // population, every round barriered on the 4x-slower agent.
    let mut cluster = skewed_channel_cluster(&cfg, per_kib, AGENTS);
    let mut pop = Population::new(cfg.clone(), 7);
    for _ in 0..rounds {
        cluster.evaluate(&mut pop).expect("cluster evaluates");
    }
    let sync = cluster.gather_stats();
    cluster.shutdown();
    let sync_wasted = (AGENTS as f64 * sync.makespan_s - sync.busy_s).max(0.0);

    // Async side: same budget, same skew, dispatch-on-completion.
    let run_stream = |cluster: EdgeCluster, seed: u64| {
        let evaluator =
            Evaluator::new(Workload::CartPole, InferenceMode::MultiStep).with_remote(cluster);
        let mut orch = AsyncOrchestrator::new(
            Population::new(cfg.clone(), seed),
            evaluator,
            total_evals,
            3,
        )
        .expect("valid async setup");
        orch.run_streamed().expect("stream completes");
        orch.stats().expect("run finished").clone()
    };
    let stats = run_stream(skewed_channel_cluster(&cfg, per_kib, AGENTS), 7);

    // Churn variant: agent 0 dies mid-stream; the in-flight genome is
    // re-dispatched to a survivor and the budget still completes.
    let survive = (population / 4).max(2);
    let churn = run_stream(dying_channel_cluster(&cfg, AGENTS, survive), 11);

    AsyncBench {
        agents: AGENTS,
        slow_factor: SLOW_FACTOR,
        total_evals,
        sync_makespan_s: sync.makespan_s,
        sync_wasted_idle_s: sync_wasted,
        async_makespan_s: stats.makespan_s,
        async_wasted_idle_s: stats.wasted_idle_s,
        speedup: sync.makespan_s / stats.makespan_s.max(1e-9),
        idle_recovered_s: sync_wasted - stats.wasted_idle_s,
        churn_redispatches: churn.redispatches,
        churn_total_evals: churn.total_evals,
    }
}

/// Measures batched SoA inference against the scalar tier at several
/// lane counts, on a shape-homogeneous population (cache off — this
/// isolates the activation path).
///
/// The population models a mid-run evolved generation rather than
/// generation 0: one structurally densified template (a few hidden
/// nodes, then many extra connections — edge work is where the SoA
/// kernel wins; per-node activation functions cost the same in both
/// tiers) cloned with per-genome weight/bias jitter. Attribute edits
/// never change the compiled shape, so a single bank packs full lanes.
fn batched_bench(workload: Workload, population: usize, rounds: u32) -> Vec<BatchRow> {
    let cfg = NeatConfig::builder(workload.obs_dim(), workload.n_actions())
        .population_size(population)
        .build()
        .expect("valid config");
    let mut template = Genome::new_initial(&cfg, GenomeId(0), &mut StdRng::seed_from_u64(11));
    let mut rng = StdRng::seed_from_u64(12);
    for _ in 0..10 {
        template.mutate_add_node(&cfg, &mut rng);
    }
    for _ in 0..150 {
        template.mutate_add_connection(&cfg, &mut rng);
    }
    let genomes: Vec<Genome> = (0..population)
        .map(|i| {
            let mut nodes = template.nodes().clone();
            let mut conns = template.conns().clone();
            let mut jitter = StdRng::seed_from_u64(100 + i as u64);
            for gene in conns.values_mut() {
                gene.weight = cfg.weight.mutate(gene.weight, &mut jitter);
            }
            for gene in nodes.values_mut() {
                gene.bias = cfg.bias.mutate(gene.bias, &mut jitter);
            }
            Genome::from_parts(GenomeId(i as u64), nodes, conns)
        })
        .collect();
    let mut rows = Vec::new();
    let mut scalar = 0.0f64;
    for lanes in [1usize, 8, 32] {
        let mut ev = Evaluator::with_options(
            workload,
            InferenceMode::MultiStep,
            1,
            1,
            EngineOptions {
                batch_lanes: lanes,
                cache: false,
            },
        );
        let start = Instant::now();
        for _ in 0..rounds {
            std::hint::black_box(ev.evaluate_genomes(&genomes, &cfg, 7, 0));
        }
        let genomes_per_s =
            (population as u32 * rounds) as f64 / start.elapsed().as_secs_f64().max(1e-9);
        if lanes == 1 {
            scalar = genomes_per_s;
        }
        rows.push(BatchRow {
            lanes,
            genomes_per_s,
            speedup_vs_scalar: genomes_per_s / scalar.max(1e-9),
        });
    }
    rows
}

/// Measures the fitness cache over a default NEAT run and checks the
/// cache-on trajectory is bit-identical to cache-off.
fn cache_bench(workload: Workload, population: usize, generations: u64) -> CacheBench {
    let cfg = NeatConfig::builder(workload.obs_dim(), workload.n_actions())
        .population_size(population)
        .build()
        .expect("valid config");
    let run = |options: EngineOptions| {
        let mut o = SerialOrchestrator::new(
            Population::new(cfg.clone(), 7),
            Evaluator::with_options(workload, InferenceMode::MultiStep, 1, 1, options),
            Cluster::homogeneous(Platform::raspberry_pi(), 1, WifiModel::default()),
        );
        let mut hits = 0u64;
        let mut lookups = 0u64;
        for _ in 0..generations {
            let r = o.step_generation().expect("generation");
            hits += r.cache_hits;
            lookups += r.cache_lookups;
        }
        (o.population().genomes().clone(), hits, lookups)
    };
    let (cached_pop, hits, lookups) = run(EngineOptions::default());
    let (plain_pop, _, _) = run(EngineOptions {
        batch_lanes: 1,
        cache: false,
    });
    CacheBench {
        generations,
        hits,
        lookups,
        hit_rate: if lookups == 0 {
            0.0
        } else {
            hits as f64 / lookups as f64
        },
        bit_identical: cached_pop == plain_pop,
    }
}

/// Measures tracing overhead (see [`TelemetryBench`]): the same seeded
/// 4-agent DCS run untraced and traced, comparing wall-clock and
/// checking the traced run changed nothing about the evolution.
fn telemetry_bench(population: usize, generations: u64) -> TelemetryBench {
    use clan_core::{ClanDriver, ClanTopology};
    const AGENTS: usize = 4;
    let build = |tracing: bool| {
        ClanDriver::builder(Workload::CartPole)
            .topology(ClanTopology::dcs())
            .agents(AGENTS)
            .population_size(population)
            .seed(7)
            .tracing(tracing)
            .build()
            .expect("driver builds")
    };

    let start = Instant::now();
    let untraced = build(false).run(generations).expect("untraced run");
    let untraced_s = start.elapsed().as_secs_f64().max(1e-9);

    let start = Instant::now();
    let (traced, trace) = build(true).run_with_trace(generations).expect("traced run");
    let traced_s = start.elapsed().as_secs_f64().max(1e-9);
    let (logical_events, timing_events) = trace.expect("tracing was enabled").counts();

    TelemetryBench {
        generations,
        logical_events,
        timing_events,
        events_per_s: (logical_events + timing_events) as f64 / traced_s,
        untraced_s,
        traced_s,
        overhead_pct: 100.0 * (traced_s - untraced_s) / untraced_s,
        bit_identical: untraced.best_fitness == traced.best_fitness
            && untraced.generations.last().map(|g| &g.costs)
                == traced.generations.last().map(|g| &g.costs),
    }
}

/// Runs `one(threads)` for 1/2/4/8 threads, turning the `(genomes/s,
/// per-work-unit/s)` pairs into rows via `make_row`; the last argument
/// flags rows whose thread count exceeds `host_cpus`.
fn scaling_rows<R>(
    host_cpus: usize,
    mut one: impl FnMut(usize) -> (f64, f64),
    make_row: impl Fn(usize, f64, f64, f64, bool) -> R,
) -> Vec<R> {
    let mut rows = Vec::new();
    let mut serial = 0.0;
    for threads in [1usize, 2, 4, 8] {
        let (genomes_per_s, units_per_s) = one(threads);
        if threads == 1 {
            serial = genomes_per_s;
        }
        rows.push(make_row(
            threads,
            genomes_per_s,
            units_per_s,
            genomes_per_s / serial.max(1e-9),
            threads > host_cpus,
        ));
    }
    rows
}

/// Runs the full measurement suite.
pub fn measure(
    workload: Workload,
    population: usize,
    micro_iters: u32,
    eval_rounds: u32,
    generations: u64,
) -> EvalPerfReport {
    let episodes_per_eval = 5;
    let host_cpus = std::thread::available_parallelism().map_or(1, usize::from);
    EvalPerfReport {
        workload: workload.name().to_string(),
        host_cpus,
        population,
        episodes_per_eval,
        activation: activation_micro(micro_iters),
        compile: compile_micro(micro_iters / 10),
        evaluation: scaling_rows(
            host_cpus,
            |threads| {
                evaluation_throughput(
                    workload,
                    population,
                    episodes_per_eval,
                    eval_rounds,
                    threads,
                )
            },
            |threads, genomes_per_s, steps_per_s, speedup, flat_expected| ThreadedThroughput {
                threads,
                genomes_per_s,
                steps_per_s,
                speedup,
                flat_expected,
            },
        ),
        generation: scaling_rows(
            host_cpus,
            |threads| generation_throughput(workload, population, generations, threads),
            |threads, genomes_per_s, inference_genes_per_s, speedup, flat_expected| {
                GenerationThroughput {
                    threads,
                    genomes_per_s,
                    inference_genes_per_s,
                    speedup,
                    flat_expected,
                }
            },
        ),
        hetero: hetero_bench(population, generations.clamp(2, 5)),
        lossy: lossy_bench(population, generations.clamp(2, 5)),
        churn: churn_bench(population, generations.clamp(2, 8)),
        // MountainCar episodes always run the full 200-step horizon
        // (random policies never reach the flag), so this row measures
        // inference throughput rather than per-episode setup costs —
        // CartPole's densified random policies die in ~10 steps, which
        // would make every lane count bottom out on reload overhead.
        batched: batched_bench(Workload::MountainCar, population, eval_rounds.max(1)),
        cache: cache_bench(workload, population, 10),
        async_steady: async_bench(population, generations.clamp(2, 5)),
        telemetry: telemetry_bench(population, generations.clamp(2, 10)),
    }
}

/// Measures with the tracking defaults (CartPole, pop 150) and writes
/// `BENCH_eval.json` to `path`.
///
/// # Errors
///
/// Propagates file-write failures.
pub fn run_and_write(path: &str) -> std::io::Result<EvalPerfReport> {
    run_and_write_profile(path, false)
}

/// [`run_and_write`] with a profile switch: `smoke` trades measurement
/// quality for seconds of wall-clock, so CI can exercise the full bench
/// pipeline (and archive a `BENCH_eval.json` artifact) on every push
/// without stalling the queue. Smoke numbers are for plumbing, not for
/// the ROADMAP performance table.
///
/// # Errors
///
/// Propagates file-write failures.
pub fn run_and_write_profile(path: &str, smoke: bool) -> std::io::Result<EvalPerfReport> {
    let report = if smoke {
        measure(Workload::CartPole, 24, 2_000, 2, 3)
    } else {
        measure(Workload::CartPole, 150, 200_000, 30, 20)
    };
    let json = serde_json::to_string_pretty(&report).expect("report serialization cannot fail");
    std::fs::write(path, json)?;
    Ok(report)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measurement_produces_sane_numbers() {
        let report = measure(Workload::CartPole, 12, 500, 2, 2);
        assert_eq!(report.evaluation.len(), 4);
        assert_eq!(report.generation.len(), 4);
        assert_eq!(report.evaluation[0].threads, 1);
        assert!((report.evaluation[0].speedup - 1.0).abs() < 1e-9);
        for t in &report.evaluation {
            assert!(t.genomes_per_s > 0.0);
            assert!(
                t.steps_per_s >= t.genomes_per_s,
                "every genome steps at least once"
            );
        }
        assert!(report.activation.seed_baseline_ns > 0.0);
        assert!(report.activation.activate_into_ns > 0.0);
        assert!(report.compile.compile_ns > 0.0);
        assert!(report.host_cpus >= 1);
        // Skewed-cluster scenario ran on both the runtime and the model.
        assert!(report.hetero.measured_even_makespan_s > 0.0);
        assert!(report.hetero.measured_weighted_makespan_s > 0.0);
        // The analytic model is deterministic: a 4x-slower agent under
        // an even split must lose to the weighted split outright.
        assert!(
            report.hetero.model_speedup > 1.5,
            "weighted partitioning should cut modeled makespan ~3x: {:?}",
            report.hetero
        );
        // Lossy section: three loss rates, monotone-nonzero overhead at
        // 20%, zero at 0%, and a sane WifiModel validation.
        assert_eq!(report.lossy.rows.len(), 3);
        assert_eq!(report.lossy.rows[0].retrans_bytes, 0, "clean link");
        assert!(
            report.lossy.rows[2].retrans_bytes > 0,
            "20% loss must retransmit: {:?}",
            report.lossy.rows
        );
        assert_eq!(report.lossy.wifi.len(), 2);
        let single = &report.lossy.wifi[0];
        assert!(
            single.measured_over_modeled > 0.5 && single.measured_over_modeled < 4.0,
            "single-datagram transfer should land near the model: {single:?}"
        );
        let multi = &report.lossy.wifi[1];
        assert!(
            multi.measured_over_modeled > 1.0,
            "fragmented frames pay per-datagram latency the model skips: {multi:?}"
        );
        // Churn section: the kill was observed, its chunks reassigned,
        // and both makespans measured.
        assert!(report.churn.clean_mean_makespan_s > 0.0);
        assert!(report.churn.churn_mean_makespan_s > 0.0);
        assert!(report.churn.failures >= 1, "{:?}", report.churn);
        assert!(report.churn.reassigned_chunks >= 1);
        assert!(report.churn.reassigned_genomes >= 1);
        // Batched section: scalar row first, every row measured.
        assert_eq!(report.batched.len(), 3);
        assert_eq!(report.batched[0].lanes, 1);
        assert!((report.batched[0].speedup_vs_scalar - 1.0).abs() < 1e-9);
        for row in &report.batched {
            assert!(row.genomes_per_s > 0.0);
        }
        // Cache section: a default NEAT run re-submits elites, so the
        // cache must field hits — and never change a bit.
        assert_eq!(report.cache.generations, 10);
        assert!(report.cache.lookups > 0);
        assert!(report.cache.hits > 0, "{:?}", report.cache);
        assert!(report.cache.bit_identical, "cache changed the trajectory");
        // Async section: barrier-free scheduling beats the gather
        // barrier at 4x skew, and the injected mid-stream death costs
        // re-dispatched work only, never the budget.
        let a = &report.async_steady;
        assert!(a.sync_makespan_s > 0.0);
        assert!(a.async_makespan_s > 0.0);
        assert!(
            a.speedup > 1.0,
            "async must beat the sync barrier at 4x skew: {a:?}"
        );
        assert!(
            a.churn_redispatches >= 1,
            "the injected death must force a re-dispatch: {a:?}"
        );
        assert_eq!(a.churn_total_evals, a.total_evals, "{a:?}");
        // Telemetry section: the traced run recorded a real stream and
        // reproduced the untraced evolution bit-for-bit.
        let tel = &report.telemetry;
        assert!(tel.logical_events > 0, "{tel:?}");
        assert!(tel.events_per_s > 0.0);
        assert!(tel.untraced_s > 0.0 && tel.traced_s > 0.0);
        assert!(tel.bit_identical, "tracing changed the trajectory");
        // Thread rows beyond the host's cores are flagged, within not.
        for t in &report.evaluation {
            assert_eq!(t.flat_expected, t.threads > report.host_cpus);
        }
    }

    #[test]
    fn seed_baseline_reproduces_current_outputs() {
        // The baseline is only a fair yardstick if it computes the same
        // function as the optimized network.
        let (cfg, genome) = evolved_genome(6, 3, 40);
        let net = FeedForwardNetwork::compile(&genome, &cfg);
        let baseline = seed_baseline::BaselineNetwork::compile(&genome, &cfg);
        for step in 0..25 {
            let x = step as f64 / 9.0;
            let inputs = [x, -x, 0.3 * x, 1.0 - x, x * x, 0.5];
            assert_eq!(net.activate(&inputs), baseline.activate(&inputs));
        }
    }

    #[test]
    fn report_round_trips_through_json() {
        let report = measure(Workload::MountainCar, 6, 200, 1, 1);
        let json = serde_json::to_string_pretty(&report).unwrap();
        let back: EvalPerfReport = serde_json::from_str(&json).unwrap();
        assert_eq!(report, back);
    }
}
