//! A minimal JSON reader for trace files.
//!
//! `clan-trace` deliberately does not link the workspace's serde shim:
//! an analyzer that shares parsing code with the writer it audits would
//! inherit the writer's bugs. This reader covers the full JSON grammar
//! the trace exporters emit — flat objects of nullable integers and
//! strings — plus arrays and nesting for robustness, and keeps `u64`
//! integers exact (fitness bits do not survive an `f64` round trip).

/// A parsed JSON value. Integers stay exact: digits without a fraction
/// or exponent parse as [`Json::UInt`] (or [`Json::Int`] when
/// negative), never as a float.
#[derive(Debug, Clone, PartialEq)]
pub enum Json {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Non-negative integer, exact.
    UInt(u64),
    /// Negative integer, exact.
    Int(i64),
    /// Number with a fraction or exponent.
    Float(f64),
    /// String (escapes decoded).
    Str(String),
    /// Array.
    Arr(Vec<Json>),
    /// Object, in source order.
    Obj(Vec<(String, Json)>),
}

impl Json {
    /// Member lookup on an object (first match).
    pub fn get(&self, key: &str) -> Option<&Json> {
        match self {
            Json::Obj(members) => members.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The value as an exact `u64`, if it is one.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Json::UInt(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as a string slice, if it is one.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Json::Str(s) => Some(s),
            _ => None,
        }
    }
}

/// A parse failure: byte offset plus message.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct JsonError {
    /// Byte offset into the input where parsing failed.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl std::fmt::Display for JsonError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "byte {}: {}", self.offset, self.message)
    }
}

/// Parses one complete JSON value (trailing whitespace allowed,
/// trailing garbage rejected).
///
/// # Errors
///
/// [`JsonError`] with the byte offset of the first problem.
pub fn parse(text: &str) -> Result<Json, JsonError> {
    let bytes = text.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(err(pos, "trailing characters after value"));
    }
    Ok(value)
}

fn err(offset: usize, message: &str) -> JsonError {
    JsonError {
        offset,
        message: message.to_string(),
    }
}

fn skip_ws(b: &[u8], pos: &mut usize) {
    while *pos < b.len() && matches!(b[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn eat(b: &[u8], pos: &mut usize, lit: &str) -> bool {
    if b[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        true
    } else {
        false
    }
}

fn parse_value(b: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    skip_ws(b, pos);
    match b.get(*pos) {
        None => Err(err(*pos, "unexpected end of input")),
        Some(b'n') if eat(b, pos, "null") => Ok(Json::Null),
        Some(b't') if eat(b, pos, "true") => Ok(Json::Bool(true)),
        Some(b'f') if eat(b, pos, "false") => Ok(Json::Bool(false)),
        Some(b'"') => parse_string(b, pos).map(Json::Str),
        Some(b'[') => parse_array(b, pos),
        Some(b'{') => parse_object(b, pos),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(b, pos),
        Some(c) => Err(err(*pos, &format!("unexpected byte {:?}", *c as char))),
    }
}

fn parse_array(b: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    *pos += 1; // [
    let mut items = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(Json::Arr(items));
    }
    loop {
        items.push(parse_value(b, pos)?);
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(Json::Arr(items));
            }
            _ => return Err(err(*pos, "expected `,` or `]` in array")),
        }
    }
}

fn parse_object(b: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    *pos += 1; // {
    let mut members = Vec::new();
    skip_ws(b, pos);
    if b.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(Json::Obj(members));
    }
    loop {
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b'"') {
            return Err(err(*pos, "expected string key in object"));
        }
        let key = parse_string(b, pos)?;
        skip_ws(b, pos);
        if b.get(*pos) != Some(&b':') {
            return Err(err(*pos, "expected `:` after object key"));
        }
        *pos += 1;
        let value = parse_value(b, pos)?;
        members.push((key, value));
        skip_ws(b, pos);
        match b.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(Json::Obj(members));
            }
            _ => return Err(err(*pos, "expected `,` or `}` in object")),
        }
    }
}

fn parse_string(b: &[u8], pos: &mut usize) -> Result<String, JsonError> {
    *pos += 1; // opening quote
    let mut out = String::new();
    loop {
        match b.get(*pos) {
            None => return Err(err(*pos, "unterminated string")),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match b.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = b
                            .get(*pos + 1..*pos + 5)
                            .and_then(|h| std::str::from_utf8(h).ok())
                            .and_then(|h| u32::from_str_radix(h, 16).ok())
                            .ok_or_else(|| err(*pos, "bad \\u escape"))?;
                        out.push(char::from_u32(hex).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(err(*pos, "bad escape")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Consume one UTF-8 scalar (multi-byte safe).
                let rest = std::str::from_utf8(&b[*pos..])
                    .map_err(|_| err(*pos, "invalid UTF-8 in string"))?;
                let c = rest.chars().next().ok_or_else(|| err(*pos, "empty"))?;
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_number(b: &[u8], pos: &mut usize) -> Result<Json, JsonError> {
    let start = *pos;
    if b.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    while b
        .get(*pos)
        .is_some_and(|c| c.is_ascii_digit() || matches!(c, b'.' | b'e' | b'E' | b'+' | b'-'))
    {
        *pos += 1;
    }
    let text = std::str::from_utf8(&b[start..*pos]).map_err(|_| err(start, "bad number"))?;
    let is_integer = !text.contains(['.', 'e', 'E']);
    if is_integer {
        if let Some(rest) = text.strip_prefix('-') {
            let _ = rest;
            if let Ok(v) = text.parse::<i64>() {
                return Ok(Json::Int(v));
            }
        } else if let Ok(v) = text.parse::<u64>() {
            return Ok(Json::UInt(v));
        }
    }
    text.parse::<f64>()
        .map(Json::Float)
        .map_err(|_| err(start, "malformed number"))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn u64_integers_stay_exact() {
        // 0x3FF0000000000000 — above 2^53, would corrupt through f64.
        let v = parse("{\"fitness_bits\":4607182418800017408}").unwrap();
        assert_eq!(
            v.get("fitness_bits").unwrap().as_u64(),
            Some(4607182418800017408)
        );
    }

    #[test]
    fn full_grammar_round_trip() {
        let v =
            parse(r#"{"a":[1,-2,3.5,null,true],"s":"hi \"x\"\n","o":{"k":"Logical"}}"#).unwrap();
        assert_eq!(v.get("s").unwrap().as_str(), Some("hi \"x\"\n"));
        assert_eq!(
            v.get("o").unwrap().get("k").unwrap().as_str(),
            Some("Logical")
        );
        match v.get("a") {
            Some(Json::Arr(items)) => {
                assert_eq!(items[0], Json::UInt(1));
                assert_eq!(items[1], Json::Int(-2));
                assert_eq!(items[2], Json::Float(3.5));
                assert_eq!(items[3], Json::Null);
            }
            other => panic!("expected array, got {other:?}"),
        }
    }

    #[test]
    fn errors_carry_offsets() {
        let e = parse("{\"a\":}").unwrap_err();
        assert_eq!(e.offset, 5);
        assert!(parse("[1,2").is_err());
        assert!(parse("{} trailing").is_err());
        assert!(parse("").is_err());
    }
}
