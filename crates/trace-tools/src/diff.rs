//! Divergence diffing over two deterministic (Logical) streams.
//!
//! Two runs with the same seed and workload must produce byte-identical
//! logical streams regardless of execution surface. When they do not,
//! the interesting question is *where they first disagree* — one flipped
//! fitness bit early in generation 3 matters far more than the thousands
//! of downstream lines it perturbs. `diff` walks both streams in lockstep
//! and reports the first divergent logical event with enough framing to
//! act on ("gen 7, eval of genome 1234, fitness 0x…").

use crate::event::{Class, Event};

/// One side's view of a logical position: the rendered stream line plus
/// the human framing of the event behind it.
#[derive(Debug, Clone, PartialEq)]
pub struct DiffSide {
    /// The event's `logical_line()` rendering.
    pub line: String,
    /// `Event::describe` with tracked generation context.
    pub context: String,
}

/// Outcome of diffing two traces.
#[derive(Debug, Clone, PartialEq)]
pub enum DiffOutcome {
    /// Logical streams are identical (count included).
    Identical {
        /// Number of logical events compared.
        events: u64,
    },
    /// The streams disagree at a position both sides reach.
    Diverged {
        /// 0-based index into the logical stream.
        index: u64,
        /// Left side at the divergence.
        left: DiffSide,
        /// Right side at the divergence.
        right: DiffSide,
        /// Matching lines immediately before the divergence (up to 3).
        preceding: Vec<String>,
    },
    /// One stream is a strict prefix of the other.
    Truncated {
        /// Logical events both sides share.
        common: u64,
        /// Which side ended early: "left" or "right".
        short_side: &'static str,
        /// The first unmatched event on the longer side.
        next: DiffSide,
    },
}

fn logical_only(events: &[Event]) -> Vec<&Event> {
    events
        .iter()
        .filter(|e| e.class == Class::Logical)
        .collect()
}

fn side(ev: &Event, generation: Option<u64>) -> DiffSide {
    DiffSide {
        line: ev.logical_line().unwrap_or_default(),
        context: ev.describe(generation),
    }
}

/// Diffs the logical streams of two parsed traces (Timing events are
/// ignored — they are expected to vary run to run).
pub fn diff(left: &[Event], right: &[Event]) -> DiffOutcome {
    let l = logical_only(left);
    let r = logical_only(right);
    let mut preceding: Vec<String> = Vec::new();
    // Generation framing: per-genome events don't carry their
    // generation, so track the last GenerationStart seen on each side.
    let mut gen_l: Option<u64> = None;
    let mut gen_r: Option<u64> = None;

    for (i, (le, re)) in l.iter().zip(r.iter()).enumerate() {
        if le.kind == "GenerationStart" {
            gen_l = le.generation;
        }
        if re.kind == "GenerationStart" {
            gen_r = re.generation;
        }
        let ll = le.logical_line().unwrap_or_default();
        let rl = re.logical_line().unwrap_or_default();
        if ll != rl {
            return DiffOutcome::Diverged {
                index: i as u64,
                left: side(le, gen_l),
                right: side(re, gen_r),
                preceding,
            };
        }
        preceding.push(ll);
        if preceding.len() > 3 {
            preceding.remove(0);
        }
    }

    match l.len().cmp(&r.len()) {
        std::cmp::Ordering::Equal => DiffOutcome::Identical {
            events: l.len() as u64,
        },
        std::cmp::Ordering::Less => DiffOutcome::Truncated {
            common: l.len() as u64,
            short_side: "left",
            next: side(r[l.len()], gen_r),
        },
        std::cmp::Ordering::Greater => DiffOutcome::Truncated {
            common: r.len() as u64,
            short_side: "right",
            next: side(l[r.len()], gen_l),
        },
    }
}

impl DiffOutcome {
    /// Renders the human-readable `clan-trace diff` report.
    pub fn render(&self) -> String {
        match self {
            DiffOutcome::Identical { events } => {
                format!("identical: {events} logical event(s), no divergence\n")
            }
            DiffOutcome::Diverged {
                index,
                left,
                right,
                preceding,
            } => {
                let mut out = format!("diverged at logical event {index}\n");
                out.push_str(&format!("  context: {}\n", left.context));
                for p in preceding {
                    out.push_str(&format!("    = {p}\n"));
                }
                out.push_str(&format!("    < {}\n", left.line));
                out.push_str(&format!("    > {}\n", right.line));
                if left.context != right.context {
                    out.push_str(&format!("  right-side context: {}\n", right.context));
                }
                out
            }
            DiffOutcome::Truncated {
                common,
                short_side,
                next,
            } => format!(
                "truncated: streams identical for {common} logical event(s), \
                 then the {short_side} trace ends\n  next on the longer side: {} ({})\n",
                next.line, next.context
            ),
        }
    }

    /// True when the two streams were byte-identical.
    pub fn is_identical(&self) -> bool {
        matches!(self, DiffOutcome::Identical { .. })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::parse_jsonl;

    fn trace(fitness_mid: u64, truncate: bool) -> Vec<Event> {
        let mut lines = vec![
            "{\"seq\":0,\"class\":\"Logical\",\"kind\":\"RunStart\",\"lseq\":0,\"seed\":42,\"label\":\"xor\",\"population\":8}".to_string(),
            "{\"seq\":1,\"class\":\"Timing\",\"kind\":\"ClusterInfo\",\"items\":2}".to_string(),
            "{\"seq\":2,\"class\":\"Logical\",\"kind\":\"GenerationStart\",\"lseq\":1,\"generation\":0}".to_string(),
            format!("{{\"seq\":3,\"class\":\"Logical\",\"kind\":\"EvalResult\",\"lseq\":2,\"genome\":7,\"fitness_bits\":{fitness_mid}}}"),
        ];
        if !truncate {
            lines.push(
                "{\"seq\":4,\"class\":\"Logical\",\"kind\":\"RunEnd\",\"lseq\":3}".to_string(),
            );
        }
        parse_jsonl(&lines.join("\n")).unwrap()
    }

    #[test]
    fn identical_streams_report_identical() {
        let out = diff(&trace(100, false), &trace(100, false));
        assert_eq!(out, DiffOutcome::Identical { events: 4 });
        assert!(out.is_identical());
    }

    #[test]
    fn flipped_fitness_bit_is_pinpointed_with_generation_context() {
        let out = diff(&trace(100, false), &trace(101, false));
        match &out {
            DiffOutcome::Diverged {
                index,
                left,
                right,
                preceding,
            } => {
                assert_eq!(*index, 2);
                assert!(left.line.contains("f=0x0000000000000064"), "{}", left.line);
                assert!(
                    right.line.contains("f=0x0000000000000065"),
                    "{}",
                    right.line
                );
                assert_eq!(
                    left.context,
                    "gen 0, eval of genome 7, fitness 0x0000000000000064"
                );
                assert_eq!(preceding.len(), 2);
            }
            other => panic!("expected divergence, got {other:?}"),
        }
        assert!(out.render().contains("gen 0, eval of genome 7"));
    }

    #[test]
    fn truncated_stream_names_the_short_side_and_next_event() {
        let out = diff(&trace(100, true), &trace(100, false));
        match &out {
            DiffOutcome::Truncated {
                common,
                short_side,
                next,
            } => {
                assert_eq!(*common, 3);
                assert_eq!(*short_side, "left");
                assert_eq!(next.context, "run postamble");
            }
            other => panic!("expected truncation, got {other:?}"),
        }
    }

    #[test]
    fn timing_events_never_cause_divergence() {
        let mut right = trace(100, false);
        // Perturb a Timing event's payload: diff must not care.
        for ev in &mut right {
            if ev.kind == "ClusterInfo" {
                ev.items = Some(99);
            }
        }
        assert!(diff(&trace(100, false), &right).is_identical());
    }
}
