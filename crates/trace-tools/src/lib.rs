//! # clan-trace-tools — offline trace intelligence for CLAN runs
//!
//! The runtime's two-channel tracer records everything needed to audit a
//! run after the fact: the deterministic **Logical** stream (byte-stable
//! per seed across execution surfaces) and the wall-stamped **Timing**
//! stream (spans, retransmissions, churn). This crate turns those JSONL
//! files into answers:
//!
//! - [`analyze`](analyze::analyze) — reconstructs per-round critical
//!   paths (or async steady-state utilization), ranks stragglers with
//!   slowdown factors, attributes retransmission/recovery overhead, and
//!   totals wasted idle time with the same definitions `AsyncStats`
//!   uses, so the numbers cross-check against the run's own summary.
//! - [`diff`](diff::diff) — compares the Logical streams of two traces
//!   and pinpoints the **first** divergent event with human framing
//!   ("gen 7, eval of genome 1234, fitness 0x…"), ignoring Timing noise.
//! - `summarize` (CLI) — the per-agent utilization table alone.
//!
//! Like `clan-lint`, the crate is **dependency-free by design**: it
//! carries its own exact-integer JSON reader ([`json`]) rather than
//! linking the workspace serde shim, so the auditor cannot inherit the
//! writer's parsing bugs, and `u64` fitness bits never round-trip
//! through an `f64`.
//!
//! The `clan-trace` binary fronts all three verbs; exit codes follow the
//! lint convention (0 clean/identical, 1 findings/divergence, 2 usage).

pub mod analyze;
pub mod diff;
pub mod event;
pub mod json;

pub use analyze::{Analysis, AnalysisMode};
pub use diff::{diff as diff_events, DiffOutcome};
pub use event::{parse_event, parse_jsonl, Class, Event};

/// Parses a trace file from disk.
///
/// # Errors
///
/// IO failure or the first malformed line (1-based) with its parse
/// error.
pub fn load_trace(path: &str) -> Result<Vec<Event>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{path}: {e}"))?;
    parse_jsonl(&text).map_err(|e| format!("{path}: {e}"))
}

/// Runs the analyzer over a trace file.
///
/// # Errors
///
/// Propagates [`load_trace`] failures.
pub fn analyze_file(path: &str) -> Result<Analysis, String> {
    Ok(analyze::analyze(&load_trace(path)?))
}

/// Diffs the logical streams of two trace files.
///
/// # Errors
///
/// Propagates [`load_trace`] failures.
pub fn diff_files(left: &str, right: &str) -> Result<DiffOutcome, String> {
    Ok(diff::diff(&load_trace(left)?, &load_trace(right)?))
}
