//! The analyzer's view of one trace record, parsed back from the JSONL
//! the telemetry exporter writes.
//!
//! The field set mirrors `clan_core::TraceEvent` (flat and sparse), but
//! `kind` stays a string so the analyzer degrades gracefully on traces
//! from newer writers: unknown kinds still parse, render, and diff.

use crate::json::{parse, Json};

/// Determinism class of an event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Class {
    /// Part of the deterministic per-seed stream.
    Logical,
    /// Wall-clock / transport annotation.
    Timing,
}

/// One parsed trace record; unknown payload slots stay `None`.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Position in the full stream.
    pub seq: u64,
    /// Determinism class.
    pub class: Class,
    /// Kind variant name (`RunStart`, `EvalResult`, `Completion`, …).
    pub kind: String,
    /// Position in the logical stream (Logical events only).
    pub lseq: Option<u64>,
    /// Agent slot.
    pub agent: Option<u64>,
    /// Virtual time, microseconds.
    pub vtime_us: Option<u64>,
    /// Wall timestamp, microseconds since the trace epoch.
    pub wall_us: Option<u64>,
    /// Span duration, microseconds.
    pub dur_us: Option<u64>,
    /// Generation index.
    pub generation: Option<u64>,
    /// Genome id.
    pub genome: Option<u64>,
    /// Fitness as IEEE-754 bits.
    pub fitness_bits: Option<u64>,
    /// Master seed.
    pub seed: Option<u64>,
    /// Population size.
    pub population: Option<u64>,
    /// Species alive.
    pub species: Option<u64>,
    /// Cache hits in the window.
    pub cache_hits: Option<u64>,
    /// Cache lookups in the window.
    pub cache_lookups: Option<u64>,
    /// Async event-log sequence.
    pub aseq: Option<u64>,
    /// Inserted child id.
    pub child: Option<u64>,
    /// Evicted genome id.
    pub evicted: Option<u64>,
    /// First parent id.
    pub p1: Option<u64>,
    /// Second parent id.
    pub p2: Option<u64>,
    /// Generic count payload.
    pub items: Option<u64>,
    /// Byte count payload.
    pub bytes: Option<u64>,
    /// Free-form annotation.
    pub label: Option<String>,
}

/// The stable snake_case label for a kind variant name — the same
/// mapping `clan_core::EventKind::label` uses. Unknown variants pass
/// through unchanged so future kinds stay diffable.
pub fn kind_label(kind: &str) -> &str {
    match kind {
        "RunStart" => "run_start",
        "GenerationStart" => "gen_start",
        "EvalResult" => "eval",
        "GenerationEnd" => "gen_end",
        "Dispatch" => "dispatch",
        "Completion" => "async",
        "Insertion" => "insert",
        "ClusterInfo" => "cluster",
        "GatherRound" => "gather",
        "AgentExchange" => "exchange",
        "Retransmission" => "retrans",
        "AgentFailure" => "agent_fail",
        "ChunkReassigned" => "reassign",
        "AgentKilled" => "kill",
        "AgentRevived" => "revive",
        "AgentJoined" => "join",
        "RunEnd" => "run_end",
        other => other,
    }
}

impl Event {
    /// The event's line in the deterministic stream text, or `None` for
    /// Timing events — a faithful reimplementation of
    /// `clan_core::TraceEvent::logical_line`, verified against the
    /// writer by the workspace integration tests.
    pub fn logical_line(&self) -> Option<String> {
        if self.class != Class::Logical {
            return None;
        }
        let mut line = format!("l={} k={}", self.lseq.unwrap_or(0), kind_label(&self.kind));
        if let Some(seed) = self.seed {
            line.push_str(&format!(" seed={seed}"));
        }
        if let Some(w) = &self.label {
            line.push_str(&format!(" w={w}"));
        }
        if let Some(p) = self.population {
            line.push_str(&format!(" pop={p}"));
        }
        if let Some(g) = self.generation {
            line.push_str(&format!(" gen={g}"));
        }
        if let Some(t) = self.vtime_us {
            line.push_str(&format!(" t={t}us"));
        }
        if let Some(a) = self.agent {
            line.push_str(&format!(" a={a}"));
        }
        if let Some(g) = self.genome {
            line.push_str(&format!(" g={g}"));
        }
        if let Some(f) = self.fitness_bits {
            line.push_str(&format!(" f={f:#018X}"));
        }
        if let Some(s) = self.species {
            line.push_str(&format!(" sp={s}"));
        }
        if self.cache_lookups.is_some() || self.cache_hits.is_some() {
            line.push_str(&format!(
                " ch={} cl={}",
                self.cache_hits.unwrap_or(0),
                self.cache_lookups.unwrap_or(0)
            ));
        }
        if self.kind == "Completion" || self.kind == "Insertion" {
            match (self.child, self.p1, self.p2) {
                (Some(c), Some(p1), Some(p2)) => {
                    let evicted = match self.evicted {
                        Some(e) => e.to_string(),
                        None => "-".into(),
                    };
                    line.push_str(&format!(" child={c} evicted={evicted} p={p1},{p2}"));
                }
                _ => line.push_str(" child=- evicted=- p=-"),
            }
        }
        if let Some(n) = self.items {
            line.push_str(&format!(" n={n}"));
        }
        Some(line)
    }

    /// A one-phrase human description of the event, used by `diff` to
    /// frame a divergence ("gen 7, eval of genome 1234, …"). The caller
    /// supplies the generation context tracked while scanning, since
    /// per-genome events do not carry their generation.
    pub fn describe(&self, current_generation: Option<u64>) -> String {
        let gen_prefix = match self.generation.or(current_generation) {
            Some(g) => format!("gen {g}, "),
            None => String::new(),
        };
        match self.kind.as_str() {
            "RunStart" => format!(
                "run preamble (seed {}, workload {}, population {})",
                self.seed.unwrap_or(0),
                self.label.as_deref().unwrap_or("?"),
                self.population.unwrap_or(0)
            ),
            "GenerationStart" => format!("start of gen {}", self.generation.unwrap_or(0)),
            "EvalResult" => format!(
                "{gen_prefix}eval of genome {}, fitness {:#018X}",
                self.genome.unwrap_or(0),
                self.fitness_bits.unwrap_or(0)
            ),
            "GenerationEnd" => format!(
                "end of gen {} (best fitness {:#018X}, {} species)",
                self.generation.unwrap_or(0),
                self.fitness_bits.unwrap_or(0),
                self.species.unwrap_or(0)
            ),
            "Dispatch" => format!(
                "dispatch of genome {} to agent {} at t={}us",
                self.genome.unwrap_or(0),
                self.agent.unwrap_or(0),
                self.vtime_us.unwrap_or(0)
            ),
            "Completion" => format!(
                "completion e={} of genome {} on agent {}, fitness {:#018X}",
                self.aseq.unwrap_or(0),
                self.genome.unwrap_or(0),
                self.agent.unwrap_or(0),
                self.fitness_bits.unwrap_or(0)
            ),
            "Insertion" => format!(
                "insertion of child {} (evicting {})",
                self.child.unwrap_or(0),
                self.evicted.map_or("-".into(), |e| e.to_string())
            ),
            "RunEnd" => "run postamble".to_string(),
            other => format!("{gen_prefix}{} event", kind_label(other)),
        }
    }
}

fn opt_u64(obj: &Json, key: &str) -> Option<u64> {
    obj.get(key).and_then(Json::as_u64)
}

/// Parses one JSONL line into an [`Event`].
///
/// # Errors
///
/// A message naming the missing/invalid field or the JSON syntax error.
pub fn parse_event(line: &str) -> Result<Event, String> {
    let obj = parse(line).map_err(|e| e.to_string())?;
    let seq = opt_u64(&obj, "seq").ok_or("missing `seq`")?;
    let class = match obj.get("class").and_then(Json::as_str) {
        Some("Logical") => Class::Logical,
        Some("Timing") => Class::Timing,
        other => return Err(format!("bad `class` {other:?}")),
    };
    let kind = obj
        .get("kind")
        .and_then(Json::as_str)
        .ok_or("missing `kind`")?
        .to_string();
    Ok(Event {
        seq,
        class,
        kind,
        lseq: opt_u64(&obj, "lseq"),
        agent: opt_u64(&obj, "agent"),
        vtime_us: opt_u64(&obj, "vtime_us"),
        wall_us: opt_u64(&obj, "wall_us"),
        dur_us: opt_u64(&obj, "dur_us"),
        generation: opt_u64(&obj, "generation"),
        genome: opt_u64(&obj, "genome"),
        fitness_bits: opt_u64(&obj, "fitness_bits"),
        seed: opt_u64(&obj, "seed"),
        population: opt_u64(&obj, "population"),
        species: opt_u64(&obj, "species"),
        cache_hits: opt_u64(&obj, "cache_hits"),
        cache_lookups: opt_u64(&obj, "cache_lookups"),
        aseq: opt_u64(&obj, "aseq"),
        child: opt_u64(&obj, "child"),
        evicted: opt_u64(&obj, "evicted"),
        p1: opt_u64(&obj, "p1"),
        p2: opt_u64(&obj, "p2"),
        items: opt_u64(&obj, "items"),
        bytes: opt_u64(&obj, "bytes"),
        label: obj.get("label").and_then(Json::as_str).map(str::to_string),
    })
}

/// Parses a whole JSONL trace (blank lines skipped).
///
/// # Errors
///
/// The first bad line's number (1-based) and its parse error.
pub fn parse_jsonl(text: &str) -> Result<Vec<Event>, String> {
    text.lines()
        .enumerate()
        .filter(|(_, l)| !l.trim().is_empty())
        .map(|(i, l)| parse_event(l).map_err(|e| format!("line {}: {e}", i + 1)))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    const LINE: &str = "{\"seq\":2,\"class\":\"Logical\",\"kind\":\"EvalResult\",\"lseq\":2,\
                        \"agent\":null,\"vtime_us\":null,\"wall_us\":null,\"dur_us\":null,\
                        \"generation\":null,\"genome\":7,\"fitness_bits\":4607182418800017408,\
                        \"seed\":null,\"population\":null,\"species\":null,\"cache_hits\":null,\
                        \"cache_lookups\":null,\"aseq\":null,\"child\":null,\"evicted\":null,\
                        \"p1\":null,\"p2\":null,\"items\":null,\"bytes\":null,\"label\":null}";

    #[test]
    fn parses_a_writer_shaped_line() {
        let ev = parse_event(LINE).unwrap();
        assert_eq!(ev.seq, 2);
        assert_eq!(ev.class, Class::Logical);
        assert_eq!(ev.kind, "EvalResult");
        assert_eq!(ev.genome, Some(7));
        assert_eq!(ev.fitness_bits, Some(0x3FF0_0000_0000_0000));
        assert_eq!(
            ev.logical_line().unwrap(),
            "l=2 k=eval g=7 f=0x3FF0000000000000"
        );
        assert_eq!(
            ev.describe(Some(4)),
            "gen 4, eval of genome 7, fitness 0x3FF0000000000000"
        );
    }

    #[test]
    fn timing_events_have_no_logical_line() {
        let line = LINE.replace("\"Logical\"", "\"Timing\"");
        assert_eq!(parse_event(&line).unwrap().logical_line(), None);
    }

    #[test]
    fn jsonl_reports_the_bad_line() {
        let text = format!("{LINE}\n\n{{oops}}\n");
        let e = parse_jsonl(&text).unwrap_err();
        assert!(e.starts_with("line 3:"), "{e}");
    }
}
