//! Critical-path and straggler analysis over a recorded trace.
//!
//! Two execution shapes are recognized automatically:
//!
//! - **Round-based** (the synchronous orchestrators): Timing
//!   `AgentExchange` spans grouped into scatter/gather rounds by the
//!   `GatherRound` markers. Each round's critical path is the link the
//!   gather waited on; per-agent idle is the gap between a link's own
//!   busy time and the round makespan it had to sit through.
//! - **Steady-state** (async modes): `Completion` spans per agent under
//!   virtual (or wall) time. The totals use the same definitions as
//!   `AsyncStats` — makespan = latest completion time, busy = summed
//!   service spans, wasted idle = `agents × makespan − busy` — so the
//!   report cross-checks against the run's own summary.

use crate::event::{Class, Event};

/// How the trace's time accounting was reconstructed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AnalysisMode {
    /// Scatter/gather rounds from Timing spans.
    Rounds,
    /// Async steady-state completions (virtual or wall time).
    SteadyState,
    /// No span-bearing events found.
    Empty,
}

/// Per-agent accounting over the whole trace.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct AgentStat {
    /// Agent slot.
    pub agent: u64,
    /// Spans attributed to the agent (exchanges or completions).
    pub spans: u64,
    /// Summed span time, microseconds.
    pub busy_us: u64,
    /// Mean span, microseconds (0 when no spans).
    pub mean_us: f64,
    /// Rounds in which this agent was the critical path (round mode).
    pub critical_rounds: u64,
    /// Loss-recovery overhead bytes attributed to the agent.
    pub retrans_bytes: u64,
    /// Churn-class failures recorded against the agent.
    pub failures: u64,
    /// Mean-span slowdown vs the fastest agent (1.0 = fastest).
    pub slowdown: f64,
}

/// One scatter/gather round (round mode only).
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RoundStat {
    /// Round index in trace order.
    pub round: u64,
    /// Measured round makespan, microseconds.
    pub makespan_us: u64,
    /// Summed per-link busy time in the round, microseconds.
    pub busy_us: u64,
    /// The agent the round waited on, with its span.
    pub critical_agent: Option<u64>,
    /// The critical agent's span, microseconds.
    pub critical_span_us: u64,
}

/// Churn/recovery event counts over the trace.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecoveryCounts {
    /// `AgentFailure` events.
    pub failures: u64,
    /// `ChunkReassigned` events.
    pub reassigns: u64,
    /// Work items inside reassigned chunks.
    pub reassigned_items: u64,
    /// `AgentKilled` events.
    pub kills: u64,
    /// `AgentRevived` events.
    pub revives: u64,
    /// `AgentJoined` events.
    pub joins: u64,
}

/// The full analysis result; [`Analysis::render`] is the CLI report.
#[derive(Debug, Clone, PartialEq)]
pub struct Analysis {
    /// Reconstruction mode.
    pub mode: AnalysisMode,
    /// Events in the trace (logical, timing).
    pub counts: (u64, u64),
    /// Agents in the cluster (from the `ClusterInfo` annotation, else
    /// the highest agent slot seen + 1).
    pub n_agents: u64,
    /// Per-agent accounting, by slot.
    pub agents: Vec<AgentStat>,
    /// Per-round accounting (round mode only).
    pub rounds: Vec<RoundStat>,
    /// Total makespan, microseconds (summed round makespans in round
    /// mode; latest completion time in steady-state mode).
    pub makespan_us: u64,
    /// Total busy time across agents, microseconds.
    pub busy_us: u64,
    /// `n_agents × makespan − busy`, clamped at 0 — the `AsyncStats`
    /// wasted-idle definition.
    pub wasted_idle_us: u64,
    /// Total retransmission overhead bytes.
    pub retrans_bytes: u64,
    /// Churn/recovery counts.
    pub recovery: RecoveryCounts,
    /// The critical-path straggler: most critical rounds (round mode)
    /// or slowest mean span (steady-state), when any spans exist.
    pub straggler: Option<u64>,
}

fn agent_slot(stats: &mut Vec<AgentStat>, agent: u64) -> &mut AgentStat {
    let idx = agent as usize;
    if stats.len() <= idx {
        for a in stats.len()..=idx {
            stats.push(AgentStat {
                agent: a as u64,
                ..AgentStat::default()
            });
        }
    }
    &mut stats[idx]
}

/// Analyzes a parsed trace. Events must be in record order (as written
/// by the JSONL exporter).
pub fn analyze(events: &[Event]) -> Analysis {
    let logical = events.iter().filter(|e| e.class == Class::Logical).count() as u64;
    let counts = (logical, events.len() as u64 - logical);
    let mut agents: Vec<AgentStat> = Vec::new();
    let mut rounds: Vec<RoundStat> = Vec::new();
    let mut recovery = RecoveryCounts::default();
    let mut retrans_bytes = 0u64;
    let mut cluster_agents: Option<u64> = None;

    // Spans of the round currently being gathered: (agent, dur_us).
    let mut open_round: Vec<(u64, u64)> = Vec::new();
    let mut steady_makespan_us = 0u64;
    let mut has_completion_spans = false;

    for ev in events {
        match ev.kind.as_str() {
            "ClusterInfo" => cluster_agents = ev.items.or(cluster_agents),
            "AgentExchange" => {
                if let (Some(agent), Some(dur)) = (ev.agent, ev.dur_us) {
                    open_round.push((agent, dur));
                    let slot = agent_slot(&mut agents, agent);
                    slot.spans += 1;
                    slot.busy_us += dur;
                }
            }
            "GatherRound" => {
                let makespan_us = ev.dur_us.unwrap_or(0);
                let busy_us = open_round.iter().map(|(_, d)| d).sum();
                let critical = open_round.iter().max_by_key(|(a, d)| (*d, *a)).copied();
                if let Some((agent, _)) = critical {
                    agent_slot(&mut agents, agent).critical_rounds += 1;
                }
                rounds.push(RoundStat {
                    round: rounds.len() as u64,
                    makespan_us,
                    busy_us,
                    critical_agent: critical.map(|(a, _)| a),
                    critical_span_us: critical.map_or(0, |(_, d)| d),
                });
                open_round.clear();
            }
            "Completion" => {
                if let (Some(agent), Some(dur)) = (ev.agent, ev.dur_us) {
                    has_completion_spans = true;
                    let slot = agent_slot(&mut agents, agent);
                    slot.spans += 1;
                    slot.busy_us += dur;
                }
                if let Some(t) = ev.vtime_us.or(ev.wall_us) {
                    steady_makespan_us = steady_makespan_us.max(t);
                }
            }
            "Retransmission" => {
                let bytes = ev.bytes.unwrap_or(0);
                retrans_bytes += bytes;
                if let Some(agent) = ev.agent {
                    agent_slot(&mut agents, agent).retrans_bytes += bytes;
                }
            }
            "AgentFailure" => {
                recovery.failures += 1;
                if let Some(agent) = ev.agent {
                    agent_slot(&mut agents, agent).failures += 1;
                }
            }
            "ChunkReassigned" => {
                recovery.reassigns += 1;
                recovery.reassigned_items += ev.items.unwrap_or(0);
            }
            "AgentKilled" => recovery.kills += 1,
            "AgentRevived" => recovery.revives += 1,
            "AgentJoined" => recovery.joins += 1,
            _ => {}
        }
    }

    let mode = if !rounds.is_empty() {
        AnalysisMode::Rounds
    } else if has_completion_spans {
        AnalysisMode::SteadyState
    } else {
        AnalysisMode::Empty
    };
    let makespan_us = match mode {
        AnalysisMode::Rounds => rounds.iter().map(|r| r.makespan_us).sum(),
        AnalysisMode::SteadyState => steady_makespan_us,
        AnalysisMode::Empty => 0,
    };
    let busy_us: u64 = agents.iter().map(|a| a.busy_us).sum();
    let n_agents = cluster_agents.unwrap_or(agents.len() as u64);
    let wasted_idle_us = (n_agents * makespan_us).saturating_sub(busy_us);

    for a in &mut agents {
        a.mean_us = if a.spans == 0 {
            0.0
        } else {
            a.busy_us as f64 / a.spans as f64
        };
    }
    let fastest_mean = agents
        .iter()
        .filter(|a| a.spans > 0)
        .map(|a| a.mean_us)
        .fold(f64::INFINITY, f64::min);
    for a in &mut agents {
        a.slowdown = if a.spans == 0 || !fastest_mean.is_finite() || fastest_mean <= 0.0 {
            0.0
        } else {
            a.mean_us / fastest_mean
        };
    }
    let straggler = match mode {
        AnalysisMode::Rounds => agents
            .iter()
            .filter(|a| a.spans > 0)
            .max_by(|x, y| {
                (x.critical_rounds, x.mean_us)
                    .partial_cmp(&(y.critical_rounds, y.mean_us))
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .map(|a| a.agent),
        AnalysisMode::SteadyState => agents
            .iter()
            .filter(|a| a.spans > 0)
            .max_by(|x, y| {
                x.mean_us
                    .partial_cmp(&y.mean_us)
                    .unwrap_or(std::cmp::Ordering::Equal)
            })
            .map(|a| a.agent),
        AnalysisMode::Empty => None,
    };

    Analysis {
        mode,
        counts,
        n_agents,
        agents,
        rounds,
        makespan_us,
        busy_us,
        wasted_idle_us,
        retrans_bytes,
        recovery,
        straggler,
    }
}

fn seconds(us: u64) -> f64 {
    us as f64 / 1e6
}

impl Analysis {
    /// Renders the per-agent utilization table (the `summarize` verb's
    /// whole output, and part of the full `analyze` report).
    pub fn render_agent_table(&self) -> String {
        let mut out = String::from("per-agent:\n");
        out.push_str("  agent  spans  busy_s    mean_ms   critical  retrans_B  fails  slowdown\n");
        for a in &self.agents {
            out.push_str(&format!(
                "  {:<5}  {:<5}  {:<8.3}  {:<8.3}  {:<8}  {:<9}  {:<5}  {:.2}x\n",
                a.agent,
                a.spans,
                seconds(a.busy_us),
                a.mean_us / 1e3,
                a.critical_rounds,
                a.retrans_bytes,
                a.failures,
                a.slowdown,
            ));
        }
        out
    }

    /// Renders the `summarize` report: utilization header plus the
    /// per-agent table.
    pub fn render_summary(&self) -> String {
        if self.mode == AnalysisMode::Empty {
            return "no span-bearing events; nothing to summarize\n".to_string();
        }
        let mut out = format!(
            "agents: {}  makespan: {:.3}s  busy: {:.3}s  wasted idle: {:.3}s\n",
            self.n_agents,
            seconds(self.makespan_us),
            seconds(self.busy_us),
            seconds(self.wasted_idle_us),
        );
        out.push_str(&self.render_agent_table());
        out
    }

    /// Renders the human-readable `clan-trace analyze` report.
    pub fn render(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "events: {} logical + {} timing\n",
            self.counts.0, self.counts.1
        ));
        match self.mode {
            AnalysisMode::Empty => {
                out.push_str("no span-bearing events; nothing to analyze\n");
                return out;
            }
            AnalysisMode::Rounds => out.push_str(&format!(
                "mode: scatter/gather rounds ({} rounds)\n",
                self.rounds.len()
            )),
            AnalysisMode::SteadyState => out.push_str("mode: async steady-state\n"),
        }
        out.push_str(&format!(
            "agents: {}  makespan: {:.3}s  busy: {:.3}s  wasted idle: {:.3}s ({:.1}% of capacity)\n",
            self.n_agents,
            seconds(self.makespan_us),
            seconds(self.busy_us),
            seconds(self.wasted_idle_us),
            if self.n_agents * self.makespan_us == 0 {
                0.0
            } else {
                100.0 * self.wasted_idle_us as f64 / (self.n_agents * self.makespan_us) as f64
            },
        ));
        out.push_str(&self.render_agent_table());
        if let Some(s) = self.straggler {
            let stat = &self.agents[s as usize];
            match self.mode {
                AnalysisMode::Rounds => out.push_str(&format!(
                    "critical-path straggler: agent {s} — critical in {}/{} rounds, \
                     mean span {:.3}ms, slowdown {:.2}x\n",
                    stat.critical_rounds,
                    self.rounds.len(),
                    stat.mean_us / 1e3,
                    stat.slowdown,
                )),
                AnalysisMode::SteadyState => out.push_str(&format!(
                    "critical-path straggler: agent {s} — mean service {:.3}ms, slowdown {:.2}x\n",
                    stat.mean_us / 1e3,
                    stat.slowdown,
                )),
                AnalysisMode::Empty => {}
            }
        }
        if self.retrans_bytes > 0 {
            out.push_str(&format!(
                "retransmission overhead: {} bytes\n",
                self.retrans_bytes
            ));
        }
        let r = &self.recovery;
        if r.failures + r.reassigns + r.kills + r.revives + r.joins > 0 {
            out.push_str(&format!(
                "recovery: {} failure(s), {} reassigned chunk(s) ({} item(s)), \
                 {} kill(s), {} revive(s), {} join(s)\n",
                r.failures, r.reassigns, r.reassigned_items, r.kills, r.revives, r.joins
            ));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::parse_jsonl;

    fn ev(seq: u64, class: &str, kind: &str, extra: &str) -> String {
        format!("{{\"seq\":{seq},\"class\":\"{class}\",\"kind\":\"{kind}\"{extra}}}")
    }

    #[test]
    fn rounds_mode_finds_the_critical_agent() {
        let lines = [
            ev(0, "Timing", "ClusterInfo", ",\"items\":3"),
            ev(1, "Timing", "AgentExchange", ",\"agent\":0,\"dur_us\":1000"),
            ev(2, "Timing", "AgentExchange", ",\"agent\":1,\"dur_us\":4000"),
            ev(3, "Timing", "AgentExchange", ",\"agent\":2,\"dur_us\":900"),
            ev(4, "Timing", "GatherRound", ",\"dur_us\":4200"),
            ev(5, "Timing", "AgentExchange", ",\"agent\":0,\"dur_us\":1100"),
            ev(6, "Timing", "AgentExchange", ",\"agent\":1,\"dur_us\":3900"),
            ev(7, "Timing", "AgentExchange", ",\"agent\":2,\"dur_us\":1000"),
            ev(8, "Timing", "GatherRound", ",\"dur_us\":4100"),
            ev(9, "Timing", "Retransmission", ",\"agent\":1,\"bytes\":768"),
        ]
        .join("\n");
        let a = analyze(&parse_jsonl(&lines).unwrap());
        assert_eq!(a.mode, AnalysisMode::Rounds);
        assert_eq!(a.n_agents, 3);
        assert_eq!(a.rounds.len(), 2);
        assert_eq!(a.rounds[0].critical_agent, Some(1));
        assert_eq!(a.rounds[0].makespan_us, 4200);
        assert_eq!(a.straggler, Some(1));
        assert_eq!(a.agents[1].critical_rounds, 2);
        assert_eq!(a.makespan_us, 8300);
        assert_eq!(a.busy_us, 11_900);
        assert_eq!(a.wasted_idle_us, 3 * 8300 - 11_900);
        assert_eq!(a.retrans_bytes, 768);
        assert_eq!(a.agents[1].retrans_bytes, 768);
        // Slowdown vs fastest mean (agent 2: mean 950us): agent 1 mean
        // 3950us -> ~4.16x.
        assert!((a.agents[1].slowdown - 3950.0 / 950.0).abs() < 1e-9);
        let text = a.render();
        assert!(text.contains("critical-path straggler: agent 1"), "{text}");
    }

    #[test]
    fn steady_state_mode_matches_async_stats_definitions() {
        let lines = [
            ev(0, "Timing", "ClusterInfo", ",\"items\":2"),
            ev(
                1,
                "Logical",
                "Completion",
                ",\"lseq\":0,\"agent\":0,\"vtime_us\":5000,\"dur_us\":5000,\"genome\":1,\"fitness_bits\":0,\"aseq\":0",
            ),
            ev(
                2,
                "Logical",
                "Completion",
                ",\"lseq\":1,\"agent\":1,\"vtime_us\":20000,\"dur_us\":20000,\"genome\":2,\"fitness_bits\":0,\"aseq\":1",
            ),
            ev(
                3,
                "Logical",
                "Completion",
                ",\"lseq\":2,\"agent\":0,\"vtime_us\":10500,\"dur_us\":5500,\"genome\":3,\"fitness_bits\":0,\"aseq\":2",
            ),
        ]
        .join("\n");
        let a = analyze(&parse_jsonl(&lines).unwrap());
        assert_eq!(a.mode, AnalysisMode::SteadyState);
        assert_eq!(a.makespan_us, 20_000);
        assert_eq!(a.busy_us, 30_500);
        assert_eq!(a.wasted_idle_us, 2 * 20_000 - 30_500);
        assert_eq!(a.straggler, Some(1));
        assert!((a.agents[1].slowdown - 20_000.0 / 5250.0).abs() < 1e-9);
    }

    #[test]
    fn empty_trace_analyzes_to_empty_mode() {
        let a = analyze(&[]);
        assert_eq!(a.mode, AnalysisMode::Empty);
        assert_eq!(a.straggler, None);
        assert!(a.render().contains("nothing to analyze"));
    }
}
