//! `clan-trace` CLI.
//!
//! ```text
//! clan-trace analyze --trace FILE     # critical path, stragglers, recovery
//! clan-trace summarize --trace FILE   # per-agent utilization table only
//! clan-trace diff LEFT RIGHT          # first logical divergence, framed
//! ```
//!
//! Exit codes: 0 analyzed / identical, 1 divergence or truncation found,
//! 2 usage or I/O error.

use clan_trace_tools::{analyze_file, diff_files};
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("analyze") => run_analysis(&args[1..], false),
        Some("summarize") => run_analysis(&args[1..], true),
        Some("diff") => run_diff(&args[1..]),
        Some(other) => usage(&format!("unknown command `{other}`")),
        None => usage("missing command"),
    }
}

fn trace_arg(args: &[String]) -> Result<String, String> {
    let mut path: Option<String> = None;
    let mut it = args.iter();
    while let Some(a) = it.next() {
        match a.as_str() {
            "--trace" => match it.next() {
                Some(v) => path = Some(v.clone()),
                None => return Err("--trace needs a file".into()),
            },
            other => return Err(format!("unknown argument `{other}`")),
        }
    }
    path.ok_or_else(|| "--trace FILE is required".into())
}

fn run_analysis(args: &[String], summary_only: bool) -> ExitCode {
    let path = match trace_arg(args) {
        Ok(p) => p,
        Err(e) => return usage(&e),
    };
    match analyze_file(&path) {
        Ok(a) => {
            print!(
                "{}",
                if summary_only {
                    a.render_summary()
                } else {
                    a.render()
                }
            );
            ExitCode::SUCCESS
        }
        Err(e) => {
            eprintln!("clan-trace: {e}");
            ExitCode::from(2)
        }
    }
}

fn run_diff(args: &[String]) -> ExitCode {
    let (left, right) = match args {
        [l, r] => (l, r),
        _ => return usage("diff needs exactly two trace files"),
    };
    match diff_files(left, right) {
        Ok(outcome) => {
            print!("{}", outcome.render());
            if outcome.is_identical() {
                ExitCode::SUCCESS
            } else {
                ExitCode::FAILURE
            }
        }
        Err(e) => {
            eprintln!("clan-trace: {e}");
            ExitCode::from(2)
        }
    }
}

fn usage(err: &str) -> ExitCode {
    eprintln!("clan-trace: {err}");
    eprintln!(
        "usage: clan-trace analyze --trace FILE | clan-trace summarize --trace FILE \
         | clan-trace diff LEFT RIGHT"
    );
    ExitCode::from(2)
}
