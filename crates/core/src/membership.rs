//! Cluster membership and recovery: who is alive, who is suspected,
//! who is dead — and what surviving a failure cost.
//!
//! CLAN's premise is commodity edge devices, and commodity devices
//! crash, brown out, and drop off the WiFi mid-run. The PR-4 transport
//! stack made a dying agent *observable* (a typed
//! [`ClanError::Timeout`] or
//! [`ClanError::Transport`] instead of a
//! hang); this module makes it *survivable*. The
//! [`EdgeCluster`](crate::runtime::EdgeCluster) tracks one
//! [`LinkHealth`] per agent link and, when a scatter chunk is lost to a
//! failed agent, deterministically reassigns it across the survivors
//! (see the runtime docs for the retry protocol). The policy knobs live
//! in [`RecoveryPolicy`]; everything a recovery cost is measured in
//! [`RecoveryStats`] and surfaced on
//! [`RunReport`](crate::report::RunReport).
//!
//! # Health model
//!
//! ```text
//!          failure              failure
//! Alive ────────────▶ Suspected ────────────▶ Dead
//!   ▲                     │
//!   └─────────────────────┘
//!          success
//! ```
//!
//! A link fails when an exchange with it surfaces a churn-class error
//! (`Transport` or `Timeout` — the errors an unplugged device produces).
//! One failure makes the link **suspected**: its in-flight chunk is
//! reassigned, it is excluded from further retries *within that scatter
//! round*, and its session is poisoned (a timed-out agent's late reply
//! must never answer the next round's request). On the next round the
//! link is probed again with real work **over a freshly established
//! session** — remote links reconnect to their original address, so
//! transient WiFi dropouts recover; links that cannot re-establish
//! (in-process agents whose thread died with the session, injected
//! kills) fail the probe instantly. A second consecutive failure makes
//! the link **dead**: it receives no further work until a replacement
//! agent is revived into its slot (see
//! [`ChurnSchedule`](crate::transport::ChurnSchedule) and
//! [`EdgeCluster::admit_transport`](crate::runtime::EdgeCluster::admit_transport)).
//! A success at any point restores **alive**.
//!
//! Protocol and frame errors are deliberately *not* churn-class: a peer
//! that answers with garbage is a bug to surface, not a device to route
//! around, so those propagate immediately.

use crate::error::ClanError;
use serde::{Deserialize, Serialize};

/// Liveness of one agent link, as judged from its exchange outcomes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LinkHealth {
    /// Responding normally; receives work every scatter.
    Alive,
    /// Failed its last exchange; excluded from retries this round but
    /// probed with real work next round.
    Suspected,
    /// Failed while already suspected; receives no work until revived.
    Dead,
}

impl LinkHealth {
    /// The transition taken when an exchange with this link fails.
    pub fn on_failure(self) -> LinkHealth {
        match self {
            LinkHealth::Alive => LinkHealth::Suspected,
            LinkHealth::Suspected | LinkHealth::Dead => LinkHealth::Dead,
        }
    }

    /// The transition taken when an exchange with this link succeeds.
    pub fn on_success(self) -> LinkHealth {
        let _ = self;
        LinkHealth::Alive
    }

    /// Whether the link is eligible for work (not dead).
    pub fn is_live(self) -> bool {
        self != LinkHealth::Dead
    }

    /// Stable lowercase label used by the `/health` introspection
    /// endpoint and human-facing listings.
    pub fn label(self) -> &'static str {
        match self {
            LinkHealth::Alive => "alive",
            LinkHealth::Suspected => "suspected",
            LinkHealth::Dead => "dead",
        }
    }
}

/// Snapshot of one agent link's membership state.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AgentHealth {
    /// Current liveness.
    pub health: LinkHealth,
    /// Churn-class failures observed on this link over the cluster's
    /// life (revival does not reset the history).
    pub failures: u64,
    /// Human-readable description of the most recent failure, if any.
    pub last_error: Option<String>,
}

/// Policy governing how hard the cluster fights to finish a scatter
/// round when agents fail.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct RecoveryPolicy {
    /// Retry (reassignment) attempts allowed per scatter round after the
    /// initial attempt. Each retry redistributes the failed chunks over
    /// the links that have not failed this round.
    pub max_retries: usize,
    /// Minimum usable agents a retry needs; below this the round fails
    /// with [`ClanError::Degraded`] (or the last link error) instead of
    /// soldiering on. At least 1 regardless of the configured value.
    pub min_agents: usize,
}

impl Default for RecoveryPolicy {
    /// Three reassignment retries, no floor beyond "someone is alive".
    fn default() -> RecoveryPolicy {
        RecoveryPolicy {
            max_retries: 3,
            min_agents: 1,
        }
    }
}

impl RecoveryPolicy {
    /// Sets the retry budget.
    pub fn with_max_retries(mut self, n: usize) -> RecoveryPolicy {
        self.max_retries = n;
        self
    }

    /// Sets the live-agent floor.
    pub fn with_min_agents(mut self, n: usize) -> RecoveryPolicy {
        self.min_agents = n;
        self
    }
}

/// Everything surviving churn cost, accumulated over a cluster's life
/// and surfaced on [`RunReport`](crate::report::RunReport) and the CLI.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct RecoveryStats {
    /// Scatter rounds performed (evaluate and build-children calls).
    pub rounds: u64,
    /// Churn-class link failures observed.
    pub failures: u64,
    /// Chunks lost to a failed agent and reassigned to survivors.
    pub reassigned_chunks: u64,
    /// Work items (genomes / child specs) inside those chunks.
    pub reassigned_items: u64,
    /// Extra exchange attempts spent recovering (beyond each round's
    /// first attempt).
    pub retry_attempts: u64,
    /// Measured wall-clock spent in those retry attempts, seconds — the
    /// recovery makespan cost a clean run does not pay.
    pub recovery_s: f64,
    /// Agent kills injected by a [`ChurnSchedule`](crate::transport::ChurnSchedule).
    pub kills: u64,
    /// Agents that joined mid-run (churn revivals plus explicit
    /// admissions).
    pub joins: u64,
    /// Per-link failure counts (index = link slot).
    pub agent_failures: Vec<u64>,
}

impl RecoveryStats {
    /// Records one churn-class failure on link `agent`.
    pub(crate) fn note_failure(&mut self, agent: usize) {
        self.failures += 1;
        if self.agent_failures.len() <= agent {
            self.agent_failures.resize(agent + 1, 0);
        }
        self.agent_failures[agent] += 1;
    }

    /// Whether any recovery machinery actually engaged.
    pub fn any_recovery(&self) -> bool {
        self.failures > 0 || self.kills > 0 || self.joins > 0
    }
}

/// Whether an error is *churn-class*: the kind a crashed or unplugged
/// device produces, and therefore the kind membership tracking routes
/// around. Protocol, frame, and setup errors are bugs and propagate.
pub fn is_churn_error(e: &ClanError) -> bool {
    matches!(e, ClanError::Transport { .. } | ClanError::Timeout { .. })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn health_transitions_follow_the_two_strike_model() {
        let h = LinkHealth::Alive;
        let h = h.on_failure();
        assert_eq!(h, LinkHealth::Suspected);
        assert!(h.is_live());
        assert_eq!(h.on_success(), LinkHealth::Alive);
        let h = h.on_failure();
        assert_eq!(h, LinkHealth::Dead);
        assert!(!h.is_live());
        // Dead stays dead on further failures; success (a revived
        // replacement answering) restores life.
        assert_eq!(h.on_failure(), LinkHealth::Dead);
        assert_eq!(h.on_success(), LinkHealth::Alive);
    }

    #[test]
    fn churn_classification_matches_the_device_failure_modes() {
        assert!(is_churn_error(&ClanError::Transport {
            peer: "x".into(),
            reason: "gone".into(),
        }));
        assert!(is_churn_error(&ClanError::Timeout {
            peer: "x".into(),
            waited: std::time::Duration::from_secs(1),
        }));
        assert!(!is_churn_error(&ClanError::Protocol {
            peer: "x".into(),
            reason: "garbage".into(),
        }));
        assert!(!is_churn_error(&ClanError::Frame(
            crate::error::FrameError::BadMagic
        )));
        assert!(!is_churn_error(&ClanError::InvalidSetup {
            reason: "nope".into(),
        }));
    }

    #[test]
    fn stats_attribute_failures_per_agent() {
        let mut s = RecoveryStats::default();
        assert!(!s.any_recovery());
        s.note_failure(2);
        s.note_failure(2);
        s.note_failure(0);
        assert_eq!(s.failures, 3);
        assert_eq!(s.agent_failures, vec![1, 0, 2]);
        assert!(s.any_recovery());
    }

    #[test]
    fn policy_defaults_and_builders() {
        let p = RecoveryPolicy::default();
        assert_eq!(p.max_retries, 3);
        assert_eq!(p.min_agents, 1);
        let p = p.with_max_retries(1).with_min_agents(2);
        assert_eq!((p.max_retries, p.min_agents), (1, 2));
    }
}
