//! The structured event model: one flat, serializable record per
//! observable step of a run, split into two determinism classes.
//!
//! **Logical** events form the deterministic stream: they carry logical
//! time only (their own `lseq` counter, generation indices, virtual
//! microseconds where a mode has them) and are byte-identical per seed
//! across every synchronous execution surface — serial, loopback TCP,
//! lossy UDP, churned — because they are emitted from the id-ordered
//! replay loops that already pin fitness equivalence. **Timing** events
//! are the annotation channel: wall-clock spans, per-link waits,
//! retransmissions, churn transitions — everything that legitimately
//! differs between transports lives here and never contaminates the
//! logical stream.

use super::clock::WallClock;
use super::metrics::MetricsRegistry;
use serde::{Deserialize, Serialize};
use std::collections::VecDeque;
use std::sync::{Arc, Mutex};

/// Which channel an event belongs to (fixed at record time).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum Determinism {
    /// Part of the deterministic stream: byte-identical per seed across
    /// execution surfaces (and per `(seed, schedule)` in virtual-time
    /// async runs).
    Logical,
    /// Wall-clock / transport annotation: excluded from the pinned
    /// stream, free to differ between runs and modes.
    Timing,
}

/// What happened. Payload fields live on [`TraceEvent`] (sparse, all
/// optional) so the record stays flat for the vendored serde shim.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum EventKind {
    /// Run preamble: seed, workload, population size.
    RunStart,
    /// A generation's evaluation is about to begin.
    GenerationStart,
    /// One genome's evaluation replayed in id order (fitness bits).
    EvalResult,
    /// A generation finished: best fitness, species, cache window.
    GenerationEnd,
    /// Async steady-state: a genome was put in flight on an agent.
    Dispatch,
    /// Async steady-state: an evaluation finished (mirrors one
    /// `--event-log` line; `aseq` is that log's `e=` index).
    Completion,
    /// Async steady-state: a child was inserted into the population.
    Insertion,
    /// Cluster shape annotation (agent count, transport flavor).
    ClusterInfo,
    /// One scatter/gather round's measured makespan and busy time.
    GatherRound,
    /// One link's round-trip within a gather (per-agent span).
    AgentExchange,
    /// Loss-recovery overhead drained from one link (retransmitted and
    /// duplicate datagram bytes).
    Retransmission,
    /// A churn-class link failure was recorded against an agent.
    AgentFailure,
    /// A failed link's chunk was reassigned to the survivors.
    ChunkReassigned,
    /// Deterministic churn schedule (or caller) killed an agent.
    AgentKilled,
    /// A previously killed agent slot was revived.
    AgentRevived,
    /// A new agent was admitted mid-run (spare or local).
    AgentJoined,
    /// Run postamble: generations completed.
    RunEnd,
}

impl EventKind {
    /// Stable snake_case label used in the logical stream text, JSONL
    /// consumers, and Chrome track names.
    pub fn label(self) -> &'static str {
        match self {
            EventKind::RunStart => "run_start",
            EventKind::GenerationStart => "gen_start",
            EventKind::EvalResult => "eval",
            EventKind::GenerationEnd => "gen_end",
            EventKind::Dispatch => "dispatch",
            EventKind::Completion => "async",
            EventKind::Insertion => "insert",
            EventKind::ClusterInfo => "cluster",
            EventKind::GatherRound => "gather",
            EventKind::AgentExchange => "exchange",
            EventKind::Retransmission => "retrans",
            EventKind::AgentFailure => "agent_fail",
            EventKind::ChunkReassigned => "reassign",
            EventKind::AgentKilled => "kill",
            EventKind::AgentRevived => "revive",
            EventKind::AgentJoined => "join",
            EventKind::RunEnd => "run_end",
        }
    }
}

/// One trace record. Flat and sparse: every payload slot is optional so
/// a single struct serializes every kind through the vendored serde
/// shim, and unknown-to-a-kind fields simply stay `None`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TraceEvent {
    /// Position in the full stream (Logical and Timing interleaved).
    pub seq: u64,
    /// Determinism class, fixed at record time.
    pub class: Determinism,
    /// What happened.
    pub kind: EventKind,
    /// Position in the logical stream (Logical events only); this — not
    /// `seq` — is what stays identical across execution surfaces.
    pub lseq: Option<u64>,
    /// Agent slot the event concerns, when attributable.
    pub agent: Option<u64>,
    /// Virtual time, microseconds (async virtual mode).
    pub vtime_us: Option<u64>,
    /// Wall-clock timestamp, microseconds since the trace epoch
    /// (Timing events; captured by [`super::clock::WallClock`]).
    pub wall_us: Option<u64>,
    /// Duration in microseconds (wall for Timing spans, virtual for
    /// async completions).
    pub dur_us: Option<u64>,
    /// Generation index.
    pub generation: Option<u64>,
    /// Genome id.
    pub genome: Option<u64>,
    /// Fitness as IEEE-754 bits (exact, no decimal round trip).
    pub fitness_bits: Option<u64>,
    /// Master seed (`RunStart`).
    pub seed: Option<u64>,
    /// Population size (`RunStart`).
    pub population: Option<u64>,
    /// Species alive (`GenerationEnd`).
    pub species: Option<u64>,
    /// Fitness-cache hits in the window (`GenerationEnd`).
    pub cache_hits: Option<u64>,
    /// Fitness-cache lookups in the window (`GenerationEnd`).
    pub cache_lookups: Option<u64>,
    /// Async event-log sequence (`e=` index) for `Completion` events.
    pub aseq: Option<u64>,
    /// Inserted child's genome id (`Completion`/`Insertion`).
    pub child: Option<u64>,
    /// Evicted genome id (`Completion`/`Insertion`).
    pub evicted: Option<u64>,
    /// First parent id (`Completion`/`Insertion`).
    pub p1: Option<u64>,
    /// Second parent id (`Completion`/`Insertion`).
    pub p2: Option<u64>,
    /// Generic count payload (items reassigned, agents, completions).
    pub items: Option<u64>,
    /// Byte count payload (retransmission overhead).
    pub bytes: Option<u64>,
    /// Free-form annotation (workload name, message kind, error text).
    pub label: Option<String>,
}

impl TraceEvent {
    /// A bare event of the given class and kind; every payload slot
    /// starts empty and `seq`/`lseq` are assigned by the tracer.
    pub fn base(class: Determinism, kind: EventKind) -> TraceEvent {
        TraceEvent {
            seq: 0,
            class,
            kind,
            lseq: None,
            agent: None,
            vtime_us: None,
            wall_us: None,
            dur_us: None,
            generation: None,
            genome: None,
            fitness_bits: None,
            seed: None,
            population: None,
            species: None,
            cache_hits: None,
            cache_lookups: None,
            aseq: None,
            child: None,
            evicted: None,
            p1: None,
            p2: None,
            items: None,
            bytes: None,
            label: None,
        }
    }

    /// The event's line in the deterministic stream text, or `None` for
    /// Timing events. Only logical payload slots are rendered — never
    /// `seq`, wall timestamps, or durations — so the text is invariant
    /// across execution surfaces.
    pub fn logical_line(&self) -> Option<String> {
        if self.class != Determinism::Logical {
            return None;
        }
        let mut line = format!("l={} k={}", self.lseq.unwrap_or(0), self.kind.label());
        if let Some(seed) = self.seed {
            line.push_str(&format!(" seed={seed}"));
        }
        if let Some(w) = &self.label {
            line.push_str(&format!(" w={w}"));
        }
        if let Some(p) = self.population {
            line.push_str(&format!(" pop={p}"));
        }
        if let Some(g) = self.generation {
            line.push_str(&format!(" gen={g}"));
        }
        if let Some(t) = self.vtime_us {
            line.push_str(&format!(" t={t}us"));
        }
        if let Some(a) = self.agent {
            line.push_str(&format!(" a={a}"));
        }
        if let Some(g) = self.genome {
            line.push_str(&format!(" g={g}"));
        }
        if let Some(f) = self.fitness_bits {
            line.push_str(&format!(" f={f:#018X}"));
        }
        if let Some(s) = self.species {
            line.push_str(&format!(" sp={s}"));
        }
        if self.cache_lookups.is_some() || self.cache_hits.is_some() {
            line.push_str(&format!(
                " ch={} cl={}",
                self.cache_hits.unwrap_or(0),
                self.cache_lookups.unwrap_or(0)
            ));
        }
        if self.kind == EventKind::Completion || self.kind == EventKind::Insertion {
            match (self.child, self.p1, self.p2) {
                (Some(c), Some(p1), Some(p2)) => {
                    let evicted = match self.evicted {
                        Some(e) => e.to_string(),
                        None => "-".into(),
                    };
                    line.push_str(&format!(" child={c} evicted={evicted} p={p1},{p2}"));
                }
                _ => line.push_str(" child=- evicted=- p=-"),
            }
        }
        if let Some(n) = self.items {
            line.push_str(&format!(" n={n}"));
        }
        Some(line)
    }

    /// For async `Completion` events: the exact `--event-log` line the
    /// same completion produced (PR 7 format), letting a trace be
    /// checked as a strict superset of the event log.
    pub fn async_log_line(&self) -> Option<String> {
        if self.kind != EventKind::Completion {
            return None;
        }
        let (aseq, vtime, agent, genome, fitness) = (
            self.aseq?,
            self.vtime_us?,
            self.agent?,
            self.genome?,
            self.fitness_bits?,
        );
        let tail = match (self.child, self.p1, self.p2) {
            (Some(c), Some(p1), Some(p2)) => {
                let evicted = match self.evicted {
                    Some(e) => e.to_string(),
                    None => "-".into(),
                };
                format!("child={c} evicted={evicted} p={p1},{p2}")
            }
            _ => "child=- evicted=- p=-".into(),
        };
        Some(format!(
            "e={aseq} t={vtime}us a={agent} g={genome} f={fitness:#018X} {tail}"
        ))
    }
}

/// splitmix64 — the same mix the async event-log hash uses, local so
/// the telemetry layer has no RNG dependency.
fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Seed of the logical-stream fold hash (mirrors the async log's).
const LOGICAL_HASH_SEED: u64 = 0x00A5_15C0_0000_0002;

/// A finished run's collected events plus the metrics the tracer
/// accumulated alongside them.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct RunTrace {
    /// Every recorded event, in record order.
    pub events: Vec<TraceEvent>,
    /// Counters/gauges/histograms maintained while recording.
    pub metrics: MetricsRegistry,
}

impl RunTrace {
    /// The deterministic stream: one line per Logical event, newline
    /// terminated. Byte-identical per seed across execution surfaces.
    pub fn logical_text(&self) -> String {
        let mut out = String::new();
        for ev in &self.events {
            if let Some(line) = ev.logical_line() {
                out.push_str(&line);
                out.push('\n');
            }
        }
        out
    }

    /// Order-sensitive fold hash of [`logical_text`](RunTrace::logical_text).
    pub fn logical_hash(&self) -> u64 {
        let mut h = LOGICAL_HASH_SEED;
        for &b in self.logical_text().as_bytes() {
            h = splitmix64(h ^ u64::from(b));
        }
        h
    }

    /// `(logical, timing)` event counts.
    pub fn counts(&self) -> (u64, u64) {
        let logical = self
            .events
            .iter()
            .filter(|e| e.class == Determinism::Logical)
            .count() as u64;
        (logical, self.events.len() as u64 - logical)
    }
}

/// Interior state behind a live tracer.
#[derive(Debug)]
struct Sink {
    events: VecDeque<TraceEvent>,
    /// Flight-recorder bound: `Some(n)` keeps only the last `n` events
    /// (oldest are dropped; `seq`/`lseq` keep counting so the retained
    /// tail is still globally positioned). `None` is unbounded.
    ring_capacity: Option<usize>,
    /// Events discarded by the ring so far.
    dropped: u64,
    seq: u64,
    lseq: u64,
    clock: WallClock,
    metrics: MetricsRegistry,
}

/// A cheap-to-clone recording handle. The default tracer is disabled
/// and every emit is a no-op costing one branch, so instrumented code
/// paths stay free when tracing is off; [`Tracer::new`] turns recording
/// on. Clones share one sink, which is how the evaluator, the edge
/// cluster, and the orchestrators all feed a single stream.
#[derive(Debug, Clone, Default)]
pub struct Tracer {
    inner: Option<Arc<Mutex<Sink>>>,
}

impl Tracer {
    /// A live tracer recording into a fresh sink (wall epoch = now).
    pub fn new() -> Tracer {
        Tracer {
            inner: Some(Arc::new(Mutex::new(Sink {
                events: VecDeque::new(),
                ring_capacity: None,
                dropped: 0,
                seq: 0,
                lseq: 0,
                clock: WallClock::start(),
                metrics: MetricsRegistry::default(),
            }))),
        }
    }

    /// A live tracer in flight-recorder mode: only the last `capacity`
    /// events are kept in memory (oldest dropped, `capacity` clamped to
    /// at least 1). `seq`/`lseq` assignment, metrics, and the wall epoch
    /// behave exactly as in [`Tracer::new`], so the retained tail reads
    /// like the end of an unbounded trace — the logical stream text of
    /// the tail is a suffix of the full run's.
    pub fn with_ring(capacity: usize) -> Tracer {
        Tracer {
            inner: Some(Arc::new(Mutex::new(Sink {
                events: VecDeque::with_capacity(capacity.clamp(1, 65_536)),
                ring_capacity: Some(capacity.max(1)),
                dropped: 0,
                seq: 0,
                lseq: 0,
                clock: WallClock::start(),
                metrics: MetricsRegistry::default(),
            }))),
        }
    }

    /// The no-op handle (same as `Tracer::default()`).
    pub fn disabled() -> Tracer {
        Tracer::default()
    }

    /// Whether emits are recorded.
    pub fn is_enabled(&self) -> bool {
        self.inner.is_some()
    }

    /// Records one event: assigns `seq` (and `lseq` for Logical
    /// events), stamps Timing events with the wall clock, and updates
    /// the per-kind metrics. No-op when disabled; `fill` never runs in
    /// that case.
    pub fn emit(&self, class: Determinism, kind: EventKind, fill: impl FnOnce(&mut TraceEvent)) {
        let Some(inner) = &self.inner else { return };
        let Ok(mut sink) = inner.lock() else { return };
        let mut ev = TraceEvent::base(class, kind);
        fill(&mut ev);
        ev.seq = sink.seq;
        sink.seq += 1;
        if class == Determinism::Logical {
            ev.lseq = Some(sink.lseq);
            sink.lseq += 1;
        } else if ev.wall_us.is_none() {
            ev.wall_us = Some(sink.clock.elapsed_us());
        }
        sink.metrics.inc(&format!("events.{}", kind.label()), 1);
        if let Some(d) = ev.dur_us {
            if kind == EventKind::GatherRound || kind == EventKind::AgentExchange {
                sink.metrics
                    .observe_duration(&format!("dur_s.{}", kind.label()), d as f64 / 1e6);
            }
        }
        if let Some(b) = ev.bytes {
            sink.metrics.inc("retrans.bytes", b);
        }
        if let Some(h) = ev.cache_hits {
            sink.metrics.inc("cache.hits", h);
        }
        if let Some(l) = ev.cache_lookups {
            sink.metrics.inc("cache.lookups", l);
        }
        sink.events.push_back(ev);
        if let Some(cap) = sink.ring_capacity {
            while sink.events.len() > cap {
                sink.events.pop_front();
                sink.dropped += 1;
                sink.metrics.inc("ring.dropped", 1);
            }
        }
    }

    /// Sets a gauge in the attached metrics registry without recording
    /// an event (gauges are annotations, never part of the logical
    /// stream). No-op when disabled.
    pub fn set_gauge(&self, name: &str, value: f64) {
        let Some(inner) = &self.inner else { return };
        let Ok(mut sink) = inner.lock() else { return };
        sink.metrics.set_gauge(name, value);
    }

    /// Shorthand for a Logical emit.
    pub fn logical(&self, kind: EventKind, fill: impl FnOnce(&mut TraceEvent)) {
        self.emit(Determinism::Logical, kind, fill);
    }

    /// Shorthand for a Timing emit.
    pub fn timing(&self, kind: EventKind, fill: impl FnOnce(&mut TraceEvent)) {
        self.emit(Determinism::Timing, kind, fill);
    }

    /// Wall timestamp on this tracer's epoch (for span starts computed
    /// by callers that know a duration). Zero when disabled.
    pub fn now_us(&self) -> u64 {
        match &self.inner {
            Some(inner) => match inner.lock() {
                Ok(sink) => sink.clock.elapsed_us(),
                Err(_) => 0,
            },
            None => 0,
        }
    }

    /// A copy of the accumulated metrics without draining the event
    /// buffer (what the live `/metrics` endpoint publishes between
    /// generations). `None` when disabled.
    pub fn metrics_snapshot(&self) -> Option<MetricsRegistry> {
        let inner = self.inner.as_ref()?;
        let sink = inner.lock().ok()?;
        Some(sink.metrics.clone())
    }

    /// Events the flight-recorder ring has discarded so far (always 0
    /// for unbounded tracers and when disabled).
    pub fn ring_dropped(&self) -> u64 {
        match &self.inner {
            Some(inner) => match inner.lock() {
                Ok(sink) => sink.dropped,
                Err(_) => 0,
            },
            None => 0,
        }
    }

    /// Drains everything recorded so far into a [`RunTrace`], leaving
    /// the tracer running with empty buffers. `None` when disabled.
    pub fn finish(&self) -> Option<RunTrace> {
        let inner = self.inner.as_ref()?;
        let mut sink = inner.lock().ok()?;
        Some(RunTrace {
            events: std::mem::take(&mut sink.events).into(),
            metrics: std::mem::take(&mut sink.metrics),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_tracer_records_nothing() {
        let t = Tracer::disabled();
        t.logical(EventKind::RunStart, |e| e.seed = Some(1));
        assert!(!t.is_enabled());
        assert!(t.finish().is_none());
    }

    #[test]
    fn sequences_and_classes_are_assigned() {
        let t = Tracer::new();
        t.logical(EventKind::RunStart, |e| e.seed = Some(7));
        t.timing(EventKind::GatherRound, |e| e.dur_us = Some(10));
        t.logical(EventKind::RunEnd, |_| {});
        let trace = t.finish().unwrap();
        assert_eq!(trace.events.len(), 3);
        assert_eq!(trace.events[0].lseq, Some(0));
        assert_eq!(trace.events[1].lseq, None);
        assert!(trace.events[1].wall_us.is_some());
        assert_eq!(trace.events[2].lseq, Some(1));
        assert_eq!(trace.counts(), (2, 1));
    }

    #[test]
    fn logical_text_excludes_timing_events() {
        let t = Tracer::new();
        t.logical(EventKind::GenerationStart, |e| e.generation = Some(0));
        t.timing(EventKind::Retransmission, |e| {
            e.agent = Some(1);
            e.bytes = Some(512);
        });
        let trace = t.finish().unwrap();
        let text = trace.logical_text();
        assert_eq!(text, "l=0 k=gen_start gen=0\n");
        assert_ne!(trace.logical_hash(), LOGICAL_HASH_SEED);
    }

    #[test]
    fn async_log_line_round_trips_format() {
        let mut ev = TraceEvent::base(Determinism::Logical, EventKind::Completion);
        ev.aseq = Some(3);
        ev.vtime_us = Some(4200);
        ev.agent = Some(1);
        ev.genome = Some(17);
        ev.fitness_bits = Some(0x40590000_00000000);
        ev.child = Some(21);
        ev.p1 = Some(17);
        ev.p2 = Some(4);
        assert_eq!(
            ev.async_log_line().unwrap(),
            "e=3 t=4200us a=1 g=17 f=0x4059000000000000 child=21 evicted=- p=17,4"
        );
        ev.child = None;
        assert_eq!(
            ev.async_log_line().unwrap(),
            "e=3 t=4200us a=1 g=17 f=0x4059000000000000 child=- evicted=- p=-"
        );
    }

    #[test]
    fn ring_keeps_the_last_n_events_with_global_positions() {
        let t = Tracer::with_ring(3);
        for g in 0..10u64 {
            t.logical(EventKind::EvalResult, |e| {
                e.genome = Some(g);
                e.fitness_bits = Some(g);
            });
        }
        assert_eq!(t.ring_dropped(), 7);
        let trace = t.finish().unwrap();
        assert_eq!(trace.events.len(), 3);
        // seq/lseq keep counting across drops: the tail is globally
        // positioned exactly as in an unbounded trace.
        assert_eq!(trace.events[0].seq, 7);
        assert_eq!(trace.events[0].lseq, Some(7));
        assert_eq!(trace.events[2].seq, 9);
        assert_eq!(trace.events[2].genome, Some(9));
        assert_eq!(trace.metrics.counter("ring.dropped"), 7);
        assert_eq!(trace.metrics.counter("events.eval"), 10);
    }

    #[test]
    fn ring_tail_is_a_suffix_of_the_unbounded_logical_stream() {
        let full = Tracer::new();
        let ring = Tracer::with_ring(4);
        for t in [&full, &ring] {
            t.logical(EventKind::RunStart, |e| e.seed = Some(3));
            for g in 0..8u64 {
                t.logical(EventKind::EvalResult, |e| e.genome = Some(g));
            }
            t.logical(EventKind::RunEnd, |_| {});
        }
        let full_text = full.finish().unwrap().logical_text();
        let tail_text = ring.finish().unwrap().logical_text();
        assert!(full_text.ends_with(&tail_text));
        assert_eq!(tail_text.lines().count(), 4);
    }

    #[test]
    fn ring_capacity_zero_is_clamped_to_one() {
        let t = Tracer::with_ring(0);
        t.logical(EventKind::RunStart, |_| {});
        t.logical(EventKind::RunEnd, |_| {});
        let trace = t.finish().unwrap();
        assert_eq!(trace.events.len(), 1);
        assert_eq!(trace.events[0].kind, EventKind::RunEnd);
    }

    #[test]
    fn finish_drains_but_keeps_recording() {
        let t = Tracer::new();
        t.logical(EventKind::RunStart, |_| {});
        assert_eq!(t.finish().unwrap().events.len(), 1);
        t.logical(EventKind::RunEnd, |_| {});
        let again = t.finish().unwrap();
        assert_eq!(again.events.len(), 1);
        assert_eq!(again.events[0].kind, EventKind::RunEnd);
    }
}
