//! Trace exporters: JSONL (one event per line, a machine-readable
//! superset of the async `--event-log`) and Chrome trace-event JSON
//! (per-agent tracks, loadable in `chrome://tracing` or Perfetto).

use super::event::{RunTrace, TraceEvent};
use serde::{Deserialize, Serialize};

/// Serializes a trace as JSONL: one compact JSON object per event, in
/// record order, newline terminated.
///
/// # Errors
///
/// Returns the shim serializer's error (infallible for well-formed
/// events; the `Result` mirrors `serde_json`).
pub fn to_jsonl(trace: &RunTrace) -> Result<String, serde_json::Error> {
    let mut out = String::new();
    for ev in &trace.events {
        out.push_str(&serde_json::to_string(ev)?);
        out.push('\n');
    }
    Ok(out)
}

/// Parses JSONL produced by [`to_jsonl`] back into events.
///
/// # Errors
///
/// Returns the shim parser's error on malformed lines.
pub fn from_jsonl(text: &str) -> Result<Vec<TraceEvent>, serde_json::Error> {
    text.lines()
        .filter(|l| !l.trim().is_empty())
        .map(serde_json::from_str)
        .collect()
}

/// One record of a Chrome trace-event document, as emitted by
/// [`to_chrome_json`] — also the schema the exporter tests validate
/// against (`ph`/`ts`/`pid`/`tid`/`name` are required on every event).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ChromeEvent {
    /// Event phase: `"M"` metadata, `"X"` complete span, `"i"` instant.
    pub ph: String,
    /// Timestamp, microseconds.
    pub ts: u64,
    /// Process id (always 0; one process per trace).
    pub pid: u64,
    /// Thread id = track: one per agent, plus a coordinator track.
    pub tid: u64,
    /// Event (or thread) name.
    pub name: String,
    /// Span duration, microseconds (`"X"` events).
    #[serde(default)]
    pub dur: Option<u64>,
    /// Instant scope (`"i"` events; `"t"` = thread).
    #[serde(default)]
    pub s: Option<String>,
    /// Extra payload.
    #[serde(default)]
    pub args: Option<ChromeArgs>,
}

/// The `args` payload of a Chrome event.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ChromeArgs {
    /// Thread name (`"M"` metadata events).
    #[serde(default)]
    pub name: Option<String>,
    /// Genome id, when the event concerns one.
    #[serde(default)]
    pub genome: Option<u64>,
    /// Byte count (retransmission events).
    #[serde(default)]
    pub bytes: Option<u64>,
    /// Item count (reassignments).
    #[serde(default)]
    pub items: Option<u64>,
}

/// A parsed Chrome trace document (`{"traceEvents": [...]}`).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ChromeDoc {
    /// The flat event array.
    #[serde(rename = "traceEvents")]
    pub trace_events: Vec<ChromeEvent>,
}

impl ChromeDoc {
    /// Track (`thread_name` metadata) names, in emission order.
    pub fn track_names(&self) -> Vec<&str> {
        self.trace_events
            .iter()
            .filter(|e| e.ph == "M" && e.name == "thread_name")
            .filter_map(|e| e.args.as_ref().and_then(|a| a.name.as_deref()))
            .collect()
    }
}

/// Renders a trace as Chrome trace-event JSON with `n_agents` agent
/// tracks plus one coordinator track (tid = `n_agents`). Spans use
/// wall-clock microseconds when the event carries them (live runs) and
/// virtual microseconds otherwise (async virtual runs); events with
/// neither clock (the purely logical generation markers) are carried by
/// the JSONL exporter instead and are skipped here.
pub fn to_chrome_json(trace: &RunTrace, n_agents: usize) -> String {
    let coordinator_tid = n_agents as u64;
    let mut events: Vec<ChromeEvent> = Vec::new();
    for tid in 0..=coordinator_tid {
        let name = if tid == coordinator_tid {
            "coordinator".to_string()
        } else {
            format!("agent{tid}")
        };
        events.push(ChromeEvent {
            ph: "M".into(),
            ts: 0,
            pid: 0,
            tid,
            name: "thread_name".into(),
            dur: None,
            s: None,
            args: Some(ChromeArgs {
                name: Some(name),
                ..ChromeArgs::default()
            }),
        });
    }
    for ev in &trace.events {
        let Some(end) = ev.wall_us.or(ev.vtime_us) else {
            continue;
        };
        let tid = ev.agent.unwrap_or(coordinator_tid);
        let dur = ev.dur_us.unwrap_or(0);
        let args = (ev.genome.is_some() || ev.bytes.is_some() || ev.items.is_some()).then_some(
            ChromeArgs {
                name: None,
                genome: ev.genome,
                bytes: ev.bytes,
                items: ev.items,
            },
        );
        let (ph, ts, dur, s) = if dur > 0 {
            // Durations are stamped at span end; shift back to start.
            ("X", end.saturating_sub(dur), Some(dur), None)
        } else {
            ("i", end, None, Some("t".to_string()))
        };
        events.push(ChromeEvent {
            ph: ph.into(),
            ts,
            pid: 0,
            tid,
            name: ev.kind.label().into(),
            dur,
            s,
            args,
        });
    }
    let doc = ChromeDoc {
        trace_events: events,
    };
    serde_json::to_string(&doc).unwrap_or_else(|_| "{\"traceEvents\":[]}".into())
}

/// Parses (and thereby schema-validates) a Chrome trace document
/// produced by [`to_chrome_json`].
///
/// # Errors
///
/// Returns the shim parser's error when the text is not valid JSON or
/// an event lacks a required key.
pub fn parse_chrome_json(text: &str) -> Result<ChromeDoc, serde_json::Error> {
    serde_json::from_str(text)
}

/// Convenience check used by tests and smoke scripts: every event has
/// the required keys (guaranteed by parsing) and the document exposes
/// exactly `n_agents` agent tracks plus the coordinator.
pub fn chrome_tracks_match(doc: &ChromeDoc, n_agents: usize) -> bool {
    let tracks = doc.track_names();
    let agents = tracks
        .iter()
        .filter(|t| t.starts_with("agent") && t[5..].parse::<u64>().is_ok())
        .count();
    agents == n_agents && tracks.contains(&"coordinator")
}

#[cfg(test)]
mod tests {
    use super::super::event::{Determinism, EventKind, Tracer};
    use super::*;

    fn sample_trace() -> RunTrace {
        let t = Tracer::new();
        t.logical(EventKind::RunStart, |e| {
            e.seed = Some(13);
            e.label = Some("cartpole".into());
            e.population = Some(20);
        });
        t.logical(EventKind::GenerationStart, |e| e.generation = Some(0));
        t.logical(EventKind::EvalResult, |e| {
            e.genome = Some(0);
            e.fitness_bits = Some(0x3FF0_0000_0000_0000);
        });
        t.timing(EventKind::AgentExchange, |e| {
            e.agent = Some(1);
            e.dur_us = Some(250);
        });
        t.timing(EventKind::Retransmission, |e| {
            e.agent = Some(0);
            e.bytes = Some(768);
        });
        t.logical(EventKind::RunEnd, |_| {});
        t.finish().unwrap()
    }

    #[test]
    fn jsonl_round_trips_through_the_shim() {
        let trace = sample_trace();
        let text = to_jsonl(&trace).unwrap();
        assert_eq!(text.lines().count(), trace.events.len());
        let back = from_jsonl(&text).unwrap();
        assert_eq!(back, trace.events);
    }

    #[test]
    fn chrome_doc_parses_and_has_required_keys() {
        let trace = sample_trace();
        let json = to_chrome_json(&trace, 3);
        let doc = parse_chrome_json(&json).unwrap();
        assert!(chrome_tracks_match(&doc, 3), "{:?}", doc.track_names());
        // Parsing enforces ph/ts/pid/tid/name on every event; spot-check
        // the span landed on the right track with its duration.
        let span = doc
            .trace_events
            .iter()
            .find(|e| e.ph == "X")
            .expect("exchange span");
        assert_eq!(span.tid, 1);
        assert_eq!(span.dur, Some(250));
        assert_eq!(span.name, "exchange");
    }

    #[test]
    fn purely_logical_events_are_not_chrome_spans() {
        let trace = sample_trace();
        let doc = parse_chrome_json(&to_chrome_json(&trace, 2)).unwrap();
        assert!(doc.trace_events.iter().all(|e| e.name != "gen_start"));
    }

    #[test]
    fn virtual_completions_use_vtime() {
        let t = Tracer::new();
        t.emit(Determinism::Logical, EventKind::Completion, |e| {
            e.aseq = Some(0);
            e.vtime_us = Some(5_000);
            e.dur_us = Some(2_000);
            e.agent = Some(2);
            e.genome = Some(9);
            e.fitness_bits = Some(0);
        });
        let doc = parse_chrome_json(&to_chrome_json(&t.finish().unwrap(), 3)).unwrap();
        let span = doc.trace_events.iter().find(|e| e.ph == "X").unwrap();
        assert_eq!((span.ts, span.dur, span.tid), (3_000, Some(2_000), 2));
    }
}
