//! The typed metrics registry and the unified per-agent report section.
//!
//! Counters, gauges, and fixed-bound histograms accumulate alongside
//! the event stream; [`TelemetryReport`] is the serialized summary that
//! lands on `RunReport.telemetry`, absorbing the per-agent wire /
//! retransmission / recovery / streaming numbers that used to be spread
//! over ad-hoc listings into one aligned table.

use crate::membership::RecoveryStats;
use crate::runtime::StreamStats;
use clan_netsim::CommLedger;
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

use super::event::RunTrace;

/// Fixed bucket upper bounds (seconds) for duration histograms. Fixed
/// so histograms from different runs are always mergeable/comparable.
pub const DURATION_BOUNDS_S: [f64; 8] = [1e-5, 1e-4, 1e-3, 1e-2, 1e-1, 1.0, 10.0, 100.0];

/// A histogram with fixed bucket bounds: `counts[i]` counts samples
/// `<= bounds[i]`, with one overflow bucket at the end.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Histogram {
    /// Bucket upper bounds, ascending.
    pub bounds: Vec<f64>,
    /// Per-bucket sample counts (`bounds.len() + 1` entries; the last
    /// is the overflow bucket).
    pub counts: Vec<u64>,
    /// Total samples observed.
    pub total: u64,
    /// Sum of all observed values.
    pub sum: f64,
}

impl Histogram {
    /// An empty histogram over the given ascending bounds.
    pub fn with_bounds(bounds: &[f64]) -> Histogram {
        Histogram {
            bounds: bounds.to_vec(),
            counts: vec![0; bounds.len() + 1],
            total: 0,
            sum: 0.0,
        }
    }

    /// Records one sample.
    pub fn observe(&mut self, value: f64) {
        let idx = self
            .bounds
            .iter()
            .position(|&b| value <= b)
            .unwrap_or(self.bounds.len());
        self.counts[idx] += 1;
        self.total += 1;
        self.sum += value;
    }

    /// Mean of observed samples (0.0 when empty — never NaN).
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum / self.total as f64
        }
    }
}

impl Default for Histogram {
    fn default() -> Histogram {
        Histogram::with_bounds(&DURATION_BOUNDS_S)
    }
}

/// Counters, gauges, and histograms keyed by name (BTreeMap: stable,
/// deterministic iteration for serialization and diffing).
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct MetricsRegistry {
    /// Monotonic counters.
    pub counters: BTreeMap<String, u64>,
    /// Last-write-wins values.
    pub gauges: BTreeMap<String, f64>,
    /// Fixed-bound histograms.
    pub histograms: BTreeMap<String, Histogram>,
}

impl MetricsRegistry {
    /// Adds `by` to the named counter (creating it at zero).
    pub fn inc(&mut self, name: &str, by: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += by;
    }

    /// Sets the named gauge.
    pub fn set_gauge(&mut self, name: &str, value: f64) {
        self.gauges.insert(name.to_string(), value);
    }

    /// Records a duration sample into the named histogram (created with
    /// [`DURATION_BOUNDS_S`] on first use).
    pub fn observe_duration(&mut self, name: &str, seconds: f64) {
        self.histograms
            .entry(name.to_string())
            .or_default()
            .observe(seconds);
    }

    /// The named counter's value (0 when absent).
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    /// Renders the registry in the Prometheus text exposition format
    /// (version 0.0.4), as served by the live `/metrics` endpoint.
    ///
    /// Names are prefixed `clan_` and sanitized (`.` and any other
    /// non-`[a-zA-Z0-9_]` become `_`); counters get the conventional
    /// `_total` suffix, histograms render cumulative `_bucket{le="…"}`
    /// series ending in `le="+Inf"` plus `_sum`/`_count`. BTreeMap
    /// iteration keeps the exposition deterministic for a given
    /// registry state.
    pub fn prometheus_text(&self) -> String {
        fn sanitize(name: &str) -> String {
            let mut out = String::with_capacity(name.len() + 5);
            out.push_str("clan_");
            for c in name.chars() {
                if c.is_ascii_alphanumeric() || c == '_' {
                    out.push(c);
                } else {
                    out.push('_');
                }
            }
            out
        }
        fn fmt_f64(v: f64) -> String {
            if v == v.trunc() && v.abs() < 1e15 {
                format!("{v:.0}")
            } else {
                format!("{v}")
            }
        }
        let mut out = String::new();
        for (name, value) in &self.counters {
            let n = sanitize(name);
            out.push_str(&format!("# TYPE {n}_total counter\n{n}_total {value}\n"));
        }
        for (name, value) in &self.gauges {
            let n = sanitize(name);
            out.push_str(&format!("# TYPE {n} gauge\n{n} {}\n", fmt_f64(*value)));
        }
        for (name, h) in &self.histograms {
            let n = sanitize(name);
            out.push_str(&format!("# TYPE {n} histogram\n"));
            let mut cumulative = 0u64;
            for (bound, count) in h.bounds.iter().zip(&h.counts) {
                cumulative += count;
                out.push_str(&format!(
                    "{n}_bucket{{le=\"{}\"}} {cumulative}\n",
                    fmt_f64(*bound)
                ));
            }
            out.push_str(&format!("{n}_bucket{{le=\"+Inf\"}} {}\n", h.total));
            out.push_str(&format!("{n}_sum {}\n", fmt_f64(h.sum)));
            out.push_str(&format!("{n}_count {}\n", h.total));
        }
        out
    }
}

/// One agent's row in the unified per-agent table.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct AgentRow {
    /// Link slot index.
    pub agent: u64,
    /// Messages exchanged with this agent (measured transport).
    pub messages: u64,
    /// Measured wire bytes to/from this agent.
    pub wire_bytes: u64,
    /// Loss-recovery overhead bytes attributed to this agent.
    pub retrans_bytes: u64,
    /// Churn-class failures recorded against this agent.
    pub failures: u64,
    /// Streaming completions served by this agent (async runs).
    pub completions: u64,
    /// Streaming busy seconds (request in flight; async runs).
    pub busy_s: f64,
}

/// The `RunReport.telemetry` section: event-stream accounting plus the
/// unified per-agent table. Default (all zero / empty) for runs
/// recorded before this section existed or with tracing disabled.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct TelemetryReport {
    /// Events in the deterministic stream.
    pub logical_events: u64,
    /// Events in the wall-clock annotation channel.
    pub timing_events: u64,
    /// Order-sensitive fold hash of the logical stream text (0 when no
    /// trace was recorded).
    pub logical_hash: u64,
    /// Counters/gauges/histograms accumulated while recording.
    pub metrics: MetricsRegistry,
    /// Per-agent wire/retrans/recovery/streaming numbers, unified.
    pub per_agent: Vec<AgentRow>,
}

impl TelemetryReport {
    /// Assembles the section from whatever sources the run produced:
    /// the recorded trace (if tracing was on), the measured transport
    /// ledger, recovery accounting, and streaming stats (async runs).
    pub fn from_sources(
        trace: Option<&RunTrace>,
        ledger: Option<&CommLedger>,
        recovery: Option<&RecoveryStats>,
        stream: Option<&StreamStats>,
    ) -> TelemetryReport {
        let mut out = TelemetryReport::default();
        if let Some(trace) = trace {
            let (logical, timing) = trace.counts();
            out.logical_events = logical;
            out.timing_events = timing;
            out.logical_hash = trace.logical_hash();
            out.metrics = trace.metrics.clone();
        }
        let n = [
            ledger.map_or(0, |l| l.agent_entries().len()),
            recovery.map_or(0, |r| r.agent_failures.len()),
            stream.map_or(0, |s| s.per_agent_completions.len()),
        ]
        .into_iter()
        .max()
        .unwrap_or(0);
        for i in 0..n {
            let mut row = AgentRow {
                agent: i as u64,
                ..AgentRow::default()
            };
            if let Some(entry) = ledger.and_then(|l| l.agent_entries().get(i)) {
                row.messages = entry.messages;
                row.wire_bytes = entry.wire_bytes;
                row.retrans_bytes = entry.retrans_wire_bytes;
            }
            if let Some(r) = recovery {
                row.failures = r.agent_failures.get(i).copied().unwrap_or(0);
            }
            if let Some(s) = stream {
                row.completions = s.per_agent_completions.get(i).copied().unwrap_or(0);
                row.busy_s = s.per_agent_busy_s.get(i).copied().unwrap_or(0.0);
            }
            out.per_agent.push(row);
        }
        out
    }

    /// Whether there is anything worth printing.
    pub fn is_empty(&self) -> bool {
        self.logical_events == 0 && self.timing_events == 0 && self.per_agent.is_empty()
    }

    /// The unified per-agent table, rendered with the report's aligned
    /// text-table style. Empty string when there are no agent rows.
    pub fn agent_table(&self) -> String {
        if self.per_agent.is_empty() {
            return String::new();
        }
        let has_stream = self.per_agent.iter().any(|r| r.completions > 0);
        let mut headers = vec!["agent", "msgs", "wire KiB", "retrans KiB", "fails"];
        if has_stream {
            headers.push("evals");
            headers.push("busy s");
        }
        let rows: Vec<Vec<String>> = self
            .per_agent
            .iter()
            .map(|r| {
                let mut row = vec![
                    r.agent.to_string(),
                    r.messages.to_string(),
                    format!("{:.1}", r.wire_bytes as f64 / 1024.0),
                    format!("{:.1}", r.retrans_bytes as f64 / 1024.0),
                    r.failures.to_string(),
                ];
                if has_stream {
                    row.push(r.completions.to_string());
                    row.push(format!("{:.3}", r.busy_s));
                }
                row
            })
            .collect();
        crate::report::text_table(&headers, &rows)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn histogram_buckets_and_mean() {
        let mut h = Histogram::with_bounds(&[0.1, 1.0]);
        h.observe(0.05);
        h.observe(0.5);
        h.observe(5.0);
        assert_eq!(h.counts, vec![1, 1, 1]);
        assert_eq!(h.total, 3);
        assert!((h.mean() - 5.55 / 3.0).abs() < 1e-12);
        assert_eq!(Histogram::default().mean(), 0.0, "empty mean is 0, not NaN");
    }

    #[test]
    fn registry_counts_and_observes() {
        let mut m = MetricsRegistry::default();
        m.inc("events.eval", 3);
        m.inc("events.eval", 2);
        m.observe_duration("dur_s.gather", 0.02);
        m.set_gauge("overlap", 3.5);
        assert_eq!(m.counter("events.eval"), 5);
        assert_eq!(m.counter("missing"), 0);
        assert_eq!(m.histograms["dur_s.gather"].total, 1);
        assert_eq!(m.gauges["overlap"], 3.5);
    }

    #[test]
    fn prometheus_exposition_renders_all_three_families() {
        let mut m = MetricsRegistry::default();
        m.inc("events.eval", 12);
        m.set_gauge("progress.best_fitness", 42.5);
        m.observe_duration("dur_s.gather", 0.02);
        m.observe_duration("dur_s.gather", 2.0);
        let text = m.prometheus_text();
        assert!(text.contains("# TYPE clan_events_eval_total counter\n"));
        assert!(text.contains("clan_events_eval_total 12\n"));
        assert!(text.contains("clan_progress_best_fitness 42.5\n"));
        assert!(text.contains("# TYPE clan_dur_s_gather histogram\n"));
        // Buckets are cumulative: the 0.02 sample lands in le="0.01"'s
        // successor, so le="0.1" and every later bound count it.
        assert!(text.contains("clan_dur_s_gather_bucket{le=\"0.1\"} 1\n"));
        assert!(text.contains("clan_dur_s_gather_bucket{le=\"10\"} 2\n"));
        assert!(text.contains("clan_dur_s_gather_bucket{le=\"+Inf\"} 2\n"));
        assert!(text.contains("clan_dur_s_gather_count 2\n"));
        assert!(text.contains("clan_dur_s_gather_sum 2.02\n"));
        // Every non-comment line is "name[{labels}] value".
        for line in text.lines().filter(|l| !l.starts_with('#')) {
            assert_eq!(line.split(' ').count(), 2, "bad line: {line}");
        }
    }

    #[test]
    fn empty_sources_make_empty_report() {
        let t = TelemetryReport::from_sources(None, None, None, None);
        assert!(t.is_empty());
        assert_eq!(t.agent_table(), "");
    }

    #[test]
    fn stream_columns_appear_only_for_streaming_runs() {
        let stream = StreamStats {
            completions: 5,
            per_agent_completions: vec![3, 2],
            per_agent_busy_s: vec![0.5, 0.25],
            ..StreamStats::default()
        };
        let t = TelemetryReport::from_sources(None, None, None, Some(&stream));
        assert_eq!(t.per_agent.len(), 2);
        let table = t.agent_table();
        assert!(table.contains("evals"), "{table}");
        let no_stream = TelemetryReport::from_sources(None, None, None, None);
        assert!(!no_stream.agent_table().contains("evals"));
    }
}
