//! Unified deterministic run tracing: a structured event stream, a
//! typed metrics registry, and exporters, shared by every execution
//! mode.
//!
//! # The two-clock design
//!
//! A run observes two different notions of time and this module keeps
//! them strictly apart:
//!
//! - **Logical time** — generation indices, the id-ordered evaluation
//!   replay, and (in async virtual runs) virtual microseconds. Events
//!   on this clock form the *deterministic stream*: for a given seed it
//!   is byte-identical whether inference ran serially, over loopback
//!   TCP, over 20%-lossy UDP, or through a churn schedule, because it
//!   is emitted from the same replay loops that pin fitness
//!   equivalence. [`RunTrace::logical_text`] serializes exactly this
//!   stream, so two runs can be `diff`ed across transports as a
//!   debugging tool.
//! - **Wall-clock time** — per-link waits, gather makespans,
//!   retransmissions, churn transitions. These are recorded as
//!   [`Determinism::Timing`] events in a separate annotation channel
//!   that never contaminates the logical stream, and every wall
//!   timestamp is captured in [`clock`] (the single `Instant::now`
//!   site the `clan-lint` D2 rule audits).
//!
//! The [`Tracer`] is a cheap-clonable handle that is a no-op until
//! enabled, so instrumented hot paths cost one branch when tracing is
//! off. The driver installs one tracer per run; the evaluator, the
//! edge runtime, and the orchestrators all record into it, and the
//! result is exported as JSONL ([`to_jsonl`], a superset of the async
//! `--event-log`) or Chrome trace-event JSON ([`to_chrome_json`],
//! per-agent tracks viewable in Perfetto).

pub mod clock;
mod event;
mod export;
mod metrics;

pub use event::{Determinism, EventKind, RunTrace, TraceEvent, Tracer};
pub use export::{
    chrome_tracks_match, from_jsonl, parse_chrome_json, to_chrome_json, to_jsonl, ChromeArgs,
    ChromeDoc, ChromeEvent,
};
pub use metrics::{AgentRow, Histogram, MetricsRegistry, TelemetryReport, DURATION_BOUNDS_S};
