//! The sole wall-clock capture point of the telemetry layer.
//!
//! Every wall-clock timestamp that ends up in a trace is taken here and
//! nowhere else, so the `clan-lint` D2 rule can pin "ambient time" to
//! exactly one audited file: timing annotations flow *out* of this
//! module into the [`Timing`](super::Determinism::Timing) channel, and
//! nothing read here may feed back into evolution, partitioning, or any
//! other determinism-bearing decision.

use std::time::Instant;

/// A monotonic epoch for one trace: all wall timestamps are microseconds
/// since the tracer was created, which keeps exported traces small,
/// diffable in magnitude, and free of absolute-time information.
#[derive(Debug, Clone, Copy)]
pub struct WallClock {
    epoch: Instant,
}

impl WallClock {
    /// Starts the clock; the moment of creation is timestamp zero.
    pub fn start() -> WallClock {
        WallClock {
            epoch: Instant::now(),
        }
    }

    /// Microseconds elapsed since the epoch.
    pub fn elapsed_us(&self) -> u64 {
        self.epoch.elapsed().as_micros() as u64
    }
}

impl Default for WallClock {
    fn default() -> WallClock {
        WallClock::start()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clock_is_monotonic() {
        let c = WallClock::start();
        let a = c.elapsed_us();
        let b = c.elapsed_us();
        assert!(b >= a);
    }
}
