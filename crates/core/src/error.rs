//! Error types for CLAN orchestration.

use clan_neat::NeatError;
use std::error::Error;
use std::fmt;

/// Errors produced while configuring or running a CLAN deployment.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ClanError {
    /// Underlying NEAT error (bad config, missing fitness, extinction).
    Neat(NeatError),
    /// A driver/topology configuration problem.
    InvalidSetup {
        /// Description of the constraint that was violated.
        reason: String,
    },
    /// The threaded runtime lost contact with a worker.
    WorkerFailure {
        /// Index of the failed agent.
        agent: usize,
        /// What went wrong.
        reason: String,
    },
    /// A transport-level failure: connect/accept refused, socket closed
    /// mid-exchange, or an I/O error while moving frames.
    Transport {
        /// The peer (address or transport label) involved.
        peer: String,
        /// What went wrong.
        reason: String,
    },
    /// The peer stayed silent past the transport's liveness deadline.
    /// Datagram transports cannot observe a disconnect the way a stream
    /// does, so a vanished peer surfaces as this instead of a hang; the
    /// TCP transport raises it too when a read timeout is configured.
    Timeout {
        /// The peer (address or transport label) involved.
        peer: String,
        /// How long the transport listened before giving up.
        waited: std::time::Duration,
    },
    /// A frame arrived but could not be decoded into a protocol message.
    Frame(FrameError),
    /// The peer sent a well-formed frame that violates the session
    /// protocol (e.g. a fitness report when children were expected).
    Protocol {
        /// The peer (address or transport label) involved.
        peer: String,
        /// Description of the violation.
        reason: String,
    },
    /// Agent churn drained the cluster below its recovery policy's
    /// live-agent floor: the remaining work could not be reassigned.
    Degraded {
        /// Agents still usable when the round gave up.
        live: usize,
        /// The policy's minimum (see
        /// [`RecoveryPolicy`](crate::membership::RecoveryPolicy)).
        required: usize,
    },
}

/// Why a wire frame failed to decode. Every variant is a *typed* error —
/// malformed or hostile input must never panic or hang the runtime.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[non_exhaustive]
pub enum FrameError {
    /// The frame ended before the announced structure was complete.
    Truncated {
        /// Bytes the decoder still needed.
        needed: usize,
        /// Bytes that remained in the frame.
        remaining: usize,
    },
    /// A length prefix exceeded [`MAX_FRAME_BYTES`](crate::transport::MAX_FRAME_BYTES).
    Oversized {
        /// The announced length.
        announced: u64,
        /// The enforced maximum.
        max: u64,
    },
    /// The frame did not start with the `CLAN` magic bytes.
    BadMagic,
    /// The protocol version byte is unknown to this build.
    BadVersion(u8),
    /// The message tag byte does not name a known message.
    BadTag(u8),
    /// A field held a value outside its domain (e.g. an activation
    /// function index past the table).
    BadValue(&'static str),
    /// Bytes remained after a complete message was decoded.
    TrailingBytes(usize),
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::Truncated { needed, remaining } => {
                write!(f, "truncated frame: needed {needed} bytes, had {remaining}")
            }
            FrameError::Oversized { announced, max } => {
                write!(f, "oversized frame: announced {announced} bytes, max {max}")
            }
            FrameError::BadMagic => write!(f, "frame does not start with CLAN magic"),
            FrameError::BadVersion(v) => write!(f, "unknown protocol version {v}"),
            FrameError::BadTag(t) => write!(f, "unknown message tag {t}"),
            FrameError::BadValue(what) => write!(f, "field out of domain: {what}"),
            FrameError::TrailingBytes(n) => write!(f, "{n} trailing bytes after message"),
        }
    }
}

impl Error for FrameError {}

impl fmt::Display for ClanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClanError::Neat(e) => write!(f, "neat error: {e}"),
            ClanError::InvalidSetup { reason } => write!(f, "invalid setup: {reason}"),
            ClanError::WorkerFailure { agent, reason } => {
                write!(f, "worker {agent} failed: {reason}")
            }
            ClanError::Transport { peer, reason } => {
                write!(f, "transport failure with {peer}: {reason}")
            }
            ClanError::Timeout { peer, waited } => {
                write!(
                    f,
                    "timeout: {peer} silent for {:.3} s (liveness deadline)",
                    waited.as_secs_f64()
                )
            }
            ClanError::Frame(e) => write!(f, "frame error: {e}"),
            ClanError::Protocol { peer, reason } => {
                write!(f, "protocol violation from {peer}: {reason}")
            }
            ClanError::Degraded { live, required } => {
                write!(
                    f,
                    "cluster degraded to {live} usable agent(s); recovery policy requires {required}"
                )
            }
        }
    }
}

impl Error for ClanError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ClanError::Neat(e) => Some(e),
            ClanError::Frame(e) => Some(e),
            _ => None,
        }
    }
}

impl From<NeatError> for ClanError {
    fn from(e: NeatError) -> Self {
        ClanError::Neat(e)
    }
}

impl From<FrameError> for ClanError {
    fn from(e: FrameError) -> Self {
        ClanError::Frame(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn neat_error_wraps_with_source() {
        let e = ClanError::from(NeatError::Extinction);
        assert!(e.source().is_some());
        assert!(e.to_string().contains("extinct"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ClanError>();
        assert_send_sync::<FrameError>();
    }

    #[test]
    fn frame_error_wraps_with_source() {
        let e = ClanError::from(FrameError::BadMagic);
        assert!(matches!(e, ClanError::Frame(FrameError::BadMagic)));
        assert!(e.source().is_some());
        assert!(e.to_string().contains("magic"));
    }
}
