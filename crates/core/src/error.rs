//! Error types for CLAN orchestration.

use clan_neat::NeatError;
use std::error::Error;
use std::fmt;

/// Errors produced while configuring or running a CLAN deployment.
#[derive(Debug, Clone, PartialEq)]
#[non_exhaustive]
pub enum ClanError {
    /// Underlying NEAT error (bad config, missing fitness, extinction).
    Neat(NeatError),
    /// A driver/topology configuration problem.
    InvalidSetup {
        /// Description of the constraint that was violated.
        reason: String,
    },
    /// The threaded runtime lost contact with a worker.
    WorkerFailure {
        /// Index of the failed agent.
        agent: usize,
        /// What went wrong.
        reason: String,
    },
}

impl fmt::Display for ClanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ClanError::Neat(e) => write!(f, "neat error: {e}"),
            ClanError::InvalidSetup { reason } => write!(f, "invalid setup: {reason}"),
            ClanError::WorkerFailure { agent, reason } => {
                write!(f, "worker {agent} failed: {reason}")
            }
        }
    }
}

impl Error for ClanError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ClanError::Neat(e) => Some(e),
            _ => None,
        }
    }
}

impl From<NeatError> for ClanError {
    fn from(e: NeatError) -> Self {
        ClanError::Neat(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn neat_error_wraps_with_source() {
        let e = ClanError::from(NeatError::Extinction);
        assert!(e.source().is_some());
        assert!(e.to_string().contains("extinct"));
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<ClanError>();
    }
}
