//! `CLAN_DDS` — Distributed inference and reproduction, Synchronous
//! speciation (paper §III-D-1, "Distributed Reproduction").
//!
//! Agents both evaluate and *build* the next generation's children, but
//! synchronous speciation still needs every genome's structure at the
//! center. The result is the paper's cautionary tale: children stream to
//! the center each generation, parent genomes stream back out to the
//! agents that need them, and communication "starts to dominate from the
//! outset" — evolution never scales past two agents (Fig 6).
//!
//! The genomes an agent evaluates are the children it just built, so —
//! unlike DCS — no genome transfer precedes inference (only the
//! generation-0 initial distribution).

use crate::error::ClanError;
use crate::evaluator::Evaluator;
use crate::orchestra::{
    emit_generation_end, evaluate_partitioned, genome_payload, track_best, Comm, GenerationReport,
    Orchestrator, FITNESS_ENTRY_FLOATS, PARENT_LIST_ENTRY_FLOATS, SPAWN_ENTRY_FLOATS,
};
use crate::topology::ClanTopology;
use clan_distsim::{Cluster, TimelineRecorder};
use clan_neat::{Genome, GenomeId, NeatError, Population};
use clan_netsim::{CommLedger, MessageKind};

/// The distributed-reproduction configuration.
#[derive(Debug)]
pub struct DdsOrchestrator {
    pop: Population,
    evaluator: Evaluator,
    cluster: Cluster,
    recorder: TimelineRecorder,
    comm: Comm,
    best_ever: Option<Genome>,
}

impl DdsOrchestrator {
    /// Creates a `CLAN_DDS` run of `pop` over `cluster`.
    pub fn new(pop: Population, evaluator: Evaluator, cluster: Cluster) -> DdsOrchestrator {
        DdsOrchestrator {
            pop,
            evaluator,
            cluster,
            recorder: TimelineRecorder::new(),
            comm: Comm::new(),
            best_ever: None,
        }
    }

    /// The underlying population.
    pub fn population(&self) -> &Population {
        &self.pop
    }
}

impl Orchestrator for DdsOrchestrator {
    fn topology(&self) -> ClanTopology {
        ClanTopology::dds()
    }

    fn cluster(&self) -> &Cluster {
        &self.cluster
    }

    fn step_generation(&mut self) -> Result<GenerationReport, ClanError> {
        let generation = self.pop.generation();
        let n_agents = self.cluster.n_agents();
        let center = *self.cluster.center();
        let counts = self.cluster.partition(self.pop.len());

        // COMM (generation 0 only) — initial population distribution.
        if generation == 0 {
            let payloads: Vec<u64> = self.pop.genomes().values().map(genome_payload).collect();
            let t = self
                .comm
                .phase(&self.cluster, MessageKind::SendGenomes, n_agents, payloads);
            self.recorder.add_communication(t);
        }

        // I — distributed inference on resident genomes.
        let genes = evaluate_partitioned(&mut self.pop, &mut self.evaluator, &counts)?;
        self.recorder
            .add_inference(self.cluster.parallel_inference_time_s(&genes));

        // COMM — fitness back to the center (speciation and planning
        // need it).
        let t = self.comm.phase(
            &self.cluster,
            MessageKind::SendFitness,
            n_agents,
            counts.iter().map(|&c| c as u64 * FITNESS_ENTRY_FLOATS),
        );
        self.recorder.add_communication(t);

        let best_fitness = self
            .pop
            .best()
            .and_then(Genome::fitness)
            .expect("population was just evaluated");
        track_best(&mut self.best_ever, &self.pop);

        // S — synchronous speciation at the center (it has every genome:
        // generation 0 created them there, later ones arrived as
        // children).
        let speciation = self.pop.speciate();
        self.recorder
            .add_evolution(center.evolution_time_s(speciation.genes_processed));

        // GP — central planning.
        let plan = match self.pop.plan_generation() {
            Ok(plan) => plan,
            Err(NeatError::Extinction) => {
                if !self.pop.config().reset_on_extinction {
                    return Err(NeatError::Extinction.into());
                }
                self.pop.reset_population();
                let (cache_hits, cache_lookups) = self.evaluator.take_cache_window();
                let report = GenerationReport {
                    generation,
                    best_fitness,
                    num_species: 0,
                    timeline: self.recorder.finish_generation(),
                    costs: self.pop.counters_mut().finish_generation(),
                    extinction: true,
                    cache_hits,
                    cache_lookups,
                };
                emit_generation_end(self.evaluator.tracer(), &report);
                return Ok(report);
            }
            Err(e) => return Err(e.into()),
        };

        // COMM — ship the plan to the agents: spawn counts, parent lists,
        // and the parent genomes themselves. The chosen parents are not
        // necessarily resident on the agent that will build a given child,
        // so the center sends the whole parent pool to every agent — the
        // "repeated back and forth of genomes" the paper blames for DDS's
        // costs.
        let n_species = plan.species_plans.len() as u64;
        let t = self.comm.phase(
            &self.cluster,
            MessageKind::SendSpawnCount,
            n_agents,
            (0..n_agents).map(|_| n_species * SPAWN_ENTRY_FLOATS),
        );
        self.recorder.add_communication(t);

        let child_counts = self.cluster.partition(plan.children.len());
        let t = self.comm.phase(
            &self.cluster,
            MessageKind::SendParentList,
            n_agents,
            child_counts
                .iter()
                .map(|&c| c as u64 * PARENT_LIST_ENTRY_FLOATS),
        );
        self.recorder.add_communication(t);

        let parent_ids: Vec<GenomeId> = plan.parent_ids().into_iter().collect();
        let parent_payloads: Vec<u64> = parent_ids
            .iter()
            .map(|id| genome_payload(self.pop.genome(*id).expect("parents are resident")))
            .collect();
        let all_parent_msgs: Vec<u64> = (0..n_agents)
            .flat_map(|_| parent_payloads.iter().copied())
            .collect();
        let t = self.comm.phase(
            &self.cluster,
            MessageKind::SendParentGenomes,
            n_agents,
            all_parent_msgs,
        );
        self.recorder.add_communication(t);

        // R — distributed reproduction: each agent builds a contiguous
        // chunk of the plan's children.
        let mut children: Vec<Genome> = Vec::with_capacity(plan.children.len());
        let mut repro_genes_per_agent: Vec<u64> = Vec::with_capacity(n_agents);
        let mut next = 0usize;
        for &count in &child_counts {
            let mut agent_genes = 0u64;
            for spec in &plan.children[next..next + count] {
                let child = self.pop.build_child(spec);
                agent_genes += child.num_genes();
                children.push(child);
            }
            next += count;
            repro_genes_per_agent.push(agent_genes);
        }
        self.recorder.add_evolution(
            self.cluster
                .parallel_evolution_time_s(&repro_genes_per_agent),
        );

        // COMM — children stream back for the next synchronous speciation.
        let t = self.comm.phase(
            &self.cluster,
            MessageKind::SendChildren,
            n_agents,
            children.iter().map(genome_payload),
        );
        self.recorder.add_communication(t);

        self.pop.install_next_generation(children);

        let (cache_hits, cache_lookups) = self.evaluator.take_cache_window();
        let report = GenerationReport {
            generation,
            best_fitness,
            num_species: speciation.species_count,
            timeline: self.recorder.finish_generation(),
            costs: self.pop.counters_mut().finish_generation(),
            extinction: false,
            cache_hits,
            cache_lookups,
        };
        emit_generation_end(self.evaluator.tracer(), &report);
        Ok(report)
    }

    fn best_ever(&self) -> Option<&Genome> {
        self.best_ever.as_ref()
    }

    fn ledger(&self) -> &CommLedger {
        self.comm.ledger()
    }

    fn transport_ledger(&self) -> Option<&CommLedger> {
        self.evaluator.remote_ledger()
    }

    fn gather_stats(&self) -> Option<crate::runtime::GatherStats> {
        self.evaluator.remote_gather_stats()
    }

    fn recovery_stats(&self) -> Option<crate::membership::RecoveryStats> {
        self.evaluator.remote_recovery_stats()
    }

    fn membership(&self) -> Option<Vec<crate::membership::AgentHealth>> {
        self.evaluator.remote_membership()
    }

    fn recorder(&self) -> &TimelineRecorder {
        &self.recorder
    }

    fn population_size(&self) -> usize {
        self.pop.config().population_size
    }

    fn install_tracer(&mut self, tracer: crate::telemetry::Tracer) {
        self.evaluator.set_tracer(tracer);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluator::InferenceMode;
    use crate::serial::SerialOrchestrator;
    use clan_envs::Workload;
    use clan_hw::Platform;
    use clan_neat::NeatConfig;
    use clan_netsim::WifiModel;

    fn make(pop_size: usize, agents: usize, seed: u64) -> DdsOrchestrator {
        let w = Workload::CartPole;
        let cfg = NeatConfig::builder(w.obs_dim(), w.n_actions())
            .population_size(pop_size)
            .build()
            .unwrap();
        DdsOrchestrator::new(
            Population::new(cfg, seed),
            Evaluator::new(w, InferenceMode::MultiStep),
            Cluster::homogeneous(Platform::raspberry_pi(), agents, WifiModel::default()),
        )
    }

    #[test]
    fn genome_traffic_flows_both_ways() {
        let mut o = make(12, 3, 1);
        o.step_generation().unwrap();
        let l = o.ledger();
        assert_eq!(l.entry(MessageKind::SendGenomes).messages, 12, "gen-0 init");
        assert_eq!(l.entry(MessageKind::SendChildren).messages, 12);
        assert_eq!(l.entry(MessageKind::SendSpawnCount).messages, 3);
        assert_eq!(l.entry(MessageKind::SendParentList).messages, 3);
        assert!(l.entry(MessageKind::SendParentGenomes).messages > 0);

        // Generation 1: no re-initialization.
        o.step_generation().unwrap();
        assert_eq!(o.ledger().entry(MessageKind::SendGenomes).messages, 12);
    }

    #[test]
    fn dds_communication_exceeds_dcs() {
        // Figure 4's counter-intuitive finding: distributing reproduction
        // *increases* communication.
        let mut dds = make(20, 4, 2);
        let mut dcs = crate::dcs::DcsOrchestrator::new(
            Population::new(
                NeatConfig::builder(4, 2)
                    .population_size(20)
                    .build()
                    .unwrap(),
                2,
            ),
            Evaluator::new(Workload::CartPole, InferenceMode::MultiStep),
            Cluster::homogeneous(Platform::raspberry_pi(), 4, WifiModel::default()),
        );
        // Skip DDS's one-time init cost by comparing steady-state gen 1.
        dds.step_generation().unwrap();
        dcs.step_generation().unwrap();
        let dds_floats_g0 = dds.ledger().total_floats();
        let dcs_floats_g0 = dcs.ledger().total_floats();
        dds.step_generation().unwrap();
        dcs.step_generation().unwrap();
        let dds_gen1 = dds.ledger().total_floats() - dds_floats_g0;
        let dcs_gen1 = dcs.ledger().total_floats() - dcs_floats_g0;
        assert!(
            dds_gen1 > dcs_gen1,
            "DDS {dds_gen1} floats should exceed DCS {dcs_gen1}"
        );
    }

    #[test]
    fn dds_matches_serial_trajectory_exactly() {
        let w = Workload::CartPole;
        let cfg = NeatConfig::builder(w.obs_dim(), w.n_actions())
            .population_size(16)
            .build()
            .unwrap();
        let mut serial = SerialOrchestrator::new(
            Population::new(cfg, 5),
            Evaluator::new(w, InferenceMode::MultiStep),
            Cluster::homogeneous(Platform::raspberry_pi(), 1, WifiModel::default()),
        );
        let mut dds = make(16, 3, 5);
        for _ in 0..4 {
            let a = serial.step_generation().unwrap();
            let b = dds.step_generation().unwrap();
            assert_eq!(a.best_fitness, b.best_fitness);
        }
        assert_eq!(serial.population().genomes(), dds.population().genomes());
    }

    #[test]
    fn evolution_time_split_across_agents() {
        let one = {
            let mut o = make(24, 1, 6);
            o.step_generation().unwrap();
            o.step_generation().unwrap().timeline.evolution_s
        };
        let four = {
            let mut o = make(24, 4, 6);
            o.step_generation().unwrap();
            o.step_generation().unwrap().timeline.evolution_s
        };
        assert!(
            four < one,
            "reproduction should parallelize: {four} vs {one}"
        );
    }
}
