//! The orchestrator interface and machinery shared by all CLAN
//! configurations: partitioned evaluation with per-agent gene accounting,
//! communication-phase bookkeeping, and central evolution.

use crate::error::ClanError;
use crate::evaluator::Evaluator;
use crate::telemetry::EventKind;
use crate::topology::ClanTopology;
use clan_distsim::{Cluster, GenerationTimeline, TimelineRecorder};
use clan_neat::counters::GenerationCosts;
use clan_neat::{Genome, GenomeId, NeatError, Population};
use clan_netsim::{CommLedger, MessageKind};
use serde::{Deserialize, Serialize};

/// Floats of framing (genome id + length) accompanying a genome transfer.
pub(crate) const GENOME_HEADER_FLOATS: u64 = 2;
/// Floats per fitness report entry (genome id + fitness).
pub(crate) const FITNESS_ENTRY_FLOATS: u64 = 2;
/// Floats per spawn-count entry (species id + count).
pub(crate) const SPAWN_ENTRY_FLOATS: u64 = 2;
/// Floats per child spec in a parent list (child id + two parent ids).
pub(crate) const PARENT_LIST_ENTRY_FLOATS: u64 = 3;

/// Summary of one generation under any orchestrator.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GenerationReport {
    /// Generation index that was just evaluated and evolved.
    pub generation: u64,
    /// Best fitness observed in the evaluated population.
    pub best_fitness: f64,
    /// Species alive after speciation (summed over clans for DDA).
    pub num_species: usize,
    /// Simulated cluster timeline of the generation.
    pub timeline: GenerationTimeline,
    /// Gene-level compute costs of the generation.
    pub costs: GenerationCosts,
    /// Whether a population (or clan) went extinct and was re-seeded.
    pub extinction: bool,
    /// Fitness-cache hits this generation (evaluations served without
    /// running episodes). Not part of `costs`: a hit replays the full
    /// gene accounting, so cost counters are identical cache-on/off.
    #[serde(default)]
    pub cache_hits: u64,
    /// Fitness-cache lookups this generation (= genomes submitted while
    /// caching was enabled; 0 when disabled).
    #[serde(default)]
    pub cache_lookups: u64,
}

impl GenerationReport {
    /// Cache hit rate of the generation (0.0 when caching is disabled).
    pub fn cache_hit_rate(&self) -> f64 {
        if self.cache_lookups == 0 {
            0.0
        } else {
            self.cache_hits as f64 / self.cache_lookups as f64
        }
    }
}

/// A CLAN configuration driving real NEAT evolution while accounting the
/// simulated cluster's time and traffic.
pub trait Orchestrator {
    /// The configuration this orchestrator implements.
    fn topology(&self) -> ClanTopology;

    /// The simulated cluster.
    fn cluster(&self) -> &Cluster;

    /// Runs one full generation (inference + evolution + communication).
    ///
    /// # Errors
    ///
    /// Returns [`ClanError`] on unrecoverable NEAT failures (extinction is
    /// handled internally when `reset_on_extinction` is set).
    fn step_generation(&mut self) -> Result<GenerationReport, ClanError>;

    /// Best genome observed so far across the whole run.
    fn best_ever(&self) -> Option<&Genome>;

    /// Communication ledger for the run so far.
    fn ledger(&self) -> &CommLedger;

    /// Measured wire traffic of the attached real transport, when the
    /// orchestrator's evaluator runs inference over an
    /// [`EdgeCluster`](crate::runtime::EdgeCluster) (threads, loopback
    /// TCP, or remote devices). `None` for purely simulated runs.
    fn transport_ledger(&self) -> Option<&CommLedger> {
        None
    }

    /// Measured scatter/gather timing of the attached real transport
    /// (makespan vs. summed per-link busy time — the load-imbalance
    /// signal). `None` for purely simulated runs.
    fn gather_stats(&self) -> Option<crate::runtime::GatherStats> {
        None
    }

    /// Churn-recovery accounting of the attached real transport (link
    /// failures, reassigned chunks, recovery makespan — see
    /// [`RecoveryStats`](crate::membership::RecoveryStats)). `None` for
    /// purely simulated runs.
    fn recovery_stats(&self) -> Option<crate::membership::RecoveryStats> {
        None
    }

    /// Per-agent link membership of the attached real transport
    /// (alive/suspected/dead, failure counts — see
    /// [`AgentHealth`](crate::membership::AgentHealth)), as served by
    /// the live `/health` introspection endpoint. `None` for purely
    /// simulated runs.
    fn membership(&self) -> Option<Vec<crate::membership::AgentHealth>> {
        None
    }

    /// Timeline recorder for the run so far.
    fn recorder(&self) -> &TimelineRecorder;

    /// Total genomes under evolution.
    fn population_size(&self) -> usize;

    /// Installs a telemetry tracer: generation and evaluation events are
    /// recorded into it from the same deterministic replay loops that
    /// pin fitness equivalence. Default: no-op (tracing unsupported or
    /// disabled).
    fn install_tracer(&mut self, tracer: crate::telemetry::Tracer) {
        let _ = tracer;
    }
}

/// Splits the ordered id list into contiguous per-agent chunks of the
/// given sizes.
pub(crate) fn chunk_ids(ids: &[GenomeId], counts: &[usize]) -> Vec<Vec<GenomeId>> {
    debug_assert_eq!(counts.iter().sum::<usize>(), ids.len());
    let mut chunks = Vec::with_capacity(counts.len());
    let mut start = 0;
    for &c in counts {
        chunks.push(ids[start..start + c].to_vec());
        start += c;
    }
    chunks
}

/// Communication bookkeeping: records every message in the ledger and
/// returns the simulated time the shared medium was busy.
#[derive(Debug, Default)]
pub(crate) struct Comm {
    ledger: CommLedger,
}

impl Comm {
    pub(crate) fn new() -> Comm {
        Comm::default()
    }

    pub(crate) fn ledger(&self) -> &CommLedger {
        &self.ledger
    }

    /// One communication phase: opens `channels` center↔agent channels
    /// and sends one message per payload (in floats/genes). Returns the
    /// phase's simulated duration.
    pub(crate) fn phase<I>(
        &mut self,
        cluster: &Cluster,
        kind: MessageKind,
        channels: usize,
        payload_floats: I,
    ) -> f64
    where
        I: IntoIterator<Item = u64>,
    {
        let mut time = cluster.net().channel_setup_s * channels as f64;
        for floats in payload_floats {
            self.ledger.record(kind, floats);
            time += cluster.net().gene_transfer_time_s(floats);
        }
        time
    }
}

/// Evaluates the population with genomes partitioned into per-agent
/// chunks; returns the inference genes processed by each agent.
///
/// Fitness is written back into the population and the population's cost
/// counters are charged, so Figure-3 style accounting stays correct no
/// matter which configuration ran the inference.
///
/// When the evaluator carries a [`crate::parallel::ParallelEvaluator`]
/// pool — or a real agent cluster attached with
/// [`Evaluator::with_remote`](crate::Evaluator::with_remote) — the
/// per-genome evaluations are computed across those workers first; the
/// accounting below then replays them in genome-id order, so fitness,
/// `CostCounters`, and the per-agent gene totals are bit-identical to
/// the serial path at any thread count and over any transport.
pub(crate) fn evaluate_partitioned(
    pop: &mut Population,
    evaluator: &mut Evaluator,
    counts: &[usize],
) -> Result<Vec<u64>, ClanError> {
    let ids: Vec<GenomeId> = pop.genomes().keys().copied().collect();
    let chunks = chunk_ids(&ids, counts);
    // Generation-start is logical: emitted before any transport work so
    // the pinned stream is independent of how inference is dispatched.
    // It deliberately excludes the partition layout (serial and cluster
    // runs differ there); agent counts live in Timing-class events.
    evaluator
        .tracer()
        .logical(EventKind::GenerationStart, |ev| {
            ev.generation = Some(pop.generation());
            ev.population = Some(ids.len() as u64);
        });
    // Compute every evaluation first, in genome-id order — remotely over
    // the attached cluster, across the local thread pool, or serially
    // (batched by shape, cache-filtered) on this thread — leaving all
    // bookkeeping to the deterministic loop below. Cache hits replay the
    // same accounting as fresh evaluations, so costs and timelines are
    // identical whichever engine features are enabled.
    let mut precomputed = match evaluator.remote_mut() {
        Some(cluster) => cluster.evaluate_collect(pop)?.into_iter(),
        None => evaluator.evaluate_population_local(pop).into_iter(),
    };
    let mut genes_per_agent = Vec::with_capacity(chunks.len());
    for chunk in &chunks {
        let mut agent_genes = 0u64;
        for &id in chunk {
            let (rid, eval, genes_per_activation) =
                precomputed.next().expect("one result per genome");
            debug_assert_eq!(rid, id, "results must be id-ordered");
            let genes = eval.activations * genes_per_activation;
            agent_genes += genes;
            pop.counters_mut().record_inference(genes);
            pop.counters_mut().record_episode();
            // Logical: flattened chunk iteration is genome-id order for
            // any partition, so this stream is partition-independent.
            // No agent index here — that would differ across variants.
            evaluator.tracer().logical(EventKind::EvalResult, |ev| {
                ev.genome = Some(id.0);
                ev.fitness_bits = Some(eval.fitness.to_bits());
            });
            pop.set_fitness(id, eval.fitness)
                .expect("id comes from population");
        }
        genes_per_agent.push(agent_genes);
    }
    Ok(genes_per_agent)
}

/// Emits the logical generation-end event shared by all orchestrators:
/// best fitness (bit-exact), surviving species, and the cache window —
/// every field equivalence-pinned across execution modes.
pub(crate) fn emit_generation_end(tracer: &crate::telemetry::Tracer, report: &GenerationReport) {
    tracer.logical(EventKind::GenerationEnd, |ev| {
        ev.generation = Some(report.generation);
        ev.fitness_bits = Some(report.best_fitness.to_bits());
        ev.species = Some(report.num_species as u64);
        ev.cache_hits = Some(report.cache_hits);
        ev.cache_lookups = Some(report.cache_lookups);
    });
}

/// Outcome of running speciation + planning + reproduction centrally.
#[derive(Debug, Clone, Copy, PartialEq)]
pub(crate) struct CentralEvolution {
    pub speciation_genes: u64,
    pub reproduction_genes: u64,
    pub num_species: usize,
    pub extinction: bool,
}

/// Runs the full central evolution path (serial and DCS): speciate, plan,
/// reproduce, install. Handles extinction per the config.
pub(crate) fn central_evolution(pop: &mut Population) -> Result<CentralEvolution, ClanError> {
    let speciation = pop.speciate();
    let repro_before = pop.counters().current().reproduction_genes;
    let (num_species, extinction) = match pop.plan_generation() {
        Ok(plan) => {
            let children = pop.reproduce_centrally(&plan);
            pop.install_next_generation(children);
            (speciation.species_count, false)
        }
        Err(NeatError::Extinction) => {
            if !pop.config().reset_on_extinction {
                return Err(NeatError::Extinction.into());
            }
            pop.reset_population();
            (0, true)
        }
        Err(e) => return Err(e.into()),
    };
    let reproduction_genes = pop.counters().current().reproduction_genes - repro_before;
    Ok(CentralEvolution {
        speciation_genes: speciation.genes_processed,
        reproduction_genes,
        num_species,
        extinction,
    })
}

/// Helper shared by orchestrators: update the best-ever genome tracker
/// from an evaluated population.
pub(crate) fn track_best(best_ever: &mut Option<Genome>, pop: &Population) {
    if let Some(best) = pop.best() {
        let new_f = best.fitness().expect("best() implies fitness");
        let cur_f = best_ever.as_ref().and_then(Genome::fitness);
        if cur_f.is_none_or(|c| new_f > c) {
            *best_ever = Some(best.clone());
        }
    }
}

/// Genome transfer payload in floats: its genes plus framing.
pub(crate) fn genome_payload(genome: &Genome) -> u64 {
    genome.num_genes() + GENOME_HEADER_FLOATS
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluator::InferenceMode;
    use clan_envs::Workload;
    use clan_hw::Platform;
    use clan_neat::NeatConfig;
    use clan_netsim::WifiModel;

    fn small_pop(n: usize, seed: u64) -> Population {
        let cfg = NeatConfig::builder(4, 2)
            .population_size(n)
            .build()
            .unwrap();
        Population::new(cfg, seed)
    }

    #[test]
    fn chunk_ids_contiguous() {
        let ids: Vec<GenomeId> = (0..10).map(GenomeId).collect();
        let chunks = chunk_ids(&ids, &[4, 3, 3]);
        assert_eq!(chunks[0].len(), 4);
        assert_eq!(chunks[1][0], GenomeId(4));
        assert_eq!(chunks[2][2], GenomeId(9));
    }

    #[test]
    fn comm_phase_records_and_times() {
        let cluster = Cluster::homogeneous(Platform::raspberry_pi(), 3, WifiModel::default());
        let mut comm = Comm::new();
        let t = comm.phase(&cluster, MessageKind::SendFitness, 3, vec![10, 10, 10]);
        assert!(t > 3.0 * cluster.net().channel_setup_s);
        assert_eq!(comm.ledger().entry(MessageKind::SendFitness).floats, 30);
        assert_eq!(comm.ledger().entry(MessageKind::SendFitness).messages, 3);
    }

    #[test]
    fn evaluate_partitioned_sets_all_fitness() {
        let mut pop = small_pop(10, 1);
        let mut ev = Evaluator::new(Workload::CartPole, InferenceMode::MultiStep);
        let genes = evaluate_partitioned(&mut pop, &mut ev, &[4, 3, 3]).unwrap();
        assert_eq!(genes.len(), 3);
        assert!(genes.iter().all(|&g| g > 0));
        assert!(pop.genomes().values().all(|g| g.fitness().is_some()));
        assert_eq!(pop.counters().current().episodes, 10);
    }

    #[test]
    fn evaluate_partitioned_identical_regardless_of_partition() {
        let run = |counts: &[usize]| {
            let mut pop = small_pop(12, 2);
            let mut ev = Evaluator::new(Workload::CartPole, InferenceMode::MultiStep);
            evaluate_partitioned(&mut pop, &mut ev, counts).unwrap();
            pop.genomes()
                .values()
                .map(|g| g.fitness().unwrap())
                .collect::<Vec<f64>>()
        };
        assert_eq!(run(&[12]), run(&[4, 4, 4]));
        assert_eq!(run(&[12]), run(&[6, 3, 2, 1]));
    }

    #[test]
    fn central_evolution_advances_population() {
        let mut pop = small_pop(12, 3);
        let mut ev = Evaluator::new(Workload::CartPole, InferenceMode::MultiStep);
        evaluate_partitioned(&mut pop, &mut ev, &[12]).unwrap();
        let out = central_evolution(&mut pop).unwrap();
        assert!(out.num_species >= 1);
        assert!(out.speciation_genes > 0);
        assert!(out.reproduction_genes > 0);
        assert!(!out.extinction);
        assert_eq!(pop.generation(), 1);
    }

    #[test]
    fn track_best_keeps_maximum() {
        let mut pop = small_pop(5, 4);
        let mut best = None;
        let mut ev = Evaluator::new(Workload::CartPole, InferenceMode::MultiStep);
        evaluate_partitioned(&mut pop, &mut ev, &[5]).unwrap();
        track_best(&mut best, &pop);
        let first = best.as_ref().unwrap().fitness().unwrap();
        // A worse population later must not displace the best.
        for id in pop.genomes().keys().copied().collect::<Vec<_>>() {
            pop.set_fitness(id, -100.0).unwrap();
        }
        track_best(&mut best, &pop);
        assert_eq!(best.unwrap().fitness().unwrap(), first);
    }
}
