//! Async steady-state evolution: barrier-free dispatch-on-completion,
//! with a virtual-time determinism contract.
//!
//! Every other orchestrator in this crate is generation-synchronous — a
//! gather barrier ends each round, so the tail agent (or a
//! retransmission burst, or a churn retry) stalls the whole population.
//! [`AsyncOrchestrator`] removes the barrier, following the CLAN paper's
//! asynchronous argument: agents stream `(genome, fitness)` results
//! continuously, and each arrival immediately triggers one steady-state
//! reproduction event ([`clan_neat::steady_state`]) — tournament
//! selection plus insert-replace-worst, no generations.
//!
//! # The reproducibility contract
//!
//! Removing the barrier breaks bit-identity to the serial run *by
//! design*: the population trajectory now depends on arrival order. The
//! mode therefore carries its own, different contract:
//!
//! - **Per-genome results stay deterministic.** Episode seeds derive
//!   from genome content, so any agent at any time scores a given
//!   genome identically.
//! - **Virtual time makes whole runs reproducible.** Under
//!   [`AsyncOrchestrator::run_virtual`], agent service times come from a
//!   seeded [`LatencySchedule`] and a single-threaded event loop orders
//!   completions by `(virtual time, agent, dispatch)`. Two runs with the
//!   same `(master seed, schedule)` produce identical populations and
//!   identical [event logs](AsyncOrchestrator::event_log_text) — the
//!   diffable artifact CI enforces.
//! - **Real transports trade determinism for throughput.**
//!   [`AsyncOrchestrator::run_streamed`] drives
//!   [`EdgeCluster::evaluate_stream`](crate::runtime::EdgeCluster::evaluate_stream)
//!   over channel/TCP/UDP links; arrival order is whatever the wire
//!   delivers, and the run is characterized statistically (convergence
//!   tests) rather than bit-for-bit.
//!
//! The scheduling win is measured, not assumed: [`AsyncStats`] records
//! makespan, summed busy time, and the wasted idle (`agents x makespan -
//! busy`) that the sync barrier would have burned waiting on stragglers
//! — `bench_eval`'s `async` section compares both modes at 4x skew.

use crate::error::ClanError;
use crate::evaluator::Evaluator;
use crate::runtime::{StreamCompletion, StreamStats};
use crate::telemetry::EventKind;
use clan_neat::rng::{derive_seed, splitmix64, OpTag};
use clan_neat::steady_state::{steady_state_insert, InsertReport};
use clan_neat::{Genome, GenomeId, Population};
use serde::{Deserialize, Serialize};
use std::cmp::Reverse;
use std::collections::{BinaryHeap, VecDeque};
use std::fmt::Write as _;

/// Seeded per-agent service times for the virtual-time simulation: agent
/// `a`'s `k`-th evaluation takes `base_us[a]` microseconds, scaled by a
/// multiplicative jitter of up to `jitter_pct` percent drawn from
/// `derive_seed(seed, [a, k, OpTag::Latency])`. Fixing `(seed, bases,
/// jitter)` fixes every service time in the run — the "latency schedule"
/// half of the async mode's reproducibility contract.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct LatencySchedule {
    seed: u64,
    base_us: Vec<u64>,
    jitter_pct: u32,
}

impl LatencySchedule {
    /// Creates a schedule from per-agent base service times
    /// (microseconds).
    ///
    /// # Errors
    ///
    /// [`ClanError::InvalidSetup`] if `base_us` is empty, any base is
    /// zero, or `jitter_pct > 90` (service times must stay positive).
    pub fn new(
        seed: u64,
        base_us: Vec<u64>,
        jitter_pct: u32,
    ) -> Result<LatencySchedule, ClanError> {
        if base_us.is_empty() {
            return Err(ClanError::InvalidSetup {
                reason: "a latency schedule needs at least one agent".into(),
            });
        }
        if base_us.contains(&0) {
            return Err(ClanError::InvalidSetup {
                reason: "latency schedule base times must be positive".into(),
            });
        }
        if jitter_pct > 90 {
            return Err(ClanError::InvalidSetup {
                reason: format!("jitter {jitter_pct}% leaves no positive service time"),
            });
        }
        Ok(LatencySchedule {
            seed,
            base_us,
            jitter_pct,
        })
    }

    /// A homogeneous schedule: `agents` identical base times.
    ///
    /// # Errors
    ///
    /// As [`new`](Self::new).
    pub fn uniform(
        seed: u64,
        agents: usize,
        base_us: u64,
        jitter_pct: u32,
    ) -> Result<LatencySchedule, ClanError> {
        LatencySchedule::new(seed, vec![base_us; agents], jitter_pct)
    }

    /// Number of simulated agents.
    pub fn n_agents(&self) -> usize {
        self.base_us.len()
    }

    /// Service time (microseconds) of agent `agent`'s `k`-th
    /// evaluation. Pure in `(self, agent, k)`.
    pub fn service_us(&self, agent: usize, k: u64) -> u64 {
        let base = self.base_us[agent];
        if self.jitter_pct == 0 {
            return base.max(1);
        }
        let draw = derive_seed(self.seed, &[agent as u64, k, OpTag::Latency as u64]);
        let span = 2 * i128::from(self.jitter_pct) + 1;
        let pct = (draw % span as u64) as i128 - i128::from(self.jitter_pct);
        let scaled = i128::from(base) * (100 + pct) / 100;
        scaled.max(1) as u64
    }

    /// Human-readable form, e.g. `5000,20000us ±10%`.
    pub fn describe(&self) -> String {
        let bases: Vec<String> = self.base_us.iter().map(u64::to_string).collect();
        format!("{}us ±{}%", bases.join(","), self.jitter_pct)
    }
}

/// One completion event of an async run: who finished what, when (in
/// virtual microseconds; wall-clock order index for streamed runs), the
/// bit-exact fitness, and the steady-state insertion it triggered.
///
/// The serialized sequence of these *is* the async determinism
/// contract: two virtual-time runs with the same `(seed, schedule)`
/// produce byte-identical logs.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AsyncEvent {
    /// Completion sequence number (0-based, in completion order).
    pub seq: u64,
    /// Virtual completion time in microseconds (0 for streamed runs,
    /// whose ordering is wall-clock and intentionally unlogged).
    pub vtime_us: u64,
    /// Agent slot that produced the result.
    pub agent: usize,
    /// The evaluated genome.
    pub genome: u64,
    /// `f64::to_bits` of the fitness — exact, diffable.
    pub fitness_bits: u64,
    /// The reproduction event this completion triggered, if the eval
    /// budget still had room.
    pub insert: Option<InsertReport>,
}

impl AsyncEvent {
    /// One stable, diffable log line.
    fn write_line(&self, out: &mut String) {
        let _ = write!(
            out,
            "e={} t={}us a={} g={} f={:#018X}",
            self.seq, self.vtime_us, self.agent, self.genome, self.fitness_bits
        );
        match &self.insert {
            Some(r) => {
                let _ = writeln!(
                    out,
                    " child={} evicted={} p={},{}",
                    r.child.0, r.evicted.0, r.parent1.0, r.parent2.0
                );
            }
            None => {
                let _ = writeln!(out, " child=- evicted=- p=-");
            }
        }
    }

    fn fold_hash(&self, h: u64) -> u64 {
        let mut h = splitmix64(h ^ self.seq);
        h = splitmix64(h ^ self.vtime_us);
        h = splitmix64(h ^ self.agent as u64);
        h = splitmix64(h ^ self.genome);
        h = splitmix64(h ^ self.fitness_bits);
        match &self.insert {
            Some(r) => {
                h = splitmix64(h ^ r.child.0);
                h = splitmix64(h ^ r.evicted.0);
                h = splitmix64(h ^ r.parent1.0);
                splitmix64(h ^ r.parent2.0)
            }
            None => splitmix64(h),
        }
    }
}

/// Measured outcome of an async steady-state run, reported on
/// [`RunReport`](crate::report::RunReport).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct AsyncStats {
    /// Evaluations dispatched and completed (the `--total-evals` budget).
    pub total_evals: u64,
    /// Tournament size used for parent selection.
    pub tournament_size: usize,
    /// Agents the run streamed over (simulated or real).
    pub agents: usize,
    /// Whether this was a virtual-time (deterministic) run.
    pub virtual_time: bool,
    /// Wall-clock (streamed) or virtual (simulated) makespan, seconds.
    pub makespan_s: f64,
    /// Summed per-agent busy seconds.
    pub busy_s: f64,
    /// `agents x makespan - busy`: idle capacity the barrier-free loop
    /// failed to use. The sync gather's equivalent is what async mode
    /// exists to recover.
    pub wasted_idle_s: f64,
    /// Completed evaluations per second of makespan.
    pub evals_per_s: f64,
    /// Steady-state insertions performed (completions that triggered
    /// reproduction).
    pub insertions: u64,
    /// Completions that improved the best-ever fitness.
    pub best_improvements: u64,
    /// Evaluations re-dispatched after an agent died mid-flight
    /// (streamed runs only).
    pub redispatches: u64,
    /// splitmix64 fold of the event log — two identical virtual-time
    /// runs must agree on this.
    pub event_log_hash: u64,
    /// Best-ever fitness at the end of the run.
    pub best_fitness: f64,
}

/// Mutable state of one steady-state reproduction loop, shared by the
/// virtual-time and streamed drivers: the tournament size plus the
/// running insertion / best-improvement counters.
struct SteadyStateLoop {
    tournament_size: usize,
    insertions: u64,
    best_improvements: u64,
}

impl SteadyStateLoop {
    fn new(tournament_size: usize) -> SteadyStateLoop {
        SteadyStateLoop {
            tournament_size,
            insertions: 0,
            best_improvements: 0,
        }
    }

    /// Applies one completed evaluation to the population (fitness,
    /// cost accounting, best-ever tracking) and — while the eval budget
    /// allows — performs the steady-state insertion it triggers.
    /// Returns the insertion record and the next genome to dispatch.
    fn absorb(
        &mut self,
        pop: &mut Population,
        genome: GenomeId,
        fitness: f64,
        inference_genes: u64,
        reproduce: bool,
    ) -> (Option<InsertReport>, Option<GenomeId>) {
        pop.counters_mut().record_inference(inference_genes);
        pop.counters_mut().record_episode();
        pop.set_fitness(genome, fitness)
            .expect("in-flight genomes are never evicted");
        if pop.note_best_ever() {
            self.best_improvements += 1;
        }
        if !reproduce {
            return (None, None);
        }
        let report = steady_state_insert(pop, self.tournament_size, self.insertions);
        if let Some(r) = &report {
            self.insertions += 1;
            (report, Some(r.child))
        } else {
            (None, None)
        }
    }
}

/// The barrier-free coordinator: owns the population and evaluator and
/// drives the steady-state loop to a fixed evaluation budget, either
/// under virtual time ([`run_virtual`](Self::run_virtual)) or over a
/// real agent cluster ([`run_streamed`](Self::run_streamed)).
#[derive(Debug)]
pub struct AsyncOrchestrator {
    pop: Population,
    evaluator: Evaluator,
    total_evals: u64,
    tournament_size: usize,
    events: Vec<AsyncEvent>,
    stats: Option<AsyncStats>,
    stream: Option<StreamStats>,
}

impl AsyncOrchestrator {
    /// Creates the coordinator.
    ///
    /// # Errors
    ///
    /// [`ClanError::InvalidSetup`] if `tournament_size` is zero or
    /// `total_evals` cannot cover even the initial population (the
    /// steady-state loop only starts once the bootstrap wave is paid
    /// for).
    pub fn new(
        pop: Population,
        evaluator: Evaluator,
        total_evals: u64,
        tournament_size: usize,
    ) -> Result<AsyncOrchestrator, ClanError> {
        if tournament_size == 0 {
            return Err(ClanError::InvalidSetup {
                reason: "tournament size must be at least 1".into(),
            });
        }
        if total_evals < pop.len() as u64 {
            return Err(ClanError::InvalidSetup {
                reason: format!(
                    "total evals {} cannot cover the initial population of {}",
                    total_evals,
                    pop.len()
                ),
            });
        }
        Ok(AsyncOrchestrator {
            pop,
            evaluator,
            total_evals,
            tournament_size,
            events: Vec::new(),
            stats: None,
            stream: None,
        })
    }

    /// The population (final state after a run).
    pub fn population(&self) -> &Population {
        &self.pop
    }

    /// The evaluator (e.g. to inspect the attached cluster after a
    /// streamed run).
    pub fn evaluator(&self) -> &Evaluator {
        &self.evaluator
    }

    /// Mutable evaluator access (cluster surgery between runs).
    pub fn evaluator_mut(&mut self) -> &mut Evaluator {
        &mut self.evaluator
    }

    /// The completion events of the last run, in completion order.
    pub fn events(&self) -> &[AsyncEvent] {
        &self.events
    }

    /// The last run's measured stats, once a run has finished.
    pub fn stats(&self) -> Option<&AsyncStats> {
        self.stats.as_ref()
    }

    /// The last streamed run's per-agent transport stats (`None` for
    /// virtual-time runs, which have no real cluster).
    pub fn stream_stats(&self) -> Option<&StreamStats> {
        self.stream.as_ref()
    }

    /// The diffable event log: one stable line per completion. Two
    /// virtual-time runs with identical `(seed, schedule)` produce
    /// byte-identical logs — `diff` clean, as CI asserts.
    pub fn event_log_text(&self) -> String {
        let mut out = String::with_capacity(self.events.len() * 64);
        for e in &self.events {
            e.write_line(&mut out);
        }
        out
    }

    /// splitmix64 fold of the event log (the log's cheap fingerprint).
    pub fn event_log_hash(&self) -> u64 {
        self.events
            .iter()
            .fold(0x00A5_15C0_0000_0001, |h, e| e.fold_hash(h))
    }

    /// Consumes the coordinator, yielding the evolved population and
    /// the evaluator.
    pub fn into_parts(self) -> (Population, Evaluator) {
        (self.pop, self.evaluator)
    }

    /// Installs a telemetry tracer. Virtual-time runs record logical
    /// dispatch/completion events (deterministic per `(seed,
    /// schedule)`, a strict superset of
    /// [`event_log_text`](Self::event_log_text)); streamed runs record
    /// wall-clock annotations only.
    pub fn install_tracer(&mut self, tracer: crate::telemetry::Tracer) {
        self.evaluator.set_tracer(tracer);
    }

    /// Runs the steady-state loop under deterministic virtual time:
    /// evaluation is local, agents exist only as [`LatencySchedule`]
    /// service times, and completions are ordered by a priority queue
    /// over `(virtual time, agent, dispatch)`. Exactly reproducible for
    /// a fixed `(master seed, schedule)`.
    ///
    /// # Errors
    ///
    /// [`ClanError::InvalidSetup`] if the schedule has no agents or at
    /// least as many agents as the population has genomes (the
    /// steady-state loop needs evaluated members to select from while a
    /// wave is in flight).
    pub fn run_virtual(&mut self, schedule: &LatencySchedule) -> Result<(), ClanError> {
        let agents = schedule.n_agents();
        if agents >= self.pop.len() {
            return Err(ClanError::InvalidSetup {
                reason: format!(
                    "{} simulated agents need a population larger than {}",
                    agents,
                    self.pop.len()
                ),
            });
        }
        let cfg = self.pop.config().clone();
        let master_seed = self.pop.master_seed();
        self.events.clear();
        self.stream = None;
        let tracer = self.evaluator.tracer().clone();
        let mut queue: VecDeque<GenomeId> = self.pop.genomes().keys().copied().collect();
        // Min-heap of in-flight work: (completion time, agent, dispatch
        // sequence, genome). The tuple order is the tie-break rule.
        let mut in_flight: BinaryHeap<Reverse<(u64, usize, u64, GenomeId)>> = BinaryHeap::new();
        let mut per_agent_k = vec![0u64; agents];
        let mut busy_us = vec![0u64; agents];
        // One eval in flight per agent, so a scalar dispatch time per
        // agent suffices to compute completion spans.
        let mut dispatched_at = vec![0u64; agents];
        let mut dispatched = 0u64;
        let mut loop_state = SteadyStateLoop::new(self.tournament_size);
        let mut makespan_us = 0u64;
        let dispatch = |agent: usize,
                        now_us: u64,
                        genome: GenomeId,
                        per_agent_k: &mut [u64],
                        busy_us: &mut [u64],
                        dispatched_at: &mut [u64],
                        in_flight: &mut BinaryHeap<Reverse<(u64, usize, u64, GenomeId)>>,
                        dispatched: &mut u64| {
            let service = schedule.service_us(agent, per_agent_k[agent]);
            per_agent_k[agent] += 1;
            busy_us[agent] += service;
            dispatched_at[agent] = now_us;
            // Logical: dispatch order and virtual times are pure in
            // (seed, schedule), the async determinism contract.
            tracer.logical(EventKind::Dispatch, |ev| {
                ev.vtime_us = Some(now_us);
                ev.agent = Some(agent as u64);
                ev.genome = Some(genome.0);
            });
            in_flight.push(Reverse((now_us + service, agent, *dispatched, genome)));
            *dispatched += 1;
        };
        for agent in 0..agents {
            if dispatched >= self.total_evals {
                break;
            }
            let Some(genome) = queue.pop_front() else {
                break;
            };
            dispatch(
                agent,
                0,
                genome,
                &mut per_agent_k,
                &mut busy_us,
                &mut dispatched_at,
                &mut in_flight,
                &mut dispatched,
            );
        }
        while let Some(Reverse((now_us, agent, _dseq, genome))) = in_flight.pop() {
            makespan_us = makespan_us.max(now_us);
            let g = self.pop.genome(genome).expect("in flight").clone();
            let (_, eval, gpa) = self.evaluator.evaluate_genomes(&[g], &cfg, master_seed, 0)[0];
            let budget_left = dispatched < self.total_evals;
            let (insert, next) =
                if let Some(queued) = budget_left.then(|| queue.pop_front()).flatten() {
                    // Bootstrap phase: the initial population is still being
                    // dispatched; reproduction starts once it drains.
                    loop_state.absorb(
                        &mut self.pop,
                        genome,
                        eval.fitness,
                        eval.activations * gpa,
                        false,
                    );
                    (None, Some(queued))
                } else {
                    loop_state.absorb(
                        &mut self.pop,
                        genome,
                        eval.fitness,
                        eval.activations * gpa,
                        budget_left,
                    )
                };
            let aseq = self.events.len() as u64;
            // Logical completion: mirrors the AsyncEvent log line
            // one-for-one (the --trace stream is a strict superset of
            // --event-log), plus the deterministic service-time span.
            tracer.logical(EventKind::Completion, |ev| {
                ev.aseq = Some(aseq);
                ev.vtime_us = Some(now_us);
                ev.agent = Some(agent as u64);
                ev.genome = Some(genome.0);
                ev.fitness_bits = Some(eval.fitness.to_bits());
                ev.dur_us = Some(now_us - dispatched_at[agent]);
                if let Some(r) = &insert {
                    ev.child = Some(r.child.0);
                    ev.evicted = Some(r.evicted.0);
                    ev.p1 = Some(r.parent1.0);
                    ev.p2 = Some(r.parent2.0);
                }
            });
            self.events.push(AsyncEvent {
                seq: aseq,
                vtime_us: now_us,
                agent,
                genome: genome.0,
                fitness_bits: eval.fitness.to_bits(),
                insert,
            });
            if let Some(next) = next {
                dispatch(
                    agent,
                    now_us,
                    next,
                    &mut per_agent_k,
                    &mut busy_us,
                    &mut dispatched_at,
                    &mut in_flight,
                    &mut dispatched,
                );
            }
        }
        let makespan_s = makespan_us as f64 / 1e6;
        let busy_s = busy_us.iter().sum::<u64>() as f64 / 1e6;
        self.stats = Some(AsyncStats {
            total_evals: dispatched,
            tournament_size: self.tournament_size,
            agents,
            virtual_time: true,
            makespan_s,
            busy_s,
            wasted_idle_s: (agents as f64 * makespan_s - busy_s).max(0.0),
            evals_per_s: if makespan_s > 0.0 {
                self.events.len() as f64 / makespan_s
            } else {
                0.0
            },
            insertions: loop_state.insertions,
            best_improvements: loop_state.best_improvements,
            redispatches: 0,
            event_log_hash: self.event_log_hash(),
            best_fitness: self
                .pop
                .best_ever()
                .and_then(Genome::fitness)
                .unwrap_or(f64::NEG_INFINITY),
        });
        Ok(())
    }

    /// Runs the steady-state loop over the evaluator's attached agent
    /// cluster, streaming one-genome `Evaluate` frames with
    /// dispatch-on-completion
    /// ([`EdgeCluster::evaluate_stream`](crate::runtime::EdgeCluster::evaluate_stream)).
    /// Arrival order — and therefore the population trajectory — is
    /// wall-clock nondeterministic; per-genome fitness values are still
    /// content-deterministic.
    ///
    /// # Errors
    ///
    /// [`ClanError::InvalidSetup`] without an attached cluster or with
    /// at least as many agents as genomes, plus anything
    /// `evaluate_stream` reports (protocol violations, cluster drained
    /// below the recovery floor).
    pub fn run_streamed(&mut self) -> Result<(), ClanError> {
        let master_seed = self.pop.master_seed();
        let total_evals = self.total_evals;
        let tournament_size = self.tournament_size;
        let agents = self.evaluator.remote_agents();
        if agents == 0 {
            return Err(ClanError::InvalidSetup {
                reason: "streamed async mode needs an attached agent cluster".into(),
            });
        }
        if agents >= self.pop.len() {
            return Err(ClanError::InvalidSetup {
                reason: format!(
                    "{} agents need a population larger than {}",
                    agents,
                    self.pop.len()
                ),
            });
        }
        self.events.clear();
        let AsyncOrchestrator {
            pop,
            evaluator,
            events,
            ..
        } = self;
        let initial: Vec<Genome> = pop.genomes().values().cloned().collect();
        let mut dispatched = initial.len() as u64;
        let mut loop_state = SteadyStateLoop::new(tournament_size);
        // Streamed arrival order is wall-clock nondeterministic, so
        // insertions are recorded as Timing annotations (the cluster's
        // evaluate_stream already records the per-completion spans).
        let tracer = evaluator.tracer().clone();
        let cluster = evaluator.remote_mut().expect("remote_agents > 0");
        let stream =
            cluster.evaluate_stream(master_seed, initial, &mut |c: &StreamCompletion| {
                let reproduce = dispatched < total_evals;
                let (insert, next) = loop_state.absorb(
                    pop,
                    c.genome,
                    c.evaluation.fitness,
                    c.evaluation.activations * c.genes_per_activation,
                    reproduce,
                );
                if next.is_some() {
                    dispatched += 1;
                }
                if let Some(r) = &insert {
                    tracer.timing(EventKind::Insertion, |ev| {
                        ev.agent = Some(c.agent as u64);
                        ev.genome = Some(c.genome.0);
                        ev.child = Some(r.child.0);
                        ev.evicted = Some(r.evicted.0);
                        ev.p1 = Some(r.parent1.0);
                        ev.p2 = Some(r.parent2.0);
                    });
                }
                events.push(AsyncEvent {
                    seq: events.len() as u64,
                    vtime_us: 0,
                    agent: c.agent,
                    genome: c.genome.0,
                    fitness_bits: c.evaluation.fitness.to_bits(),
                    insert,
                });
                next.map(|id| pop.genome(id).expect("just inserted").clone())
            })?;
        self.stats = Some(AsyncStats {
            total_evals: dispatched,
            tournament_size,
            agents,
            virtual_time: false,
            makespan_s: stream.makespan_s,
            busy_s: stream.busy_s,
            wasted_idle_s: stream.wasted_idle_s(agents),
            evals_per_s: if stream.makespan_s > 0.0 {
                stream.completions as f64 / stream.makespan_s
            } else {
                0.0
            },
            insertions: loop_state.insertions,
            best_improvements: loop_state.best_improvements,
            redispatches: stream.redispatches,
            event_log_hash: self.event_log_hash(),
            best_fitness: self
                .pop
                .best_ever()
                .and_then(Genome::fitness)
                .unwrap_or(f64::NEG_INFINITY),
        });
        self.stream = Some(stream);
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluator::InferenceMode;
    use crate::runtime::EdgeCluster;
    use crate::transport::ClusterSpec;
    use clan_envs::Workload;
    use clan_neat::NeatConfig;

    fn pop(n: usize, seed: u64) -> Population {
        let w = Workload::CartPole;
        let cfg = NeatConfig::builder(w.obs_dim(), w.n_actions())
            .population_size(n)
            .build()
            .unwrap();
        Population::new(cfg, seed)
    }

    fn orchestrator(n: usize, seed: u64, total: u64) -> AsyncOrchestrator {
        let evaluator = Evaluator::new(Workload::CartPole, InferenceMode::MultiStep);
        AsyncOrchestrator::new(pop(n, seed), evaluator, total, 3).unwrap()
    }

    #[test]
    fn virtual_run_reaches_budget_and_conserves_population() {
        let mut orch = orchestrator(12, 7, 40);
        let schedule = LatencySchedule::new(7, vec![2000, 8000, 2000], 10).unwrap();
        orch.run_virtual(&schedule).unwrap();
        let stats = orch.stats().unwrap().clone();
        assert_eq!(stats.total_evals, 40);
        assert_eq!(orch.events().len(), 40);
        assert_eq!(orch.population().len(), 12);
        assert!(stats.makespan_s > 0.0);
        assert!(stats.busy_s > 0.0);
        assert!(orch.population().best_ever().is_some());
    }

    #[test]
    fn virtual_runs_replay_byte_identical() {
        let run = || {
            let mut orch = orchestrator(10, 21, 35);
            let schedule = LatencySchedule::new(5, vec![1000, 4000], 25).unwrap();
            orch.run_virtual(&schedule).unwrap();
            (orch.event_log_text(), orch.event_log_hash())
        };
        let (log_a, hash_a) = run();
        let (log_b, hash_b) = run();
        assert_eq!(log_a, log_b);
        assert_eq!(hash_a, hash_b);
        assert!(!log_a.is_empty());
    }

    #[test]
    fn different_schedules_diverge() {
        let run = |sched_seed: u64| {
            let mut orch = orchestrator(10, 21, 35);
            let schedule = LatencySchedule::new(sched_seed, vec![1000, 4000], 25).unwrap();
            orch.run_virtual(&schedule).unwrap();
            orch.event_log_hash()
        };
        // Same master seed, different latency schedule: the trajectory
        // may differ (that is the point of logging the schedule).
        // Hashes are overwhelmingly likely to differ; equality would
        // mean the arrival order never changed, which the skewed bases
        // make practically impossible.
        assert_ne!(run(3), run(4));
    }

    #[test]
    fn budget_below_population_is_rejected() {
        let evaluator = Evaluator::new(Workload::CartPole, InferenceMode::MultiStep);
        assert!(AsyncOrchestrator::new(pop(10, 1), evaluator, 5, 3).is_err());
    }

    #[test]
    fn streamed_run_matches_budget_over_channel_cluster() {
        let population = pop(10, 9);
        let spec = ClusterSpec::new(
            Workload::CartPole,
            InferenceMode::MultiStep,
            population.config().clone(),
        );
        let cluster = EdgeCluster::spawn_spec(3, spec).unwrap();
        let evaluator =
            Evaluator::new(Workload::CartPole, InferenceMode::MultiStep).with_remote(cluster);
        let mut orch = AsyncOrchestrator::new(population, evaluator, 30, 3).unwrap();
        orch.run_streamed().unwrap();
        let stats = orch.stats().unwrap();
        assert_eq!(stats.total_evals, 30);
        assert_eq!(orch.events().len(), 30);
        assert_eq!(orch.population().len(), 10);
        assert!(!stats.virtual_time);
        assert!(stats.best_fitness > f64::NEG_INFINITY);
    }
}
