//! The paper's Figure-1 closed loop: continuous learning on the edge.
//!
//! > "Each agent uses the deployed expert to perform the task at hand and
//! > continues to evaluate its fitness against a rubric ... In the event
//! > of a change of task or environment, if the fitness of the expert
//! > deteriorates below a certain threshold, the agents invoke the
//! > learning process on the edge and continue to learn a new expert
//! > until the desired fitness is achieved."
//!
//! [`ContinuousLearner`] holds the current expert genome. Each
//! [`encounter_task`](ContinuousLearner::encounter_task) call probes the
//! expert on the (possibly changed) environment; if its average fitness
//! has fallen below the threshold, a NEAT learning phase runs — warm-
//! started from mutated copies of the expert — until fitness recovers or
//! the generation budget runs out.

use crate::error::ClanError;
use clan_envs::{run_episode, Environment};
use clan_neat::rng::{derive_seed, op_rng, OpTag};
use clan_neat::{FeedForwardNetwork, Genome, GenomeId, NeatConfig, Population};
use serde::{Deserialize, Serialize};

/// Monitoring parameters for the closed loop.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct MonitorConfig {
    /// Episodes averaged when probing the expert's fitness.
    pub probe_episodes: u32,
    /// Per-episode step cap (the paper uses 200).
    pub max_steps: u64,
    /// Generation budget for each learning phase.
    pub max_learning_generations: u64,
}

impl Default for MonitorConfig {
    fn default() -> Self {
        MonitorConfig {
            probe_episodes: 5,
            max_steps: 200,
            max_learning_generations: 50,
        }
    }
}

/// What happened when the learner met one task.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TaskOutcome {
    /// Environment name.
    pub task: String,
    /// Expert fitness measured on arrival (`None` when no expert was
    /// deployed yet).
    pub initial_fitness: Option<f64>,
    /// Whether the fitness monitor triggered a learning phase.
    pub triggered_learning: bool,
    /// Generations the learning phase ran (0 if not triggered).
    pub learning_generations: u64,
    /// Expert fitness after the encounter.
    pub final_fitness: f64,
    /// Whether the final expert meets the threshold.
    pub recovered: bool,
}

/// One learning phase's trace (per-generation best fitness).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct LearningEvent {
    /// Task that triggered learning.
    pub task: String,
    /// Best fitness per generation, in order.
    pub best_per_generation: Vec<f64>,
}

/// Closed-loop learner: deploy, monitor, re-learn.
#[derive(Debug, Clone)]
pub struct ContinuousLearner {
    cfg: NeatConfig,
    monitor: MonitorConfig,
    seed: u64,
    expert: Option<Genome>,
    events: Vec<LearningEvent>,
    encounters: u64,
}

impl ContinuousLearner {
    /// Creates a learner with no deployed expert.
    ///
    /// `cfg`'s I/O dimensions must match every environment the learner
    /// will encounter.
    pub fn new(cfg: NeatConfig, monitor: MonitorConfig, seed: u64) -> ContinuousLearner {
        ContinuousLearner {
            cfg,
            monitor,
            seed,
            expert: None,
            events: Vec::new(),
            encounters: 0,
        }
    }

    /// The currently deployed expert, if any.
    pub fn expert(&self) -> Option<&Genome> {
        self.expert.as_ref()
    }

    /// Learning phases run so far.
    pub fn events(&self) -> &[LearningEvent] {
        &self.events
    }

    /// Average fitness of the deployed expert over the configured probe
    /// episodes, or `None` when no expert exists.
    pub fn probe(&self, env: &mut dyn Environment) -> Option<f64> {
        let expert = self.expert.as_ref()?;
        let net = FeedForwardNetwork::compile(expert, &self.cfg);
        let mut total = 0.0;
        for ep in 0..self.monitor.probe_episodes {
            let seed = derive_seed(self.seed, &[0xBEEF, self.encounters, ep as u64]);
            let outcome = run_episode(env, seed, self.monitor.max_steps, |obs| net.act_argmax(obs));
            total += outcome.total_reward;
        }
        Some(total / self.monitor.probe_episodes as f64)
    }

    /// Confronts the learner with a task: probe the expert, trigger a
    /// learning phase if its fitness is below `threshold`, and redeploy
    /// the best genome found.
    ///
    /// # Errors
    ///
    /// Propagates NEAT failures from the learning phase.
    pub fn encounter_task(
        &mut self,
        env: &mut dyn Environment,
        threshold: f64,
    ) -> Result<TaskOutcome, ClanError> {
        self.encounters += 1;
        let task = env.name().to_string();
        let initial_fitness = self.probe(env);
        let healthy = initial_fitness.is_some_and(|f| f >= threshold);
        if healthy {
            return Ok(TaskOutcome {
                task,
                initial_fitness,
                triggered_learning: false,
                learning_generations: 0,
                final_fitness: initial_fitness.expect("checked above"),
                recovered: true,
            });
        }

        // Learning phase: a fresh population, warm-started from the
        // expert when one exists.
        let phase_seed = derive_seed(self.seed, &[0x1EA2, self.encounters]);
        let mut pop = Population::new(self.cfg.clone(), phase_seed);
        if let Some(expert) = &self.expert {
            let ids: Vec<GenomeId> = pop.genomes().keys().copied().collect();
            let warm: Vec<Genome> = ids
                .iter()
                .enumerate()
                .map(|(i, &id)| {
                    let mut g = expert.clone();
                    g.set_id(id);
                    g.clear_fitness();
                    if i > 0 {
                        let mut rng = op_rng(phase_seed, 0, id.0, OpTag::Mutation);
                        g.mutate(&self.cfg, &mut rng);
                    }
                    g
                })
                .collect();
            pop.replace_genomes(warm);
        }

        let mut trace = Vec::new();
        let mut generations = 0;
        for _ in 0..self.monitor.max_learning_generations {
            let master = pop.master_seed();
            let generation = pop.generation();
            let cfg = self.cfg.clone();
            let max_steps = self.monitor.max_steps;
            let ids: Vec<GenomeId> = pop.genomes().keys().copied().collect();
            for id in ids {
                let net =
                    FeedForwardNetwork::compile(pop.genome(id).expect("id from population"), &cfg);
                let seed = derive_seed(master, &[generation, id.0, OpTag::Environment as u64]);
                let outcome = run_episode(env, seed, max_steps, |obs| net.act_argmax(obs));
                pop.counters_mut()
                    .record_inference(outcome.steps * net.genes_per_activation());
                pop.counters_mut().record_episode();
                pop.set_fitness(id, outcome.total_reward)
                    .expect("id from population");
            }
            let summary = pop.advance_generation();
            generations += 1;
            trace.push(summary.best_fitness);
            if summary.best_fitness >= threshold {
                break;
            }
        }

        let best = pop
            .best_ever()
            .cloned()
            .ok_or_else(|| ClanError::InvalidSetup {
                reason: "learning phase produced no evaluated genome".into(),
            })?;
        let final_fitness = best.fitness().expect("best_ever carries fitness");
        // Redeploy only if the new expert is actually better.
        let improved = initial_fitness.is_none_or(|f| final_fitness > f);
        if improved {
            self.expert = Some(best);
        }
        self.events.push(LearningEvent {
            task: task.clone(),
            best_per_generation: trace,
        });
        Ok(TaskOutcome {
            task,
            initial_fitness,
            triggered_learning: true,
            learning_generations: generations,
            final_fitness,
            recovered: final_fitness >= threshold,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clan_envs::cartpole::{CartPole, CartPoleParams};

    fn learner(pop: usize) -> ContinuousLearner {
        let cfg = NeatConfig::builder(4, 2)
            .population_size(pop)
            .build()
            .unwrap();
        ContinuousLearner::new(
            cfg,
            MonitorConfig {
                probe_episodes: 3,
                max_steps: 200,
                max_learning_generations: 25,
            },
            7,
        )
    }

    #[test]
    fn first_encounter_always_learns() {
        let mut l = learner(48);
        let mut env = CartPole::new();
        let out = l.encounter_task(&mut env, 60.0).unwrap();
        assert!(out.triggered_learning);
        assert!(out.initial_fitness.is_none());
        assert!(l.expert().is_some());
        assert!(out.final_fitness > 0.0);
    }

    #[test]
    fn healthy_expert_skips_learning() {
        let mut l = learner(48);
        let mut env = CartPole::new();
        let first = l.encounter_task(&mut env, 50.0).unwrap();
        if first.recovered {
            // Same environment again: the expert should still be healthy.
            let second = l.encounter_task(&mut env, 50.0).unwrap();
            assert!(!second.triggered_learning, "{second:?}");
            assert_eq!(l.events().len(), 1);
        }
    }

    #[test]
    fn environment_shift_triggers_relearning() {
        let mut l = learner(48);
        let mut env = CartPole::new();
        let first = l.encounter_task(&mut env, 50.0).unwrap();
        assert!(first.triggered_learning);
        // The world changes: a much longer, heavier pole in lower gravity.
        let mut shifted = CartPole::with_params(CartPoleParams {
            gravity: 19.6,
            pole_half_length: 1.5,
            force_mag: 6.0,
        });
        let probe = l.probe(&mut shifted);
        assert!(probe.is_some());
        let out = l.encounter_task(&mut shifted, 50.0).unwrap();
        // Either the old expert generalizes (no learning) or the monitor
        // caught the degradation and re-learned; both are valid closed-
        // loop behaviours, but the learner must end deployed.
        assert!(l.expert().is_some());
        if out.triggered_learning {
            assert!(out.learning_generations > 0);
        }
    }

    #[test]
    fn probe_without_expert_is_none() {
        let l = learner(16);
        let mut env = CartPole::new();
        assert!(l.probe(&mut env).is_none());
    }

    #[test]
    fn events_record_traces() {
        let mut l = learner(32);
        let mut env = CartPole::new();
        l.encounter_task(&mut env, 1000.0).unwrap(); // unreachable threshold
        assert_eq!(l.events().len(), 1);
        assert_eq!(
            l.events()[0].best_per_generation.len(),
            25,
            "budget exhausted without convergence"
        );
    }
}
