//! # clan-core — Collaborative Learning using Asynchronous Neuroevolution
//!
//! The paper's contribution: orchestrating NEAT across a cluster of edge
//! devices under three distribution strategies, named `CLAN_<IRS>` for how
//! **I**nference, **R**eproduction, and **S**peciation are placed:
//!
//! | Config | Inference | Reproduction | Speciation |
//! |--------|-----------|--------------|------------|
//! | Serial | central | central | synchronous |
//! | `CLAN_DCS` | **distributed** | central | synchronous |
//! | `CLAN_DDS` | **distributed** | **distributed** | synchronous |
//! | `CLAN_DDA` | **distributed** | **distributed** | **asynchronous** (per-clan) |
//!
//! Every orchestrator runs the *real* NEAT algorithm (from `clan-neat`) on
//! real environments (from `clan-envs`) while simultaneously accounting:
//!
//! - gene-level compute costs per block (paper Fig 3),
//! - per-message-kind communication (Fig 4),
//! - a simulated cluster timeline from the platform and WiFi models
//!   (Figs 5–11).
//!
//! Serial, DCS, and DDS are *bit-identical* in their evolutionary
//! trajectory for a given seed (order-independent RNG); DDA is a genuinely
//! different algorithm — that's the paper's accuracy-vs-scalability
//! trade-off (Fig 7b).
//!
//! Beyond the analytic cluster model, [`runtime`] provides a real
//! edge cluster over pluggable transports, and [`continuous`]
//! implements the paper's Figure-1 closed loop: deploy an expert, watch
//! its fitness, re-learn when the environment shifts.
//!
//! Inference — the dominant compute block — can additionally be fanned
//! out across host threads via [`parallel::ParallelEvaluator`]
//! (enabled with [`ClanDriverBuilder::eval_threads`] or
//! `clan-cli --eval-threads N`); the order-independent RNG discipline
//! makes the parallel evaluation bit-identical to the serial path, so
//! the simulated study results are unchanged while wall-clock time drops
//! near-linearly with cores.
//!
//! # Distributed runtime
//!
//! [`transport`] + [`runtime`] turn the simulated protocols into a real
//! networked deployment:
//!
//! - **Wire format** — one binary frame per protocol message
//!   (`"CLAN"` magic, version, tag, payload; see [`transport::codec`]),
//!   moved by a [`transport::Transport`]: in-process byte channels
//!   ([`runtime::EdgeCluster::spawn`]), loopback TCP sockets on
//!   ephemeral ports ([`runtime::EdgeCluster::spawn_local`]), or remote
//!   agent processes started with `clan-cli agent --listen ADDR`
//!   ([`runtime::EdgeCluster::connect`]). A coordinator configures
//!   agents over the wire (`Configure` carries workload + NEAT config),
//!   then drives `Evaluate`/`Fitness` and `BuildChildren`/`Children`
//!   rounds.
//! - **Determinism contract** — every episode RNG stream derives from
//!   `(master_seed, genome content hash)` and every reproduction stream
//!   from `(master_seed, generation, child_id)`, never from placement
//!   or arrival order, and genome attributes travel as
//!   exact `f64` bits; a TCP cluster run is therefore *bit-identical*
//!   to a serial run on all four topologies (`tests/net_equivalence.rs`
//!   asserts fitness, cost counters, and best-ever genomes at 1/2/4
//!   agents).
//! - **Measured vs modeled traffic** — the runtime records each
//!   message's real bytes-on-the-wire next to the analytic float
//!   accounting in a [`CommLedger`](clan_netsim::CommLedger);
//!   `CommLedger::framing_overhead` quantifies how much a practical
//!   wire format (f64 attributes, gene keys, length prefixes) exceeds
//!   the paper's 4-bytes-per-gene model.
//! - **From CI smoke to real devices** — the loopback cluster CI runs
//!   (`net-smoke` job: 2 agents, 3 CartPole generations, plus the
//!   equivalence suite) exercises the exact code path of a multi-device
//!   deployment; only the socket addresses change: start
//!   `clan-cli agent --listen 0.0.0.0:PORT` on each device and point
//!   `clan-cli coordinate --agents HOST:PORT,...` at them.
//!
//! Errors are typed end-to-end: malformed frames surface as
//! [`error::FrameError`] (never a panic), disconnects as
//! [`ClanError::Transport`], protocol violations as
//! [`ClanError::Protocol`].
//!
//! # Heterogeneous clusters
//!
//! Real edge swarms mix device generations; splitting work evenly makes
//! every generation wait on the slowest node. Two knobs remove that
//! barrier cost without touching the determinism contract:
//!
//! - **Capability weights** — [`EdgeCluster::set_weights`] (or
//!   `ClanDriverBuilder::agent_weights` / `clan-cli coordinate
//!   --agent-weights 1,4,...`) makes every scatter partition work
//!   proportionally to per-agent throughput, via
//!   [`clan_distsim::partition_weighted`] (largest-remainder rounding,
//!   no positive-weight agent ever starved). Seed them from the static
//!   platform model with [`EdgeCluster::set_weights_from_platforms`].
//! - **Round-trip calibration** — [`EdgeCluster::set_calibration`] (or
//!   `ClanDriverBuilder::calibrate` / `--calibrate`) recalibrates the
//!   weights each generation from an EWMA of measured per-chunk
//!   round-trip throughput, so partitions track how fast agents
//!   actually are.
//!
//! Gathers are **out of order**: per-link reader threads bank each
//! response as it arrives and results replay in genome-id order, so a
//! fast agent never idles behind a slow one and the evolved genomes
//! remain bit-identical to a serial run under any weights
//! (`tests/hetero_equivalence.rs`). Balance is observable: per-agent
//! wire bytes land in
//! [`CommLedger::agent_entries`](clan_netsim::CommLedger::agent_entries)
//! and measured makespan vs. summed busy time in [`GatherStats`]
//! (surfaced on [`RunReport`] and in the CLI summary).
//!
//! # Lossy transport
//!
//! The paper's swarm shares a WiFi medium that loses, duplicates, and
//! reorders frames (§IV-A measures 62.24 Mbps / 8.83 ms for 64 B
//! transfers); TCP hides that behind a reliable stream, so the
//! `clan-netsim` WiFi-contention assumptions went unvalidated against a
//! real lossy wire. [`transport::udp`] closes that gap:
//!
//! - **Reliable datagrams** —
//!   [`UdpTransport`](transport::UdpTransport) fragments each frame
//!   into MTU-sized datagrams (`(seq, fragment, count)` headers),
//!   acknowledges each fragment, retransmits unacked ones on a timer,
//!   and reassembles in order with deduplication, over any
//!   [`DatagramLink`](transport::DatagramLink) — real UDP sockets
//!   ([`EdgeCluster::spawn_local_udp`](runtime::EdgeCluster::spawn_local_udp),
//!   [`EdgeCluster::connect_udp`](runtime::EdgeCluster::connect_udp),
//!   `clan-cli agent --udp` / `coordinate --udp`) or in-process
//!   channels.
//! - **Deterministic fault injection** —
//!   [`FaultyTransport`](transport::FaultyTransport) perturbs the
//!   datagram stream *below* the ARQ layer with a seeded per-link RNG
//!   (drop / duplicate / reorder / delay / emulated bandwidth, see
//!   [`FaultConfig`](transport::FaultConfig)), so lossy runs are
//!   reproducible: `clan-cli coordinate --udp --loss 0.2 --fault-seed 7`.
//! - **Determinism under loss** — the ARQ layer reconstructs the exact
//!   frame bytes, so a UDP run with 20 % injected loss is
//!   *bit-identical* to a serial run on all four topologies
//!   (`tests/lossy_equivalence.rs`); loss costs only time and the
//!   retransmitted/duplicate bytes recorded in the ledger's
//!   `retrans_wire_bytes` column (surfaced on [`RunReport`] and the CLI
//!   summary).
//! - **Liveness** — a peer that goes silent mid-generation surfaces a
//!   typed [`ClanError::Timeout`] after the transport's idle deadline,
//!   never a hang; the TCP path mirrors this via
//!   [`TcpTransport::with_read_timeout`](transport::TcpTransport::with_read_timeout).
//! - **Model validation** — `bench_eval`'s `lossy` section measures
//!   per-round makespan and retransmitted bytes at 0/5/20 % loss and
//!   compares transfer times on an emulated 62.24 Mbps / 8.83 ms link
//!   against [`WifiModel::transfer_time_s`](clan_netsim::WifiModel::transfer_time_s)
//!   (numbers in ROADMAP.md). That validation showed fragmented
//!   transfers pay the per-message latency once per *datagram*;
//!   [`WifiModel::transfer_time_fragmented_s`](clan_netsim::WifiModel::transfer_time_fragmented_s)
//!   models it, and the analytic timelines charge it for messages
//!   larger than the link MTU.
//!
//! # Elastic runtime
//!
//! The transports above make a dying agent *observable* (typed
//! [`ClanError::Timeout`]/[`ClanError::Transport`], never a hang); the
//! [`membership`] layer makes it *survivable* — the cluster tolerates
//! device crash, rejoin, and mid-run scale-out:
//!
//! - **Per-link health** — every [`EdgeCluster`] link is alive /
//!   suspected / dead ([`membership::LinkHealth`]): one churn-class
//!   failure suspects a link (its chunk is reassigned, and it sits out
//!   the rest of that round), a second consecutive failure kills it, a
//!   success revives it. Protocol violations are *not* churn — a peer
//!   answering garbage propagates immediately as a bug.
//! - **Deterministic reassignment** — a scatter chunk lost to a failed
//!   agent is redistributed over the surviving links and retried (up to
//!   [`membership::RecoveryPolicy::max_retries`] attempts, never below
//!   [`membership::RecoveryPolicy::min_agents`] usable agents — beyond
//!   that the round fails typed, [`ClanError::Degraded`] or the root
//!   link error). Results carry genome ids and replay in id order, so a
//!   churned run is **bit-identical** to a serial one on all four
//!   topologies (`tests/churn_equivalence.rs`, 1/2/4 agents, with
//!   arbitrary-schedule conservation proptests).
//! - **Mid-run join** — new agents attach between generations over any
//!   transport ([`EdgeCluster::admit_transport`](runtime::EdgeCluster::admit_transport),
//!   [`admit_local`](runtime::EdgeCluster::admit_local)): they are
//!   `Configure`d with the stored session spec and enter the weight and
//!   calibration tables like founding members.
//! - **Seeded churn injection** —
//!   [`ChurnSchedule`](transport::ChurnSchedule) (`clan-cli coordinate
//!   --churn k1@2,r1@4 [--spare-at HOST:PORT] [--max-retries N]
//!   [--min-agents N]`) kills agent 1 before scatter round 2 by
//!   swapping its transport for a
//!   [`DeadTransport`](transport::DeadTransport) and revives a
//!   replacement before round 4 (respawned in-process, or connected
//!   from a standby address). The crash is simulated; the recovery path
//!   exercised is the production one. CI's `net-smoke` kills a real
//!   agent process mid-run and joins a spare, diffing the output
//!   against a local run.
//! - **Measured recovery cost** — link failures, reassigned chunks,
//!   kills/joins, and the retry makespan land in
//!   [`membership::RecoveryStats`] on [`RunReport`] and the CLI
//!   summary; `bench_eval`'s `churn` section quantifies the overhead of
//!   a kill + rejoin against a clean run (numbers in ROADMAP.md).
//!
//! # Async steady-state mode
//!
//! Every orchestrator above is generation-synchronous: a gather barrier
//! ends each round, so the slowest agent prices the whole population
//! (`agents × makespan − busy` seconds of idle per round, reported as
//! wasted idle). [`AsyncOrchestrator`] is the paper's barrier-free
//! alternative — agents stream `(genome, fitness)` results continuously
//! over the same transports, and each arrival immediately triggers one
//! steady-state reproduction event
//! ([`clan_neat::steady_state`]): two tournaments pick parents among
//! the evaluated members and the child insert-replaces the worst, no
//! generations, no species.
//!
//! The mode's reproducibility contract is *virtual-time determinism,
//! not bit-identity to the serial run* — removing the barrier makes the
//! trajectory depend on arrival order by design:
//!
//! - **Per-genome determinism everywhere.** Episode seeds derive from
//!   genome content, so any agent at any time scores a given genome
//!   identically.
//! - **Virtual time** ([`AsyncOrchestrator::run_virtual`], `clan-cli
//!   run --async`): service times come from a seeded
//!   [`LatencySchedule`] and a single-threaded event loop orders
//!   completions by `(virtual time, agent, dispatch)`. Two runs with
//!   the same `(seed, schedule)` produce byte-identical event logs —
//!   CI's `async-smoke` diffs them — and the workspace's
//!   `tests/async_steady_state.rs` proptests the contract over
//!   arbitrary schedules.
//! - **Streamed runs** ([`AsyncOrchestrator::run_streamed`], `clan-cli
//!   coordinate --async`) drive
//!   [`EdgeCluster::evaluate_stream`](runtime::EdgeCluster::evaluate_stream)
//!   with dispatch-on-completion over live channel/TCP/UDP links;
//!   arrival order is wall-clock, so these runs are characterized
//!   statistically (`tests/convergence.rs` gates a seeded async run on
//!   the sync baseline's solved threshold). An agent dying mid-flight
//!   re-dispatches its genome to a survivor
//!   ([`AsyncStats::redispatches`]).
//! - **Measured, not assumed.** [`AsyncStats`] on [`RunReport`] carries
//!   makespan, evals/sec, wasted idle, insertion counts, and the event
//!   log hash; `bench_eval`'s `async` section compares sync-barrier vs
//!   async makespan at 4× skew and re-runs it under injected mid-stream
//!   death (numbers in ROADMAP.md).
//!
//! # Telemetry
//!
//! [`telemetry`] unifies the fragmented observability surfaces
//! ([`CommLedger`](clan_netsim::CommLedger), [`GatherStats`],
//! [`RecoveryStats`], [`AsyncStats`], the
//! async-only event log) behind one structured event stream with a
//! **two-clock design**:
//!
//! - **Logical events** carry logical time only (their own sequence
//!   counter, generation indices, virtual microseconds where a mode has
//!   them) and are emitted from the id-ordered replay loops that
//!   already pin fitness equivalence. The determinism contract: for a
//!   given seed the serialized logical stream
//!   ([`RunTrace::logical_text`](telemetry::RunTrace::logical_text)) is
//!   **byte-identical** across serial, loopback-TCP, 20 %-lossy-UDP,
//!   and churned runs on all four topologies
//!   (`tests/trace_equivalence.rs`), and an async virtual run's stream
//!   is byte-identical per `(seed, schedule)` — so traces from
//!   different transports can be `diff`ed directly to localize a
//!   divergence.
//! - **Timing events** (per-link gather spans, retransmissions, churn
//!   transitions, streamed completions) live in a separate wall-clock
//!   annotation channel that never enters the logical stream; every
//!   wall timestamp is captured in [`telemetry::clock`], the single
//!   `Instant::now` site the `clan-lint` D2 rule audits.
//!
//! A [`Tracer`] handle (no-op unless enabled —
//! `bench_eval`'s `telemetry` section tracks its overhead) is installed
//! by the driver via `ClanDriverBuilder::tracing` (`clan-cli run/
//! coordinate --trace FILE [--trace-chrome FILE]`); the recorded
//! [`RunTrace`] exports as JSONL
//! ([`telemetry::to_jsonl`], a strict superset of the async
//! `--event-log` format) and Chrome trace-event JSON
//! ([`telemetry::to_chrome_json`], per-agent tracks viewable in
//! Perfetto), while the accompanying
//! [`MetricsRegistry`] and unified
//! per-agent table land in `RunReport.telemetry`
//! ([`telemetry::TelemetryReport`]).
//!
//! # Trace analysis & live introspection
//!
//! The trace above is raw material; three consumers turn it into
//! answers:
//!
//! - **`clan-trace`** (`crates/trace-tools`, dependency-free like
//!   `clan-lint`) analyzes recorded traces *offline*:
//!   `analyze --trace FILE` reconstructs the per-round critical path
//!   from the Timing spans — per-agent busy time, per-round critical
//!   agent, straggler ranking with slowdown factors, retransmission
//!   and recovery attribution, and a wasted-idle total that
//!   reproduces the run's own accounting ([`GatherStats`] for
//!   scatter/gather rounds, [`AsyncStats`] exactly in virtual time;
//!   `tests/trace_intelligence.rs` cross-checks both).
//!   `diff LEFT RIGHT` compares two *logical* streams and reports the
//!   first divergent event framed in run terms (`gen 7, eval of
//!   genome 1234`) — by the equivalence contract above, two same-seed
//!   runs diff clean across transports, so the first divergence *is*
//!   the bug's location. `summarize` renders the per-agent
//!   utilization table alone. Exit codes: 0 clean/identical,
//!   1 divergence found, 2 usage/I-O.
//! - **Live status endpoint** ([`status`], enabled with
//!   [`ClanDriverBuilder::status_addr`] / `clan-cli --status-addr
//!   ADDR`): a `std::net` HTTP thread serving `/metrics` (Prometheus
//!   text exposition from the [`MetricsRegistry`]), `/health`
//!   (per-agent alive/suspected/dead from [`membership`]), and
//!   `/progress` (generation, eval count, best fitness). It reads
//!   atomic [`StatusSnapshot`]s published between rounds — never the
//!   hot path — so the equivalence suites stay bit-identical with the
//!   endpoint enabled (pinned by `tests/trace_intelligence.rs`;
//!   measured wall-clock overhead ≈ 2 %, within run-to-run noise).
//! - **Flight recorder** ([`Tracer::with_ring`] /
//!   [`ClanDriverBuilder::trace_ring`] / `clan-cli --trace-ring N
//!   [--postmortem FILE]`): tracing into a bounded ring that keeps
//!   the last N events (the retained logical lines are a byte-exact
//!   suffix of the unbounded stream). When a run dies — typed error,
//!   transport failure, or panic (a hook dumps on unwind) — the ring
//!   is written as a postmortem JSONL that `clan-trace analyze`
//!   attributes; CI's `flight-recorder` job kills a cluster below
//!   `--min-agents` and asserts the postmortem names the kills.
//!
//! # Static contract enforcement
//!
//! The two contracts above — bit-identity determinism and hang-free
//! liveness — are pinned by tests, but tests only catch a regression
//! *after* someone writes one. `clan-lint` (`crates/lint`, run as
//! `cargo run -p clan-lint --release`) rejects the hazardous *idioms*
//! at review time with a dependency-free, comment/string/raw-string
//! aware token scanner:
//!
//! - **D1** — no `HashMap`/`HashSet` in determinism-bearing code
//!   (`clan-neat` plus the orchestrator/driver/async paths here):
//!   iteration order must never depend on the hasher. Lookup-only maps
//!   are waived, iteration-bearing ones migrate to `BTreeMap`.
//! - **D2** — no ambient nondeterminism (`Instant::now`, `SystemTime`,
//!   `thread_rng`, `from_entropy`) outside designated timing code; all
//!   randomness flows from `(master_seed, …)` derivations.
//! - **D3** — no float `.sum()`/`.fold` reassociation in the kernel
//!   files (`network.rs`, `batch.rs`); the per-edge accumulation order
//!   *is* the contract, so every kernel loop is written explicitly and
//!   the one canonical fold carries a waiver naming itself as such.
//! - **L1** — no `unwrap`/`expect`/`panic!`/wire-buffer indexing in
//!   [`transport`], [`runtime`], and [`membership`]: a malformed frame
//!   or lost peer must surface as [`error::FrameError`] /
//!   [`ClanError`], never a panic (see the typed-error guarantees
//!   above).
//! - **L2** — every blocking `recv` in transport code must sit in a
//!   function with a timeout/deadline path, so no silent peer can hang
//!   a coordinator forever.
//!
//! Violations print `rule:file:line` and are waivable in place with
//! `// clan-lint: allow(RULE, reason="…")` — the reason is mandatory
//! (a reasonless waiver is its own finding, **W0**, and can never be
//! baselined). Accepted debt lives in the committed
//! `lint-baseline.txt` as `(rule, file, count)` entries; CI's
//! `lint-contract` job fails on any NEW violation *and* on any STALE
//! entry, so the count ratchets monotonically toward zero. Rule
//! catalogue, waiver grammar, and the ratchet workflow are documented
//! in ROADMAP.md.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod asynchronous;
pub mod continuous;
pub mod dcs;
pub mod dda;
pub mod dds;
pub mod driver;
pub mod error;
pub mod evaluator;
pub mod membership;
pub mod orchestra;
pub mod parallel;
pub mod report;
pub mod runtime;
pub mod serial;
pub mod status;
pub mod telemetry;
pub mod topology;
pub mod transport;

pub use asynchronous::{AsyncEvent, AsyncOrchestrator, AsyncStats, LatencySchedule};
pub use continuous::{ContinuousLearner, LearningEvent, MonitorConfig, TaskOutcome};
pub use dcs::DcsOrchestrator;
pub use dda::DdaOrchestrator;
pub use dds::DdsOrchestrator;
pub use driver::{AsyncClanDriver, AsyncRunOutcome, ClanDriver, ClanDriverBuilder, DriverConfig};
pub use error::{ClanError, FrameError};
pub use evaluator::{EngineOptions, Evaluator, InferenceMode};
pub use membership::{AgentHealth, LinkHealth, RecoveryPolicy, RecoveryStats};
pub use orchestra::{GenerationReport, Orchestrator};
pub use parallel::ParallelEvaluator;
pub use report::RunReport;
pub use runtime::{EdgeCluster, GatherStats, StreamCompletion, StreamStats};
pub use serial::SerialOrchestrator;
pub use status::{StatusHandle, StatusServer, StatusSnapshot};
pub use telemetry::{
    Determinism, EventKind, MetricsRegistry, RunTrace, TelemetryReport, TraceEvent, Tracer,
};
pub use topology::{ClanTopology, Placement, SpeciationMode};
pub use transport::{ClusterSpec, Transport};
