//! # clan-core — Collaborative Learning using Asynchronous Neuroevolution
//!
//! The paper's contribution: orchestrating NEAT across a cluster of edge
//! devices under three distribution strategies, named `CLAN_<IRS>` for how
//! **I**nference, **R**eproduction, and **S**peciation are placed:
//!
//! | Config | Inference | Reproduction | Speciation |
//! |--------|-----------|--------------|------------|
//! | Serial | central | central | synchronous |
//! | `CLAN_DCS` | **distributed** | central | synchronous |
//! | `CLAN_DDS` | **distributed** | **distributed** | synchronous |
//! | `CLAN_DDA` | **distributed** | **distributed** | **asynchronous** (per-clan) |
//!
//! Every orchestrator runs the *real* NEAT algorithm (from `clan-neat`) on
//! real environments (from `clan-envs`) while simultaneously accounting:
//!
//! - gene-level compute costs per block (paper Fig 3),
//! - per-message-kind communication (Fig 4),
//! - a simulated cluster timeline from the platform and WiFi models
//!   (Figs 5–11).
//!
//! Serial, DCS, and DDS are *bit-identical* in their evolutionary
//! trajectory for a given seed (order-independent RNG); DDA is a genuinely
//! different algorithm — that's the paper's accuracy-vs-scalability
//! trade-off (Fig 7b).
//!
//! Beyond the analytic cluster model, [`runtime`] provides a real
//! multi-threaded edge cluster (one thread per agent, message passing via
//! channels) demonstrating that the protocols execute, and [`continuous`]
//! implements the paper's Figure-1 closed loop: deploy an expert, watch
//! its fitness, re-learn when the environment shifts.
//!
//! Inference — the dominant compute block — can additionally be fanned
//! out across host threads via [`parallel::ParallelEvaluator`]
//! (enabled with [`ClanDriverBuilder::eval_threads`] or
//! `clan-cli --eval-threads N`); the order-independent RNG discipline
//! makes the parallel evaluation bit-identical to the serial path, so
//! the simulated study results are unchanged while wall-clock time drops
//! near-linearly with cores.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod continuous;
pub mod dcs;
pub mod dda;
pub mod dds;
pub mod driver;
pub mod error;
pub mod evaluator;
pub mod orchestra;
pub mod parallel;
pub mod report;
pub mod runtime;
pub mod serial;
pub mod topology;

pub use continuous::{ContinuousLearner, LearningEvent, MonitorConfig, TaskOutcome};
pub use dcs::DcsOrchestrator;
pub use dda::DdaOrchestrator;
pub use dds::DdsOrchestrator;
pub use driver::{ClanDriver, ClanDriverBuilder, DriverConfig};
pub use error::ClanError;
pub use evaluator::{Evaluator, InferenceMode};
pub use orchestra::{GenerationReport, Orchestrator};
pub use parallel::ParallelEvaluator;
pub use report::RunReport;
pub use serial::SerialOrchestrator;
pub use topology::{ClanTopology, Placement, SpeciationMode};
