//! High-level driver: configure a workload + topology + cluster, run it,
//! get a [`RunReport`].
//!
//! This is the crate's main entry point:
//!
//! ```
//! use clan_core::{ClanDriver, ClanTopology};
//! use clan_envs::Workload;
//!
//! let report = ClanDriver::builder(Workload::CartPole)
//!     .topology(ClanTopology::dcs())
//!     .agents(4)
//!     .population_size(24)
//!     .seed(7)
//!     .build()?
//!     .run(3)?;
//! assert_eq!(report.generations.len(), 3);
//! assert!(report.ledger.total_messages() > 0);
//! # Ok::<(), clan_core::ClanError>(())
//! ```

use crate::asynchronous::{AsyncOrchestrator, LatencySchedule};
use crate::dcs::DcsOrchestrator;
use crate::dda::DdaOrchestrator;
use crate::dds::DdsOrchestrator;
use crate::error::ClanError;
use crate::evaluator::{EngineOptions, Evaluator, InferenceMode};
use crate::orchestra::{GenerationReport, Orchestrator};
use crate::report::RunReport;
use crate::serial::SerialOrchestrator;
use crate::status::{StatusHandle, StatusServer, StatusSnapshot};
use crate::telemetry::{EventKind, RunTrace, TelemetryReport, Tracer};
use crate::topology::{ClanTopology, SpeciationMode};
use clan_distsim::Cluster;
use clan_envs::Workload;
use clan_hw::{Platform, PlatformKind};
use clan_neat::{NeatConfig, Population};
use clan_netsim::{CommLedger, WifiModel};
use serde::{Deserialize, Serialize};

/// Resolved driver configuration.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct DriverConfig {
    /// Workload to evolve on.
    pub workload: Workload,
    /// CLAN configuration.
    pub topology: ClanTopology,
    /// Number of agents in the simulated cluster.
    pub n_agents: usize,
    /// Total population size.
    pub population_size: usize,
    /// Master seed (drives everything).
    pub seed: u64,
    /// Multi-step or single-step inference.
    pub mode: InferenceMode,
    /// Episodes averaged per genome evaluation.
    pub episodes_per_eval: u32,
    /// Host threads evaluating genomes in parallel (1 = serial).
    /// Bit-identical results at any value; only wall-clock time changes.
    pub eval_threads: usize,
    /// Platform of every cluster node.
    pub platform: PlatformKind,
    /// Wireless medium model.
    pub net: WifiModel,
    /// DDA-only: pool-and-redistribute period (global speciation).
    pub resync_every: Option<u64>,
    /// Per-agent capability weights for remote backends (None = even).
    pub agent_weights: Option<Vec<f64>>,
    /// Whether remote partition weights recalibrate from measured
    /// round-trip times.
    pub calibrate: bool,
    /// Datagram-transport tuning (and optional seeded fault injection)
    /// when the backend speaks UDP; `None` on TCP/local backends.
    pub udp: Option<crate::transport::UdpConfig>,
    /// Churn-recovery policy applied to remote backends (retry budget +
    /// live-agent floor).
    pub recovery: crate::membership::RecoveryPolicy,
    /// Deterministic kill/revive plan applied to a remote backend;
    /// `None` runs churn-free.
    pub churn: Option<crate::transport::ChurnSchedule>,
    /// Standby agent addresses a remote backend may connect when a
    /// revival needs a replacement.
    pub spare_agents: Vec<String>,
    /// Evaluation-engine tuning: SoA batch width and the
    /// content-addressed fitness cache. Results are bit-identical under
    /// any setting; only wall-clock time changes.
    #[serde(default)]
    pub engine: EngineOptions,
    /// Whether the run records a structured telemetry trace (the
    /// logical stream stays byte-identical per seed whether or not this
    /// is on; only wall-clock time changes).
    #[serde(default)]
    pub tracing: bool,
    /// Flight-recorder mode: keep only the last N trace events in a
    /// bounded ring (implies tracing). `None` records unbounded.
    #[serde(default)]
    pub trace_ring: Option<usize>,
    /// Address the live introspection endpoint binds
    /// (`/metrics`/`/health`/`/progress`); `None` serves nothing.
    #[serde(default)]
    pub status_addr: Option<String>,
}

/// The live introspection endpoint attached to a running driver: the
/// snapshot slot the run publishes into plus the serving thread.
struct StatusState {
    handle: StatusHandle,
    server: StatusServer,
}

/// A configured, ready-to-run CLAN deployment.
pub struct ClanDriver {
    config: DriverConfig,
    orchestrator: Box<dyn Orchestrator>,
    tracer: Tracer,
    status: Option<StatusState>,
}

impl std::fmt::Debug for ClanDriver {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ClanDriver")
            .field("config", &self.config)
            .finish_non_exhaustive()
    }
}

impl ClanDriver {
    /// Starts building a driver for `workload`.
    pub fn builder(workload: Workload) -> ClanDriverBuilder {
        ClanDriverBuilder::new(workload)
    }

    /// The resolved configuration.
    pub fn config(&self) -> &DriverConfig {
        &self.config
    }

    /// A clone of the run's tracer handle (clones share one sink).
    /// Lets a caller keep reading after the driver is consumed — in
    /// particular, dump the flight-recorder ring to a postmortem file
    /// when a run returns an error. The disabled no-op handle when
    /// tracing is off.
    pub fn tracer_handle(&self) -> Tracer {
        self.tracer.clone()
    }

    /// The live introspection endpoint's bound address (resolving port
    /// 0 to the actual port), when one was configured.
    pub fn status_local_addr(&self) -> Option<std::net::SocketAddr> {
        self.status.as_ref().map(|s| s.server.local_addr())
    }

    /// Publishes a fresh snapshot to the introspection endpoint; no-op
    /// when none is attached. Called between generations only — it
    /// copies already-gathered state and never touches the exchange hot
    /// path, so polling cannot perturb the run.
    fn publish_status(&self, phase: &str, generations: u64, solved: bool) {
        let Some(status) = &self.status else { return };
        status.handle.publish(StatusSnapshot {
            phase: phase.into(),
            generation: Some(generations),
            evals: None,
            best_fitness: self.orchestrator.best_ever().and_then(|g| g.fitness()),
            solved,
            agents: self.orchestrator.membership().unwrap_or_default(),
            metrics: self.tracer.metrics_snapshot().unwrap_or_default(),
        });
    }

    /// Runs `generations` generations and reports.
    ///
    /// # Errors
    ///
    /// Propagates orchestrator failures ([`ClanError`]).
    pub fn run(self, generations: u64) -> Result<RunReport, ClanError> {
        Ok(self.run_with_trace(generations)?.0)
    }

    /// Like [`run`](Self::run), but also returns the recorded
    /// [`RunTrace`] when the builder enabled
    /// [`tracing`](ClanDriverBuilder::tracing) (`None` otherwise).
    ///
    /// # Errors
    ///
    /// Propagates orchestrator failures ([`ClanError`]).
    pub fn run_with_trace(
        mut self,
        generations: u64,
    ) -> Result<(RunReport, Option<RunTrace>), ClanError> {
        let mut reports: Vec<GenerationReport> = Vec::with_capacity(generations as usize);
        for _ in 0..generations {
            match self.orchestrator.step_generation() {
                Ok(r) => {
                    reports.push(r);
                    self.publish_status("running", reports.len() as u64, false);
                }
                Err(e) => {
                    self.publish_status("failed", reports.len() as u64, false);
                    return Err(e);
                }
            }
        }
        Ok(self.into_report(reports))
    }

    /// Runs until the workload's convergence score is reached or
    /// `max_generations` elapse.
    ///
    /// # Errors
    ///
    /// Propagates orchestrator failures ([`ClanError`]).
    pub fn run_until_solved(self, max_generations: u64) -> Result<RunReport, ClanError> {
        Ok(self.run_until_solved_with_trace(max_generations)?.0)
    }

    /// Like [`run_until_solved`](Self::run_until_solved), but also
    /// returns the recorded [`RunTrace`] when the builder enabled
    /// [`tracing`](ClanDriverBuilder::tracing) (`None` otherwise).
    ///
    /// # Errors
    ///
    /// Propagates orchestrator failures ([`ClanError`]).
    pub fn run_until_solved_with_trace(
        mut self,
        max_generations: u64,
    ) -> Result<(RunReport, Option<RunTrace>), ClanError> {
        let threshold = self.config.workload.solved_at();
        let mut reports = Vec::new();
        for _ in 0..max_generations {
            let r = match self.orchestrator.step_generation() {
                Ok(r) => r,
                Err(e) => {
                    self.publish_status("failed", reports.len() as u64, false);
                    return Err(e);
                }
            };
            let solved = r.best_fitness >= threshold;
            reports.push(r);
            self.publish_status("running", reports.len() as u64, solved);
            if solved {
                break;
            }
        }
        Ok(self.into_report(reports))
    }

    fn into_report(self, generations: Vec<GenerationReport>) -> (RunReport, Option<RunTrace>) {
        let solved = generations
            .last()
            .is_some_and(|r| r.best_fitness >= self.config.workload.solved_at());
        self.publish_status("finished", generations.len() as u64, solved);
        self.tracer.logical(EventKind::RunEnd, |ev| {
            ev.generation = Some(generations.len() as u64);
        });
        let trace = self.tracer.finish();
        let recovery = self.orchestrator.recovery_stats();
        let telemetry = TelemetryReport::from_sources(
            trace.as_ref(),
            self.orchestrator.transport_ledger(),
            recovery.as_ref(),
            None,
        );
        let report = RunReport::from_parts(
            self.config.workload,
            self.config.topology.name(),
            self.config.n_agents,
            generations,
            self.orchestrator.ledger().clone(),
        )
        .with_transport(self.orchestrator.transport_ledger().cloned())
        .with_gather(self.orchestrator.gather_stats())
        .with_recovery(recovery)
        .with_energy(clan_hw::EnergyModel::for_kind(self.config.platform))
        .with_telemetry(telemetry);
        (report, trace)
    }
}

/// Builder for [`ClanDriver`]; see [`ClanDriver::builder`].
#[derive(Debug, Clone)]
pub struct ClanDriverBuilder {
    workload: Workload,
    topology: ClanTopology,
    n_agents: usize,
    population_size: usize,
    seed: u64,
    mode: InferenceMode,
    episodes_per_eval: u32,
    eval_threads: usize,
    platform: PlatformKind,
    net: WifiModel,
    resync_every: Option<u64>,
    neat_config: Option<NeatConfig>,
    remote: RemoteBackend,
    agent_weights: Option<Vec<f64>>,
    calibrate: bool,
    udp: Option<crate::transport::UdpConfig>,
    recovery: crate::membership::RecoveryPolicy,
    churn: Option<crate::transport::ChurnSchedule>,
    spare_agents: Vec<String>,
    engine: EngineOptions,
    tracing: bool,
    trace_ring: Option<usize>,
    status_addr: Option<String>,
    total_evals: Option<u64>,
    tournament_size: usize,
    latency_ms: Option<Vec<f64>>,
    latency_jitter_pct: u32,
}

/// Where genome evaluation physically runs.
#[derive(Debug, Clone, Default)]
enum RemoteBackend {
    /// On the calling thread (or a local thread pool).
    #[default]
    Local,
    /// Over loopback TCP agents spawned in this process.
    Loopback(usize),
    /// Over already-running `clan-cli agent` processes.
    Agents(Vec<String>),
    /// Over loopback UDP agents spawned in this process (loss-tolerant
    /// datagram transport).
    LoopbackUdp(usize),
    /// Over already-running `clan-cli agent --udp` processes.
    AgentsUdp(Vec<String>),
}

impl RemoteBackend {
    fn is_udp(&self) -> bool {
        matches!(
            self,
            RemoteBackend::LoopbackUdp(_) | RemoteBackend::AgentsUdp(_)
        )
    }
}

impl ClanDriverBuilder {
    /// Defaults: serial topology, 1 agent, the paper's population of 150,
    /// multi-step inference on Raspberry Pis over the measured WiFi.
    pub fn new(workload: Workload) -> ClanDriverBuilder {
        ClanDriverBuilder {
            workload,
            topology: ClanTopology::serial(),
            n_agents: 1,
            population_size: 150,
            seed: 0,
            mode: InferenceMode::MultiStep,
            episodes_per_eval: 1,
            eval_threads: 1,
            platform: PlatformKind::RaspberryPi,
            net: WifiModel::default(),
            resync_every: None,
            neat_config: None,
            remote: RemoteBackend::Local,
            agent_weights: None,
            calibrate: false,
            udp: None,
            recovery: crate::membership::RecoveryPolicy::default(),
            churn: None,
            spare_agents: Vec::new(),
            engine: EngineOptions::default(),
            tracing: false,
            trace_ring: None,
            status_addr: None,
            total_evals: None,
            tournament_size: 3,
            latency_ms: None,
            latency_jitter_pct: 10,
        }
    }

    /// Sets the CLAN configuration.
    pub fn topology(mut self, topology: ClanTopology) -> Self {
        self.topology = topology;
        self
    }

    /// Sets the number of agents.
    pub fn agents(mut self, n: usize) -> Self {
        self.n_agents = n;
        self
    }

    /// Sets the total population size.
    pub fn population_size(mut self, n: usize) -> Self {
        self.population_size = n;
        self
    }

    /// Sets the master seed.
    pub fn seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Switches to single-step inference (Figures 8–10).
    pub fn single_step(mut self) -> Self {
        self.mode = InferenceMode::SingleStep;
        self
    }

    /// Averages each genome's fitness over `n` episodes (default 1).
    pub fn episodes_per_eval(mut self, n: u32) -> Self {
        self.episodes_per_eval = n;
        self
    }

    /// Evaluates genomes across `n` host threads (default 1 = serial).
    ///
    /// Evolutionary results are bit-identical at any thread count — the
    /// order-independent RNG scheme ties every episode seed to the
    /// genome, not to execution order — so this only changes wall-clock
    /// time. `0` is treated as 1.
    pub fn eval_threads(mut self, n: usize) -> Self {
        self.eval_threads = n.max(1);
        self
    }

    /// Sets the node platform (default Raspberry Pi).
    pub fn platform(mut self, platform: PlatformKind) -> Self {
        self.platform = platform;
        self
    }

    /// Sets the network model (default: the paper's measured WiFi).
    pub fn net(mut self, net: WifiModel) -> Self {
        self.net = net;
        self
    }

    /// DDA-only: enables periodic global speciation every `g` generations.
    pub fn resync_every(mut self, g: u64) -> Self {
        self.resync_every = Some(g);
        self
    }

    /// Overrides the full NEAT configuration (I/O dims must match the
    /// workload; population size is taken from this config).
    pub fn neat_config(mut self, cfg: NeatConfig) -> Self {
        self.population_size = cfg.population_size;
        self.neat_config = Some(cfg);
        self
    }

    /// Runs inference over `n` loopback TCP agents spawned in this
    /// process — the full networked stack on `127.0.0.1` ephemeral
    /// ports. Results stay bit-identical to a local run.
    pub fn loopback_agents(mut self, n: usize) -> Self {
        self.remote = RemoteBackend::Loopback(n);
        self
    }

    /// Runs inference over already-listening `clan-cli agent` processes
    /// at `addrs` (`host:port`). The session configuration (workload,
    /// NEAT config, episodes) is pushed to each agent over the wire.
    pub fn remote_agents(mut self, addrs: Vec<String>) -> Self {
        self.remote = RemoteBackend::Agents(addrs);
        self
    }

    /// Runs inference over `n` loopback **UDP** agents spawned in this
    /// process — the loss-tolerant datagram stack end to end. Combine
    /// with [`udp_config`](ClanDriverBuilder::udp_config) to inject
    /// seeded faults; results stay bit-identical to a local run under
    /// any loss the ARQ layer can recover.
    pub fn loopback_udp_agents(mut self, n: usize) -> Self {
        self.remote = RemoteBackend::LoopbackUdp(n);
        self
    }

    /// Runs inference over already-listening `clan-cli agent --udp`
    /// processes at `addrs` (`host:port`) over the loss-tolerant
    /// datagram transport.
    pub fn remote_udp_agents(mut self, addrs: Vec<String>) -> Self {
        self.remote = RemoteBackend::AgentsUdp(addrs);
        self
    }

    /// Overrides the datagram-transport tuning (MTU, retransmit pacing,
    /// liveness window, seeded fault injection) of a UDP backend.
    /// Rejected at [`build`](ClanDriverBuilder::build) on non-UDP
    /// backends.
    pub fn udp_config(mut self, udp: crate::transport::UdpConfig) -> Self {
        self.udp = Some(udp);
        self
    }

    /// Sets per-agent capability weights for a remote backend (one per
    /// loopback/remote agent, in connection order): a weight-4 agent
    /// receives 4x the genomes of a weight-1 agent each scatter.
    /// Results are bit-identical under any weights — only chunk sizes
    /// and therefore wall-clock balance change.
    pub fn agent_weights(mut self, weights: Vec<f64>) -> Self {
        self.agent_weights = Some(weights);
        self
    }

    /// Enables round-trip-time calibration on a remote backend: the
    /// partition weights follow an EWMA of each agent's measured
    /// throughput over prior generations, adapting to devices whose
    /// static weights were wrong (or unset).
    pub fn calibrate(mut self, enabled: bool) -> Self {
        self.calibrate = enabled;
        self
    }

    /// Sets the retry budget of a remote backend's churn recovery: how
    /// many times a scatter round may reassign failed chunks across
    /// survivors before giving up (`clan-cli coordinate --max-retries`).
    pub fn max_retries(mut self, n: usize) -> Self {
        self.recovery.max_retries = n;
        self
    }

    /// Sets the live-agent floor of a remote backend: a round that
    /// would have to continue on fewer usable agents fails with a typed
    /// [`ClanError::Degraded`] instead (`--min-agents`).
    pub fn min_agents(mut self, n: usize) -> Self {
        self.recovery.min_agents = n;
        self
    }

    /// Installs a deterministic kill/revive plan on a remote backend
    /// (`--churn k1@2,r1@4`): agent churn is injected at scatter-round
    /// boundaries and the recovery machinery keeps the run bit-identical
    /// to a churn-free one.
    pub fn churn(mut self, schedule: crate::transport::ChurnSchedule) -> Self {
        self.churn = Some(schedule);
        self
    }

    /// Registers standby agent addresses (`--spare-at HOST:PORT,...`) a
    /// remote backend connects when a churn revival needs a replacement
    /// device.
    pub fn spare_agents(mut self, addrs: Vec<String>) -> Self {
        self.spare_agents = addrs;
        self
    }

    /// Sets the SoA batch width for lockstep evaluation of same-shape
    /// networks (default 32; `<= 1` falls back to scalar activation
    /// everywhere). Results are bit-identical at any width.
    pub fn batch_lanes(mut self, lanes: usize) -> Self {
        self.engine.batch_lanes = lanes;
        self
    }

    /// Enables or disables the content-addressed fitness cache (default
    /// on): evaluations are memoized by `(master_seed, genome content
    /// hash)`, so elites and unmutated survivors skip re-evaluation.
    /// Hits return the bit-identical cached fitness.
    pub fn fitness_cache(mut self, enabled: bool) -> Self {
        self.engine.cache = enabled;
        self
    }

    /// Enables structured run tracing (default off): the driver records
    /// a deterministic logical event stream plus wall-clock annotations
    /// and attaches a telemetry section to the report. Retrieve the
    /// trace with [`ClanDriver::run_with_trace`] (or
    /// [`AsyncRunOutcome::trace`]). Evolutionary results are
    /// bit-identical with tracing on or off.
    pub fn tracing(mut self, enabled: bool) -> Self {
        self.tracing = enabled;
        self
    }

    /// Flight-recorder mode (implies tracing): keep only the last
    /// `capacity` trace events in a bounded in-memory ring instead of
    /// the full unbounded trace. `seq`/`lseq` keep counting across
    /// drops, so the retained tail reads exactly like the end of an
    /// unbounded trace; metrics still cover the whole run. Pair with
    /// [`ClanDriver::tracer_handle`] to dump the tail when a run fails.
    pub fn trace_ring(mut self, capacity: usize) -> Self {
        self.trace_ring = Some(capacity);
        self
    }

    /// Serves the live introspection endpoint on `addr` (e.g.
    /// `127.0.0.1:9090`; port 0 picks a free port): `/metrics`
    /// (Prometheus text exposition), `/health` (per-agent membership),
    /// `/progress` (generation / eval count, best fitness). The run
    /// publishes snapshots at generation boundaries only, so polling
    /// never perturbs the run — the deterministic stream stays
    /// bit-identical with the endpoint enabled.
    pub fn status_addr(mut self, addr: impl Into<String>) -> Self {
        self.status_addr = Some(addr.into());
        self
    }

    /// Async steady-state only: fixes the total evaluation budget (the
    /// run dispatches exactly this many evaluations, bootstrap wave
    /// included). Defaults to 10x the population size.
    pub fn total_evals(mut self, n: u64) -> Self {
        self.total_evals = Some(n);
        self
    }

    /// Async steady-state only: tournament size for parent selection
    /// (default 3). Larger tournaments raise selection pressure.
    pub fn tournament_size(mut self, k: usize) -> Self {
        self.tournament_size = k;
        self
    }

    /// Async steady-state only: per-agent virtual service times in
    /// milliseconds (one entry per simulated agent; default a uniform
    /// 5 ms). Together with the master seed this fixes the latency
    /// schedule — and therefore the whole run — exactly. Rejected at
    /// [`build_async`](Self::build_async) on remote backends, which
    /// stream over the real transport instead.
    pub fn latency_ms(mut self, ms: Vec<f64>) -> Self {
        self.latency_ms = Some(ms);
        self
    }

    /// Async steady-state only: multiplicative jitter on the virtual
    /// service times, in percent (default 10, max 90).
    pub fn latency_jitter_pct(mut self, pct: u32) -> Self {
        self.latency_jitter_pct = pct;
        self
    }

    /// Shared by [`build`](Self::build) and
    /// [`build_async`](Self::build_async): resolves the NEAT
    /// configuration and constructs the evaluator, attaching and
    /// configuring any remote backend (loopback or connected agents,
    /// TCP or UDP).
    fn prepare(&self) -> Result<(NeatConfig, Evaluator), ClanError> {
        let cfg = match &self.neat_config {
            Some(cfg) => {
                if cfg.num_inputs != self.workload.obs_dim()
                    || cfg.num_outputs != self.workload.n_actions()
                {
                    return Err(ClanError::InvalidSetup {
                        reason: format!(
                            "NEAT dims {}x{} do not match workload {} ({}x{})",
                            cfg.num_inputs,
                            cfg.num_outputs,
                            self.workload,
                            self.workload.obs_dim(),
                            self.workload.n_actions()
                        ),
                    });
                }
                cfg.validate().map_err(ClanError::from)?;
                cfg.clone()
            }
            None => NeatConfig::builder(self.workload.obs_dim(), self.workload.n_actions())
                .population_size(self.population_size)
                .build()?,
        };
        if self.episodes_per_eval == 0 {
            return Err(ClanError::InvalidSetup {
                reason: "episodes_per_eval must be at least 1".into(),
            });
        }
        // A remote cluster takes precedence over a local thread pool, so
        // only spawn pool workers when evaluation actually stays local.
        let mut evaluator = match &self.remote {
            RemoteBackend::Local => Evaluator::with_options(
                self.workload,
                self.mode,
                self.episodes_per_eval,
                self.eval_threads,
                self.engine,
            ),
            // Remote backends evaluate on the agents; the coordinator-side
            // evaluator keeps the cache (it filters hits before scattering)
            // but never activates networks itself.
            _ => Evaluator::with_options(
                self.workload,
                self.mode,
                self.episodes_per_eval,
                1,
                self.engine,
            ),
        };
        if self.udp.is_some() && !self.remote.is_udp() {
            return Err(ClanError::InvalidSetup {
                reason: "udp_config applies to UDP backends only \
                         (loopback_udp_agents or remote_udp_agents)"
                    .into(),
            });
        }
        let spec = crate::transport::ClusterSpec::new(self.workload, self.mode, cfg.clone())
            .with_episodes(self.episodes_per_eval)
            .with_engine(self.engine);
        let udp_cfg = || self.udp.clone().unwrap_or_default();
        let edge =
            match &self.remote {
                RemoteBackend::Local => {
                    if self.agent_weights.is_some() || self.calibrate {
                        return Err(ClanError::InvalidSetup {
                            reason: "agent weights/calibration apply to remote backends only \
                                 (loopback_agents or remote_agents)"
                                .into(),
                        });
                    }
                    if self.churn.is_some() || !self.spare_agents.is_empty() {
                        return Err(ClanError::InvalidSetup {
                            reason: "churn schedules and spare agents apply to remote \
                                 backends only (loopback_agents or remote_agents)"
                                .into(),
                        });
                    }
                    None
                }
                RemoteBackend::Loopback(n) | RemoteBackend::LoopbackUdp(n) => {
                    if *n == 0 {
                        return Err(ClanError::InvalidSetup {
                            reason: "loopback cluster needs at least one agent".into(),
                        });
                    }
                    Some(if self.remote.is_udp() {
                        crate::runtime::EdgeCluster::spawn_local_udp_cfg(*n, spec, udp_cfg())?
                    } else {
                        crate::runtime::EdgeCluster::spawn_local_spec(*n, spec)?
                    })
                }
                RemoteBackend::Agents(addrs) => {
                    Some(crate::runtime::EdgeCluster::connect(addrs, spec)?)
                }
                RemoteBackend::AgentsUdp(addrs) => Some(
                    crate::runtime::EdgeCluster::connect_udp_cfg(addrs, spec, udp_cfg())?,
                ),
            };
        if let Some(mut edge) = edge {
            if let Some(w) = &self.agent_weights {
                edge.set_weights(w)?;
            }
            edge.set_calibration(self.calibrate);
            edge.set_recovery_policy(self.recovery);
            if !self.spare_agents.is_empty() {
                edge.set_spares(self.spare_agents.clone())?;
            }
            if let Some(churn) = self.churn.clone() {
                edge.set_churn(churn)?;
            }
            evaluator = evaluator.with_remote(edge);
        }
        Ok((cfg, evaluator))
    }

    /// Validates and constructs the driver.
    ///
    /// # Errors
    ///
    /// [`ClanError::InvalidSetup`] on inconsistent topology/agents, and
    /// [`ClanError::Neat`] on invalid NEAT configuration.
    pub fn build(self) -> Result<ClanDriver, ClanError> {
        if self.n_agents == 0 {
            return Err(ClanError::InvalidSetup {
                reason: "at least one agent is required".into(),
            });
        }
        if let SpeciationMode::Asynchronous { clans } = self.topology.speciation {
            if clans != self.n_agents {
                return Err(ClanError::InvalidSetup {
                    reason: format!(
                        "DDA runs one clan per agent: {clans} clans vs {} agents",
                        self.n_agents
                    ),
                });
            }
        }
        let (cfg, evaluator) = self.prepare()?;
        let platform = Platform::new(self.platform);
        let cluster = Cluster::homogeneous(platform, self.n_agents, self.net);

        let mut orchestrator: Box<dyn Orchestrator> = match (
            self.topology == ClanTopology::serial(),
            self.topology.speciation,
        ) {
            (true, _) => Box::new(SerialOrchestrator::new(
                Population::new(cfg.clone(), self.seed),
                evaluator,
                cluster,
            )),
            (false, SpeciationMode::Synchronous) => {
                if self.topology == ClanTopology::dcs() {
                    Box::new(DcsOrchestrator::new(
                        Population::new(cfg.clone(), self.seed),
                        evaluator,
                        cluster,
                    ))
                } else if self.topology == ClanTopology::dds() {
                    Box::new(DdsOrchestrator::new(
                        Population::new(cfg.clone(), self.seed),
                        evaluator,
                        cluster,
                    ))
                } else {
                    return Err(ClanError::InvalidSetup {
                        reason: format!("unsupported topology {}", self.topology),
                    });
                }
            }
            (false, SpeciationMode::Asynchronous { .. }) => {
                let mut dda = DdaOrchestrator::new(cfg.clone(), evaluator, cluster, self.seed)?;
                if let Some(r) = self.resync_every {
                    dda = dda.with_resync_every(r);
                }
                Box::new(dda)
            }
        };

        let tracer = self.make_tracer(cfg.population_size, self.topology.name());
        if tracer.is_enabled() {
            orchestrator.install_tracer(tracer.clone());
        }
        let status = match &self.status_addr {
            Some(addr) => {
                let handle = StatusHandle::new();
                handle.publish(StatusSnapshot {
                    phase: "starting".into(),
                    agents: orchestrator.membership().unwrap_or_default(),
                    ..StatusSnapshot::default()
                });
                let server = StatusServer::bind(addr, handle.clone())?;
                Some(StatusState { handle, server })
            }
            None => None,
        };

        Ok(ClanDriver {
            config: DriverConfig {
                workload: self.workload,
                topology: self.topology,
                n_agents: self.n_agents,
                population_size: cfg.population_size,
                seed: self.seed,
                mode: self.mode,
                episodes_per_eval: self.episodes_per_eval,
                eval_threads: self.eval_threads,
                platform: self.platform,
                net: self.net,
                resync_every: self.resync_every,
                agent_weights: self.agent_weights,
                calibrate: self.calibrate,
                udp: self.udp,
                recovery: self.recovery,
                churn: self.churn,
                spare_agents: self.spare_agents,
                engine: self.engine,
                tracing: self.tracing,
                trace_ring: self.trace_ring,
                status_addr: self.status_addr,
            },
            orchestrator,
            tracer,
            status,
        })
    }

    /// A live tracer preloaded with the run preamble when tracing is
    /// enabled — unbounded normally, a bounded ring in flight-recorder
    /// mode; the no-op handle otherwise.
    fn make_tracer(&self, population: usize, topology_name: String) -> Tracer {
        let tracer = match self.trace_ring {
            Some(capacity) => Tracer::with_ring(capacity),
            None if self.tracing => Tracer::new(),
            None => return Tracer::disabled(),
        };
        tracer.logical(EventKind::RunStart, |ev| {
            ev.seed = Some(self.seed);
            ev.label = Some(self.workload.to_string());
            ev.population = Some(population as u64);
        });
        // Cluster shape is a Timing annotation: the logical stream must
        // not vary with agent counts or transport flavor.
        tracer.timing(EventKind::ClusterInfo, |ev| {
            ev.items = Some(self.n_agents as u64);
            ev.label = Some(topology_name);
        });
        tracer
    }

    /// Validates and constructs an **async steady-state** driver
    /// ([`AsyncClanDriver`]): barrier-free tournament reproduction with
    /// insert-replace-worst, run to a fixed evaluation budget. On the
    /// local backend the run is simulated under deterministic virtual
    /// time (see [`LatencySchedule`]); on remote backends it streams
    /// one-genome frames over the real transport with
    /// dispatch-on-completion.
    ///
    /// # Errors
    ///
    /// [`ClanError::InvalidSetup`] as [`build`](Self::build), plus: a
    /// latency schedule on a remote backend, a latency list whose length
    /// disagrees with the agent count, an agent count not strictly below
    /// the population size, or an eval budget below the population size.
    pub fn build_async(self) -> Result<AsyncClanDriver, ClanError> {
        if self.n_agents == 0 {
            return Err(ClanError::InvalidSetup {
                reason: "at least one agent is required".into(),
            });
        }
        let (cfg, evaluator) = self.prepare()?;
        let is_remote = !matches!(self.remote, RemoteBackend::Local);
        if is_remote && self.latency_ms.is_some() {
            return Err(ClanError::InvalidSetup {
                reason: "virtual latency schedules apply to the local backend only; \
                         remote backends stream over the real transport"
                    .into(),
            });
        }
        let agents = if is_remote {
            evaluator.remote_agents()
        } else {
            self.n_agents
        };
        if agents >= cfg.population_size {
            return Err(ClanError::InvalidSetup {
                reason: format!(
                    "async mode needs a population larger than its {agents} agent(s), got {}",
                    cfg.population_size
                ),
            });
        }
        let schedule = if is_remote {
            None
        } else {
            let base_us: Vec<u64> = match &self.latency_ms {
                Some(ms) => {
                    if ms.len() != self.n_agents {
                        return Err(ClanError::InvalidSetup {
                            reason: format!(
                                "{} latency entries for {} agents",
                                ms.len(),
                                self.n_agents
                            ),
                        });
                    }
                    if !ms.iter().all(|m| *m > 0.0) {
                        return Err(ClanError::InvalidSetup {
                            reason: "latency entries must be positive milliseconds".into(),
                        });
                    }
                    ms.iter()
                        .map(|m| (m * 1000.0).round().max(1.0) as u64)
                        .collect()
                }
                None => vec![5_000; self.n_agents],
            };
            Some(LatencySchedule::new(
                self.seed,
                base_us,
                self.latency_jitter_pct,
            )?)
        };
        let total = self.total_evals.unwrap_or(10 * cfg.population_size as u64);
        let name = if schedule.is_some() {
            "ASYNC_VIRTUAL"
        } else {
            "ASYNC_STREAM"
        };
        let tracer = self.make_tracer(cfg.population_size, name.to_string());
        let pop = Population::new(cfg, self.seed);
        let mut orchestrator = AsyncOrchestrator::new(pop, evaluator, total, self.tournament_size)?;
        if tracer.is_enabled() {
            orchestrator.install_tracer(tracer.clone());
        }
        let status = match &self.status_addr {
            Some(addr) => {
                let handle = StatusHandle::new();
                handle.publish(StatusSnapshot {
                    phase: "starting".into(),
                    agents: orchestrator
                        .evaluator()
                        .remote_membership()
                        .unwrap_or_default(),
                    ..StatusSnapshot::default()
                });
                let server = StatusServer::bind(addr, handle.clone())?;
                Some(StatusState { handle, server })
            }
            None => None,
        };
        Ok(AsyncClanDriver {
            workload: self.workload,
            n_agents: agents,
            platform: self.platform,
            orchestrator,
            schedule,
            tracer,
            status,
        })
    }
}

/// A configured async steady-state deployment; see
/// [`ClanDriverBuilder::build_async`].
pub struct AsyncClanDriver {
    workload: Workload,
    n_agents: usize,
    platform: PlatformKind,
    orchestrator: AsyncOrchestrator,
    schedule: Option<LatencySchedule>,
    tracer: Tracer,
    status: Option<StatusState>,
}

impl std::fmt::Debug for AsyncClanDriver {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("AsyncClanDriver")
            .field("workload", &self.workload)
            .field("n_agents", &self.n_agents)
            .field("schedule", &self.schedule)
            .finish_non_exhaustive()
    }
}

/// What an async run yields: the usual [`RunReport`] (with
/// [`asynchronous`](RunReport::asynchronous) stats attached) plus the
/// diffable event log that carries the virtual-time determinism
/// contract.
#[derive(Debug, Clone)]
pub struct AsyncRunOutcome {
    /// The run report; `generations` is empty (the mode has none).
    pub report: RunReport,
    /// One stable line per completion (`clan-cli run --event-log FILE`
    /// writes exactly this text).
    pub event_log: String,
    /// The structured trace, when the builder enabled
    /// [`tracing`](ClanDriverBuilder::tracing). For virtual-time runs
    /// its `Completion` events reconstruct `event_log` exactly
    /// ([`TraceEvent::async_log_line`](crate::TraceEvent::async_log_line)),
    /// making the trace a strict superset of the event log.
    pub trace: Option<RunTrace>,
}

impl AsyncClanDriver {
    /// The virtual-time schedule (`None` when streaming over a real
    /// cluster).
    pub fn schedule(&self) -> Option<&LatencySchedule> {
        self.schedule.as_ref()
    }

    /// A clone of the run's tracer handle (clones share one sink); see
    /// [`ClanDriver::tracer_handle`].
    pub fn tracer_handle(&self) -> Tracer {
        self.tracer.clone()
    }

    /// The live introspection endpoint's bound address (resolving port
    /// 0 to the actual port), when one was configured.
    pub fn status_local_addr(&self) -> Option<std::net::SocketAddr> {
        self.status.as_ref().map(|s| s.server.local_addr())
    }

    /// Publishes a snapshot at a run transition (async modes have no
    /// generation boundaries; the endpoint reports eval totals at the
    /// start and end of the steady-state loop).
    fn publish_status(&self, phase: &str, evals: Option<u64>, best_fitness: Option<f64>) {
        let Some(status) = &self.status else { return };
        status.handle.publish(StatusSnapshot {
            phase: phase.into(),
            generation: None,
            evals,
            best_fitness,
            solved: false,
            agents: self
                .orchestrator
                .evaluator()
                .remote_membership()
                .unwrap_or_default(),
            metrics: self.tracer.metrics_snapshot().unwrap_or_default(),
        });
    }

    /// Runs the steady-state loop to its evaluation budget.
    ///
    /// # Errors
    ///
    /// Propagates [`ClanError`] from the async orchestrator: transport
    /// failures, protocol violations, or a cluster drained below the
    /// recovery floor.
    pub fn run(mut self) -> Result<AsyncRunOutcome, ClanError> {
        self.publish_status("running", Some(0), None);
        let outcome = match &self.schedule {
            Some(s) => self.orchestrator.run_virtual(s),
            None => self.orchestrator.run_streamed(),
        };
        if let Err(e) = outcome {
            self.publish_status("failed", None, None);
            return Err(e);
        }
        let stats = self
            .orchestrator
            .stats()
            .cloned()
            .expect("run just completed");
        let event_log = self.orchestrator.event_log_text();
        let name = if stats.virtual_time {
            "ASYNC_VIRTUAL"
        } else {
            "ASYNC_STREAM"
        };
        self.tracer.logical(EventKind::RunEnd, |ev| {
            ev.items = Some(stats.total_evals);
        });
        self.publish_status(
            "finished",
            Some(stats.total_evals),
            Some(stats.best_fitness),
        );
        let trace = self.tracer.finish();
        let recovery = self.orchestrator.evaluator().remote_recovery_stats();
        let telemetry = TelemetryReport::from_sources(
            trace.as_ref(),
            self.orchestrator.evaluator().remote_ledger(),
            recovery.as_ref(),
            self.orchestrator.stream_stats(),
        );
        let report = RunReport::from_parts(
            self.workload,
            name.to_string(),
            self.n_agents,
            Vec::new(),
            CommLedger::default(),
        )
        .with_transport(self.orchestrator.evaluator().remote_ledger().cloned())
        .with_recovery(recovery)
        .with_energy(clan_hw::EnergyModel::for_kind(self.platform))
        .with_async(stats)
        .with_telemetry(telemetry);
        Ok(AsyncRunOutcome {
            report,
            event_log,
            trace,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_defaults_are_paper_defaults() {
        let d = ClanDriver::builder(Workload::CartPole)
            .population_size(16)
            .build()
            .unwrap();
        assert_eq!(d.config().n_agents, 1);
        assert_eq!(d.config().topology, ClanTopology::serial());
        assert_eq!(d.config().platform, PlatformKind::RaspberryPi);
    }

    #[test]
    fn dda_clans_must_match_agents() {
        let err = ClanDriver::builder(Workload::CartPole)
            .topology(ClanTopology::dda(4))
            .agents(3)
            .population_size(16)
            .build();
        assert!(matches!(err, Err(ClanError::InvalidSetup { .. })));
    }

    #[test]
    fn zero_agents_rejected() {
        let err = ClanDriver::builder(Workload::CartPole).agents(0).build();
        assert!(matches!(err, Err(ClanError::InvalidSetup { .. })));
    }

    #[test]
    fn mismatched_neat_dims_rejected() {
        let cfg = NeatConfig::builder(2, 2)
            .population_size(10)
            .build()
            .unwrap();
        let err = ClanDriver::builder(Workload::CartPole)
            .neat_config(cfg)
            .build();
        assert!(matches!(err, Err(ClanError::InvalidSetup { .. })));
    }

    #[test]
    fn run_produces_report() {
        let report = ClanDriver::builder(Workload::CartPole)
            .topology(ClanTopology::dcs())
            .agents(3)
            .population_size(12)
            .seed(1)
            .build()
            .unwrap()
            .run(2)
            .unwrap();
        assert_eq!(report.generations.len(), 2);
        assert_eq!(report.topology_name, "CLAN_DCS");
        assert!(report.total_timeline.total_s() > 0.0);
    }

    #[test]
    fn run_until_solved_stops_early() {
        // Single-step CartPole fitness is 1.0 < 195, so this must hit the cap;
        // multi-step with a healthy population usually solves quickly.
        let report = ClanDriver::builder(Workload::CartPole)
            .population_size(64)
            .seed(3)
            .build()
            .unwrap()
            .run_until_solved(30)
            .unwrap();
        if let Some(g) = report.solved_at_generation {
            assert_eq!(report.generations.last().unwrap().generation, g);
        } else {
            assert_eq!(report.generations.len(), 30);
        }
    }

    #[test]
    fn engine_toggles_change_wall_clock_only() {
        let run = |builder: ClanDriverBuilder| {
            builder
                .topology(ClanTopology::dcs())
                .agents(3)
                .population_size(12)
                .seed(8)
                .build()
                .unwrap()
                .run(3)
                .unwrap()
        };
        let default = run(ClanDriver::builder(Workload::CartPole));
        let tuned = run(ClanDriver::builder(Workload::CartPole)
            .batch_lanes(1)
            .fitness_cache(false));
        assert_eq!(default.best_fitness, tuned.best_fitness);
        assert_eq!(
            default.generations.last().unwrap().costs,
            tuned.generations.last().unwrap().costs
        );
        assert!(default.cache_lookups > 0, "default driver caches");
        assert_eq!(
            tuned.cache_lookups, 0,
            "disabled cache never fields a lookup"
        );
        let d = ClanDriver::builder(Workload::CartPole)
            .population_size(8)
            .build()
            .unwrap();
        assert_eq!(d.config().engine, EngineOptions::default());
    }

    #[test]
    fn loopback_driver_matches_local_driver() {
        let run = |builder: ClanDriverBuilder| {
            builder
                .topology(ClanTopology::dcs())
                .agents(3)
                .population_size(12)
                .seed(8)
                .build()
                .unwrap()
                .run(2)
                .unwrap()
        };
        let local = run(ClanDriver::builder(Workload::CartPole));
        let networked = run(ClanDriver::builder(Workload::CartPole).loopback_agents(2));
        assert_eq!(local.best_fitness, networked.best_fitness);
        assert_eq!(
            local.generations.last().unwrap().costs,
            networked.generations.last().unwrap().costs
        );
        assert!(local.transport.is_none());
        let wire = networked
            .transport
            .as_ref()
            .expect("loopback run measures traffic");
        assert!(wire.total_wire_bytes() > 0);
        assert!(networked.summary().contains("wire (measured)"));
    }

    #[test]
    fn weighted_loopback_driver_matches_local_driver() {
        let run = |builder: ClanDriverBuilder| {
            builder
                .topology(ClanTopology::dds())
                .agents(3)
                .population_size(12)
                .seed(15)
                .build()
                .unwrap()
                .run(2)
                .unwrap()
        };
        let local = run(ClanDriver::builder(Workload::CartPole));
        let weighted = run(ClanDriver::builder(Workload::CartPole)
            .loopback_agents(3)
            .agent_weights(vec![1.0, 4.0, 2.0])
            .calibrate(true));
        assert_eq!(local.best_fitness, weighted.best_fitness);
        assert_eq!(
            local.generations.last().unwrap().costs,
            weighted.generations.last().unwrap().costs
        );
        let gather = weighted.gather.expect("remote run measures gathers");
        assert!(gather.gathers > 0);
        assert!(weighted.summary().contains("gather (measured)"));
        assert!(local.gather.is_none());
    }

    #[test]
    fn udp_loopback_driver_matches_local_driver_under_loss() {
        use crate::transport::{FaultConfig, UdpConfig};
        let run = |builder: ClanDriverBuilder| {
            builder
                .topology(ClanTopology::dcs())
                .agents(2)
                .population_size(10)
                .seed(21)
                .build()
                .unwrap()
                .run(2)
                .unwrap()
        };
        let local = run(ClanDriver::builder(Workload::CartPole));
        let lossy = run(ClanDriver::builder(Workload::CartPole)
            .loopback_udp_agents(2)
            .udp_config(
                UdpConfig::default()
                    .with_mtu(256)
                    .with_retransmit_interval_s(0.01)
                    .with_idle_timeout_s(10.0)
                    .with_faults(FaultConfig::loss(0.15).with_seed(5)),
            ));
        assert_eq!(local.best_fitness, lossy.best_fitness);
        assert_eq!(
            local.generations.last().unwrap().costs,
            lossy.generations.last().unwrap().costs
        );
        let wire = lossy.transport.as_ref().expect("UDP run measures traffic");
        assert!(wire.total_wire_bytes() > 0);
        assert!(
            wire.total_retrans_bytes() > 0,
            "15% loss must force retransmissions"
        );
        assert!(lossy.summary().contains("loss recovery"));
    }

    #[test]
    fn churned_loopback_driver_matches_local_driver() {
        use crate::transport::ChurnSchedule;
        let run = |builder: ClanDriverBuilder| {
            builder
                .topology(ClanTopology::dcs())
                .agents(3)
                .population_size(12)
                .seed(31)
                .build()
                .unwrap()
                .run(4)
                .unwrap()
        };
        let local = run(ClanDriver::builder(Workload::CartPole));
        let churned = run(ClanDriver::builder(Workload::CartPole)
            .loopback_agents(3)
            .churn(ChurnSchedule::new().kill(1, 1).revive(1, 3)));
        assert_eq!(local.best_fitness, churned.best_fitness);
        assert_eq!(
            local.generations.last().unwrap().costs,
            churned.generations.last().unwrap().costs
        );
        let recovery = churned
            .recovery
            .clone()
            .expect("remote run records recovery");
        assert_eq!(recovery.kills, 1);
        assert!(recovery.joins >= 1);
        assert!(recovery.reassigned_chunks >= 1);
        assert!(churned.summary().contains("recovery:"));
        assert!(local.recovery.is_none());
    }

    #[test]
    fn churn_on_local_backend_rejected() {
        let err = ClanDriver::builder(Workload::CartPole)
            .population_size(8)
            .churn(crate::transport::ChurnSchedule::new().kill(0, 1))
            .build();
        assert!(matches!(err, Err(ClanError::InvalidSetup { .. })));
        let err = ClanDriver::builder(Workload::CartPole)
            .population_size(8)
            .spare_agents(vec!["127.0.0.1:1".into()])
            .build();
        assert!(matches!(err, Err(ClanError::InvalidSetup { .. })));
    }

    #[test]
    fn churn_schedule_beyond_cluster_rejected_at_build() {
        let err = ClanDriver::builder(Workload::CartPole)
            .population_size(8)
            .loopback_agents(2)
            .churn(crate::transport::ChurnSchedule::new().kill(7, 1))
            .build();
        assert!(matches!(err, Err(ClanError::InvalidSetup { .. })));
    }

    #[test]
    fn udp_config_on_tcp_backend_rejected() {
        let err = ClanDriver::builder(Workload::CartPole)
            .population_size(8)
            .loopback_agents(2)
            .udp_config(crate::transport::UdpConfig::default())
            .build();
        assert!(matches!(err, Err(ClanError::InvalidSetup { .. })));
    }

    #[test]
    fn agent_weights_on_local_backend_rejected() {
        let err = ClanDriver::builder(Workload::CartPole)
            .population_size(8)
            .agent_weights(vec![1.0])
            .build();
        assert!(matches!(err, Err(ClanError::InvalidSetup { .. })));
    }

    #[test]
    fn mismatched_agent_weights_rejected() {
        let err = ClanDriver::builder(Workload::CartPole)
            .population_size(8)
            .loopback_agents(2)
            .agent_weights(vec![1.0, 2.0, 3.0])
            .build();
        assert!(matches!(err, Err(ClanError::InvalidSetup { .. })));
    }

    #[test]
    fn zero_loopback_agents_rejected() {
        let err = ClanDriver::builder(Workload::CartPole)
            .population_size(8)
            .loopback_agents(0)
            .build();
        assert!(matches!(err, Err(ClanError::InvalidSetup { .. })));
    }

    #[test]
    fn async_virtual_driver_is_deterministic() {
        let run = || {
            ClanDriver::builder(Workload::CartPole)
                .agents(3)
                .population_size(12)
                .seed(9)
                .total_evals(40)
                .latency_ms(vec![2.0, 8.0, 2.0])
                .build_async()
                .unwrap()
                .run()
                .unwrap()
        };
        let a = run();
        let b = run();
        assert_eq!(a.event_log, b.event_log);
        assert!(!a.event_log.is_empty());
        let stats = a.report.asynchronous.as_ref().unwrap();
        assert_eq!(stats.total_evals, 40);
        assert!(stats.virtual_time);
        assert_eq!(a.report.topology_name, "ASYNC_VIRTUAL");
        assert!(a.report.summary().contains("wasted idle"));
    }

    #[test]
    fn async_streamed_driver_runs_over_loopback() {
        let out = ClanDriver::builder(Workload::CartPole)
            .population_size(12)
            .seed(5)
            .total_evals(30)
            .loopback_agents(2)
            .build_async()
            .unwrap()
            .run()
            .unwrap();
        let stats = out.report.asynchronous.as_ref().unwrap();
        assert_eq!(stats.total_evals, 30);
        assert!(!stats.virtual_time);
        assert_eq!(out.report.topology_name, "ASYNC_STREAM");
        let wire = out
            .report
            .transport
            .as_ref()
            .expect("streamed run measures");
        assert!(wire.total_wire_bytes() > 0);
    }

    #[test]
    fn async_latency_on_remote_backend_rejected() {
        let err = ClanDriver::builder(Workload::CartPole)
            .population_size(12)
            .loopback_agents(2)
            .latency_ms(vec![1.0, 2.0])
            .build_async();
        assert!(matches!(err, Err(ClanError::InvalidSetup { .. })));
    }

    #[test]
    fn async_agents_must_be_below_population() {
        let err = ClanDriver::builder(Workload::CartPole)
            .agents(8)
            .population_size(8)
            .build_async();
        assert!(matches!(err, Err(ClanError::InvalidSetup { .. })));
    }

    #[test]
    fn all_topologies_build_and_step() {
        for topo in [
            ClanTopology::serial(),
            ClanTopology::dcs(),
            ClanTopology::dds(),
            ClanTopology::dda(2),
        ] {
            let agents = topo.clan_count().max(2);
            let report = ClanDriver::builder(Workload::MountainCar)
                .topology(topo)
                .agents(if topo == ClanTopology::serial() {
                    1
                } else {
                    agents
                })
                .population_size(12)
                .seed(4)
                .build()
                .unwrap()
                .run(1)
                .unwrap();
            assert_eq!(report.generations.len(), 1, "{topo}");
        }
    }
}
