//! Genome evaluation on workloads: the Inference block.
//!
//! Every CLAN configuration evaluates genomes the same way — compile the
//! genome, drive the environment with the argmax policy, accumulate
//! reward for up to 200 timesteps (the paper's cap). Figures 8–10 also
//! use a *single-step* mode that activates each genome once per
//! generation, modeling deployments (e.g. robotics) where repeated
//! multi-step rollouts per generation are unavailable (§IV-D).

use crate::parallel::ParallelEvaluator;
use crate::runtime::EdgeCluster;
use clan_envs::{run_episode, Environment, Workload};
use clan_neat::population::Evaluation;
use clan_neat::rng::{derive_seed, OpTag};
use clan_neat::{FeedForwardNetwork, Genome, GenomeId, NeatConfig, Scratch};
use serde::{Deserialize, Serialize};

/// How many environment steps each genome gets per generation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum InferenceMode {
    /// Full episodes capped at the workload's step limit (paper default).
    MultiStep,
    /// One activation per genome per generation (§IV-D's stress mode).
    SingleStep,
}

impl InferenceMode {
    /// The step cap this mode imposes for `workload`.
    pub fn max_steps(self, workload: Workload) -> u64 {
        match self {
            InferenceMode::MultiStep => workload.max_steps(),
            InferenceMode::SingleStep => 1,
        }
    }
}

/// Evaluates genomes on one workload, reusing a single environment
/// instance and a single set of [`Scratch`] buffers (the per-step hot
/// loop performs no heap allocation).
///
/// Constructed with [`with_threads`](Evaluator::with_threads), the
/// evaluator additionally carries a persistent
/// [`ParallelEvaluator`] pool; the orchestrators' partitioned
/// evaluation then fans inference out across those workers while staying
/// bit-identical to the serial path (see [`crate::parallel`]).
///
/// Attached to an [`EdgeCluster`] with
/// [`with_remote`](Evaluator::with_remote), the evaluator instead ships
/// genomes to real agents (threads, loopback TCP sockets, or remote
/// devices) and replays the results locally — still bit-identical,
/// because episode seeds derive from `(master_seed, generation,
/// genome_id)` no matter where inference runs.
pub struct Evaluator {
    workload: Workload,
    mode: InferenceMode,
    episodes: u32,
    env: Box<dyn Environment>,
    scratch: Scratch,
    pool: Option<ParallelEvaluator>,
    remote: Option<EdgeCluster>,
}

impl std::fmt::Debug for Evaluator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Evaluator")
            .field("workload", &self.workload)
            .field("mode", &self.mode)
            .field("eval_threads", &self.eval_threads())
            .finish_non_exhaustive()
    }
}

impl Evaluator {
    /// Creates an evaluator for `workload` in `mode`, scoring each genome
    /// on a single episode.
    pub fn new(workload: Workload, mode: InferenceMode) -> Evaluator {
        Evaluator::with_episodes(workload, mode, 1)
    }

    /// Creates an evaluator that scores each genome as the *mean* over
    /// `episodes` episodes (distinct seeds). Averaging removes
    /// single-episode luck, which matters for convergence studies like
    /// the paper's Figure 7(b).
    ///
    /// # Panics
    ///
    /// Panics if `episodes` is zero.
    pub fn with_episodes(workload: Workload, mode: InferenceMode, episodes: u32) -> Evaluator {
        assert!(episodes > 0, "an evaluation needs at least one episode");
        Evaluator {
            workload,
            mode,
            episodes,
            env: workload.make(),
            scratch: Scratch::new(),
            pool: None,
            remote: None,
        }
    }

    /// Creates an evaluator backed by `threads` persistent worker
    /// threads. Results are bit-identical to the serial evaluator at any
    /// thread count; `threads <= 1` keeps everything on the caller's
    /// thread.
    ///
    /// # Panics
    ///
    /// Panics if `episodes` is zero.
    pub fn with_threads(
        workload: Workload,
        mode: InferenceMode,
        episodes: u32,
        threads: usize,
    ) -> Evaluator {
        let mut evaluator = Evaluator::with_episodes(workload, mode, episodes);
        if threads > 1 {
            evaluator.pool = Some(ParallelEvaluator::spawn(workload, mode, episodes, threads));
        }
        evaluator
    }

    /// Attaches a real agent cluster: all partitioned evaluation runs
    /// over its transport instead of locally. Results stay bit-identical
    /// to the serial path — only where the episodes execute changes.
    ///
    /// A remote cluster takes precedence over a local thread pool.
    pub fn with_remote(mut self, cluster: EdgeCluster) -> Evaluator {
        self.remote = Some(cluster);
        self
    }

    /// Worker threads evaluating in parallel (1 = serial).
    pub fn eval_threads(&self) -> usize {
        self.pool.as_ref().map_or(1, ParallelEvaluator::n_threads)
    }

    /// The parallel worker pool, when one was requested.
    pub(crate) fn pool(&self) -> Option<&ParallelEvaluator> {
        self.pool.as_ref()
    }

    /// The attached agent cluster, when one was requested.
    pub(crate) fn remote_mut(&mut self) -> Option<&mut EdgeCluster> {
        self.remote.as_mut()
    }

    /// Mutable access to the attached agent cluster — the hook for
    /// elastic operations between generations (admitting a new agent,
    /// reviving a dead slot, inspecting membership).
    pub fn remote_cluster_mut(&mut self) -> Option<&mut EdgeCluster> {
        self.remote.as_mut()
    }

    /// The attached cluster's transport ledger (measured wire traffic),
    /// when a cluster is attached.
    pub fn remote_ledger(&self) -> Option<&clan_netsim::CommLedger> {
        self.remote.as_ref().map(EdgeCluster::ledger)
    }

    /// The attached cluster's measured scatter/gather timing, when a
    /// cluster is attached.
    pub fn remote_gather_stats(&self) -> Option<crate::runtime::GatherStats> {
        self.remote.as_ref().map(EdgeCluster::gather_stats)
    }

    /// The attached cluster's churn-recovery accounting, when a cluster
    /// is attached.
    pub fn remote_recovery_stats(&self) -> Option<crate::membership::RecoveryStats> {
        self.remote.as_ref().map(EdgeCluster::recovery_stats)
    }

    /// Agents in the attached cluster (0 = local evaluation).
    pub fn remote_agents(&self) -> usize {
        self.remote.as_ref().map_or(0, EdgeCluster::n_agents)
    }

    /// Episodes averaged per evaluation.
    pub fn episodes(&self) -> u32 {
        self.episodes
    }

    /// The workload being evaluated.
    pub fn workload(&self) -> Workload {
        self.workload
    }

    /// The inference mode in force.
    pub fn mode(&self) -> InferenceMode {
        self.mode
    }

    /// Deterministic episode seed for a genome: derived from the run's
    /// master seed, the generation, and the genome id — so the same
    /// genome gets the same episode wherever it is evaluated.
    pub fn episode_seed(master_seed: u64, generation: u64, genome: GenomeId) -> u64 {
        derive_seed(
            master_seed,
            &[generation, genome.0, OpTag::Environment as u64],
        )
    }

    /// Evaluates a batch of genomes exactly as the serial path would:
    /// compile, derive the episode seed from `(master_seed, generation,
    /// genome_id)`, run the episodes, and report the compiled network's
    /// per-activation gene cost. Every distributed surface — agent
    /// sessions and thread-pool workers alike — routes through this, so
    /// the determinism contract lives in one piece of code.
    pub fn evaluate_genomes(
        &mut self,
        genomes: &[Genome],
        cfg: &NeatConfig,
        master_seed: u64,
        generation: u64,
    ) -> Vec<(GenomeId, Evaluation, u64)> {
        genomes
            .iter()
            .map(|g| {
                let net = FeedForwardNetwork::compile(g, cfg);
                let seed = Evaluator::episode_seed(master_seed, generation, g.id());
                (
                    g.id(),
                    self.evaluate(&net, seed),
                    net.genes_per_activation(),
                )
            })
            .collect()
    }

    /// Runs the configured number of episodes and returns the mean
    /// fitness with the summed activation count.
    pub fn evaluate(&mut self, net: &FeedForwardNetwork, episode_seed: u64) -> Evaluation {
        let max_steps = self.mode.max_steps(self.workload);
        let mut total_reward = 0.0;
        let mut activations = 0;
        let episodes = self.episodes;
        // Split borrows: the policy closure reuses this evaluator's
        // scratch buffers while the environment steps — zero allocations
        // per timestep.
        let Evaluator { env, scratch, .. } = self;
        for ep in 0..episodes {
            let seed = if episodes == 1 {
                episode_seed
            } else {
                derive_seed(episode_seed, &[ep as u64])
            };
            let outcome = run_episode(env.as_mut(), seed, max_steps, |obs| {
                net.act_argmax_with(obs, scratch)
            });
            total_reward += outcome.total_reward;
            activations += outcome.steps;
        }
        Evaluation {
            fitness: total_reward / episodes as f64,
            activations,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clan_neat::{Genome, NeatConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn net_for(workload: Workload, seed: u64) -> (NeatConfig, FeedForwardNetwork) {
        let cfg = NeatConfig::builder(workload.obs_dim(), workload.n_actions())
            .build()
            .unwrap();
        let g = Genome::new_initial(&cfg, GenomeId(0), &mut StdRng::seed_from_u64(seed));
        let net = FeedForwardNetwork::compile(&g, &cfg);
        (cfg, net)
    }

    #[test]
    fn multi_step_runs_up_to_cap() {
        let (_, net) = net_for(Workload::CartPole, 1);
        let mut ev = Evaluator::new(Workload::CartPole, InferenceMode::MultiStep);
        let e = ev.evaluate(&net, 42);
        assert!(e.activations >= 1 && e.activations <= 200);
        assert_eq!(e.fitness, e.activations as f64);
    }

    #[test]
    fn single_step_is_one_activation() {
        let (_, net) = net_for(Workload::AirRaid, 2);
        let mut ev = Evaluator::new(Workload::AirRaid, InferenceMode::SingleStep);
        let e = ev.evaluate(&net, 42);
        assert_eq!(e.activations, 1);
    }

    #[test]
    fn same_seed_same_outcome() {
        let (_, net) = net_for(Workload::LunarLander, 3);
        let mut a = Evaluator::new(Workload::LunarLander, InferenceMode::MultiStep);
        let mut b = Evaluator::new(Workload::LunarLander, InferenceMode::MultiStep);
        assert_eq!(a.evaluate(&net, 7), b.evaluate(&net, 7));
    }

    #[test]
    fn episode_seed_varies_by_genome_and_generation() {
        let s1 = Evaluator::episode_seed(1, 0, GenomeId(0));
        let s2 = Evaluator::episode_seed(1, 0, GenomeId(1));
        let s3 = Evaluator::episode_seed(1, 1, GenomeId(0));
        assert_ne!(s1, s2);
        assert_ne!(s1, s3);
        assert_eq!(s1, Evaluator::episode_seed(1, 0, GenomeId(0)));
    }

    #[test]
    fn evaluator_reusable_across_genomes() {
        let mut ev = Evaluator::new(Workload::MountainCar, InferenceMode::MultiStep);
        for seed in 0..5 {
            let (_, net) = net_for(Workload::MountainCar, seed);
            let e = ev.evaluate(&net, seed);
            assert!(e.fitness <= 0.0, "mountain car rewards are negative");
        }
    }

    #[test]
    fn multi_episode_mean_and_summed_activations() {
        let (_, net) = net_for(Workload::CartPole, 4);
        let mut one = Evaluator::with_episodes(Workload::CartPole, InferenceMode::MultiStep, 1);
        let mut three = Evaluator::with_episodes(Workload::CartPole, InferenceMode::MultiStep, 3);
        let e1 = one.evaluate(&net, 7);
        let e3 = three.evaluate(&net, 7);
        assert!(
            e3.activations >= e1.activations,
            "episodes accumulate steps"
        );
        // Mean fitness for CartPole equals mean episode length.
        assert!((e3.fitness * 3.0 - e3.activations as f64).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "at least one episode")]
    fn zero_episodes_rejected() {
        Evaluator::with_episodes(Workload::CartPole, InferenceMode::MultiStep, 0);
    }
}
