//! Genome evaluation on workloads: the Inference block.
//!
//! Every CLAN configuration evaluates genomes the same way — compile the
//! genome, drive the environment with the argmax policy, accumulate
//! reward for up to 200 timesteps (the paper's cap). Figures 8–10 also
//! use a *single-step* mode that activates each genome once per
//! generation, modeling deployments (e.g. robotics) where repeated
//! multi-step rollouts per generation are unavailable (§IV-D).

use crate::parallel::ParallelEvaluator;
use crate::runtime::EdgeCluster;
use clan_envs::{run_episode, Environment, Workload};
use clan_neat::batch::{BatchedNetwork, ShapeKey};
use clan_neat::cache::CachedEvaluation;
use clan_neat::population::Evaluation;
use clan_neat::rng::{derive_seed, OpTag};
use clan_neat::{
    FeedForwardNetwork, FitnessCache, Genome, GenomeId, NeatConfig, Population, Scratch,
};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// How many environment steps each genome gets per generation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum InferenceMode {
    /// Full episodes capped at the workload's step limit (paper default).
    MultiStep,
    /// One activation per genome per generation (§IV-D's stress mode).
    SingleStep,
}

impl InferenceMode {
    /// The step cap this mode imposes for `workload`.
    pub fn max_steps(self, workload: Workload) -> u64 {
        match self {
            InferenceMode::MultiStep => workload.max_steps(),
            InferenceMode::SingleStep => 1,
        }
    }

    /// Stable tag folded into episode seeds so the two modes never share
    /// an episode stream for the same genome content.
    pub(crate) fn seed_tag(self) -> u64 {
        match self {
            InferenceMode::MultiStep => 0,
            InferenceMode::SingleStep => 1,
        }
    }
}

/// Tuning knobs for the evaluation engine's two fast paths: batched
/// structure-of-arrays activation and the content-addressed fitness
/// cache. Both default to on; neither changes any evaluated bit — they
/// only change how fast the identical result is produced.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct EngineOptions {
    /// Maximum lanes per batched SoA bank. `<= 1` disables batching and
    /// every genome takes the scalar [`Scratch`] tier.
    pub batch_lanes: usize,
    /// Whether to memoize evaluations by `(master_seed, content hash)`,
    /// so elites and unmutated survivors skip re-evaluation entirely.
    pub cache: bool,
}

impl Default for EngineOptions {
    fn default() -> EngineOptions {
        EngineOptions {
            batch_lanes: 32,
            cache: true,
        }
    }
}

/// Evaluates genomes on one workload, reusing a single environment
/// instance and a single set of [`Scratch`] buffers (the per-step hot
/// loop performs no heap allocation).
///
/// Constructed with [`with_threads`](Evaluator::with_threads), the
/// evaluator additionally carries a persistent
/// [`ParallelEvaluator`] pool; the orchestrators' partitioned
/// evaluation then fans inference out across those workers while staying
/// bit-identical to the serial path (see [`crate::parallel`]).
///
/// Attached to an [`EdgeCluster`] with
/// [`with_remote`](Evaluator::with_remote), the evaluator instead ships
/// genomes to real agents (threads, loopback TCP sockets, or remote
/// devices) and replays the results locally — still bit-identical,
/// because episode seeds derive from `(master_seed, genome content
/// hash)` no matter where inference runs.
pub struct Evaluator {
    workload: Workload,
    mode: InferenceMode,
    episodes: u32,
    options: EngineOptions,
    env: Box<dyn Environment>,
    scratch: Scratch,
    /// One environment per batch lane, grown on demand; each lane's
    /// episodes replay exactly what the scalar path would run.
    lane_envs: Vec<Box<dyn Environment>>,
    cache: Option<FitnessCache>,
    pool: Option<ParallelEvaluator>,
    remote: Option<EdgeCluster>,
    /// Telemetry handle (no-op unless the driver installs a live one);
    /// shared with the attached cluster so runtime timing events land
    /// in the same stream as the orchestrators' logical events.
    tracer: crate::telemetry::Tracer,
}

impl std::fmt::Debug for Evaluator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Evaluator")
            .field("workload", &self.workload)
            .field("mode", &self.mode)
            .field("eval_threads", &self.eval_threads())
            .finish_non_exhaustive()
    }
}

impl Evaluator {
    /// Creates an evaluator for `workload` in `mode`, scoring each genome
    /// on a single episode.
    pub fn new(workload: Workload, mode: InferenceMode) -> Evaluator {
        Evaluator::with_episodes(workload, mode, 1)
    }

    /// Creates an evaluator that scores each genome as the *mean* over
    /// `episodes` episodes (distinct seeds). Averaging removes
    /// single-episode luck, which matters for convergence studies like
    /// the paper's Figure 7(b).
    ///
    /// # Panics
    ///
    /// Panics if `episodes` is zero.
    pub fn with_episodes(workload: Workload, mode: InferenceMode, episodes: u32) -> Evaluator {
        Evaluator::with_options(workload, mode, episodes, 1, EngineOptions::default())
    }

    /// Creates an evaluator backed by `threads` persistent worker
    /// threads. Results are bit-identical to the serial evaluator at any
    /// thread count; `threads <= 1` keeps everything on the caller's
    /// thread.
    ///
    /// # Panics
    ///
    /// Panics if `episodes` is zero.
    pub fn with_threads(
        workload: Workload,
        mode: InferenceMode,
        episodes: u32,
        threads: usize,
    ) -> Evaluator {
        Evaluator::with_options(workload, mode, episodes, threads, EngineOptions::default())
    }

    /// The general constructor: episodes, worker threads, and explicit
    /// [`EngineOptions`]. Batching and caching change wall-clock only —
    /// results are bit-identical with either feature on, off, or mixed.
    ///
    /// # Panics
    ///
    /// Panics if `episodes` is zero.
    pub fn with_options(
        workload: Workload,
        mode: InferenceMode,
        episodes: u32,
        threads: usize,
        options: EngineOptions,
    ) -> Evaluator {
        assert!(episodes > 0, "an evaluation needs at least one episode");
        let pool = (threads > 1).then(|| {
            // Workers only ever see cache misses (the coordinator filters
            // hits first), so they run with caching off and inherit the
            // batching setting.
            ParallelEvaluator::spawn_with(
                workload,
                mode,
                episodes,
                threads,
                EngineOptions {
                    cache: false,
                    ..options
                },
            )
        });
        Evaluator {
            workload,
            mode,
            episodes,
            options,
            env: workload.make(),
            scratch: Scratch::new(),
            lane_envs: Vec::new(),
            cache: options.cache.then(FitnessCache::new),
            pool,
            remote: None,
            tracer: crate::telemetry::Tracer::default(),
        }
    }

    /// Attaches a real agent cluster: all partitioned evaluation runs
    /// over its transport instead of locally. Results stay bit-identical
    /// to the serial path — only where the episodes execute changes.
    ///
    /// A remote cluster takes precedence over a local thread pool.
    pub fn with_remote(mut self, cluster: EdgeCluster) -> Evaluator {
        self.remote = Some(cluster);
        if self.tracer.is_enabled() {
            if let Some(c) = self.remote.as_mut() {
                c.set_tracer(self.tracer.clone());
            }
        }
        self
    }

    /// Installs a telemetry handle, sharing it with the attached
    /// cluster (present or future) so runtime timing events join the
    /// same stream. The default handle is disabled and records nothing.
    pub fn set_tracer(&mut self, tracer: crate::telemetry::Tracer) {
        self.tracer = tracer.clone();
        if let Some(c) = self.remote.as_mut() {
            c.set_tracer(tracer);
        }
    }

    /// The installed telemetry handle (disabled by default).
    pub fn tracer(&self) -> &crate::telemetry::Tracer {
        &self.tracer
    }

    /// Worker threads evaluating in parallel (1 = serial).
    pub fn eval_threads(&self) -> usize {
        self.pool.as_ref().map_or(1, ParallelEvaluator::n_threads)
    }

    /// The attached agent cluster, when one was requested.
    pub(crate) fn remote_mut(&mut self) -> Option<&mut EdgeCluster> {
        self.remote.as_mut()
    }

    /// Mutable access to the attached agent cluster — the hook for
    /// elastic operations between generations (admitting a new agent,
    /// reviving a dead slot, inspecting membership).
    pub fn remote_cluster_mut(&mut self) -> Option<&mut EdgeCluster> {
        self.remote.as_mut()
    }

    /// The attached cluster's transport ledger (measured wire traffic),
    /// when a cluster is attached.
    pub fn remote_ledger(&self) -> Option<&clan_netsim::CommLedger> {
        self.remote.as_ref().map(EdgeCluster::ledger)
    }

    /// The attached cluster's measured scatter/gather timing, when a
    /// cluster is attached.
    pub fn remote_gather_stats(&self) -> Option<crate::runtime::GatherStats> {
        self.remote.as_ref().map(EdgeCluster::gather_stats)
    }

    /// The attached cluster's churn-recovery accounting, when a cluster
    /// is attached.
    pub fn remote_recovery_stats(&self) -> Option<crate::membership::RecoveryStats> {
        self.remote.as_ref().map(EdgeCluster::recovery_stats)
    }

    /// The attached cluster's per-link membership snapshot, when a
    /// cluster is attached.
    pub fn remote_membership(&self) -> Option<Vec<crate::membership::AgentHealth>> {
        self.remote.as_ref().map(EdgeCluster::membership)
    }

    /// Agents in the attached cluster (0 = local evaluation).
    pub fn remote_agents(&self) -> usize {
        self.remote.as_ref().map_or(0, EdgeCluster::n_agents)
    }

    /// Episodes averaged per evaluation.
    pub fn episodes(&self) -> u32 {
        self.episodes
    }

    /// The workload being evaluated.
    pub fn workload(&self) -> Workload {
        self.workload
    }

    /// The inference mode in force.
    pub fn mode(&self) -> InferenceMode {
        self.mode
    }

    /// Deterministic episode seed for a genome: derived from the run's
    /// master seed, the genome's *content* hash, and the episode plan
    /// (episode count + inference mode) — never from the genome's id,
    /// its generation, or where it is evaluated.
    ///
    /// Content-based seeding is what makes the fitness cache sound by
    /// construction: identical genome content always replays identical
    /// episodes, so a cached fitness is bit-identical to a fresh run —
    /// including for elites re-submitted in later generations under new
    /// ids. The episode plan is folded in so `MultiStep`/`SingleStep`
    /// runs (or different episode counts) never share a stream.
    pub fn episode_seed(
        master_seed: u64,
        content_hash: u64,
        episodes: u32,
        mode: InferenceMode,
    ) -> u64 {
        derive_seed(
            master_seed,
            &[
                content_hash,
                episodes as u64,
                mode.seed_tag(),
                OpTag::Environment as u64,
            ],
        )
    }

    /// This evaluator's episode seed for one genome under its configured
    /// episode plan.
    pub fn seed_for(&self, master_seed: u64, genome: &Genome) -> u64 {
        Evaluator::episode_seed(master_seed, genome.content_hash(), self.episodes, self.mode)
    }

    /// Evaluates a batch of genomes exactly as the serial path would:
    /// consult the fitness cache, compile the misses, derive each episode
    /// seed from `(master_seed, content_hash, episode plan)`, run the
    /// episodes (batched by topology shape where possible), and report
    /// the compiled network's per-activation gene cost. Every distributed
    /// surface — agent sessions and thread-pool workers alike — routes
    /// through this, so the determinism contract lives in one piece of
    /// code. Results come back in input order.
    ///
    /// `generation` is unused for seeding (seeds are content-based) but
    /// kept in the signature because the wire protocol and pool jobs
    /// carry it.
    pub fn evaluate_genomes(
        &mut self,
        genomes: &[Genome],
        cfg: &NeatConfig,
        master_seed: u64,
        generation: u64,
    ) -> Vec<(GenomeId, Evaluation, u64)> {
        let _ = generation;
        let refs: Vec<&Genome> = genomes.iter().collect();
        self.evaluate_genome_refs(&refs, cfg, master_seed)
    }

    fn evaluate_genome_refs(
        &mut self,
        genomes: &[&Genome],
        cfg: &NeatConfig,
        master_seed: u64,
    ) -> Vec<(GenomeId, Evaluation, u64)> {
        let mut out: Vec<Option<(GenomeId, Evaluation, u64)>> = vec![None; genomes.len()];
        let mut miss_idx: Vec<usize> = Vec::with_capacity(genomes.len());
        let mut miss_hash: Vec<u64> = Vec::with_capacity(genomes.len());
        for (i, g) in genomes.iter().enumerate() {
            let hash = g.content_hash();
            if let Some(cache) = self.cache.as_mut() {
                if let Some(hit) = cache.lookup(master_seed, hash) {
                    out[i] = Some((g.id(), hit.evaluation, hit.genes_per_activation));
                    continue;
                }
            }
            miss_idx.push(i);
            miss_hash.push(hash);
        }
        let nets: Vec<FeedForwardNetwork> = miss_idx
            .iter()
            .map(|&i| FeedForwardNetwork::compile(genomes[i], cfg))
            .collect();
        let seeds: Vec<u64> = miss_hash
            .iter()
            .map(|&h| Evaluator::episode_seed(master_seed, h, self.episodes, self.mode))
            .collect();
        let evals = self.run_misses(&nets, &seeds);
        for (k, eval) in evals.into_iter().enumerate() {
            let gpa = nets[k].genes_per_activation();
            if let Some(cache) = self.cache.as_mut() {
                cache.insert(
                    master_seed,
                    miss_hash[k],
                    CachedEvaluation {
                        evaluation: eval,
                        genes_per_activation: gpa,
                    },
                );
            }
            let i = miss_idx[k];
            out[i] = Some((genomes[i].id(), eval, gpa));
        }
        out.into_iter()
            .map(|o| o.expect("every genome evaluated"))
            .collect()
    }

    /// Evaluates every network once, batching same-shape networks into
    /// SoA banks when enabled; returns evaluations in `nets` order.
    fn run_misses(&mut self, nets: &[FeedForwardNetwork], seeds: &[u64]) -> Vec<Evaluation> {
        let mut evals = vec![
            Evaluation {
                fitness: 0.0,
                activations: 0,
            };
            nets.len()
        ];
        if self.options.batch_lanes > 1 && nets.len() > 1 {
            let mut groups: BTreeMap<ShapeKey, Vec<usize>> = BTreeMap::new();
            for (k, net) in nets.iter().enumerate() {
                groups.entry(ShapeKey::of(net)).or_default().push(k);
            }
            let mut grouped: Vec<Vec<usize>> = groups.into_values().collect();
            // Execution order is irrelevant to results (episodes are
            // independent and fully seed-determined); sort for a stable
            // wall-clock profile anyway.
            grouped.sort_by_key(|g| g[0]);
            for group in grouped {
                if group.len() == 1 {
                    // Shape singletons take the scalar Scratch tier.
                    let k = group[0];
                    evals[k] = self.evaluate(&nets[k], seeds[k]);
                } else {
                    self.evaluate_group_batched(&group, nets, seeds, &mut evals);
                }
            }
        } else {
            for (k, net) in nets.iter().enumerate() {
                evals[k] = self.evaluate(net, seeds[k]);
            }
        }
        evals
    }

    /// Lane-streaming batched runner: same-shape networks advance their
    /// episodes in lockstep; a lane that finishes an episode immediately
    /// reloads with the next pending one. Per-lane arithmetic and the
    /// per-episode environment trajectory are bit-identical to
    /// [`evaluate`](Self::evaluate) — only wall-clock changes.
    fn evaluate_group_batched(
        &mut self,
        group: &[usize],
        nets: &[FeedForwardNetwork],
        seeds: &[u64],
        evals: &mut [Evaluation],
    ) {
        let max_steps = self.mode.max_steps(self.workload);
        let episodes = self.episodes;
        // One task per (network, episode), in network order so the final
        // per-network reward sums run in episode order (same FP order as
        // the scalar loop).
        let mut tasks: Vec<(usize, u64)> = Vec::with_capacity(group.len() * episodes as usize);
        for &k in group {
            if episodes == 1 {
                tasks.push((k, seeds[k]));
            } else {
                for ep in 0..episodes as u64 {
                    tasks.push((k, derive_seed(seeds[k], &[ep])));
                }
            }
        }
        let lanes = self.options.batch_lanes.min(tasks.len()).max(1);
        while self.lane_envs.len() < lanes {
            self.lane_envs.push(self.workload.make());
        }
        let mut bank = BatchedNetwork::from_template(&nets[group[0]], lanes);
        let mut task_reward = vec![0.0f64; tasks.len()];
        let mut task_steps = vec![0u64; tasks.len()];
        let mut lane_task: Vec<Option<usize>> = vec![None; lanes];
        let mut lane_reward = vec![0.0f64; lanes];
        let mut lane_steps = vec![0u64; lanes];
        let lane_envs = &mut self.lane_envs;
        let mut next = 0usize;
        let mut live = 0usize;
        for l in 0..lanes {
            // lanes <= tasks.len(), so every lane primes successfully.
            let (k, seed) = tasks[next];
            bank.load_lane(l, &nets[k]);
            let obs = lane_envs[l].reset(seed);
            bank.set_input(l, &obs);
            lane_task[l] = Some(next);
            next += 1;
            live += 1;
        }
        while live > 0 {
            bank.activate();
            for l in 0..live {
                let Some(t) = lane_task[l] else { continue };
                let action = bank.argmax(l);
                let step = lane_envs[l].step(action);
                lane_reward[l] += step.reward;
                lane_steps[l] += 1;
                if step.done || lane_steps[l] >= max_steps {
                    task_reward[t] = lane_reward[l];
                    task_steps[t] = lane_steps[l];
                    lane_reward[l] = 0.0;
                    lane_steps[l] = 0;
                    if next < tasks.len() {
                        let (k, seed) = tasks[next];
                        bank.load_lane(l, &nets[k]);
                        let obs = lane_envs[l].reset(seed);
                        bank.set_input(l, &obs);
                        lane_task[l] = Some(next);
                        next += 1;
                    } else {
                        lane_task[l] = None;
                    }
                } else {
                    bank.set_input(l, &step.obs);
                }
            }
            // Drain-phase compaction: once tasks run out, retired lanes
            // are swapped out of the live window so the bank stops
            // spending activation work on them. A swap relocates a lane
            // bit-identically (the unit of work is the lane, and lanes
            // never read each other), so results are unchanged.
            if next >= tasks.len() {
                let mut l = 0;
                while l < live {
                    if lane_task[l].is_some() {
                        l += 1;
                        continue;
                    }
                    live -= 1;
                    if l != live {
                        bank.swap_lanes(l, live);
                        lane_task.swap(l, live);
                        lane_reward.swap(l, live);
                        lane_steps.swap(l, live);
                        lane_envs.swap(l, live);
                    }
                }
                bank.set_live_lanes(live);
            }
        }
        // Fold per-task outcomes back in task (= episode) order so the
        // reward sum matches the scalar loop's addition order exactly.
        for (t, &(k, _)) in tasks.iter().enumerate() {
            evals[k].fitness += task_reward[t];
            evals[k].activations += task_steps[t];
        }
        for &k in group {
            evals[k].fitness /= episodes as f64;
        }
    }

    /// Evaluates the whole population locally (serial or thread pool),
    /// with cache hits filtered out before any work is sharded; returns
    /// results in genome-id order.
    pub(crate) fn evaluate_population_local(
        &mut self,
        pop: &Population,
    ) -> Vec<(GenomeId, Evaluation, u64)> {
        let master_seed = pop.master_seed();
        let generation = pop.generation();
        if self.pool.is_none() {
            let refs: Vec<&Genome> = pop.genomes().values().collect();
            return self.evaluate_genome_refs(&refs, pop.config(), master_seed);
        }
        let mut out: Vec<Option<(GenomeId, Evaluation, u64)>> = vec![None; pop.genomes().len()];
        let mut misses: Vec<Genome> = Vec::new();
        let mut miss_idx: Vec<usize> = Vec::new();
        let mut miss_hash: Vec<u64> = Vec::new();
        for (i, g) in pop.genomes().values().enumerate() {
            let hash = g.content_hash();
            if let Some(cache) = self.cache.as_mut() {
                if let Some(hit) = cache.lookup(master_seed, hash) {
                    out[i] = Some((g.id(), hit.evaluation, hit.genes_per_activation));
                    continue;
                }
            }
            misses.push(g.clone());
            miss_idx.push(i);
            miss_hash.push(hash);
        }
        if !misses.is_empty() {
            let results = self
                .pool
                .as_ref()
                .expect("pool checked above")
                .evaluate_genomes(misses, pop.config(), master_seed, generation);
            for (k, (id, eval, gpa)) in results.into_iter().enumerate() {
                if let Some(cache) = self.cache.as_mut() {
                    cache.insert(
                        master_seed,
                        miss_hash[k],
                        CachedEvaluation {
                            evaluation: eval,
                            genes_per_activation: gpa,
                        },
                    );
                }
                out[miss_idx[k]] = Some((id, eval, gpa));
            }
        }
        out.into_iter()
            .map(|o| o.expect("every genome evaluated"))
            .collect()
    }

    /// The engine options in force.
    pub fn engine_options(&self) -> EngineOptions {
        self.options
    }

    /// Drains and returns this generation's fitness-cache `(hits,
    /// lookups)` window, summed over the local cache and the attached
    /// agent cluster's coordinator-side cache (if any).
    pub fn take_cache_window(&mut self) -> (u64, u64) {
        let (mut hits, mut lookups) = self
            .cache
            .as_mut()
            .map_or((0, 0), FitnessCache::take_window);
        if let Some(cluster) = self.remote.as_mut() {
            let (h, l) = cluster.take_cache_window();
            hits += h;
            lookups += l;
        }
        if let Some(cache) = &self.cache {
            self.tracer
                .set_gauge("cache.hit_rate", cache.hit_rate_total());
            self.tracer.set_gauge("cache.entries", cache.len() as f64);
        }
        (hits, lookups)
    }

    /// Runs the configured number of episodes and returns the mean
    /// fitness with the summed activation count.
    pub fn evaluate(&mut self, net: &FeedForwardNetwork, episode_seed: u64) -> Evaluation {
        let max_steps = self.mode.max_steps(self.workload);
        let mut total_reward = 0.0;
        let mut activations = 0;
        let episodes = self.episodes;
        // Split borrows: the policy closure reuses this evaluator's
        // scratch buffers while the environment steps — zero allocations
        // per timestep.
        let Evaluator { env, scratch, .. } = self;
        for ep in 0..episodes {
            let seed = if episodes == 1 {
                episode_seed
            } else {
                derive_seed(episode_seed, &[ep as u64])
            };
            let outcome = run_episode(env.as_mut(), seed, max_steps, |obs| {
                net.act_argmax_with(obs, scratch)
            });
            total_reward += outcome.total_reward;
            activations += outcome.steps;
        }
        Evaluation {
            fitness: total_reward / episodes as f64,
            activations,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clan_neat::{Genome, NeatConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn net_for(workload: Workload, seed: u64) -> (NeatConfig, FeedForwardNetwork) {
        let cfg = NeatConfig::builder(workload.obs_dim(), workload.n_actions())
            .build()
            .unwrap();
        let g = Genome::new_initial(&cfg, GenomeId(0), &mut StdRng::seed_from_u64(seed));
        let net = FeedForwardNetwork::compile(&g, &cfg);
        (cfg, net)
    }

    #[test]
    fn multi_step_runs_up_to_cap() {
        let (_, net) = net_for(Workload::CartPole, 1);
        let mut ev = Evaluator::new(Workload::CartPole, InferenceMode::MultiStep);
        let e = ev.evaluate(&net, 42);
        assert!(e.activations >= 1 && e.activations <= 200);
        assert_eq!(e.fitness, e.activations as f64);
    }

    #[test]
    fn single_step_is_one_activation() {
        let (_, net) = net_for(Workload::AirRaid, 2);
        let mut ev = Evaluator::new(Workload::AirRaid, InferenceMode::SingleStep);
        let e = ev.evaluate(&net, 42);
        assert_eq!(e.activations, 1);
    }

    #[test]
    fn same_seed_same_outcome() {
        let (_, net) = net_for(Workload::LunarLander, 3);
        let mut a = Evaluator::new(Workload::LunarLander, InferenceMode::MultiStep);
        let mut b = Evaluator::new(Workload::LunarLander, InferenceMode::MultiStep);
        assert_eq!(a.evaluate(&net, 7), b.evaluate(&net, 7));
    }

    #[test]
    fn episode_seed_varies_by_content_and_plan() {
        let base = Evaluator::episode_seed(1, 0xA, 1, InferenceMode::MultiStep);
        // Different genome content, master seed, episode count, or mode
        // each select a distinct episode stream...
        assert_ne!(
            base,
            Evaluator::episode_seed(1, 0xB, 1, InferenceMode::MultiStep)
        );
        assert_ne!(
            base,
            Evaluator::episode_seed(2, 0xA, 1, InferenceMode::MultiStep)
        );
        assert_ne!(
            base,
            Evaluator::episode_seed(1, 0xA, 3, InferenceMode::MultiStep)
        );
        assert_ne!(
            base,
            Evaluator::episode_seed(1, 0xA, 1, InferenceMode::SingleStep)
        );
        // ...and the derivation is stable: same content, same episodes,
        // regardless of generation or genome id (neither is an input).
        assert_eq!(
            base,
            Evaluator::episode_seed(1, 0xA, 1, InferenceMode::MultiStep)
        );
    }

    #[test]
    fn batched_engine_matches_scalar_engine_bit_for_bit() {
        // A mixed bag of shapes: same-shape initial genomes plus mutants
        // that fall back to the scalar tier. The batched engine must
        // produce byte-identical results to the scalar engine.
        for workload in [Workload::CartPole, Workload::MountainCar] {
            let cfg = NeatConfig::builder(workload.obs_dim(), workload.n_actions())
                .build()
                .unwrap();
            let mut genomes: Vec<Genome> = (0..10)
                .map(|s| Genome::new_initial(&cfg, GenomeId(s), &mut StdRng::seed_from_u64(s)))
                .collect();
            for (i, g) in genomes.iter_mut().enumerate().take(3) {
                g.mutate_add_node(&cfg, &mut StdRng::seed_from_u64(50 + i as u64));
            }
            for episodes in [1, 3] {
                let no_batch = EngineOptions {
                    batch_lanes: 1,
                    cache: false,
                };
                let batch = EngineOptions {
                    batch_lanes: 4,
                    cache: false,
                };
                let mut scalar = Evaluator::with_options(
                    workload,
                    InferenceMode::MultiStep,
                    episodes,
                    1,
                    no_batch,
                );
                let mut batched =
                    Evaluator::with_options(workload, InferenceMode::MultiStep, episodes, 1, batch);
                let a = scalar.evaluate_genomes(&genomes, &cfg, 99, 0);
                let b = batched.evaluate_genomes(&genomes, &cfg, 99, 0);
                assert_eq!(a, b, "{workload} x{episodes}: batched diverged from scalar");
            }
        }
    }

    #[test]
    fn cache_hits_are_bit_identical_and_counted() {
        let workload = Workload::CartPole;
        let cfg = NeatConfig::builder(workload.obs_dim(), workload.n_actions())
            .build()
            .unwrap();
        let genomes: Vec<Genome> = (0..6)
            .map(|s| Genome::new_initial(&cfg, GenomeId(s), &mut StdRng::seed_from_u64(s)))
            .collect();
        let mut ev = Evaluator::with_options(
            workload,
            InferenceMode::MultiStep,
            1,
            1,
            EngineOptions::default(),
        );
        let first = ev.evaluate_genomes(&genomes, &cfg, 7, 0);
        assert_eq!(ev.take_cache_window(), (0, 6), "first pass all misses");
        // Re-submit the same content under fresh ids (the elite case):
        // all hits, results identical modulo the new ids.
        let relabeled: Vec<Genome> = genomes
            .iter()
            .map(|g| {
                let mut c = g.clone();
                c.set_id(GenomeId(g.id().0 + 100));
                c
            })
            .collect();
        let second = ev.evaluate_genomes(&relabeled, &cfg, 7, 3);
        assert_eq!(ev.take_cache_window(), (6, 6), "second pass all hits");
        for ((_, e1, g1), (_, e2, g2)) in first.iter().zip(second.iter()) {
            assert_eq!(e1, e2, "cached evaluation must be bit-identical");
            assert_eq!(g1, g2);
        }
        // A different master seed must not hit.
        ev.evaluate_genomes(&genomes, &cfg, 8, 0);
        assert_eq!(ev.take_cache_window().0, 0, "other master seed misses");
    }

    #[test]
    fn cache_on_off_and_mixed_agree() {
        let workload = Workload::MountainCar;
        let cfg = NeatConfig::builder(workload.obs_dim(), workload.n_actions())
            .build()
            .unwrap();
        let genomes: Vec<Genome> = (0..5)
            .map(|s| Genome::new_initial(&cfg, GenomeId(s), &mut StdRng::seed_from_u64(9 + s)))
            .collect();
        let run = |options: EngineOptions| {
            let mut ev = Evaluator::with_options(workload, InferenceMode::MultiStep, 2, 1, options);
            let once = ev.evaluate_genomes(&genomes, &cfg, 5, 0);
            let twice = ev.evaluate_genomes(&genomes, &cfg, 5, 1);
            (once, twice)
        };
        let all_off = run(EngineOptions {
            batch_lanes: 1,
            cache: false,
        });
        let all_on = run(EngineOptions::default());
        let mixed = run(EngineOptions {
            batch_lanes: 8,
            cache: false,
        });
        assert_eq!(all_off, all_on);
        assert_eq!(all_off, mixed);
    }

    #[test]
    fn evaluator_reusable_across_genomes() {
        let mut ev = Evaluator::new(Workload::MountainCar, InferenceMode::MultiStep);
        for seed in 0..5 {
            let (_, net) = net_for(Workload::MountainCar, seed);
            let e = ev.evaluate(&net, seed);
            assert!(e.fitness <= 0.0, "mountain car rewards are negative");
        }
    }

    #[test]
    fn multi_episode_mean_and_summed_activations() {
        let (_, net) = net_for(Workload::CartPole, 4);
        let mut one = Evaluator::with_episodes(Workload::CartPole, InferenceMode::MultiStep, 1);
        let mut three = Evaluator::with_episodes(Workload::CartPole, InferenceMode::MultiStep, 3);
        let e1 = one.evaluate(&net, 7);
        let e3 = three.evaluate(&net, 7);
        assert!(
            e3.activations >= e1.activations,
            "episodes accumulate steps"
        );
        // Mean fitness for CartPole equals mean episode length.
        assert!((e3.fitness * 3.0 - e3.activations as f64).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "at least one episode")]
    fn zero_episodes_rejected() {
        Evaluator::with_episodes(Workload::CartPole, InferenceMode::MultiStep, 0);
    }
}
