//! A real edge cluster: agents behind a pluggable [`Transport`],
//! exchanging the binary cluster protocol.
//!
//! The analytic simulator (`clan-distsim`) models *time*; this runtime
//! demonstrates that the CLAN protocols actually *execute* — genomes are
//! shipped to workers as encoded frames, evaluated in true parallelism,
//! children are built remotely from serialized
//! [`ChildSpec`](clan_neat::reproduction::ChildSpec)s, and the
//! deterministic RNG discipline makes the distributed result
//! bit-identical to a serial run (asserted in tests and, over real TCP
//! sockets, by `tests/net_equivalence.rs`).
//!
//! Three deployments of the same protocol:
//!
//! - [`EdgeCluster::spawn`] — agent threads over in-process channels;
//! - [`EdgeCluster::spawn_local`] — agent threads serving **real TCP
//!   sockets** on `127.0.0.1` ephemeral ports (the whole networked stack
//!   in one process, which is what CI smokes);
//! - [`EdgeCluster::connect`] — remote agent processes started with
//!   `clan-cli agent --listen ADDR` on actual edge devices.
//!
//! Every message's *measured* bytes-on-the-wire are recorded in a
//! [`CommLedger`] next to the analytic model's float accounting, so the
//! modeled traffic of `clan-netsim` can be validated against what a
//! real wire format costs (see [`CommLedger::framing_overhead`]).
//!
//! # Heterogeneity-aware scheduling
//!
//! Real swarms mix Pi 3s, Pi 4s, and Jetsons; splitting work evenly
//! makes every generation wait for the slowest device. Two mechanisms
//! keep mixed clusters busy:
//!
//! - **Throughput-weighted partitioning** — every scatter
//!   ([`evaluate_collect`](EdgeCluster::evaluate_collect) and the
//!   [`build_children`](EdgeCluster::build_children) phase of
//!   [`step_dds_generation`](EdgeCluster::step_dds_generation)) routes
//!   through [`clan_distsim::partition_weighted`] over per-link
//!   capability weights ([`set_weights`](EdgeCluster::set_weights),
//!   seeded from the static platform throughput model via
//!   [`set_weights_from_platforms`](EdgeCluster::set_weights_from_platforms),
//!   or `clan-cli coordinate --agent-weights`). With
//!   [`set_calibration`](EdgeCluster::set_calibration) enabled the
//!   weights recalibrate themselves from measured per-chunk round-trip
//!   times (an EWMA of genomes/second over prior generations).
//! - **Out-of-order gather** — responses are collected by per-link
//!   reader threads as each agent finishes, then replayed in link order
//!   (which is genome-id order, since chunks are contiguous id-ordered
//!   slices). A fast agent's results are banked while a slow one still
//!   computes; the determinism contract — bit-identical to serial on
//!   serial/dcs/dds/dda — is untouched because nothing downstream ever
//!   observes arrival order.
//!
//! Measured gather timing (makespan vs. summed per-link busy time)
//! accumulates in [`GatherStats`]; per-agent wire bytes land in the
//! ledger's [`agent_entries`](CommLedger::agent_entries), making load
//! imbalance directly observable.

use crate::error::ClanError;
use crate::evaluator::InferenceMode;
use crate::transport::agent::{serve_session, AgentServer, UdpAgentServer};
use crate::transport::{
    channel_pair, recv_message, send_message, ClusterSpec, TcpTransport, Transport, UdpConfig,
    WireEvaluation, WireMessage,
};
use clan_distsim::partition_weighted;
use clan_envs::Workload;
use clan_neat::{Genome, GenomeId, NeatConfig, Population};
use clan_netsim::{CommLedger, MessageKind};
use serde::{Deserialize, Serialize};
use std::thread::JoinHandle;
use std::time::Instant;

/// Smoothing factor of the round-trip-time calibration EWMA: how fast
/// measured throughput overrides the static capability weight.
const EWMA_ALPHA: f64 = 0.4;

/// One agent as the coordinator sees it.
struct AgentLink {
    transport: Box<dyn Transport>,
    /// Join handle for in-process agents; `None` for remote ones.
    handle: Option<JoinHandle<()>>,
    /// Static capability weight (relative throughput; default 1.0).
    weight: f64,
    /// EWMA of measured evaluation throughput (genomes/second), fed by
    /// per-chunk round-trip times when calibration is enabled.
    measured: Option<f64>,
}

impl AgentLink {
    fn new(transport: Box<dyn Transport>, handle: Option<JoinHandle<()>>) -> AgentLink {
        AgentLink {
            transport,
            handle,
            weight: 1.0,
            measured: None,
        }
    }
}

/// Measured scatter/gather timing accumulated over a cluster's life.
///
/// `makespan_s` sums each gather's slowest-link wait (what a generation
/// actually costs); `busy_s` sums every link's individual wait (the
/// total work the cluster performed). Their ratio approaches the agent
/// count when partitions are balanced and collapses toward 1.0 when one
/// slow agent serializes the generation — the imbalance signal
/// throughput-weighted partitioning exists to fix.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct GatherStats {
    /// Scatter/gather rounds performed.
    pub gathers: u64,
    /// Summed per-round slowest-link wait, seconds.
    pub makespan_s: f64,
    /// Summed per-link wait across all rounds, seconds.
    pub busy_s: f64,
}

impl GatherStats {
    /// Mean wall-clock cost of one gather round.
    pub fn mean_makespan_s(&self) -> f64 {
        if self.gathers == 0 {
            0.0
        } else {
            self.makespan_s / self.gathers as f64
        }
    }

    /// Parallel-overlap ratio `busy_s / makespan_s`: ≈ agent count when
    /// balanced, → 1.0 when one agent sets the pace. `None` until a
    /// gather has been timed.
    pub fn overlap(&self) -> Option<f64> {
        (self.makespan_s > 0.0).then(|| self.busy_s / self.makespan_s)
    }
}

/// One gathered response slot: the decoded message (or error) plus the
/// link's measured wait in seconds; `None` until (or unless) a response
/// was expected and arrived.
type GatherSlot = Option<(Result<(WireMessage, u64), ClanError>, f64)>;

/// Splits `items` into consecutive slices of the given sizes.
fn chunk_by_counts<'a, T>(items: &'a [T], counts: &[usize]) -> Vec<&'a [T]> {
    debug_assert_eq!(counts.iter().sum::<usize>(), items.len());
    let mut chunks = Vec::with_capacity(counts.len());
    let mut start = 0;
    for &c in counts {
        chunks.push(&items[start..start + c]);
        start += c;
    }
    chunks
}

/// A live cluster of agents evaluating and reproducing genomes over a
/// real transport.
///
/// Use [`evaluate`](EdgeCluster::evaluate) and
/// [`build_children`](EdgeCluster::build_children) as the distributed
/// counterparts of `Population::evaluate` and
/// `Population::reproduce_centrally`, or attach the cluster to an
/// [`Evaluator`](crate::Evaluator) with
/// [`Evaluator::with_remote`](crate::Evaluator::with_remote) to fan all
/// four CLAN orchestrators' inference out across it. Call
/// [`shutdown`](EdgeCluster::shutdown) for an orderly stop; dropping the
/// cluster also stops it.
pub struct EdgeCluster {
    links: Vec<AgentLink>,
    cfg: NeatConfig,
    ledger: CommLedger,
    control_bytes: u64,
    /// When set, partition weights follow measured round-trip times.
    calibrate: bool,
    gather: GatherStats,
}

impl std::fmt::Debug for EdgeCluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EdgeCluster")
            .field("agents", &self.links.len())
            .field("wire_bytes", &self.ledger.total_wire_bytes())
            .finish_non_exhaustive()
    }
}

impl EdgeCluster {
    /// Spawns `n_agents` worker threads connected over in-process
    /// channels (frames still cross as encoded bytes).
    ///
    /// # Errors
    ///
    /// [`ClanError::InvalidSetup`] if `n_agents` is zero, and
    /// [`ClanError::Transport`] if an agent rejects configuration.
    ///
    /// # Panics
    ///
    /// Panics if the OS cannot spawn a thread.
    pub fn spawn(
        n_agents: usize,
        workload: Workload,
        mode: InferenceMode,
        cfg: NeatConfig,
    ) -> Result<EdgeCluster, ClanError> {
        Self::spawn_spec(n_agents, ClusterSpec::new(workload, mode, cfg))
    }

    /// [`spawn`](EdgeCluster::spawn) with a full [`ClusterSpec`]
    /// (episodes per evaluation etc.).
    ///
    /// # Errors
    ///
    /// [`ClanError::InvalidSetup`] if `n_agents` is zero, and
    /// [`ClanError::Transport`] if an agent rejects configuration —
    /// the same contract as [`spawn_local_spec`](EdgeCluster::spawn_local_spec),
    /// so callers handle channel and TCP deployments identically.
    ///
    /// # Panics
    ///
    /// Panics if the OS cannot spawn a thread.
    pub fn spawn_spec(n_agents: usize, spec: ClusterSpec) -> Result<EdgeCluster, ClanError> {
        if n_agents == 0 {
            return Err(ClanError::InvalidSetup {
                reason: "cluster needs at least one agent".into(),
            });
        }
        let links = (0..n_agents)
            .map(|i| {
                let (coord, mut agent_side) = channel_pair();
                let handle = std::thread::Builder::new()
                    .name(format!("clan-agent-{i}"))
                    .spawn(move || {
                        if let Err(e) = serve_session(&mut agent_side) {
                            eprintln!("clan-agent-{i}: {e}");
                        }
                    })
                    .expect("spawning agent thread");
                AgentLink::new(Box::new(coord), Some(handle))
            })
            .collect();
        Self::configured(links, spec)
    }

    /// Spawns `n_agents` agent threads each serving a **real TCP
    /// socket** bound to `127.0.0.1` on an ephemeral port, and connects
    /// to them — the entire networked stack, loopback, in one process.
    ///
    /// # Errors
    ///
    /// [`ClanError::Transport`] if binding or connecting fails, and
    /// [`ClanError::InvalidSetup`] if `n_agents` is zero.
    ///
    /// # Panics
    ///
    /// Panics if the OS cannot spawn a thread.
    pub fn spawn_local(
        n_agents: usize,
        workload: Workload,
        mode: InferenceMode,
        cfg: NeatConfig,
    ) -> Result<EdgeCluster, ClanError> {
        Self::spawn_local_spec(n_agents, ClusterSpec::new(workload, mode, cfg))
    }

    /// [`spawn_local`](EdgeCluster::spawn_local) with a full
    /// [`ClusterSpec`].
    ///
    /// # Errors
    ///
    /// [`ClanError::Transport`] if binding or connecting fails, and
    /// [`ClanError::InvalidSetup`] if `n_agents` is zero.
    ///
    /// # Panics
    ///
    /// Panics if the OS cannot spawn a thread.
    pub fn spawn_local_spec(n_agents: usize, spec: ClusterSpec) -> Result<EdgeCluster, ClanError> {
        if n_agents == 0 {
            return Err(ClanError::InvalidSetup {
                reason: "cluster needs at least one agent".into(),
            });
        }
        let mut links = Vec::with_capacity(n_agents);
        for i in 0..n_agents {
            let server = AgentServer::bind("127.0.0.1:0")?;
            // Connect before spawning the serving thread: the pending
            // connection waits in the listener's backlog, and a connect
            // failure leaves no thread parked forever in accept().
            let transport = TcpTransport::connect(server.local_addr())?;
            let handle = std::thread::Builder::new()
                .name(format!("clan-agent-{i}"))
                .spawn(move || {
                    if let Err(e) = server.serve_once() {
                        eprintln!("clan-agent-{i}: {e}");
                    }
                })
                .expect("spawning agent thread");
            links.push(AgentLink::new(Box::new(transport), Some(handle)));
        }
        Self::configured(links, spec)
    }

    /// Spawns `n_agents` agent threads each serving a **real UDP
    /// socket** on `127.0.0.1` — the loss-tolerant datagram stack
    /// ([`UdpTransport`](crate::transport::UdpTransport)), loopback, in
    /// one process.
    ///
    /// # Errors
    ///
    /// [`ClanError::Transport`] if binding or connecting fails, and
    /// [`ClanError::InvalidSetup`] if `n_agents` is zero.
    ///
    /// # Panics
    ///
    /// Panics if the OS cannot spawn a thread.
    pub fn spawn_local_udp(
        n_agents: usize,
        workload: Workload,
        mode: InferenceMode,
        cfg: NeatConfig,
    ) -> Result<EdgeCluster, ClanError> {
        Self::spawn_local_udp_spec(n_agents, ClusterSpec::new(workload, mode, cfg))
    }

    /// [`spawn_local_udp`](EdgeCluster::spawn_local_udp) with a full
    /// [`ClusterSpec`].
    ///
    /// # Errors
    ///
    /// See [`spawn_local_udp`](EdgeCluster::spawn_local_udp).
    ///
    /// # Panics
    ///
    /// Panics if the OS cannot spawn a thread.
    pub fn spawn_local_udp_spec(
        n_agents: usize,
        spec: ClusterSpec,
    ) -> Result<EdgeCluster, ClanError> {
        Self::spawn_local_udp_cfg(n_agents, spec, UdpConfig::default())
    }

    /// [`spawn_local_udp`](EdgeCluster::spawn_local_udp) with explicit
    /// datagram tuning and (optionally) seeded fault injection: the
    /// config's [`faults`](UdpConfig::faults) are applied on the
    /// coordinator side of every link with a per-link RNG
    /// ([`FaultConfig::for_link`](crate::transport::FaultConfig::for_link)),
    /// making both directions of each link lossy. The ARQ layer recovers
    /// every injected fault, so results stay bit-identical to a clean
    /// run — `tests/lossy_equivalence.rs` pins that at 20 % loss.
    ///
    /// # Errors
    ///
    /// See [`spawn_local_udp`](EdgeCluster::spawn_local_udp).
    ///
    /// # Panics
    ///
    /// Panics if the OS cannot spawn a thread.
    pub fn spawn_local_udp_cfg(
        n_agents: usize,
        spec: ClusterSpec,
        udp: UdpConfig,
    ) -> Result<EdgeCluster, ClanError> {
        if n_agents == 0 {
            return Err(ClanError::InvalidSetup {
                reason: "cluster needs at least one agent".into(),
            });
        }
        // Agents run the same tuning but never inject faults themselves:
        // the coordinator-side wrapper already perturbs both directions.
        let agent_udp = UdpConfig {
            faults: None,
            ..udp.clone()
        };
        let mut links = Vec::with_capacity(n_agents);
        for i in 0..n_agents {
            let mut server = UdpAgentServer::bind("127.0.0.1:0")?.with_config(agent_udp.clone());
            let addr = server.local_addr();
            let handle = std::thread::Builder::new()
                .name(format!("clan-agent-{i}"))
                .spawn(move || {
                    if let Err(e) = server.serve_once() {
                        eprintln!("clan-agent-{i}: {e}");
                    }
                })
                .expect("spawning agent thread");
            let transport = udp.transport_to(addr, i)?;
            links.push(AgentLink::new(transport, Some(handle)));
        }
        Self::configured(links, spec)
    }

    /// Connects to already-running **UDP** agent processes (started with
    /// `clan-cli agent --udp --listen ADDR`) and pushes the session
    /// configuration to each.
    ///
    /// # Errors
    ///
    /// [`ClanError::Transport`] if a socket cannot be created, and
    /// [`ClanError::InvalidSetup`] on an empty address list. (UDP has no
    /// connection handshake — an unreachable agent surfaces as a
    /// [`ClanError::Timeout`] on the first exchange instead.)
    pub fn connect_udp(addrs: &[String], spec: ClusterSpec) -> Result<EdgeCluster, ClanError> {
        Self::connect_udp_cfg(addrs, spec, UdpConfig::default())
    }

    /// [`connect_udp`](EdgeCluster::connect_udp) with explicit datagram
    /// tuning and optional coordinator-side fault injection.
    ///
    /// # Errors
    ///
    /// See [`connect_udp`](EdgeCluster::connect_udp).
    pub fn connect_udp_cfg(
        addrs: &[String],
        spec: ClusterSpec,
        udp: UdpConfig,
    ) -> Result<EdgeCluster, ClanError> {
        if addrs.is_empty() {
            return Err(ClanError::InvalidSetup {
                reason: "cluster needs at least one agent address".into(),
            });
        }
        let mut links = Vec::with_capacity(addrs.len());
        for (i, addr) in addrs.iter().enumerate() {
            links.push(AgentLink::new(udp.transport_to(addr.as_str(), i)?, None));
        }
        Self::configured(links, spec)
    }

    /// Connects to already-running agent processes (started with
    /// `clan-cli agent --listen ADDR`) and pushes the session
    /// configuration to each.
    ///
    /// # Errors
    ///
    /// [`ClanError::Transport`] if any agent is unreachable, and
    /// [`ClanError::InvalidSetup`] on an empty address list.
    pub fn connect(addrs: &[String], spec: ClusterSpec) -> Result<EdgeCluster, ClanError> {
        if addrs.is_empty() {
            return Err(ClanError::InvalidSetup {
                reason: "cluster needs at least one agent address".into(),
            });
        }
        let mut links = Vec::with_capacity(addrs.len());
        for addr in addrs {
            links.push(AgentLink::new(
                Box::new(TcpTransport::connect(addr.as_str())?),
                None,
            ));
        }
        Self::configured(links, spec)
    }

    /// Builds a cluster over caller-supplied transports whose agent
    /// sides are already being served (e.g. channel pairs with
    /// [`serve_session`] threads, possibly wrapped in a
    /// [`DelayTransport`](crate::transport::DelayTransport) to emulate
    /// a slow device). The cluster does not own the serving threads.
    ///
    /// # Errors
    ///
    /// [`ClanError::InvalidSetup`] on an empty transport list, plus any
    /// configuration-push failure.
    pub fn connect_transports(
        transports: Vec<Box<dyn Transport>>,
        spec: ClusterSpec,
    ) -> Result<EdgeCluster, ClanError> {
        if transports.is_empty() {
            return Err(ClanError::InvalidSetup {
                reason: "cluster needs at least one transport".into(),
            });
        }
        let links = transports
            .into_iter()
            .map(|t| AgentLink::new(t, None))
            .collect();
        Self::configured(links, spec)
    }

    /// Pushes `Configure` to every link (control traffic: counted in
    /// bytes, invisible to the analytic model).
    fn configured(mut links: Vec<AgentLink>, spec: ClusterSpec) -> Result<EdgeCluster, ClanError> {
        let msg = WireMessage::Configure(Box::new(spec.clone()));
        let mut control_bytes = 0;
        for link in &mut links {
            control_bytes += send_message(link.transport.as_mut(), &msg)?;
        }
        Ok(EdgeCluster {
            links,
            cfg: spec.cfg,
            ledger: CommLedger::new(),
            control_bytes,
            calibrate: false,
            gather: GatherStats::default(),
        })
    }

    /// Number of live agents.
    pub fn n_agents(&self) -> usize {
        self.links.len()
    }

    /// Sets per-agent capability weights: relative throughputs that
    /// every scatter partitions work by (see
    /// [`clan_distsim::partition_weighted`]). Equal weights (the
    /// default 1.0) reproduce the even split exactly.
    ///
    /// # Errors
    ///
    /// [`ClanError::InvalidSetup`] if the length does not match the
    /// agent count, or any weight is negative/non-finite, or all are
    /// zero.
    pub fn set_weights(&mut self, weights: &[f64]) -> Result<(), ClanError> {
        if weights.len() != self.links.len() {
            return Err(ClanError::InvalidSetup {
                reason: format!(
                    "{} weight(s) for {} agent(s)",
                    weights.len(),
                    self.links.len()
                ),
            });
        }
        if !weights.iter().all(|w| w.is_finite() && *w >= 0.0) || weights.iter().sum::<f64>() <= 0.0
        {
            return Err(ClanError::InvalidSetup {
                reason: "agent weights must be finite, non-negative, and not all zero".into(),
            });
        }
        for (link, &w) in self.links.iter_mut().zip(weights) {
            link.weight = w;
        }
        Ok(())
    }

    /// Builder-style [`set_weights`](EdgeCluster::set_weights).
    ///
    /// # Errors
    ///
    /// See [`set_weights`](EdgeCluster::set_weights).
    pub fn with_weights(mut self, weights: &[f64]) -> Result<EdgeCluster, ClanError> {
        self.set_weights(weights)?;
        Ok(self)
    }

    /// Seeds capability weights from the static platform throughput
    /// model: each agent's weight is its platform's modeled inference
    /// genes/second (paper Table IV calibration).
    ///
    /// # Errors
    ///
    /// See [`set_weights`](EdgeCluster::set_weights).
    pub fn set_weights_from_platforms(
        &mut self,
        platforms: &[clan_hw::Platform],
    ) -> Result<(), ClanError> {
        let weights: Vec<f64> = platforms
            .iter()
            .map(|p| p.inference_genes_per_sec)
            .collect();
        self.set_weights(&weights)
    }

    /// Enables (or disables) round-trip-time calibration: after each
    /// evaluation round, every link's weight is recalibrated toward its
    /// measured throughput (an EWMA of genomes/second), so partitions
    /// track how fast agents *actually* are rather than how fast the
    /// static weights claim. Results stay bit-identical — only chunk
    /// sizes change, and replay is always in genome-id order.
    pub fn set_calibration(&mut self, enabled: bool) {
        self.calibrate = enabled;
    }

    /// Builder-style [`set_calibration`](EdgeCluster::set_calibration).
    pub fn with_calibration(mut self, enabled: bool) -> EdgeCluster {
        self.set_calibration(enabled);
        self
    }

    /// The static capability weights currently configured.
    pub fn weights(&self) -> Vec<f64> {
        self.links.iter().map(|l| l.weight).collect()
    }

    /// The weights the next scatter will actually partition by.
    ///
    /// Measured throughputs are used only once every positive-weight
    /// link has one — mixing measured genomes/second with static
    /// weights on an arbitrary scale would skew the split; until then
    /// (and whenever calibration is off) the static weights apply.
    pub fn effective_weights(&self) -> Vec<f64> {
        let calibrated = self.calibrate
            && self
                .links
                .iter()
                .all(|l| l.weight <= 0.0 || l.measured.is_some());
        if calibrated {
            self.links
                .iter()
                .map(|l| {
                    if l.weight <= 0.0 {
                        0.0
                    } else {
                        l.measured.unwrap_or(0.0)
                    }
                })
                .collect()
        } else {
            self.weights()
        }
    }

    /// Measured scatter/gather timing accumulated so far.
    pub fn gather_stats(&self) -> GatherStats {
        self.gather
    }

    /// Traffic observed on this cluster's transport, with both the
    /// analytic model's float accounting and the measured wire bytes.
    ///
    /// Kinds map onto the protocol: `Evaluate` → `SendGenomes`,
    /// `Fitness` → `SendFitness`, `BuildChildren` → `SendParentGenomes`
    /// (its spec list contributes the parent-list floats), `Children` →
    /// `SendChildren`.
    pub fn ledger(&self) -> &CommLedger {
        &self.ledger
    }

    /// Wire bytes spent on control messages (`Configure`/`Shutdown`)
    /// that the analytic model does not account at all.
    pub fn control_wire_bytes(&self) -> u64 {
        self.control_bytes
    }

    /// The NEAT configuration agents compile genomes with.
    pub fn neat_config(&self) -> &NeatConfig {
        &self.cfg
    }

    /// Scatters one request per link (skipping `None` entries) and
    /// gathers the responses **out of order**: a reader thread per
    /// pending link banks each response the moment it arrives, so a
    /// fast agent never waits behind a slow one in the collection loop.
    /// All bookkeeping — ledger rows, calibration, error propagation —
    /// then replays in link order, keeping every observable effect
    /// deterministic regardless of arrival order.
    ///
    /// Each request carries its work-item count; when
    /// `calibrate_throughput` is set the per-link round-trip time feeds
    /// the EWMA throughput estimate behind
    /// [`effective_weights`](EdgeCluster::effective_weights).
    fn exchange(
        &mut self,
        send_kind: MessageKind,
        recv_kind: MessageKind,
        requests: &[Option<(WireMessage, u64)>],
        calibrate_throughput: bool,
    ) -> Result<Vec<Option<WireMessage>>, ClanError> {
        let EdgeCluster {
            links,
            ledger,
            gather,
            calibrate,
            ..
        } = self;
        debug_assert_eq!(requests.len(), links.len());
        // Scatter in link order.
        for (i, (link, req)) in links.iter_mut().zip(requests).enumerate() {
            if let Some((msg, _)) = req {
                let bytes = send_message(link.transport.as_mut(), msg)?;
                ledger.record_agent_wire(i, send_kind, msg.modeled_floats(), bytes);
            }
        }
        // Gather out of order: one reader thread per pending link.
        let start = Instant::now();
        let mut slots: Vec<GatherSlot> = (0..links.len()).map(|_| None).collect();
        std::thread::scope(|s| {
            let (tx, rx) = std::sync::mpsc::channel();
            let mut pending = 0usize;
            for (i, (link, req)) in links.iter_mut().zip(requests).enumerate() {
                if req.is_none() {
                    continue;
                }
                pending += 1;
                let tx = tx.clone();
                let transport: &mut dyn Transport = link.transport.as_mut();
                s.spawn(move || {
                    let result = recv_message(transport);
                    let _ = tx.send((i, result, start.elapsed().as_secs_f64()));
                });
            }
            drop(tx);
            for (i, result, elapsed) in rx.iter().take(pending) {
                slots[i] = Some((result, elapsed));
            }
        });
        // Replay in link order (deterministic bookkeeping).
        let mut makespan = 0.0f64;
        let mut busy = 0.0f64;
        let mut responses = Vec::with_capacity(links.len());
        let mut first_err: Option<ClanError> = None;
        for (i, slot) in slots.into_iter().enumerate() {
            match slot {
                None => responses.push(None),
                Some((Ok((msg, bytes)), elapsed)) => {
                    ledger.record_agent_wire(i, recv_kind, msg.modeled_floats(), bytes);
                    makespan = makespan.max(elapsed);
                    busy += elapsed;
                    if calibrate_throughput && *calibrate {
                        if let Some((_, work)) = &requests[i] {
                            if *work > 0 {
                                let throughput = *work as f64 / elapsed.max(1e-6);
                                let link = &mut links[i];
                                link.measured = Some(match link.measured {
                                    Some(prev) => {
                                        EWMA_ALPHA * throughput + (1.0 - EWMA_ALPHA) * prev
                                    }
                                    None => throughput,
                                });
                            }
                        }
                    }
                    responses.push(Some(msg));
                }
                Some((Err(e), _)) => {
                    if first_err.is_none() {
                        first_err = Some(e);
                    }
                    responses.push(None);
                }
            }
        }
        if let Some(e) = first_err {
            return Err(e);
        }
        // Fold each link's loss-recovery overhead (retransmitted +
        // duplicate datagrams, zero on reliable transports) into the
        // ledger's retransmission column, attributed per agent.
        for (i, link) in links.iter_mut().enumerate() {
            let stats = link.transport.take_link_stats();
            if stats.overhead_bytes() > 0 {
                ledger.record_agent_retrans(i, stats.overhead_bytes());
            }
        }
        gather.gathers += 1;
        gather.makespan_s += makespan;
        gather.busy_s += busy;
        Ok(responses)
    }

    /// Distributed inference, returning per-genome results in genome-id
    /// order together with each compiled network's per-activation gene
    /// cost — everything the orchestrators need to replay the paper's
    /// cost accounting bit-identically to a serial run. Does **not**
    /// touch the population's fitness or counters.
    ///
    /// Work is split by the capability weights (even by default) and
    /// responses are gathered out of order; since chunks are contiguous
    /// id-ordered slices concatenated in link order, the returned batch
    /// is id-ordered no matter which agent answered first.
    ///
    /// # Errors
    ///
    /// Transport/frame errors, [`ClanError::Protocol`] if an agent
    /// returns results for the wrong genomes, and
    /// [`ClanError::InvalidSetup`] on a cluster with no live agents.
    pub fn evaluate_collect(&mut self, pop: &Population) -> Result<Vec<WireEvaluation>, ClanError> {
        if self.links.is_empty() {
            return Err(ClanError::InvalidSetup {
                reason: "cluster has no live agents to evaluate on".into(),
            });
        }
        let ids: Vec<GenomeId> = pop.genomes().keys().copied().collect();
        let master_seed = pop.master_seed();
        let generation = pop.generation();
        let counts = partition_weighted(ids.len(), &self.effective_weights());
        let chunks = chunk_by_counts(&ids, &counts);
        let requests: Vec<Option<(WireMessage, u64)>> = chunks
            .iter()
            .map(|chunk| {
                (!chunk.is_empty()).then(|| {
                    let msg = WireMessage::Evaluate {
                        generation,
                        master_seed,
                        genomes: chunk
                            .iter()
                            .map(|id| pop.genome(*id).expect("id from population").clone())
                            .collect(),
                    };
                    (msg, chunk.len() as u64)
                })
            })
            .collect();
        let responses = self.exchange(
            MessageKind::SendGenomes,
            MessageKind::SendFitness,
            &requests,
            true,
        )?;
        let mut results = Vec::with_capacity(ids.len());
        for (i, (chunk, response)) in chunks.iter().zip(responses).enumerate() {
            let Some(msg) = response else { continue };
            let batch = match msg {
                WireMessage::Fitness(batch) => batch,
                other => {
                    return Err(ClanError::Protocol {
                        peer: self.links[i].transport.peer(),
                        reason: format!("expected Fitness, got {other:?}"),
                    })
                }
            };
            if batch.len() != chunk.len()
                || batch.iter().zip(chunk.iter()).any(|(r, id)| r.0 != *id)
            {
                return Err(ClanError::Protocol {
                    peer: self.links[i].transport.peer(),
                    reason: "fitness batch does not match the genomes sent".into(),
                });
            }
            results.extend(batch);
        }
        Ok(results)
    }

    /// Distributed inference with write-back: scatters the population's
    /// genomes across agents, gathers fitness, and stores it — the
    /// runtime equivalent of CLAN_DCS's inference phase.
    ///
    /// # Errors
    ///
    /// Propagates [`evaluate_collect`](EdgeCluster::evaluate_collect).
    pub fn evaluate(&mut self, pop: &mut Population) -> Result<(), ClanError> {
        for (id, eval, _) in self.evaluate_collect(pop)? {
            pop.set_fitness(id, eval.fitness)?;
        }
        Ok(())
    }

    /// Distributed reproduction: ships child specs plus the needed
    /// parent genomes to agents and gathers the children — CLAN_DDS's
    /// reproduction phase over a real transport.
    ///
    /// # Errors
    ///
    /// Transport/frame errors, and [`ClanError::Protocol`] on a
    /// mismatched response.
    pub fn build_children(
        &mut self,
        pop: &Population,
        plan: &clan_neat::GenerationPlan,
    ) -> Result<Vec<Genome>, ClanError> {
        if self.links.is_empty() {
            return Err(ClanError::InvalidSetup {
                reason: "cluster has no live agents to reproduce on".into(),
            });
        }
        let counts = partition_weighted(plan.children.len(), &self.effective_weights());
        let chunks = chunk_by_counts(&plan.children, &counts);
        let requests: Vec<Option<(WireMessage, u64)>> = chunks
            .iter()
            .map(|chunk| {
                (!chunk.is_empty()).then(|| {
                    // Only the parents this chunk needs travel to the agent.
                    let mut parent_ids: Vec<GenomeId> =
                        chunk.iter().flat_map(|s| s.parent_ids()).collect();
                    parent_ids.sort_unstable();
                    parent_ids.dedup();
                    let msg = WireMessage::BuildChildren {
                        generation: plan.generation,
                        master_seed: pop.master_seed(),
                        specs: chunk.to_vec(),
                        parents: parent_ids
                            .iter()
                            .map(|id| pop.genome(*id).expect("parent resident").clone())
                            .collect(),
                    };
                    (msg, chunk.len() as u64)
                })
            })
            .collect();
        let responses = self.exchange(
            MessageKind::SendParentGenomes,
            MessageKind::SendChildren,
            &requests,
            false,
        )?;
        let mut children = Vec::with_capacity(plan.children.len());
        for (i, (chunk, response)) in chunks.iter().zip(responses).enumerate() {
            let Some(msg) = response else { continue };
            let batch = match msg {
                WireMessage::Children(batch) => batch,
                other => {
                    return Err(ClanError::Protocol {
                        peer: self.links[i].transport.peer(),
                        reason: format!("expected Children, got {other:?}"),
                    })
                }
            };
            if batch.len() != chunk.len()
                || batch
                    .iter()
                    .zip(chunk.iter())
                    .any(|(child, spec)| child.id() != spec.child_id)
            {
                return Err(ClanError::Protocol {
                    peer: self.links[i].transport.peer(),
                    reason: format!(
                        "children batch does not match the {} specs sent",
                        chunk.len()
                    ),
                });
            }
            children.extend(batch);
        }
        Ok(children)
    }

    /// Runs one full DCS-style generation over the real cluster:
    /// distributed inference, then central evolution.
    ///
    /// # Errors
    ///
    /// Propagates transport and NEAT failures.
    pub fn step_dcs_generation(&mut self, pop: &mut Population) -> Result<f64, ClanError> {
        self.evaluate(pop)?;
        let best = pop
            .best()
            .and_then(Genome::fitness)
            .expect("population was just evaluated");
        crate::orchestra::central_evolution(pop)?;
        Ok(best)
    }

    /// Runs one full DDS-style generation: distributed inference,
    /// central speciation/planning, distributed reproduction.
    ///
    /// # Errors
    ///
    /// Propagates transport and NEAT failures.
    pub fn step_dds_generation(&mut self, pop: &mut Population) -> Result<f64, ClanError> {
        self.evaluate(pop)?;
        let best = pop
            .best()
            .and_then(Genome::fitness)
            .expect("population was just evaluated");
        pop.speciate();
        match pop.plan_generation() {
            Ok(plan) => {
                let children = self.build_children(pop, &plan)?;
                for child in &children {
                    pop.counters_mut().record_reproduction(child.num_genes());
                }
                pop.install_next_generation(children);
            }
            Err(clan_neat::NeatError::Extinction) => pop.reset_population(),
            Err(e) => return Err(e.into()),
        }
        Ok(best)
    }

    /// Stops all agents (best-effort `Shutdown`) and joins in-process
    /// agent threads.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        let frame = crate::transport::encode(&WireMessage::Shutdown);
        for link in &mut self.links {
            if link.transport.send_frame(&frame).is_ok() {
                self.control_bytes += crate::transport::wire_bytes(&frame);
            }
        }
        for link in &mut self.links {
            // Datagram transports retransmit the Shutdown until acked
            // (bounded); reliable transports return immediately.
            let _ = link.transport.drain(std::time::Duration::from_millis(750));
        }
        for link in &mut self.links {
            if let Some(h) = link.handle.take() {
                let _ = h.join();
            }
        }
        self.links.clear();
    }
}

impl Drop for EdgeCluster {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluator::Evaluator;

    fn cfg(pop: usize) -> NeatConfig {
        let w = Workload::CartPole;
        NeatConfig::builder(w.obs_dim(), w.n_actions())
            .population_size(pop)
            .build()
            .unwrap()
    }

    fn spawn_both(n: usize, cfg: &NeatConfig) -> Vec<EdgeCluster> {
        vec![
            EdgeCluster::spawn(n, Workload::CartPole, InferenceMode::MultiStep, cfg.clone())
                .expect("channel cluster spawns"),
            EdgeCluster::spawn_local(n, Workload::CartPole, InferenceMode::MultiStep, cfg.clone())
                .expect("loopback cluster binds"),
        ]
    }

    #[test]
    fn distributed_evaluation_matches_serial_on_both_transports() {
        let cfg = cfg(16);
        for mut cluster in spawn_both(4, &cfg) {
            let mut distributed = Population::new(cfg.clone(), 11);
            cluster.evaluate(&mut distributed).unwrap();

            let mut serial = Population::new(cfg.clone(), 11);
            let mut ev = Evaluator::new(Workload::CartPole, InferenceMode::MultiStep);
            crate::orchestra::evaluate_partitioned(&mut serial, &mut ev, &[16]).unwrap();

            for (a, b) in distributed
                .genomes()
                .values()
                .zip(serial.genomes().values())
            {
                assert_eq!(a.fitness(), b.fitness());
            }
            cluster.shutdown();
        }
    }

    #[test]
    fn real_dcs_generations_match_serial_evolution() {
        let cfg = cfg(12);
        let mut cluster =
            EdgeCluster::spawn(3, Workload::CartPole, InferenceMode::MultiStep, cfg.clone())
                .unwrap();
        let mut real = Population::new(cfg.clone(), 5);
        let mut serial = Population::new(cfg.clone(), 5);
        let mut ev = Evaluator::new(Workload::CartPole, InferenceMode::MultiStep);
        for _ in 0..3 {
            let real_best = cluster.step_dcs_generation(&mut real).unwrap();
            crate::orchestra::evaluate_partitioned(&mut serial, &mut ev, &[12]).unwrap();
            let serial_best = serial.best().and_then(Genome::fitness).unwrap();
            crate::orchestra::central_evolution(&mut serial).unwrap();
            assert_eq!(real_best, serial_best);
        }
        assert_eq!(real.genomes(), serial.genomes());
        cluster.shutdown();
    }

    #[test]
    fn real_dds_generations_match_serial_evolution_over_tcp() {
        let cfg = cfg(12);
        let mut cluster =
            EdgeCluster::spawn_local(3, Workload::CartPole, InferenceMode::MultiStep, cfg.clone())
                .unwrap();
        let mut real = Population::new(cfg.clone(), 6);
        let mut serial = Population::new(cfg.clone(), 6);
        let mut ev = Evaluator::new(Workload::CartPole, InferenceMode::MultiStep);
        for _ in 0..3 {
            cluster.step_dds_generation(&mut real).unwrap();
            crate::orchestra::evaluate_partitioned(&mut serial, &mut ev, &[12]).unwrap();
            crate::orchestra::central_evolution(&mut serial).unwrap();
        }
        assert_eq!(real.genomes(), serial.genomes());
        assert!(
            cluster
                .ledger()
                .entry(MessageKind::SendParentGenomes)
                .messages
                > 0,
            "DDS must ship parents over the wire"
        );
        cluster.shutdown();
    }

    #[test]
    fn ledger_measures_real_bytes_above_model() {
        let cfg = cfg(10);
        let mut cluster = EdgeCluster::spawn_local(
            2,
            Workload::CartPole,
            InferenceMode::SingleStep,
            cfg.clone(),
        )
        .unwrap();
        let mut pop = Population::new(cfg, 3);
        cluster.evaluate(&mut pop).unwrap();
        let ledger = cluster.ledger();
        assert_eq!(ledger.entry(MessageKind::SendGenomes).messages, 2);
        assert_eq!(ledger.entry(MessageKind::SendFitness).messages, 2);
        let overhead = ledger.framing_overhead().expect("both measures recorded");
        assert!(
            overhead > 1.0,
            "real f64 wire format must cost more than the 4-byte/gene model: {overhead}"
        );
        assert!(cluster.control_wire_bytes() > 0, "Configure was sent");
    }

    #[test]
    fn drop_shuts_down_cleanly() {
        let cfg = cfg(4);
        for cluster in spawn_both(2, &cfg) {
            assert_eq!(cluster.n_agents(), 2);
            drop(cluster); // must not hang or panic
        }
    }

    #[test]
    fn more_agents_than_genomes_is_fine() {
        let cfg = cfg(3);
        for mut cluster in spawn_both(8, &cfg) {
            let mut pop = Population::new(cfg.clone(), 1);
            cluster.evaluate(&mut pop).unwrap();
            assert!(pop.genomes().values().all(|g| g.fitness().is_some()));
            cluster.shutdown();
        }
    }

    #[test]
    fn zero_agent_spawn_is_a_typed_error_not_a_panic() {
        let cfg = cfg(4);
        let spec = ClusterSpec::new(Workload::CartPole, InferenceMode::MultiStep, cfg);
        assert!(matches!(
            EdgeCluster::spawn_spec(0, spec.clone()),
            Err(ClanError::InvalidSetup { .. })
        ));
        assert!(matches!(
            EdgeCluster::spawn_local_spec(0, spec.clone()),
            Err(ClanError::InvalidSetup { .. })
        ));
        assert!(matches!(
            EdgeCluster::connect_transports(vec![], spec),
            Err(ClanError::InvalidSetup { .. })
        ));
    }

    #[test]
    fn weighted_partition_busies_every_agent() {
        // The even-split chunks(div_ceil) bug: 5 genomes on 4 agents
        // became 2/2/1 with one agent fully idle. The partitioner must
        // give every agent a share, visible in the per-agent ledger.
        let cfg = cfg(5);
        for mut cluster in spawn_both(4, &cfg) {
            let mut pop = Population::new(cfg.clone(), 3);
            cluster.evaluate(&mut pop).unwrap();
            let rows = cluster.ledger().agent_entries();
            assert_eq!(rows.len(), 4);
            for (i, row) in rows.iter().enumerate() {
                assert!(row.messages > 0, "agent {i} was starved: {rows:?}");
            }
            cluster.shutdown();
        }
    }

    #[test]
    fn skewed_weights_change_partition_but_not_results() {
        let cfg = cfg(16);
        let fitness_of = |cluster: &mut EdgeCluster| {
            let mut pop = Population::new(cfg.clone(), 21);
            cluster.evaluate(&mut pop).unwrap();
            pop.genomes()
                .values()
                .map(|g| g.fitness().unwrap())
                .collect::<Vec<f64>>()
        };
        let mut even =
            EdgeCluster::spawn(4, Workload::CartPole, InferenceMode::MultiStep, cfg.clone())
                .unwrap();
        let mut skewed =
            EdgeCluster::spawn(4, Workload::CartPole, InferenceMode::MultiStep, cfg.clone())
                .unwrap()
                .with_weights(&[1.0, 5.0, 2.0, 8.0])
                .unwrap();
        assert_eq!(fitness_of(&mut even), fitness_of(&mut skewed));
        // The heavy agent carried more genome traffic than the light one.
        let rows = skewed.ledger().agent_entries();
        assert!(
            rows[3].floats > rows[0].floats,
            "weight 8 vs 1 must skew traffic: {rows:?}"
        );
        even.shutdown();
        skewed.shutdown();
    }

    #[test]
    fn calibration_measures_throughput_and_keeps_results_identical() {
        let cfg = cfg(12);
        let mut plain =
            EdgeCluster::spawn(3, Workload::CartPole, InferenceMode::MultiStep, cfg.clone())
                .unwrap();
        let mut calibrated =
            EdgeCluster::spawn(3, Workload::CartPole, InferenceMode::MultiStep, cfg.clone())
                .unwrap()
                .with_calibration(true);
        let mut a = Population::new(cfg.clone(), 9);
        let mut b = Population::new(cfg.clone(), 9);
        for _ in 0..3 {
            plain.step_dcs_generation(&mut a).unwrap();
            calibrated.step_dcs_generation(&mut b).unwrap();
        }
        assert_eq!(a.genomes(), b.genomes());
        // After a round, every link has a measured throughput and the
        // effective weights switched to it.
        assert!(calibrated.effective_weights().iter().all(|w| *w > 0.0));
        assert_ne!(calibrated.effective_weights(), calibrated.weights());
        plain.shutdown();
        calibrated.shutdown();
    }

    #[test]
    fn gather_stats_accumulate_makespan_and_busy_time() {
        let cfg = cfg(8);
        let mut cluster =
            EdgeCluster::spawn(2, Workload::CartPole, InferenceMode::MultiStep, cfg.clone())
                .unwrap();
        assert_eq!(cluster.gather_stats().gathers, 0);
        let mut pop = Population::new(cfg, 4);
        cluster.evaluate(&mut pop).unwrap();
        let stats = cluster.gather_stats();
        assert_eq!(stats.gathers, 1);
        assert!(stats.makespan_s > 0.0);
        assert!(
            stats.busy_s >= stats.makespan_s,
            "busy time sums over links"
        );
        assert!(stats.mean_makespan_s() > 0.0);
        assert!(stats.overlap().unwrap() >= 1.0);
        cluster.shutdown();
    }

    #[test]
    fn weight_validation_rejects_bad_inputs() {
        let cfg = cfg(4);
        let mut cluster =
            EdgeCluster::spawn(2, Workload::CartPole, InferenceMode::MultiStep, cfg).unwrap();
        assert!(cluster.set_weights(&[1.0]).is_err(), "length mismatch");
        assert!(cluster.set_weights(&[1.0, -1.0]).is_err(), "negative");
        assert!(cluster.set_weights(&[0.0, 0.0]).is_err(), "all zero");
        assert!(cluster.set_weights(&[f64::NAN, 1.0]).is_err(), "NaN");
        cluster.set_weights(&[2.0, 0.5]).unwrap();
        assert_eq!(cluster.weights(), vec![2.0, 0.5]);
        cluster.shutdown();
    }
}
