//! A real multi-threaded edge cluster: one OS thread per agent,
//! message-passing over channels.
//!
//! The analytic simulator (`clan-distsim`) models *time*; this runtime
//! demonstrates that the CLAN protocols actually *execute* — genomes are
//! shipped to workers, evaluated in true parallelism, children are built
//! remotely from serialized [`ChildSpec`]s, and the deterministic RNG
//! discipline makes the distributed result bit-identical to a serial run
//! (asserted in tests).

use crate::error::ClanError;
use crate::evaluator::{Evaluator, InferenceMode};
use clan_envs::Workload;
use clan_neat::reproduction::{make_child, ChildSpec};
use clan_neat::{FeedForwardNetwork, Genome, GenomeId, NeatConfig, Population};
use std::collections::BTreeMap;
use std::sync::mpsc::{channel, Receiver, Sender};
use std::thread::JoinHandle;

/// Work order sent to an agent.
#[derive(Debug, Clone)]
enum Request {
    Evaluate {
        genomes: Vec<Genome>,
        generation: u64,
        master_seed: u64,
    },
    BuildChildren {
        specs: Vec<ChildSpec>,
        parents: Vec<Genome>,
        generation: u64,
        master_seed: u64,
    },
    Shutdown,
}

/// Result returned by an agent.
#[derive(Debug, Clone)]
enum Response {
    Fitness(Vec<(GenomeId, f64)>),
    Children(Vec<Genome>),
}

struct Worker {
    tx: Sender<Request>,
    rx: Receiver<Response>,
    handle: Option<JoinHandle<()>>,
}

/// A live cluster of worker threads evaluating and reproducing genomes.
///
/// Use [`evaluate`](EdgeCluster::evaluate) and
/// [`build_children`](EdgeCluster::build_children) as the distributed
/// counterparts of `Population::evaluate` and
/// `Population::reproduce_centrally`. Call
/// [`shutdown`](EdgeCluster::shutdown) for an orderly stop; dropping the
/// cluster also stops it.
pub struct EdgeCluster {
    workers: Vec<Worker>,
    cfg: NeatConfig,
}

impl std::fmt::Debug for EdgeCluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EdgeCluster")
            .field("workers", &self.workers.len())
            .finish_non_exhaustive()
    }
}

impl EdgeCluster {
    /// Spawns `n_agents` worker threads for `workload`.
    ///
    /// # Panics
    ///
    /// Panics if `n_agents` is zero.
    pub fn spawn(
        n_agents: usize,
        workload: Workload,
        mode: InferenceMode,
        cfg: NeatConfig,
    ) -> EdgeCluster {
        assert!(n_agents > 0, "cluster needs at least one agent");
        let workers = (0..n_agents)
            .map(|i| {
                let (req_tx, req_rx) = channel::<Request>();
                let (resp_tx, resp_rx) = channel::<Response>();
                let worker_cfg = cfg.clone();
                let handle = std::thread::Builder::new()
                    .name(format!("clan-agent-{i}"))
                    .spawn(move || worker_loop(req_rx, resp_tx, workload, mode, worker_cfg))
                    .expect("spawning agent thread");
                Worker {
                    tx: req_tx,
                    rx: resp_rx,
                    handle: Some(handle),
                }
            })
            .collect();
        EdgeCluster { workers, cfg }
    }

    /// Number of live agents.
    pub fn n_agents(&self) -> usize {
        self.workers.len()
    }

    /// Distributed inference: scatters the population's genomes across
    /// agents, gathers fitness, and writes it back — the runtime
    /// equivalent of CLAN_DCS's inference phase.
    ///
    /// # Errors
    ///
    /// [`ClanError::WorkerFailure`] if an agent disconnected.
    pub fn evaluate(&self, pop: &mut Population) -> Result<(), ClanError> {
        let ids: Vec<GenomeId> = pop.genomes().keys().copied().collect();
        let n = self.workers.len();
        let master_seed = pop.master_seed();
        let generation = pop.generation();
        // Scatter contiguous chunks.
        let per = ids.len().div_ceil(n);
        let mut sent = 0usize;
        for (w, chunk) in self.workers.iter().zip(ids.chunks(per.max(1))) {
            let genomes = chunk
                .iter()
                .map(|id| pop.genome(*id).expect("id from population").clone())
                .collect();
            w.tx.send(Request::Evaluate {
                genomes,
                generation,
                master_seed,
            })
            .map_err(|e| ClanError::WorkerFailure {
                agent: sent,
                reason: e.to_string(),
            })?;
            sent += 1;
        }
        // Gather.
        for (i, w) in self.workers.iter().take(sent).enumerate() {
            match w.rx.recv() {
                Ok(Response::Fitness(pairs)) => {
                    for (id, fitness) in pairs {
                        pop.set_fitness(id, fitness)?;
                    }
                }
                Ok(other) => {
                    return Err(ClanError::WorkerFailure {
                        agent: i,
                        reason: format!("unexpected response {other:?}"),
                    })
                }
                Err(e) => {
                    return Err(ClanError::WorkerFailure {
                        agent: i,
                        reason: e.to_string(),
                    })
                }
            }
        }
        Ok(())
    }

    /// Distributed reproduction: ships child specs plus the needed parent
    /// genomes to agents and gathers the children — CLAN_DDS's
    /// reproduction phase over real threads.
    ///
    /// # Errors
    ///
    /// [`ClanError::WorkerFailure`] if an agent disconnected.
    pub fn build_children(
        &self,
        pop: &Population,
        plan: &clan_neat::GenerationPlan,
    ) -> Result<Vec<Genome>, ClanError> {
        let n = self.workers.len();
        let per = plan.children.len().div_ceil(n);
        let mut sent = 0usize;
        for (w, chunk) in self.workers.iter().zip(plan.children.chunks(per.max(1))) {
            // Only the parents this chunk needs travel to the agent.
            let mut parents: BTreeMap<GenomeId, Genome> = BTreeMap::new();
            for spec in chunk {
                for pid in spec.parent_ids() {
                    parents
                        .entry(pid)
                        .or_insert_with(|| pop.genome(pid).expect("parent resident").clone());
                }
            }
            w.tx.send(Request::BuildChildren {
                specs: chunk.to_vec(),
                parents: parents.into_values().collect(),
                generation: plan.generation,
                master_seed: pop.master_seed(),
            })
            .map_err(|e| ClanError::WorkerFailure {
                agent: sent,
                reason: e.to_string(),
            })?;
            sent += 1;
        }
        let mut children = Vec::with_capacity(plan.children.len());
        for (i, w) in self.workers.iter().take(sent).enumerate() {
            match w.rx.recv() {
                Ok(Response::Children(mut c)) => children.append(&mut c),
                Ok(other) => {
                    return Err(ClanError::WorkerFailure {
                        agent: i,
                        reason: format!("unexpected response {other:?}"),
                    })
                }
                Err(e) => {
                    return Err(ClanError::WorkerFailure {
                        agent: i,
                        reason: e.to_string(),
                    })
                }
            }
        }
        Ok(children)
    }

    /// Runs one full DCS-style generation over the real cluster:
    /// distributed inference, then central evolution.
    ///
    /// # Errors
    ///
    /// Propagates worker and NEAT failures.
    pub fn step_dcs_generation(&self, pop: &mut Population) -> Result<f64, ClanError> {
        self.evaluate(pop)?;
        let best = pop
            .best()
            .and_then(Genome::fitness)
            .expect("population was just evaluated");
        crate::orchestra::central_evolution(pop)?;
        Ok(best)
    }

    /// Runs one full DDS-style generation: distributed inference,
    /// central speciation/planning, distributed reproduction.
    ///
    /// # Errors
    ///
    /// Propagates worker and NEAT failures.
    pub fn step_dds_generation(&self, pop: &mut Population) -> Result<f64, ClanError> {
        self.evaluate(pop)?;
        let best = pop
            .best()
            .and_then(Genome::fitness)
            .expect("population was just evaluated");
        pop.speciate();
        match pop.plan_generation() {
            Ok(plan) => {
                let children = self.build_children(pop, &plan)?;
                for child in &children {
                    pop.counters_mut().record_reproduction(child.num_genes());
                }
                pop.install_next_generation(children);
            }
            Err(clan_neat::NeatError::Extinction) => pop.reset_population(),
            Err(e) => return Err(e.into()),
        }
        Ok(best)
    }

    /// Stops all agents and joins their threads.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        for w in &self.workers {
            let _ = w.tx.send(Request::Shutdown);
        }
        for w in &mut self.workers {
            if let Some(h) = w.handle.take() {
                let _ = h.join();
            }
        }
        self.workers.clear();
    }

    /// The NEAT configuration workers compile genomes with.
    pub fn neat_config(&self) -> &NeatConfig {
        &self.cfg
    }
}

impl Drop for EdgeCluster {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

fn worker_loop(
    rx: Receiver<Request>,
    tx: Sender<Response>,
    workload: Workload,
    mode: InferenceMode,
    cfg: NeatConfig,
) {
    let mut evaluator = Evaluator::new(workload, mode);
    while let Ok(req) = rx.recv() {
        match req {
            Request::Evaluate {
                genomes,
                generation,
                master_seed,
            } => {
                let results = genomes
                    .iter()
                    .map(|g| {
                        let net = FeedForwardNetwork::compile(g, &cfg);
                        let seed = Evaluator::episode_seed(master_seed, generation, g.id());
                        let eval = evaluator.evaluate(&net, seed);
                        (g.id(), eval.fitness)
                    })
                    .collect();
                if tx.send(Response::Fitness(results)).is_err() {
                    return;
                }
            }
            Request::BuildChildren {
                specs,
                parents,
                generation,
                master_seed,
            } => {
                let lookup: BTreeMap<GenomeId, Genome> =
                    parents.into_iter().map(|g| (g.id(), g)).collect();
                let children = specs
                    .iter()
                    .map(|spec| {
                        let pids = spec.parent_ids();
                        let p1 = &lookup[&pids[0]];
                        let p2 = pids.get(1).map(|id| &lookup[id]);
                        make_child(&cfg, spec, (p1, p2), master_seed, generation)
                    })
                    .collect();
                if tx.send(Response::Children(children)).is_err() {
                    return;
                }
            }
            Request::Shutdown => return,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(pop: usize) -> NeatConfig {
        let w = Workload::CartPole;
        NeatConfig::builder(w.obs_dim(), w.n_actions())
            .population_size(pop)
            .build()
            .unwrap()
    }

    #[test]
    fn distributed_evaluation_matches_serial() {
        let cfg = cfg(16);
        let cluster =
            EdgeCluster::spawn(4, Workload::CartPole, InferenceMode::MultiStep, cfg.clone());
        let mut distributed = Population::new(cfg.clone(), 11);
        cluster.evaluate(&mut distributed).unwrap();

        let mut serial = Population::new(cfg.clone(), 11);
        let mut ev = Evaluator::new(Workload::CartPole, InferenceMode::MultiStep);
        crate::orchestra::evaluate_partitioned(&mut serial, &mut ev, &[16]);

        for (a, b) in distributed
            .genomes()
            .values()
            .zip(serial.genomes().values())
        {
            assert_eq!(a.fitness(), b.fitness());
        }
        cluster.shutdown();
    }

    #[test]
    fn real_dcs_generations_match_serial_evolution() {
        let cfg = cfg(12);
        let cluster =
            EdgeCluster::spawn(3, Workload::CartPole, InferenceMode::MultiStep, cfg.clone());
        let mut real = Population::new(cfg.clone(), 5);
        let mut serial = Population::new(cfg.clone(), 5);
        let mut ev = Evaluator::new(Workload::CartPole, InferenceMode::MultiStep);
        for _ in 0..3 {
            let real_best = cluster.step_dcs_generation(&mut real).unwrap();
            crate::orchestra::evaluate_partitioned(&mut serial, &mut ev, &[12]);
            let serial_best = serial.best().and_then(Genome::fitness).unwrap();
            crate::orchestra::central_evolution(&mut serial).unwrap();
            assert_eq!(real_best, serial_best);
        }
        assert_eq!(real.genomes(), serial.genomes());
        cluster.shutdown();
    }

    #[test]
    fn real_dds_generations_match_serial_evolution() {
        let cfg = cfg(12);
        let cluster =
            EdgeCluster::spawn(3, Workload::CartPole, InferenceMode::MultiStep, cfg.clone());
        let mut real = Population::new(cfg.clone(), 6);
        let mut serial = Population::new(cfg.clone(), 6);
        let mut ev = Evaluator::new(Workload::CartPole, InferenceMode::MultiStep);
        for _ in 0..3 {
            cluster.step_dds_generation(&mut real).unwrap();
            crate::orchestra::evaluate_partitioned(&mut serial, &mut ev, &[12]);
            crate::orchestra::central_evolution(&mut serial).unwrap();
        }
        assert_eq!(real.genomes(), serial.genomes());
        cluster.shutdown();
    }

    #[test]
    fn drop_shuts_down_cleanly() {
        let cfg = cfg(4);
        let cluster = EdgeCluster::spawn(2, Workload::CartPole, InferenceMode::SingleStep, cfg);
        assert_eq!(cluster.n_agents(), 2);
        drop(cluster); // must not hang or panic
    }

    #[test]
    fn more_agents_than_genomes_is_fine() {
        let cfg = cfg(3);
        let cluster = EdgeCluster::spawn(
            8,
            Workload::CartPole,
            InferenceMode::SingleStep,
            cfg.clone(),
        );
        let mut pop = Population::new(cfg, 1);
        cluster.evaluate(&mut pop).unwrap();
        assert!(pop.genomes().values().all(|g| g.fitness().is_some()));
        cluster.shutdown();
    }
}
