//! A real edge cluster: agents behind a pluggable [`Transport`],
//! exchanging the binary cluster protocol.
//!
//! The analytic simulator (`clan-distsim`) models *time*; this runtime
//! demonstrates that the CLAN protocols actually *execute* — genomes are
//! shipped to workers as encoded frames, evaluated in true parallelism,
//! children are built remotely from serialized
//! [`ChildSpec`](clan_neat::reproduction::ChildSpec)s, and the
//! deterministic RNG discipline makes the distributed result
//! bit-identical to a serial run (asserted in tests and, over real TCP
//! sockets, by `tests/net_equivalence.rs`).
//!
//! Three deployments of the same protocol:
//!
//! - [`EdgeCluster::spawn`] — agent threads over in-process channels;
//! - [`EdgeCluster::spawn_local`] — agent threads serving **real TCP
//!   sockets** on `127.0.0.1` ephemeral ports (the whole networked stack
//!   in one process, which is what CI smokes);
//! - [`EdgeCluster::connect`] — remote agent processes started with
//!   `clan-cli agent --listen ADDR` on actual edge devices.
//!
//! Every message's *measured* bytes-on-the-wire are recorded in a
//! [`CommLedger`] next to the analytic model's float accounting, so the
//! modeled traffic of `clan-netsim` can be validated against what a
//! real wire format costs (see [`CommLedger::framing_overhead`]).
//!
//! # Heterogeneity-aware scheduling
//!
//! Real swarms mix Pi 3s, Pi 4s, and Jetsons; splitting work evenly
//! makes every generation wait for the slowest device. Two mechanisms
//! keep mixed clusters busy:
//!
//! - **Throughput-weighted partitioning** — every scatter
//!   ([`evaluate_collect`](EdgeCluster::evaluate_collect) and the
//!   [`build_children`](EdgeCluster::build_children) phase of
//!   [`step_dds_generation`](EdgeCluster::step_dds_generation)) routes
//!   through [`clan_distsim::partition_weighted`] over per-link
//!   capability weights ([`set_weights`](EdgeCluster::set_weights),
//!   seeded from the static platform throughput model via
//!   [`set_weights_from_platforms`](EdgeCluster::set_weights_from_platforms),
//!   or `clan-cli coordinate --agent-weights`). With
//!   [`set_calibration`](EdgeCluster::set_calibration) enabled the
//!   weights recalibrate themselves from measured per-chunk round-trip
//!   times (an EWMA of genomes/second over prior generations).
//! - **Out-of-order gather** — responses are collected by per-link
//!   reader threads as each agent finishes, then replayed in link order
//!   (which is genome-id order, since chunks are contiguous id-ordered
//!   slices). A fast agent's results are banked while a slow one still
//!   computes; the determinism contract — bit-identical to serial on
//!   serial/dcs/dds/dda — is untouched because nothing downstream ever
//!   observes arrival order.
//!
//! Measured gather timing (makespan vs. summed per-link busy time)
//! accumulates in [`GatherStats`]; per-agent wire bytes land in the
//! ledger's [`agent_entries`](CommLedger::agent_entries), making load
//! imbalance directly observable.
//!
//! # Elastic membership and recovery
//!
//! Commodity agents crash mid-run; the cluster survives them. Every
//! link carries a [`LinkHealth`] (alive / suspected / dead, see
//! [`crate::membership`]); when an exchange surfaces a churn-class
//! error (`Transport`/`Timeout`), the failed link's chunk is
//! **deterministically reassigned** across the links that have not
//! failed this round and the exchange retried (up to
//! [`RecoveryPolicy::max_retries`] times). Results carry genome ids and
//! replay in id order, so a run that lost and reassigned chunks is
//! bit-identical to a serial run — churn costs only time, measured in
//! [`RecoveryStats`]. New agents can also **join mid-run**
//! ([`admit_transport`](EdgeCluster::admit_transport) /
//! [`admit_local`](EdgeCluster::admit_local)): they are `Configure`d
//! with the stored session spec and enter the weight/calibration tables
//! like any founding member. Deterministic churn testing goes through
//! [`ChurnSchedule`]
//! ([`set_churn`](EdgeCluster::set_churn), `clan-cli coordinate
//! --churn k1@2,r1@4`), which swaps a victim's transport for a
//! [`DeadTransport`] at a scatter
//! round boundary and revives a replacement later — exercising the
//! production recovery path with a simulated device crash.

use crate::error::ClanError;
use crate::evaluator::InferenceMode;
use crate::membership::{is_churn_error, AgentHealth, LinkHealth, RecoveryPolicy, RecoveryStats};
use crate::telemetry::{EventKind, Tracer};
use crate::transport::agent::{serve_session, AgentServer, UdpAgentServer};
use crate::transport::churn::{ChurnAction, ChurnSchedule, DeadTransport};
use crate::transport::{
    channel_pair, recv_message, send_message, ClusterSpec, TcpTransport, Transport, UdpConfig,
    WireEvaluation, WireMessage,
};
use clan_distsim::partition_weighted;
use clan_envs::Workload;
use clan_neat::cache::CachedEvaluation;
use clan_neat::{FitnessCache, Genome, GenomeId, NeatConfig, Population};
use clan_netsim::{CommLedger, MessageKind};
use serde::{Deserialize, Serialize};
use std::collections::{BTreeMap, VecDeque};
use std::thread::JoinHandle;
use std::time::Instant;

/// Smoothing factor of the round-trip-time calibration EWMA: how fast
/// measured throughput overrides the static capability weight.
const EWMA_ALPHA: f64 = 0.4;

/// How a remote link's session can be re-established after a failure
/// (the original agent address). In-process links have no origin: their
/// agent thread dies with its session, so they come back only through
/// an explicit revival.
#[derive(Clone)]
enum LinkOrigin {
    /// Reconnect over TCP to the original address.
    Tcp(String),
    /// Reconnect over the datagram transport to the original address,
    /// with the coordinator-side tuning (faults re-derived per link).
    Udp(String, UdpConfig),
}

/// One agent as the coordinator sees it.
struct AgentLink {
    transport: Box<dyn Transport>,
    /// Join handle for in-process agents; `None` for remote ones.
    handle: Option<JoinHandle<()>>,
    /// Static capability weight (relative throughput; default 1.0).
    weight: f64,
    /// EWMA of measured evaluation throughput (genomes/second), fed by
    /// per-chunk round-trip times when calibration is enabled.
    measured: Option<f64>,
    /// Liveness as judged from exchange outcomes (see
    /// [`crate::membership`]).
    health: LinkHealth,
    /// Human-readable description of the last churn-class failure.
    last_error: Option<String>,
    /// Set when the session on `transport` is no longer trustworthy (a
    /// churn-class failure desynchronizes request/response pairing —
    /// e.g. a late reply from a timed-out round). A poisoned transport
    /// is a [`DeadTransport`]; the link is re-established from `origin`
    /// before its next probe, or strikes out.
    poisoned: bool,
    /// Where a fresh session can be established, for remote links.
    origin: Option<LinkOrigin>,
}

impl AgentLink {
    fn new(transport: Box<dyn Transport>, handle: Option<JoinHandle<()>>) -> AgentLink {
        AgentLink {
            transport,
            handle,
            weight: 1.0,
            measured: None,
            health: LinkHealth::Alive,
            last_error: None,
            poisoned: false,
            origin: None,
        }
    }

    fn with_origin(mut self, origin: LinkOrigin) -> AgentLink {
        self.origin = Some(origin);
        self
    }
}

/// How this cluster can produce a replacement agent for a mid-run
/// revival or admission. Set by the constructor that built the cluster;
/// remote clusters start with no source until
/// [`set_spares`](EdgeCluster::set_spares) supplies standby addresses.
enum Respawn {
    /// No way to mint new agents (caller-supplied transports).
    External,
    /// In-process worker thread over a byte channel.
    Channel,
    /// In-process agent thread serving loopback TCP.
    LoopbackTcp,
    /// In-process agent thread serving loopback UDP, with the
    /// coordinator-side and agent-side datagram configs.
    LoopbackUdp {
        coordinator: UdpConfig,
        agent: UdpConfig,
    },
    /// Standby `clan-cli agent` addresses to connect over TCP.
    RemoteTcp { spares: VecDeque<String> },
    /// Standby `clan-cli agent --udp` addresses, with the
    /// coordinator-side datagram config.
    RemoteUdp {
        coordinator: UdpConfig,
        spares: VecDeque<String>,
    },
}

/// Measured scatter/gather timing accumulated over a cluster's life.
///
/// `makespan_s` sums each gather's slowest-link wait (what a generation
/// actually costs); `busy_s` sums every link's individual wait (the
/// total work the cluster performed). Their ratio approaches the agent
/// count when partitions are balanced and collapses toward 1.0 when one
/// slow agent serializes the generation — the imbalance signal
/// throughput-weighted partitioning exists to fix.
#[derive(Debug, Clone, Copy, Default, PartialEq, Serialize, Deserialize)]
pub struct GatherStats {
    /// Scatter/gather rounds performed.
    pub gathers: u64,
    /// Summed per-round slowest-link wait, seconds.
    pub makespan_s: f64,
    /// Summed per-link wait across all rounds, seconds.
    pub busy_s: f64,
}

impl GatherStats {
    /// Mean wall-clock cost of one gather round.
    pub fn mean_makespan_s(&self) -> f64 {
        if self.gathers == 0 {
            0.0
        } else {
            self.makespan_s / self.gathers as f64
        }
    }

    /// Parallel-overlap ratio `busy_s / makespan_s`: ≈ agent count when
    /// balanced, → 1.0 when one agent sets the pace. `None` until a
    /// gather has been timed.
    pub fn overlap(&self) -> Option<f64> {
        (self.makespan_s > 0.0).then(|| self.busy_s / self.makespan_s)
    }
}

/// One finished streaming evaluation, as handed to the
/// [`evaluate_stream`](EdgeCluster::evaluate_stream) completion callback
/// the moment it arrives — in *arrival* order, which is the point of the
/// async mode and the reason it is not bit-identical to a gather.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct StreamCompletion {
    /// Link slot that produced the result.
    pub agent: usize,
    /// The evaluated genome.
    pub genome: GenomeId,
    /// Its evaluation (fitness + activation count).
    pub evaluation: clan_neat::population::Evaluation,
    /// Per-activation gene cost of the compiled network, for the
    /// paper's cost accounting.
    pub genes_per_activation: u64,
}

/// Timing and recovery accounting of one
/// [`evaluate_stream`](EdgeCluster::evaluate_stream) run.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct StreamStats {
    /// Evaluations completed (including re-dispatched ones).
    pub completions: u64,
    /// Genomes whose agent died mid-evaluation and that were dispatched
    /// again to a surviving agent.
    pub redispatches: u64,
    /// Wall-clock of the whole stream, seconds.
    pub makespan_s: f64,
    /// Summed per-agent busy time (request in flight), seconds.
    pub busy_s: f64,
    /// Per-link busy seconds (index = link slot).
    pub per_agent_busy_s: Vec<f64>,
    /// Per-link completed evaluations (index = link slot).
    pub per_agent_completions: Vec<u64>,
}

impl StreamStats {
    /// Idle capacity left on the table: `agents x makespan - busy`,
    /// seconds. Near zero when dispatch-on-completion keeps every agent
    /// fed; approaches the sync gather's imbalance when it does not.
    pub fn wasted_idle_s(&self, agents: usize) -> f64 {
        (agents as f64 * self.makespan_s - self.busy_s).max(0.0)
    }
}

/// What a per-link streaming worker reports back to the dispatch loop.
enum StreamEvent {
    /// One evaluation finished cleanly.
    Done {
        completion: StreamCompletion,
        elapsed_s: f64,
        sent_floats: u64,
        sent_bytes: u64,
        recv_floats: u64,
        recv_bytes: u64,
    },
    /// Churn-class link failure; the in-flight genome needs a new home.
    Failed {
        agent: usize,
        genome: Box<Genome>,
        error: ClanError,
    },
    /// Protocol/frame violation — a bug, not churn; aborts the stream.
    Hard { error: ClanError },
}

/// One gathered response slot: the decoded message (or error) plus the
/// link's measured wait in seconds; `None` until (or unless) a response
/// was expected and arrived.
type GatherSlot = Option<(Result<(WireMessage, u64), ClanError>, f64)>;

/// One exchange attempt's result: per-link slots (`None` = no request
/// sent; `Some(Err)` = churn-class link failure, already recorded in
/// the membership table) plus the attempt's measured makespan.
struct ExchangeOutcome {
    responses: Vec<Option<Result<WireMessage, ClanError>>>,
    makespan_s: f64,
}

/// Validates one link's reply to a scatter chunk (given the link's peer
/// label for error messages) and extracts the chunk's result items.
type ResponseHandler<'a, T, R> =
    &'a mut dyn FnMut(String, WireMessage, &[T]) -> Result<Vec<R>, ClanError>;

/// A freshly minted (unconfigured) replacement agent: its transport,
/// the serving thread's handle for in-process agents, and the address
/// it can be re-established from (remote agents only).
type MintedAgent = (
    Box<dyn Transport>,
    Option<JoinHandle<()>>,
    Option<LinkOrigin>,
);

/// Spawns a named agent-serving thread, surfacing OS thread exhaustion
/// as a typed [`ClanError::WorkerFailure`] instead of a panic.
fn spawn_agent_thread(
    agent: usize,
    name: String,
    f: impl FnOnce() + Send + 'static,
) -> Result<std::thread::JoinHandle<()>, ClanError> {
    std::thread::Builder::new()
        .name(name)
        .spawn(f)
        .map_err(|e| ClanError::WorkerFailure {
            agent,
            reason: format!("cannot spawn agent thread: {e}"),
        })
}

/// Splits `items` into consecutive slices of the given sizes.
fn chunk_by_counts<'a, T>(items: &'a [T], counts: &[usize]) -> Vec<&'a [T]> {
    debug_assert_eq!(counts.iter().sum::<usize>(), items.len());
    let mut chunks = Vec::with_capacity(counts.len());
    let mut start = 0;
    for &c in counts {
        chunks.push(&items[start..start + c]);
        start += c;
    }
    chunks
}

/// A live cluster of agents evaluating and reproducing genomes over a
/// real transport.
///
/// Use [`evaluate`](EdgeCluster::evaluate) and
/// [`build_children`](EdgeCluster::build_children) as the distributed
/// counterparts of `Population::evaluate` and
/// `Population::reproduce_centrally`, or attach the cluster to an
/// [`Evaluator`](crate::Evaluator) with
/// [`Evaluator::with_remote`](crate::Evaluator::with_remote) to fan all
/// four CLAN orchestrators' inference out across it. Call
/// [`shutdown`](EdgeCluster::shutdown) for an orderly stop; dropping the
/// cluster also stops it.
pub struct EdgeCluster {
    links: Vec<AgentLink>,
    /// The session spec every (founding or joining) agent is configured
    /// with — kept so mid-run admissions speak the same session.
    spec: ClusterSpec,
    ledger: CommLedger,
    control_bytes: u64,
    /// When set, partition weights follow measured round-trip times.
    calibrate: bool,
    gather: GatherStats,
    /// How hard scatters fight to survive link failures.
    policy: RecoveryPolicy,
    /// What surviving churn cost so far.
    recovery: RecoveryStats,
    /// Deterministic kill/revive plan, applied at round boundaries.
    churn: Option<ChurnSchedule>,
    /// Scatter rounds performed (each `evaluate_collect` /
    /// `build_children` call advances this by one).
    round: u64,
    /// How replacement agents are produced for revivals/admissions.
    respawn: Respawn,
    /// Coordinator-side content-addressed fitness cache (per
    /// `spec.cache`): hits are served locally and never cross the wire,
    /// so every remote surface — DCS, DDS, TCP, UDP, churned — gets the
    /// same elision for free.
    cache: Option<FitnessCache>,
    /// Telemetry handle (no-op unless installed): the runtime records
    /// Timing-class events only — per-link gather spans,
    /// retransmissions, churn transitions — never anything that enters
    /// the deterministic logical stream.
    tracer: Tracer,
}

impl std::fmt::Debug for EdgeCluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EdgeCluster")
            .field("agents", &self.links.len())
            .field("wire_bytes", &self.ledger.total_wire_bytes())
            .finish_non_exhaustive()
    }
}

impl EdgeCluster {
    /// Spawns `n_agents` worker threads connected over in-process
    /// channels (frames still cross as encoded bytes).
    ///
    /// # Errors
    ///
    /// [`ClanError::InvalidSetup`] if `n_agents` is zero, and
    /// [`ClanError::Transport`] if an agent rejects configuration.
    ///
    /// [`ClanError::WorkerFailure`] if the OS cannot spawn an agent
    /// thread.
    pub fn spawn(
        n_agents: usize,
        workload: Workload,
        mode: InferenceMode,
        cfg: NeatConfig,
    ) -> Result<EdgeCluster, ClanError> {
        Self::spawn_spec(n_agents, ClusterSpec::new(workload, mode, cfg))
    }

    /// [`spawn`](EdgeCluster::spawn) with a full [`ClusterSpec`]
    /// (episodes per evaluation etc.).
    ///
    /// # Errors
    ///
    /// [`ClanError::InvalidSetup`] if `n_agents` is zero, and
    /// [`ClanError::Transport`] if an agent rejects configuration —
    /// the same contract as [`spawn_local_spec`](EdgeCluster::spawn_local_spec),
    /// so callers handle channel and TCP deployments identically.
    ///
    /// [`ClanError::WorkerFailure`] if the OS cannot spawn an agent
    /// thread.
    pub fn spawn_spec(n_agents: usize, spec: ClusterSpec) -> Result<EdgeCluster, ClanError> {
        if n_agents == 0 {
            return Err(ClanError::InvalidSetup {
                reason: "cluster needs at least one agent".into(),
            });
        }
        let links = (0..n_agents)
            .map(|i| {
                let (coord, mut agent_side) = channel_pair();
                let handle = spawn_agent_thread(i, format!("clan-agent-{i}"), move || {
                    if let Err(e) = serve_session(&mut agent_side) {
                        eprintln!("clan-agent-{i}: {e}");
                    }
                })?;
                Ok(AgentLink::new(Box::new(coord), Some(handle)))
            })
            .collect::<Result<Vec<_>, ClanError>>()?;
        Self::configured(links, spec, Respawn::Channel)
    }

    /// Spawns `n_agents` agent threads each serving a **real TCP
    /// socket** bound to `127.0.0.1` on an ephemeral port, and connects
    /// to them — the entire networked stack, loopback, in one process.
    ///
    /// # Errors
    ///
    /// [`ClanError::Transport`] if binding or connecting fails, and
    /// [`ClanError::InvalidSetup`] if `n_agents` is zero.
    ///
    /// [`ClanError::WorkerFailure`] if the OS cannot spawn an agent
    /// thread.
    pub fn spawn_local(
        n_agents: usize,
        workload: Workload,
        mode: InferenceMode,
        cfg: NeatConfig,
    ) -> Result<EdgeCluster, ClanError> {
        Self::spawn_local_spec(n_agents, ClusterSpec::new(workload, mode, cfg))
    }

    /// [`spawn_local`](EdgeCluster::spawn_local) with a full
    /// [`ClusterSpec`].
    ///
    /// # Errors
    ///
    /// [`ClanError::Transport`] if binding or connecting fails, and
    /// [`ClanError::InvalidSetup`] if `n_agents` is zero.
    ///
    /// [`ClanError::WorkerFailure`] if the OS cannot spawn an agent
    /// thread.
    pub fn spawn_local_spec(n_agents: usize, spec: ClusterSpec) -> Result<EdgeCluster, ClanError> {
        if n_agents == 0 {
            return Err(ClanError::InvalidSetup {
                reason: "cluster needs at least one agent".into(),
            });
        }
        let mut links = Vec::with_capacity(n_agents);
        for i in 0..n_agents {
            let server = AgentServer::bind("127.0.0.1:0")?;
            // Connect before spawning the serving thread: the pending
            // connection waits in the listener's backlog, and a connect
            // failure leaves no thread parked forever in accept().
            let transport = TcpTransport::connect(server.local_addr())?;
            let handle = spawn_agent_thread(i, format!("clan-agent-{i}"), move || {
                if let Err(e) = server.serve_once() {
                    eprintln!("clan-agent-{i}: {e}");
                }
            })?;
            links.push(AgentLink::new(Box::new(transport), Some(handle)));
        }
        Self::configured(links, spec, Respawn::LoopbackTcp)
    }

    /// Spawns `n_agents` agent threads each serving a **real UDP
    /// socket** on `127.0.0.1` — the loss-tolerant datagram stack
    /// ([`UdpTransport`](crate::transport::UdpTransport)), loopback, in
    /// one process.
    ///
    /// # Errors
    ///
    /// [`ClanError::Transport`] if binding or connecting fails, and
    /// [`ClanError::InvalidSetup`] if `n_agents` is zero.
    ///
    /// [`ClanError::WorkerFailure`] if the OS cannot spawn an agent
    /// thread.
    pub fn spawn_local_udp(
        n_agents: usize,
        workload: Workload,
        mode: InferenceMode,
        cfg: NeatConfig,
    ) -> Result<EdgeCluster, ClanError> {
        Self::spawn_local_udp_spec(n_agents, ClusterSpec::new(workload, mode, cfg))
    }

    /// [`spawn_local_udp`](EdgeCluster::spawn_local_udp) with a full
    /// [`ClusterSpec`].
    ///
    /// # Errors
    ///
    /// See [`spawn_local_udp`](EdgeCluster::spawn_local_udp).
    ///
    /// [`ClanError::WorkerFailure`] if the OS cannot spawn an agent
    /// thread.
    pub fn spawn_local_udp_spec(
        n_agents: usize,
        spec: ClusterSpec,
    ) -> Result<EdgeCluster, ClanError> {
        Self::spawn_local_udp_cfg(n_agents, spec, UdpConfig::default())
    }

    /// [`spawn_local_udp`](EdgeCluster::spawn_local_udp) with explicit
    /// datagram tuning and (optionally) seeded fault injection: the
    /// config's [`faults`](UdpConfig::faults) are applied on the
    /// coordinator side of every link with a per-link RNG
    /// ([`FaultConfig::for_link`](crate::transport::FaultConfig::for_link)),
    /// making both directions of each link lossy. The ARQ layer recovers
    /// every injected fault, so results stay bit-identical to a clean
    /// run — `tests/lossy_equivalence.rs` pins that at 20 % loss.
    ///
    /// # Errors
    ///
    /// See [`spawn_local_udp`](EdgeCluster::spawn_local_udp).
    ///
    /// [`ClanError::WorkerFailure`] if the OS cannot spawn an agent
    /// thread.
    pub fn spawn_local_udp_cfg(
        n_agents: usize,
        spec: ClusterSpec,
        udp: UdpConfig,
    ) -> Result<EdgeCluster, ClanError> {
        if n_agents == 0 {
            return Err(ClanError::InvalidSetup {
                reason: "cluster needs at least one agent".into(),
            });
        }
        // Agents run the same tuning but never inject faults themselves:
        // the coordinator-side wrapper already perturbs both directions.
        let agent_udp = UdpConfig {
            faults: None,
            ..udp.clone()
        };
        let mut links = Vec::with_capacity(n_agents);
        for i in 0..n_agents {
            let mut server = UdpAgentServer::bind("127.0.0.1:0")?.with_config(agent_udp.clone());
            let addr = server.local_addr();
            let handle = spawn_agent_thread(i, format!("clan-agent-{i}"), move || {
                if let Err(e) = server.serve_once() {
                    eprintln!("clan-agent-{i}: {e}");
                }
            })?;
            let transport = udp.transport_to(addr, i)?;
            links.push(AgentLink::new(transport, Some(handle)));
        }
        Self::configured(
            links,
            spec,
            Respawn::LoopbackUdp {
                coordinator: udp,
                agent: agent_udp,
            },
        )
    }

    /// Connects to already-running **UDP** agent processes (started with
    /// `clan-cli agent --udp --listen ADDR`) and pushes the session
    /// configuration to each.
    ///
    /// # Errors
    ///
    /// [`ClanError::Transport`] if a socket cannot be created, and
    /// [`ClanError::InvalidSetup`] on an empty address list. (UDP has no
    /// connection handshake — an unreachable agent surfaces as a
    /// [`ClanError::Timeout`] on the first exchange instead.)
    pub fn connect_udp(addrs: &[String], spec: ClusterSpec) -> Result<EdgeCluster, ClanError> {
        Self::connect_udp_cfg(addrs, spec, UdpConfig::default())
    }

    /// [`connect_udp`](EdgeCluster::connect_udp) with explicit datagram
    /// tuning and optional coordinator-side fault injection.
    ///
    /// # Errors
    ///
    /// See [`connect_udp`](EdgeCluster::connect_udp).
    pub fn connect_udp_cfg(
        addrs: &[String],
        spec: ClusterSpec,
        udp: UdpConfig,
    ) -> Result<EdgeCluster, ClanError> {
        if addrs.is_empty() {
            return Err(ClanError::InvalidSetup {
                reason: "cluster needs at least one agent address".into(),
            });
        }
        let mut links = Vec::with_capacity(addrs.len());
        for (i, addr) in addrs.iter().enumerate() {
            links.push(
                AgentLink::new(udp.transport_to(addr.as_str(), i)?, None)
                    .with_origin(LinkOrigin::Udp(addr.clone(), udp.clone())),
            );
        }
        Self::configured(
            links,
            spec,
            Respawn::RemoteUdp {
                coordinator: udp,
                spares: VecDeque::new(),
            },
        )
    }

    /// Connects to already-running agent processes (started with
    /// `clan-cli agent --listen ADDR`) and pushes the session
    /// configuration to each.
    ///
    /// # Errors
    ///
    /// [`ClanError::Transport`] if any agent is unreachable, and
    /// [`ClanError::InvalidSetup`] on an empty address list.
    pub fn connect(addrs: &[String], spec: ClusterSpec) -> Result<EdgeCluster, ClanError> {
        if addrs.is_empty() {
            return Err(ClanError::InvalidSetup {
                reason: "cluster needs at least one agent address".into(),
            });
        }
        let mut links = Vec::with_capacity(addrs.len());
        for addr in addrs {
            links.push(
                AgentLink::new(Box::new(TcpTransport::connect(addr.as_str())?), None)
                    .with_origin(LinkOrigin::Tcp(addr.clone())),
            );
        }
        Self::configured(
            links,
            spec,
            Respawn::RemoteTcp {
                spares: VecDeque::new(),
            },
        )
    }

    /// Builds a cluster over caller-supplied transports whose agent
    /// sides are already being served (e.g. channel pairs with
    /// [`serve_session`] threads, possibly wrapped in a
    /// [`DelayTransport`](crate::transport::DelayTransport) to emulate
    /// a slow device). The cluster does not own the serving threads.
    ///
    /// # Errors
    ///
    /// [`ClanError::InvalidSetup`] on an empty transport list, plus any
    /// configuration-push failure.
    pub fn connect_transports(
        transports: Vec<Box<dyn Transport>>,
        spec: ClusterSpec,
    ) -> Result<EdgeCluster, ClanError> {
        if transports.is_empty() {
            return Err(ClanError::InvalidSetup {
                reason: "cluster needs at least one transport".into(),
            });
        }
        let links = transports
            .into_iter()
            .map(|t| AgentLink::new(t, None))
            .collect();
        Self::configured(links, spec, Respawn::External)
    }

    /// Pushes `Configure` to every link (control traffic: counted in
    /// bytes, invisible to the analytic model).
    fn configured(
        mut links: Vec<AgentLink>,
        spec: ClusterSpec,
        respawn: Respawn,
    ) -> Result<EdgeCluster, ClanError> {
        let msg = WireMessage::Configure(Box::new(spec.clone()));
        let mut control_bytes = 0;
        for link in &mut links {
            control_bytes += send_message(link.transport.as_mut(), &msg)?;
        }
        let cache = spec.cache.then(FitnessCache::new);
        Ok(EdgeCluster {
            links,
            spec,
            ledger: CommLedger::new(),
            control_bytes,
            calibrate: false,
            gather: GatherStats::default(),
            policy: RecoveryPolicy::default(),
            recovery: RecoveryStats::default(),
            churn: None,
            round: 0,
            respawn,
            cache,
            tracer: Tracer::default(),
        })
    }

    /// Number of agent link slots (including dead ones, whose slots are
    /// kept so per-agent accounting stays aligned — see
    /// [`live_agents`](EdgeCluster::live_agents)).
    pub fn n_agents(&self) -> usize {
        self.links.len()
    }

    /// Number of links not currently marked [`LinkHealth::Dead`].
    pub fn live_agents(&self) -> usize {
        self.links.iter().filter(|l| l.health.is_live()).count()
    }

    /// Sets per-agent capability weights: relative throughputs that
    /// every scatter partitions work by (see
    /// [`clan_distsim::partition_weighted`]). Equal weights (the
    /// default 1.0) reproduce the even split exactly.
    ///
    /// # Errors
    ///
    /// [`ClanError::InvalidSetup`] if the length does not match the
    /// agent count, or any weight is negative/non-finite, or all are
    /// zero.
    pub fn set_weights(&mut self, weights: &[f64]) -> Result<(), ClanError> {
        if weights.len() != self.links.len() {
            return Err(ClanError::InvalidSetup {
                reason: format!(
                    "{} weight(s) for {} agent(s)",
                    weights.len(),
                    self.links.len()
                ),
            });
        }
        if !weights.iter().all(|w| w.is_finite() && *w >= 0.0) || weights.iter().sum::<f64>() <= 0.0
        {
            return Err(ClanError::InvalidSetup {
                reason: "agent weights must be finite, non-negative, and not all zero".into(),
            });
        }
        for (link, &w) in self.links.iter_mut().zip(weights) {
            link.weight = w;
        }
        Ok(())
    }

    /// Builder-style [`set_weights`](EdgeCluster::set_weights).
    ///
    /// # Errors
    ///
    /// See [`set_weights`](EdgeCluster::set_weights).
    pub fn with_weights(mut self, weights: &[f64]) -> Result<EdgeCluster, ClanError> {
        self.set_weights(weights)?;
        Ok(self)
    }

    /// Seeds capability weights from the static platform throughput
    /// model: each agent's weight is its platform's modeled inference
    /// genes/second (paper Table IV calibration).
    ///
    /// # Errors
    ///
    /// See [`set_weights`](EdgeCluster::set_weights).
    pub fn set_weights_from_platforms(
        &mut self,
        platforms: &[clan_hw::Platform],
    ) -> Result<(), ClanError> {
        let weights: Vec<f64> = platforms
            .iter()
            .map(|p| p.inference_genes_per_sec)
            .collect();
        self.set_weights(&weights)
    }

    /// Enables (or disables) round-trip-time calibration: after each
    /// evaluation round, every link's weight is recalibrated toward its
    /// measured throughput (an EWMA of genomes/second), so partitions
    /// track how fast agents *actually* are rather than how fast the
    /// static weights claim. Results stay bit-identical — only chunk
    /// sizes change, and replay is always in genome-id order.
    pub fn set_calibration(&mut self, enabled: bool) {
        self.calibrate = enabled;
    }

    /// Builder-style [`set_calibration`](EdgeCluster::set_calibration).
    pub fn with_calibration(mut self, enabled: bool) -> EdgeCluster {
        self.set_calibration(enabled);
        self
    }

    /// The static capability weights currently configured.
    pub fn weights(&self) -> Vec<f64> {
        self.links.iter().map(|l| l.weight).collect()
    }

    /// The weights the next scatter will actually partition by.
    ///
    /// Measured throughputs are used only once every positive-weight
    /// link has one — mixing measured genomes/second with static
    /// weights on an arbitrary scale would skew the split; until then
    /// (and whenever calibration is off) the static weights apply.
    pub fn effective_weights(&self) -> Vec<f64> {
        let calibrated = self.calibrate
            && self
                .links
                .iter()
                .all(|l| l.weight <= 0.0 || l.measured.is_some());
        if calibrated {
            self.links
                .iter()
                .map(|l| {
                    if l.weight <= 0.0 {
                        0.0
                    } else {
                        l.measured.unwrap_or(0.0)
                    }
                })
                .collect()
        } else {
            self.weights()
        }
    }

    /// Measured scatter/gather timing accumulated so far.
    pub fn gather_stats(&self) -> GatherStats {
        self.gather
    }

    /// Installs a telemetry handle. The runtime emits Timing-class
    /// annotations only (per-link spans, retransmissions, churn
    /// transitions); the deterministic logical stream is produced by
    /// the orchestrators.
    pub fn set_tracer(&mut self, tracer: Tracer) {
        self.tracer = tracer;
    }

    /// Sets the recovery policy (retry budget, live-agent floor).
    pub fn set_recovery_policy(&mut self, policy: RecoveryPolicy) {
        self.policy = policy;
    }

    /// Builder-style [`set_recovery_policy`](EdgeCluster::set_recovery_policy).
    pub fn with_recovery_policy(mut self, policy: RecoveryPolicy) -> EdgeCluster {
        self.set_recovery_policy(policy);
        self
    }

    /// The recovery policy in force.
    pub fn recovery_policy(&self) -> RecoveryPolicy {
        self.policy
    }

    /// Everything surviving churn has cost so far.
    pub fn recovery_stats(&self) -> RecoveryStats {
        self.recovery.clone()
    }

    /// Per-link membership snapshot (index = link slot).
    pub fn membership(&self) -> Vec<AgentHealth> {
        self.links
            .iter()
            .enumerate()
            .map(|(i, l)| AgentHealth {
                health: l.health,
                failures: self.recovery.agent_failures.get(i).copied().unwrap_or(0),
                last_error: l.last_error.clone(),
            })
            .collect()
    }

    /// Installs a deterministic kill/revive plan, applied at scatter
    /// round boundaries (each `evaluate`/`build_children` call is one
    /// round).
    ///
    /// # Errors
    ///
    /// [`ClanError::InvalidSetup`] if the schedule names an agent slot
    /// this cluster does not have, or schedules revivals on a cluster
    /// that cannot mint replacement agents (caller-supplied transports
    /// without [`set_spares`](EdgeCluster::set_spares)).
    pub fn set_churn(&mut self, schedule: ChurnSchedule) -> Result<(), ClanError> {
        if let Some(max) = schedule.max_agent() {
            if max >= self.links.len() {
                return Err(ClanError::InvalidSetup {
                    reason: format!(
                        "churn schedule names agent {max}, cluster has {} slot(s)",
                        self.links.len()
                    ),
                });
            }
        }
        if schedule.has_revivals() && !self.can_respawn() {
            return Err(ClanError::InvalidSetup {
                reason: "churn schedule revives agents but this cluster cannot mint \
                         replacements (connect via loopback, or supply standby \
                         addresses with set_spares)"
                    .into(),
            });
        }
        self.churn = Some(schedule);
        Ok(())
    }

    /// Builder-style [`set_churn`](EdgeCluster::set_churn).
    ///
    /// # Errors
    ///
    /// See [`set_churn`](EdgeCluster::set_churn).
    pub fn with_churn(mut self, schedule: ChurnSchedule) -> Result<EdgeCluster, ClanError> {
        self.set_churn(schedule)?;
        Ok(self)
    }

    /// Registers standby agent addresses a remote cluster may connect
    /// when a revival or [`admit_local`](EdgeCluster::admit_local) needs
    /// a replacement (`clan-cli coordinate --spare-at`). Consumed in
    /// order.
    ///
    /// # Errors
    ///
    /// [`ClanError::InvalidSetup`] on clusters whose agents are spawned
    /// in-process (they mint their own replacements) or caller-supplied.
    pub fn set_spares(&mut self, addrs: Vec<String>) -> Result<(), ClanError> {
        match &mut self.respawn {
            Respawn::RemoteTcp { spares } | Respawn::RemoteUdp { spares, .. } => {
                spares.extend(addrs);
                Ok(())
            }
            _ => Err(ClanError::InvalidSetup {
                reason: "spare agent addresses apply to remote clusters only \
                         (connect / connect_udp)"
                    .into(),
            }),
        }
    }

    fn can_respawn(&self) -> bool {
        match &self.respawn {
            Respawn::External => false,
            Respawn::Channel | Respawn::LoopbackTcp | Respawn::LoopbackUdp { .. } => true,
            Respawn::RemoteTcp { spares } => !spares.is_empty(),
            Respawn::RemoteUdp { spares, .. } => !spares.is_empty(),
        }
    }

    /// Mints a replacement agent for link slot `slot` from this
    /// cluster's respawn source (unconfigured — the caller pushes
    /// `Configure`).
    fn mint_agent(&mut self, slot: usize) -> Result<MintedAgent, ClanError> {
        let spawn_thread =
            |name: String, f: Box<dyn FnOnce() + Send>| spawn_agent_thread(slot, name, f);
        match &mut self.respawn {
            Respawn::External => Err(ClanError::InvalidSetup {
                reason: "this cluster cannot mint replacement agents \
                         (caller-supplied transports)"
                    .into(),
            }),
            Respawn::Channel => {
                let (coord, mut agent_side) = channel_pair();
                let handle = spawn_thread(
                    format!("clan-agent-join-{slot}"),
                    Box::new(move || {
                        if let Err(e) = serve_session(&mut agent_side) {
                            eprintln!("clan-agent-join-{slot}: {e}");
                        }
                    }),
                )?;
                Ok((Box::new(coord), Some(handle), None))
            }
            Respawn::LoopbackTcp => {
                let server = AgentServer::bind("127.0.0.1:0")?;
                let transport = TcpTransport::connect(server.local_addr())?;
                let handle = spawn_thread(
                    format!("clan-agent-join-{slot}"),
                    Box::new(move || {
                        if let Err(e) = server.serve_once() {
                            eprintln!("clan-agent-join-{slot}: {e}");
                        }
                    }),
                )?;
                Ok((Box::new(transport), Some(handle), None))
            }
            Respawn::LoopbackUdp { coordinator, agent } => {
                let mut server = UdpAgentServer::bind("127.0.0.1:0")?.with_config(agent.clone());
                let addr = server.local_addr();
                let transport = coordinator.transport_to(addr, slot)?;
                let handle = spawn_thread(
                    format!("clan-agent-join-{slot}"),
                    Box::new(move || {
                        if let Err(e) = server.serve_once() {
                            eprintln!("clan-agent-join-{slot}: {e}");
                        }
                    }),
                )?;
                Ok((transport, Some(handle), None))
            }
            Respawn::RemoteTcp { spares } => {
                let addr = spares.pop_front().ok_or_else(|| ClanError::InvalidSetup {
                    reason: "no spare agent addresses left (see set_spares / --spare-at)".into(),
                })?;
                Ok((
                    Box::new(TcpTransport::connect(addr.as_str())?),
                    None,
                    Some(LinkOrigin::Tcp(addr)),
                ))
            }
            Respawn::RemoteUdp {
                coordinator,
                spares,
            } => {
                let addr = spares.pop_front().ok_or_else(|| ClanError::InvalidSetup {
                    reason: "no spare agent addresses left (see set_spares / --spare-at)".into(),
                })?;
                Ok((
                    coordinator.transport_to(addr.as_str(), slot)?,
                    None,
                    Some(LinkOrigin::Udp(addr, coordinator.clone())),
                ))
            }
        }
    }

    /// Kills link `slot`: its transport is replaced by a
    /// [`DeadTransport`], so every subsequent exchange with it fails
    /// exactly like an unplugged device and the normal recovery path
    /// takes over. The agent behind the link observes a disconnect (or
    /// liveness timeout) and ends its session; an in-process agent
    /// thread is detached rather than joined.
    ///
    /// # Errors
    ///
    /// [`ClanError::InvalidSetup`] on an out-of-range slot.
    pub fn kill_agent(&mut self, slot: usize) -> Result<(), ClanError> {
        let link = self
            .links
            .get_mut(slot)
            .ok_or_else(|| ClanError::InvalidSetup {
                reason: format!("kill: no agent slot {slot}"),
            })?;
        let peer = link.transport.peer();
        link.transport = Box::new(DeadTransport::new(peer));
        link.poisoned = true;
        // An injected kill must stick: clearing the origin prevents the
        // automatic session re-establishment a transient failure gets.
        link.origin = None;
        // Detach: a UDP loopback agent only notices the death at its
        // idle deadline, and shutdown must not wait for that.
        drop(link.handle.take());
        self.tracer.timing(EventKind::AgentKilled, |ev| {
            ev.agent = Some(slot as u64);
        });
        Ok(())
    }

    /// Revives link `slot` with a freshly minted replacement agent:
    /// same slot (per-agent accounting stays aligned), same static
    /// weight, fresh health and calibration, `Configure`d with the
    /// session spec.
    ///
    /// # Errors
    ///
    /// [`ClanError::InvalidSetup`] on an out-of-range slot or a cluster
    /// with no respawn source, plus any transport failure while
    /// connecting or configuring the replacement.
    pub fn revive_agent(&mut self, slot: usize) -> Result<(), ClanError> {
        if slot >= self.links.len() {
            return Err(ClanError::InvalidSetup {
                reason: format!("revive: no agent slot {slot}"),
            });
        }
        let (mut transport, handle, origin) = self.mint_agent(slot)?;
        let msg = WireMessage::Configure(Box::new(self.spec.clone()));
        self.control_bytes += send_message(transport.as_mut(), &msg)?;
        let link = &mut self.links[slot];
        // Replacing the transport drops the old one; a still-running old
        // agent observes the disconnect and ends its session quietly.
        drop(link.handle.take());
        link.transport = transport;
        link.handle = handle;
        link.health = LinkHealth::Alive;
        link.last_error = None;
        link.measured = None;
        link.poisoned = false;
        link.origin = origin;
        self.tracer.timing(EventKind::AgentRevived, |ev| {
            ev.agent = Some(slot as u64);
        });
        Ok(())
    }

    /// Admits a new agent mid-run over a caller-supplied transport: the
    /// agent is `Configure`d with the current session spec and appended
    /// as a new link slot with weight `weight`. Returns the slot index.
    ///
    /// The next scatter includes the newcomer; under calibration it is
    /// measured like any founding member (effective weights fall back
    /// to static until every live link has a measurement, exactly as at
    /// startup).
    ///
    /// # Errors
    ///
    /// [`ClanError::InvalidSetup`] on a non-finite or negative weight,
    /// plus any failure pushing `Configure`.
    pub fn admit_transport_weighted(
        &mut self,
        mut transport: Box<dyn Transport>,
        weight: f64,
    ) -> Result<usize, ClanError> {
        if !weight.is_finite() || weight < 0.0 {
            return Err(ClanError::InvalidSetup {
                reason: format!("admitted agent weight must be finite and >= 0, got {weight}"),
            });
        }
        let msg = WireMessage::Configure(Box::new(self.spec.clone()));
        self.control_bytes += send_message(transport.as_mut(), &msg)?;
        let mut link = AgentLink::new(transport, None);
        link.weight = weight;
        self.links.push(link);
        self.recovery.joins += 1;
        let slot = self.links.len() - 1;
        self.tracer.timing(EventKind::AgentJoined, |ev| {
            ev.agent = Some(slot as u64);
        });
        Ok(slot)
    }

    /// [`admit_transport_weighted`](EdgeCluster::admit_transport_weighted)
    /// with the default weight 1.0.
    ///
    /// # Errors
    ///
    /// See [`admit_transport_weighted`](EdgeCluster::admit_transport_weighted).
    pub fn admit_transport(&mut self, transport: Box<dyn Transport>) -> Result<usize, ClanError> {
        self.admit_transport_weighted(transport, 1.0)
    }

    /// Admits a new agent minted from this cluster's own respawn source
    /// (an in-process thread for spawned clusters, the next spare
    /// address for remote ones) — mid-run scale-out. Returns the new
    /// slot index.
    ///
    /// # Errors
    ///
    /// [`ClanError::InvalidSetup`] when no replacement source exists,
    /// plus any connect/configure failure.
    pub fn admit_local(&mut self) -> Result<usize, ClanError> {
        let slot = self.links.len();
        let (mut transport, handle, origin) = self.mint_agent(slot)?;
        let msg = WireMessage::Configure(Box::new(self.spec.clone()));
        self.control_bytes += send_message(transport.as_mut(), &msg)?;
        let mut link = AgentLink::new(transport, handle);
        link.origin = origin;
        self.links.push(link);
        self.recovery.joins += 1;
        self.tracer.timing(EventKind::AgentJoined, |ev| {
            ev.agent = Some(slot as u64);
        });
        Ok(slot)
    }

    /// Advances the scatter round and applies any churn events due.
    fn apply_churn(&mut self) -> Result<(), ClanError> {
        let round = self.round;
        self.round += 1;
        self.recovery.rounds += 1;
        let Some(churn) = &self.churn else {
            return Ok(());
        };
        let due: Vec<(usize, ChurnAction)> = churn
            .events_at(round)
            .map(|e| (e.agent, e.action))
            .collect();
        for (agent, action) in due {
            match action {
                ChurnAction::Kill => {
                    self.kill_agent(agent)?;
                    self.recovery.kills += 1;
                }
                ChurnAction::Revive => {
                    self.revive_agent(agent)?;
                    self.recovery.joins += 1;
                }
            }
        }
        Ok(())
    }

    /// Traffic observed on this cluster's transport, with both the
    /// analytic model's float accounting and the measured wire bytes.
    ///
    /// Kinds map onto the protocol: `Evaluate` → `SendGenomes`,
    /// `Fitness` → `SendFitness`, `BuildChildren` → `SendParentGenomes`
    /// (its spec list contributes the parent-list floats), `Children` →
    /// `SendChildren`.
    pub fn ledger(&self) -> &CommLedger {
        &self.ledger
    }

    /// Wire bytes spent on control messages (`Configure`/`Shutdown`)
    /// that the analytic model does not account at all.
    pub fn control_wire_bytes(&self) -> u64 {
        self.control_bytes
    }

    /// The NEAT configuration agents compile genomes with.
    pub fn neat_config(&self) -> &NeatConfig {
        &self.spec.cfg
    }

    /// The weights the next scatter attempt partitions by: effective
    /// weights with dead links — and links already failed this round —
    /// zeroed out.
    fn scatter_weights(&self, failed_this_round: &[bool]) -> Vec<f64> {
        self.effective_weights()
            .into_iter()
            .enumerate()
            .map(|(i, w)| {
                if !self.links[i].health.is_live() || failed_this_round[i] {
                    0.0
                } else {
                    w
                }
            })
            .collect()
    }

    /// Marks link `i` failed with churn-class error `e`: health
    /// transition, recovery accounting, and **session poisoning** — the
    /// transport is replaced with a [`DeadTransport`] because its
    /// request/response pairing can no longer be trusted (a timed-out
    /// agent's late reply would otherwise answer the *next* round's
    /// request and surface as a protocol violation). The link is
    /// re-established from its origin before the next probe
    /// ([`resync_poisoned_links`](EdgeCluster::resync_poisoned_links))
    /// or strikes out fast.
    fn note_link_failure(
        links: &mut [AgentLink],
        recovery: &mut RecoveryStats,
        i: usize,
        e: &ClanError,
    ) {
        let link = &mut links[i];
        link.health = link.health.on_failure();
        link.last_error = Some(e.to_string());
        if !link.poisoned {
            let peer = link.transport.peer();
            link.transport = Box::new(DeadTransport::new(peer));
            link.poisoned = true;
            // The agent thread (if in-process) observes the dropped
            // session and exits on its own; never block a gather on it.
            drop(link.handle.take());
        }
        recovery.note_failure(i);
    }

    /// Re-establishes a fresh session on every poisoned-but-live link
    /// that has an origin to reconnect to: new transport, `Configure`
    /// pushed, calibration reset. Links without an origin (in-process
    /// agents, injected kills) and failed reconnects stay poisoned —
    /// their next probe fails fast and counts a strike, so a genuinely
    /// dead device converges to `Dead` without timeout waits, while a
    /// transiently slow one comes back with a clean session.
    fn resync_poisoned_links(&mut self) {
        for i in 0..self.links.len() {
            let link = &self.links[i];
            if !link.poisoned || !link.health.is_live() {
                continue;
            }
            let Some(origin) = link.origin.clone() else {
                continue;
            };
            let fresh: Result<Box<dyn Transport>, ClanError> = match &origin {
                LinkOrigin::Tcp(addr) => {
                    TcpTransport::connect(addr.as_str()).map(|t| Box::new(t) as Box<dyn Transport>)
                }
                LinkOrigin::Udp(addr, cfg) => cfg.transport_to(addr.as_str(), i),
            };
            let Ok(mut transport) = fresh else {
                continue; // stays poisoned; the probe records the strike
            };
            let msg = WireMessage::Configure(Box::new(self.spec.clone()));
            if let Ok(bytes) = send_message(transport.as_mut(), &msg) {
                self.control_bytes += bytes;
                let link = &mut self.links[i];
                link.transport = transport;
                link.poisoned = false;
                link.measured = None;
            }
        }
    }

    /// Scatters one request per link (skipping `None` entries) and
    /// gathers the responses **out of order**: a reader thread per
    /// pending link banks each response the moment it arrives, so a
    /// fast agent never waits behind a slow one in the collection loop.
    /// All bookkeeping — ledger rows, calibration, membership marking —
    /// then replays in link order, keeping every observable effect
    /// deterministic regardless of arrival order.
    ///
    /// Churn-class failures (`Transport`/`Timeout`, on send or receive)
    /// do **not** abort the exchange: the failed link is marked in the
    /// membership table and its slot reports the error, so the caller
    /// can reassign the lost chunk. Non-churn errors (protocol, frame)
    /// are bugs and propagate immediately.
    ///
    /// Each request carries its work-item count; when
    /// `calibrate_throughput` is set the per-link round-trip time feeds
    /// the EWMA throughput estimate behind
    /// [`effective_weights`](EdgeCluster::effective_weights).
    fn exchange(
        &mut self,
        send_kind: MessageKind,
        recv_kind: MessageKind,
        requests: &[Option<(WireMessage, u64)>],
        calibrate_throughput: bool,
    ) -> Result<ExchangeOutcome, ClanError> {
        let round = self.round;
        let EdgeCluster {
            links,
            ledger,
            gather,
            calibrate,
            recovery,
            tracer,
            ..
        } = self;
        debug_assert_eq!(requests.len(), links.len());
        // Scatter in link order; a churn-class send failure claims the
        // slot instead of aborting the round.
        let mut responses: Vec<Option<Result<WireMessage, ClanError>>> =
            (0..links.len()).map(|_| None).collect();
        let mut sent = vec![false; links.len()];
        for (i, req) in requests.iter().enumerate() {
            if let Some((msg, _)) = req {
                match send_message(links[i].transport.as_mut(), msg) {
                    Ok(bytes) => {
                        ledger.record_agent_wire(i, send_kind, msg.modeled_floats(), bytes);
                        sent[i] = true;
                    }
                    Err(e) if is_churn_error(&e) => {
                        Self::note_link_failure(links, recovery, i, &e);
                        tracer.timing(EventKind::AgentFailure, |ev| {
                            ev.agent = Some(i as u64);
                            ev.label = Some(e.to_string());
                        });
                        responses[i] = Some(Err(e));
                    }
                    Err(e) => return Err(e),
                }
            }
        }
        // Gather out of order: one reader thread per successfully sent
        // link.
        // clan-lint: allow(D2, reason="GatherStats wall-clock measurement; reported, never fed back into evolution")
        let start = Instant::now();
        let mut slots: Vec<GatherSlot> = (0..links.len()).map(|_| None).collect();
        std::thread::scope(|s| {
            let (tx, rx) = std::sync::mpsc::channel();
            let mut pending = 0usize;
            for (i, (link, was_sent)) in links.iter_mut().zip(&sent).enumerate() {
                if !*was_sent {
                    continue;
                }
                pending += 1;
                let tx = tx.clone();
                let transport: &mut dyn Transport = link.transport.as_mut();
                s.spawn(move || {
                    let result = recv_message(transport);
                    let _ = tx.send((i, result, start.elapsed().as_secs_f64()));
                });
            }
            drop(tx);
            for (i, result, elapsed) in rx.iter().take(pending) {
                slots[i] = Some((result, elapsed));
            }
        });
        // Replay in link order (deterministic bookkeeping).
        let mut makespan = 0.0f64;
        let mut busy = 0.0f64;
        let mut hard_err: Option<ClanError> = None;
        for (i, slot) in slots.into_iter().enumerate() {
            match slot {
                None => {}
                Some((Ok((msg, bytes)), elapsed)) => {
                    ledger.record_agent_wire(i, recv_kind, msg.modeled_floats(), bytes);
                    makespan = makespan.max(elapsed);
                    busy += elapsed;
                    tracer.timing(EventKind::AgentExchange, |ev| {
                        ev.agent = Some(i as u64);
                        ev.dur_us = Some((elapsed * 1e6) as u64);
                        ev.items = requests[i].as_ref().map(|(_, work)| *work);
                    });
                    if calibrate_throughput && *calibrate {
                        if let Some((_, work)) = &requests[i] {
                            if *work > 0 {
                                let throughput = *work as f64 / elapsed.max(1e-6);
                                let link = &mut links[i];
                                link.measured = Some(match link.measured {
                                    Some(prev) => {
                                        EWMA_ALPHA * throughput + (1.0 - EWMA_ALPHA) * prev
                                    }
                                    None => throughput,
                                });
                            }
                        }
                    }
                    let link = &mut links[i];
                    link.health = link.health.on_success();
                    link.last_error = None;
                    responses[i] = Some(Ok(msg));
                }
                Some((Err(e), _)) if is_churn_error(&e) => {
                    Self::note_link_failure(links, recovery, i, &e);
                    tracer.timing(EventKind::AgentFailure, |ev| {
                        ev.agent = Some(i as u64);
                        ev.label = Some(e.to_string());
                    });
                    responses[i] = Some(Err(e));
                }
                Some((Err(e), _)) if hard_err.is_none() => hard_err = Some(e),
                Some((Err(_), _)) => {}
            }
        }
        if let Some(e) = hard_err {
            return Err(e);
        }
        // Fold each link's loss-recovery overhead (retransmitted +
        // duplicate datagrams, zero on reliable transports) into the
        // ledger's retransmission column, attributed per agent.
        for (i, link) in links.iter_mut().enumerate() {
            let stats = link.transport.take_link_stats();
            if stats.overhead_bytes() > 0 {
                ledger.record_agent_retrans(i, stats.overhead_bytes());
                tracer.timing(EventKind::Retransmission, |ev| {
                    ev.agent = Some(i as u64);
                    ev.bytes = Some(stats.overhead_bytes());
                });
            }
        }
        gather.gathers += 1;
        gather.makespan_s += makespan;
        gather.busy_s += busy;
        tracer.timing(EventKind::GatherRound, |ev| {
            ev.items = Some(round);
            ev.dur_us = Some((makespan * 1e6) as u64);
        });
        Ok(ExchangeOutcome {
            responses,
            makespan_s: makespan,
        })
    }

    /// Checks the recovery policy before a scatter attempt: at least
    /// one usable link, and no fewer than the policy's floor. When the
    /// round degrades *because of failures*, the last link error (the
    /// root cause) is returned instead of a generic degradation.
    fn check_floor(
        &self,
        usable: usize,
        last_err: &mut Option<ClanError>,
    ) -> Result<(), ClanError> {
        let required = self.policy.min_agents.max(1);
        if usable >= required {
            return Ok(());
        }
        Err(last_err.take().unwrap_or(ClanError::Degraded {
            live: usable,
            required,
        }))
    }

    /// The elastic scatter shared by inference and reproduction: apply
    /// due churn, re-establish poisoned sessions, partition `items`
    /// over the usable links, exchange, and — when a link fails —
    /// reassign its chunk across the links that have not failed this
    /// round and retry, within the recovery policy's budget and floor.
    ///
    /// `make_request` builds one wire message per non-empty chunk;
    /// `handle_response` validates a link's reply (given its peer label
    /// for error messages) and returns the chunk's result items.
    /// Results are returned in completion order — the caller reorders
    /// by id, which is what makes a churned run independent of which
    /// agent computed what.
    #[allow(clippy::too_many_arguments)]
    fn scatter_with_recovery<T: Clone, R>(
        &mut self,
        items: &[T],
        send_kind: MessageKind,
        recv_kind: MessageKind,
        calibrate_throughput: bool,
        make_request: &dyn Fn(&[T]) -> WireMessage,
        handle_response: ResponseHandler<'_, T, R>,
    ) -> Result<Vec<R>, ClanError> {
        self.apply_churn()?;
        self.resync_poisoned_links();
        let mut results: Vec<R> = Vec::with_capacity(items.len());
        let mut pending: Vec<T> = items.to_vec();
        let mut failed_this_round = vec![false; self.links.len()];
        let mut last_err: Option<ClanError> = None;
        let mut attempt = 0usize;
        while !pending.is_empty() {
            if attempt > self.policy.max_retries {
                return Err(last_err.take().unwrap_or(ClanError::Degraded {
                    live: self.live_agents(),
                    required: self.policy.min_agents.max(1),
                }));
            }
            let weights = self.scatter_weights(&failed_this_round);
            let usable = weights.iter().filter(|w| **w > 0.0).count();
            self.check_floor(usable, &mut last_err)?;
            let counts = partition_weighted(pending.len(), &weights);
            let chunks = chunk_by_counts(&pending, &counts);
            let requests: Vec<Option<(WireMessage, u64)>> = chunks
                .iter()
                .map(|chunk| (!chunk.is_empty()).then(|| (make_request(chunk), chunk.len() as u64)))
                .collect();
            let outcome = self.exchange(send_kind, recv_kind, &requests, calibrate_throughput)?;
            if attempt > 0 {
                self.recovery.retry_attempts += 1;
                self.recovery.recovery_s += outcome.makespan_s;
            }
            let mut next_pending: Vec<T> = Vec::new();
            for (i, (chunk, slot)) in chunks.iter().zip(outcome.responses).enumerate() {
                match slot {
                    None => {}
                    Some(Ok(msg)) => {
                        let peer = self.links[i].transport.peer();
                        results.extend(handle_response(peer, msg, chunk)?);
                    }
                    Some(Err(e)) => {
                        failed_this_round[i] = true;
                        self.recovery.reassigned_chunks += 1;
                        self.recovery.reassigned_items += chunk.len() as u64;
                        self.tracer.timing(EventKind::ChunkReassigned, |ev| {
                            ev.agent = Some(i as u64);
                            ev.items = Some(chunk.len() as u64);
                        });
                        last_err = Some(e);
                        next_pending.extend_from_slice(chunk);
                    }
                }
            }
            // Failed chunks are contiguous slices of the (id-ordered)
            // pending list taken in link order, so the reassignment
            // list stays id-ordered too.
            pending = next_pending;
            attempt += 1;
        }
        Ok(results)
    }

    /// Distributed inference, returning per-genome results in genome-id
    /// order together with each compiled network's per-activation gene
    /// cost — everything the orchestrators need to replay the paper's
    /// cost accounting bit-identically to a serial run. Does **not**
    /// touch the population's fitness or counters.
    ///
    /// Work is split by the capability weights (even by default) and
    /// responses are gathered out of order. A chunk lost to a failed
    /// agent is reassigned across the links that have not failed this
    /// round and retried (up to [`RecoveryPolicy::max_retries`] times);
    /// because every result carries its genome id and the final batch
    /// is replayed in id order, a churned run returns exactly what a
    /// clean one would.
    ///
    /// # Errors
    ///
    /// [`ClanError::Protocol`]/[`ClanError::Frame`] if an agent
    /// misbehaves (never retried — bugs are not churn),
    /// [`ClanError::InvalidSetup`] on an agent-less cluster, and — when
    /// failures drain the cluster below the policy floor or exhaust the
    /// retry budget — the last link error
    /// ([`ClanError::Transport`]/[`ClanError::Timeout`]) or
    /// [`ClanError::Degraded`].
    pub fn evaluate_collect(&mut self, pop: &Population) -> Result<Vec<WireEvaluation>, ClanError> {
        if self.links.is_empty() {
            return Err(ClanError::InvalidSetup {
                reason: "cluster has no live agents to evaluate on".into(),
            });
        }
        let master_seed = pop.master_seed();
        let generation = pop.generation();
        // Coordinator-side cache filter: hits are replayed locally and
        // only misses cross the wire. The scatter still runs (possibly
        // with zero items) so churn rounds advance on the same cadence
        // with the cache on or off.
        let mut hits: Vec<WireEvaluation> = Vec::new();
        let mut ids: Vec<GenomeId> = Vec::with_capacity(pop.genomes().len());
        let mut hash_of: BTreeMap<GenomeId, u64> = BTreeMap::new();
        match self.cache.as_mut() {
            Some(cache) => {
                for (id, g) in pop.genomes() {
                    let hash = g.content_hash();
                    match cache.lookup(master_seed, hash) {
                        Some(c) => hits.push((*id, c.evaluation, c.genes_per_activation)),
                        None => {
                            ids.push(*id);
                            hash_of.insert(*id, hash);
                        }
                    }
                }
            }
            None => ids.extend(pop.genomes().keys().copied()),
        }
        let mut results = self.scatter_with_recovery(
            &ids,
            MessageKind::SendGenomes,
            MessageKind::SendFitness,
            true,
            &|chunk| WireMessage::Evaluate {
                generation,
                master_seed,
                genomes: chunk
                    .iter()
                    // clan-lint: allow(L1, reason="chunk ids come from partitioning this same population; a miss is a planner bug the process cannot recover from")
                    .map(|id| pop.genome(*id).expect("id from population").clone())
                    .collect(),
            },
            &mut |peer, msg, chunk| {
                let batch = match msg {
                    WireMessage::Fitness(batch) => batch,
                    other => {
                        return Err(ClanError::Protocol {
                            peer,
                            reason: format!("expected Fitness, got {other:?}"),
                        })
                    }
                };
                if batch.len() != chunk.len()
                    || batch.iter().zip(chunk.iter()).any(|(r, id)| r.0 != *id)
                {
                    return Err(ClanError::Protocol {
                        peer,
                        reason: "fitness batch does not match the genomes sent".into(),
                    });
                }
                Ok(batch)
            },
        )?;
        if let Some(cache) = self.cache.as_mut() {
            for &(id, eval, gpa) in &results {
                cache.insert(
                    master_seed,
                    hash_of[&id],
                    CachedEvaluation {
                        evaluation: eval,
                        genes_per_activation: gpa,
                    },
                );
            }
        }
        results.extend(hits);
        // Results carry genome ids; replaying in id order makes the
        // batch independent of which agent computed what (or of which
        // came from the cache).
        results.sort_by_key(|r| r.0);
        Ok(results)
    }

    /// Drains this cluster's fitness-cache `(hits, lookups)` window.
    pub fn take_cache_window(&mut self) -> (u64, u64) {
        if let Some(cache) = &self.cache {
            self.tracer
                .set_gauge("cache.hit_rate", cache.hit_rate_total());
            self.tracer.set_gauge("cache.entries", cache.len() as f64);
        }
        self.cache
            .as_mut()
            .map_or((0, 0), FitnessCache::take_window)
    }

    /// Distributed inference with write-back: scatters the population's
    /// genomes across agents, gathers fitness, and stores it — the
    /// runtime equivalent of CLAN_DCS's inference phase.
    ///
    /// # Errors
    ///
    /// Propagates [`evaluate_collect`](EdgeCluster::evaluate_collect).
    pub fn evaluate(&mut self, pop: &mut Population) -> Result<(), ClanError> {
        for (id, eval, _) in self.evaluate_collect(pop)? {
            pop.set_fitness(id, eval.fitness)?;
        }
        Ok(())
    }

    /// Streaming dispatch-on-completion evaluation — the async
    /// steady-state gather surface. Each live link gets a dedicated
    /// worker thread that sends one-genome `Evaluate` frames and waits
    /// for the matching `Fitness`; the moment any agent answers,
    /// `on_complete` runs on the caller's thread with the result and
    /// returns the next genome to put in flight (`None` ends the
    /// stream once everything in flight has drained). A fast agent
    /// therefore turns over many evaluations while a slow one finishes
    /// its first — no barrier, no tail-agent stall.
    ///
    /// `initial` seeds the pipeline (any size; surplus queues and feeds
    /// agents as they free up). `master_seed` rides in every `Evaluate`
    /// frame so agents derive the same content-based episode seeds as a
    /// local run — per-genome *results* stay deterministic even though
    /// arrival *order* does not.
    ///
    /// Churn tolerance: a churn-class link failure poisons that link
    /// and its in-flight genome is re-dispatched to the next free
    /// surviving agent (counted in [`StreamStats::redispatches`]); the
    /// stream aborts only when live agents fall below the recovery
    /// policy's floor.
    ///
    /// # Errors
    ///
    /// [`ClanError::InvalidSetup`] on an agent-less cluster,
    /// [`ClanError::Protocol`]/[`ClanError::Frame`] if an agent
    /// misbehaves, and [`ClanError::Degraded`] when failures drain the
    /// cluster below [`RecoveryPolicy::min_agents`] (the root-cause
    /// link errors stay visible in the membership table).
    pub fn evaluate_stream(
        &mut self,
        master_seed: u64,
        initial: Vec<Genome>,
        on_complete: &mut dyn FnMut(&StreamCompletion) -> Option<Genome>,
    ) -> Result<StreamStats, ClanError> {
        self.apply_churn()?;
        self.resync_poisoned_links();
        if self.links.is_empty() {
            return Err(ClanError::InvalidSetup {
                reason: "cluster has no live agents to stream to".into(),
            });
        }
        let floor = self.policy.min_agents.max(1);
        let EdgeCluster {
            links,
            ledger,
            recovery,
            tracer,
            ..
        } = self;
        let n_links = links.len();
        let mut stats = StreamStats {
            per_agent_busy_s: vec![0.0; n_links],
            per_agent_completions: vec![0; n_links],
            ..StreamStats::default()
        };
        let mut failures: Vec<(usize, ClanError)> = Vec::new();
        let mut succeeded = vec![false; n_links];
        // clan-lint: allow(D2, reason="StreamStats makespan measurement; reported, never fed back into evolution")
        let started = Instant::now();
        let mut outcome: Result<(), ClanError> = Ok(());
        std::thread::scope(|s| {
            let (etx, erx) = std::sync::mpsc::channel::<StreamEvent>();
            let mut work_tx: Vec<Option<std::sync::mpsc::Sender<(u64, Genome)>>> =
                (0..n_links).map(|_| None).collect();
            for (i, link) in links.iter_mut().enumerate() {
                if link.poisoned {
                    continue;
                }
                let (wtx, wrx) = std::sync::mpsc::channel::<(u64, Genome)>();
                work_tx[i] = Some(wtx);
                let etx = etx.clone();
                let transport: &mut dyn Transport = link.transport.as_mut();
                s.spawn(move || {
                    for (seq, genome) in wrx.iter() {
                        let gid = genome.id();
                        let msg = WireMessage::Evaluate {
                            generation: seq,
                            master_seed,
                            genomes: vec![genome.clone()],
                        };
                        let sent_floats = msg.modeled_floats();
                        // clan-lint: allow(D2, reason="per-agent busy-time measurement for StreamStats; observability only")
                        let t0 = Instant::now();
                        let sent_bytes = match send_message(transport, &msg) {
                            Ok(bytes) => bytes,
                            Err(error) => {
                                let _ = etx.send(StreamEvent::Failed {
                                    agent: i,
                                    genome: Box::new(genome),
                                    error,
                                });
                                return;
                            }
                        };
                        let event = match recv_message(transport) {
                            Ok((reply, recv_bytes)) => {
                                let recv_floats = reply.modeled_floats();
                                match reply {
                                    WireMessage::Fitness(batch) => match batch.as_slice() {
                                        [(id, evaluation, gpa)] if *id == gid => {
                                            StreamEvent::Done {
                                                completion: StreamCompletion {
                                                    agent: i,
                                                    genome: gid,
                                                    evaluation: *evaluation,
                                                    genes_per_activation: *gpa,
                                                },
                                                elapsed_s: t0.elapsed().as_secs_f64(),
                                                sent_floats,
                                                sent_bytes,
                                                recv_floats,
                                                recv_bytes,
                                            }
                                        }
                                        _ => StreamEvent::Hard {
                                            error: ClanError::Protocol {
                                                peer: transport.peer(),
                                                reason: format!(
                                                    "streamed fitness does not match genome {gid}"
                                                ),
                                            },
                                        },
                                    },
                                    other => StreamEvent::Hard {
                                        error: ClanError::Protocol {
                                            peer: transport.peer(),
                                            reason: format!("expected Fitness, got {other:?}"),
                                        },
                                    },
                                }
                            }
                            Err(error) if is_churn_error(&error) => StreamEvent::Failed {
                                agent: i,
                                genome: Box::new(genome),
                                error,
                            },
                            Err(error) => StreamEvent::Hard { error },
                        };
                        let hard = matches!(event, StreamEvent::Hard { .. });
                        let _ = etx.send(event);
                        if hard {
                            return;
                        }
                    }
                });
            }
            drop(etx);
            let mut pending: VecDeque<Genome> = initial.into();
            let mut idle: VecDeque<usize> =
                (0..n_links).filter(|&i| work_tx[i].is_some()).collect();
            let mut in_flight = 0usize;
            let mut live = idle.len();
            let mut seq = 0u64;
            loop {
                // Feed every idle agent while work remains.
                while !pending.is_empty() && !idle.is_empty() {
                    let (Some(agent), Some(genome)) = (idle.pop_front(), pending.pop_front())
                    else {
                        break; // unreachable: both checked non-empty by the loop guard
                    };
                    match &work_tx[agent] {
                        Some(tx) => match tx.send((seq, genome)) {
                            Ok(()) => {
                                seq += 1;
                                in_flight += 1;
                            }
                            Err(std::sync::mpsc::SendError((_, genome))) => {
                                // Worker already exited; its failure event
                                // is (or will be) in the queue.
                                work_tx[agent] = None;
                                pending.push_front(genome);
                            }
                        },
                        None => pending.push_front(genome),
                    }
                }
                if in_flight == 0 {
                    if !pending.is_empty() && outcome.is_ok() {
                        outcome = Err(ClanError::Degraded {
                            live,
                            required: floor,
                        });
                    }
                    break;
                }
                let Ok(event) = erx.recv() else { break };
                match event {
                    StreamEvent::Done {
                        completion,
                        elapsed_s,
                        sent_floats,
                        sent_bytes,
                        recv_floats,
                        recv_bytes,
                    } => {
                        let agent = completion.agent;
                        ledger.record_agent_wire(
                            agent,
                            MessageKind::SendGenomes,
                            sent_floats,
                            sent_bytes,
                        );
                        ledger.record_agent_wire(
                            agent,
                            MessageKind::SendFitness,
                            recv_floats,
                            recv_bytes,
                        );
                        in_flight -= 1;
                        stats.completions += 1;
                        stats.busy_s += elapsed_s;
                        stats.per_agent_busy_s[agent] += elapsed_s;
                        stats.per_agent_completions[agent] += 1;
                        succeeded[agent] = true;
                        tracer.timing(EventKind::Completion, |ev| {
                            ev.agent = Some(agent as u64);
                            ev.genome = Some(completion.genome.0);
                            ev.fitness_bits = Some(completion.evaluation.fitness.to_bits());
                            ev.dur_us = Some((elapsed_s * 1e6) as u64);
                        });
                        idle.push_back(agent);
                        if let Some(next) = on_complete(&completion) {
                            pending.push_back(next);
                        }
                    }
                    StreamEvent::Failed {
                        agent,
                        genome,
                        error,
                    } => {
                        in_flight -= 1;
                        work_tx[agent] = None;
                        live = live.saturating_sub(1);
                        tracer.timing(EventKind::AgentFailure, |ev| {
                            ev.agent = Some(agent as u64);
                            ev.label = Some(error.to_string());
                        });
                        failures.push((agent, error));
                        stats.redispatches += 1;
                        pending.push_front(*genome);
                        if live < floor {
                            // Root cause stays visible in the membership
                            // table via `note_link_failure` below.
                            outcome = Err(ClanError::Degraded {
                                live,
                                required: floor,
                            });
                            break;
                        }
                    }
                    StreamEvent::Hard { error } => {
                        outcome = Err(error);
                        break;
                    }
                }
            }
            // Closing the work channels lets every worker drain and exit.
            drop(work_tx);
        });
        stats.makespan_s = started.elapsed().as_secs_f64();
        for (i, error) in &failures {
            Self::note_link_failure(links, recovery, *i, error);
        }
        for (i, link) in links.iter_mut().enumerate() {
            if succeeded[i] && !link.poisoned {
                link.health = link.health.on_success();
                link.last_error = None;
            }
            let link_stats = link.transport.take_link_stats();
            if link_stats.overhead_bytes() > 0 {
                ledger.record_agent_retrans(i, link_stats.overhead_bytes());
                tracer.timing(EventKind::Retransmission, |ev| {
                    ev.agent = Some(i as u64);
                    ev.bytes = Some(link_stats.overhead_bytes());
                });
            }
        }
        outcome.map(|()| stats)
    }

    /// Distributed reproduction: ships child specs plus the needed
    /// parent genomes to agents and gathers the children — CLAN_DDS's
    /// reproduction phase over a real transport.
    ///
    /// # Errors
    ///
    /// Transport/frame errors, and [`ClanError::Protocol`] on a
    /// mismatched response.
    pub fn build_children(
        &mut self,
        pop: &Population,
        plan: &clan_neat::GenerationPlan,
    ) -> Result<Vec<Genome>, ClanError> {
        if self.links.is_empty() {
            return Err(ClanError::InvalidSetup {
                reason: "cluster has no live agents to reproduce on".into(),
            });
        }
        let children = self.scatter_with_recovery(
            &plan.children,
            MessageKind::SendParentGenomes,
            MessageKind::SendChildren,
            false,
            &|chunk| {
                // Only the parents this chunk needs travel to the agent.
                let mut parent_ids: Vec<GenomeId> =
                    chunk.iter().flat_map(|s| s.parent_ids()).collect();
                parent_ids.sort_unstable();
                parent_ids.dedup();
                WireMessage::BuildChildren {
                    generation: plan.generation,
                    master_seed: pop.master_seed(),
                    specs: chunk.to_vec(),
                    parents: parent_ids
                        .iter()
                        // clan-lint: allow(L1, reason="parent ids come from the reproduction plan built over this same population; a miss is a planner bug the process cannot recover from")
                        .map(|id| pop.genome(*id).expect("parent resident").clone())
                        .collect(),
                }
            },
            &mut |peer, msg, chunk| {
                let batch = match msg {
                    WireMessage::Children(batch) => batch,
                    other => {
                        return Err(ClanError::Protocol {
                            peer,
                            reason: format!("expected Children, got {other:?}"),
                        })
                    }
                };
                if batch.len() != chunk.len()
                    || batch
                        .iter()
                        .zip(chunk.iter())
                        .any(|(child, spec)| child.id() != spec.child_id)
                {
                    return Err(ClanError::Protocol {
                        peer,
                        reason: format!(
                            "children batch does not match the {} specs sent",
                            chunk.len()
                        ),
                    });
                }
                Ok(batch)
            },
        )?;
        // Children are keyed by id; replaying in the plan's spec order
        // makes the batch independent of which agent built what.
        let mut built: BTreeMap<GenomeId, Genome> =
            children.into_iter().map(|c| (c.id(), c)).collect();
        plan.children
            .iter()
            .map(|spec| {
                built
                    .remove(&spec.child_id)
                    .ok_or_else(|| ClanError::Protocol {
                        peer: "cluster".into(),
                        reason: format!("no agent returned child {}", spec.child_id),
                    })
            })
            .collect()
    }

    /// Runs one full DCS-style generation over the real cluster:
    /// distributed inference, then central evolution.
    ///
    /// # Errors
    ///
    /// Propagates transport and NEAT failures.
    pub fn step_dcs_generation(&mut self, pop: &mut Population) -> Result<f64, ClanError> {
        self.evaluate(pop)?;
        let best = pop
            .best()
            .and_then(Genome::fitness)
            .ok_or_else(|| ClanError::InvalidSetup {
                reason: "no evaluated fitness in population after evaluate()".into(),
            })?;
        crate::orchestra::central_evolution(pop)?;
        Ok(best)
    }

    /// Runs one full DDS-style generation: distributed inference,
    /// central speciation/planning, distributed reproduction.
    ///
    /// # Errors
    ///
    /// Propagates transport and NEAT failures.
    pub fn step_dds_generation(&mut self, pop: &mut Population) -> Result<f64, ClanError> {
        self.evaluate(pop)?;
        let best = pop
            .best()
            .and_then(Genome::fitness)
            .ok_or_else(|| ClanError::InvalidSetup {
                reason: "no evaluated fitness in population after evaluate()".into(),
            })?;
        pop.speciate();
        match pop.plan_generation() {
            Ok(plan) => {
                let children = self.build_children(pop, &plan)?;
                for child in &children {
                    pop.counters_mut().record_reproduction(child.num_genes());
                }
                pop.install_next_generation(children);
            }
            Err(clan_neat::NeatError::Extinction) => pop.reset_population(),
            Err(e) => return Err(e.into()),
        }
        Ok(best)
    }

    /// Stops all agents (best-effort `Shutdown`) and joins in-process
    /// agent threads.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        let frame = crate::transport::encode(&WireMessage::Shutdown);
        for link in &mut self.links {
            if link.transport.send_frame(&frame).is_ok() {
                self.control_bytes += crate::transport::wire_bytes(&frame);
            }
        }
        for link in &mut self.links {
            // Datagram transports retransmit the Shutdown until acked
            // (bounded); reliable transports return immediately.
            let _ = link.transport.drain(std::time::Duration::from_millis(750));
        }
        for link in &mut self.links {
            if let Some(h) = link.handle.take() {
                let _ = h.join();
            }
        }
        self.links.clear();
    }
}

impl Drop for EdgeCluster {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluator::Evaluator;

    fn cfg(pop: usize) -> NeatConfig {
        let w = Workload::CartPole;
        NeatConfig::builder(w.obs_dim(), w.n_actions())
            .population_size(pop)
            .build()
            .unwrap()
    }

    /// Cache-off spec: link-health tests re-evaluate the same population
    /// to probe dead links, which requires real traffic every round.
    fn uncached_spec(cfg: NeatConfig) -> ClusterSpec {
        ClusterSpec::new(Workload::CartPole, InferenceMode::MultiStep, cfg).with_engine(
            crate::evaluator::EngineOptions {
                cache: false,
                ..Default::default()
            },
        )
    }

    fn spawn_uncached(n: usize, cfg: NeatConfig) -> EdgeCluster {
        EdgeCluster::spawn_spec(n, uncached_spec(cfg)).unwrap()
    }

    fn spawn_both(n: usize, cfg: &NeatConfig) -> Vec<EdgeCluster> {
        vec![
            EdgeCluster::spawn(n, Workload::CartPole, InferenceMode::MultiStep, cfg.clone())
                .expect("channel cluster spawns"),
            EdgeCluster::spawn_local(n, Workload::CartPole, InferenceMode::MultiStep, cfg.clone())
                .expect("loopback cluster binds"),
        ]
    }

    #[test]
    fn distributed_evaluation_matches_serial_on_both_transports() {
        let cfg = cfg(16);
        for mut cluster in spawn_both(4, &cfg) {
            let mut distributed = Population::new(cfg.clone(), 11);
            cluster.evaluate(&mut distributed).unwrap();

            let mut serial = Population::new(cfg.clone(), 11);
            let mut ev = Evaluator::new(Workload::CartPole, InferenceMode::MultiStep);
            crate::orchestra::evaluate_partitioned(&mut serial, &mut ev, &[16]).unwrap();

            for (a, b) in distributed
                .genomes()
                .values()
                .zip(serial.genomes().values())
            {
                assert_eq!(a.fitness(), b.fitness());
            }
            cluster.shutdown();
        }
    }

    #[test]
    fn real_dcs_generations_match_serial_evolution() {
        let cfg = cfg(12);
        let mut cluster =
            EdgeCluster::spawn(3, Workload::CartPole, InferenceMode::MultiStep, cfg.clone())
                .unwrap();
        let mut real = Population::new(cfg.clone(), 5);
        let mut serial = Population::new(cfg.clone(), 5);
        let mut ev = Evaluator::new(Workload::CartPole, InferenceMode::MultiStep);
        for _ in 0..3 {
            let real_best = cluster.step_dcs_generation(&mut real).unwrap();
            crate::orchestra::evaluate_partitioned(&mut serial, &mut ev, &[12]).unwrap();
            let serial_best = serial.best().and_then(Genome::fitness).unwrap();
            crate::orchestra::central_evolution(&mut serial).unwrap();
            assert_eq!(real_best, serial_best);
        }
        assert_eq!(real.genomes(), serial.genomes());
        cluster.shutdown();
    }

    #[test]
    fn real_dds_generations_match_serial_evolution_over_tcp() {
        let cfg = cfg(12);
        let mut cluster =
            EdgeCluster::spawn_local(3, Workload::CartPole, InferenceMode::MultiStep, cfg.clone())
                .unwrap();
        let mut real = Population::new(cfg.clone(), 6);
        let mut serial = Population::new(cfg.clone(), 6);
        let mut ev = Evaluator::new(Workload::CartPole, InferenceMode::MultiStep);
        for _ in 0..3 {
            cluster.step_dds_generation(&mut real).unwrap();
            crate::orchestra::evaluate_partitioned(&mut serial, &mut ev, &[12]).unwrap();
            crate::orchestra::central_evolution(&mut serial).unwrap();
        }
        assert_eq!(real.genomes(), serial.genomes());
        assert!(
            cluster
                .ledger()
                .entry(MessageKind::SendParentGenomes)
                .messages
                > 0,
            "DDS must ship parents over the wire"
        );
        cluster.shutdown();
    }

    #[test]
    fn ledger_measures_real_bytes_above_model() {
        let cfg = cfg(10);
        let mut cluster = EdgeCluster::spawn_local(
            2,
            Workload::CartPole,
            InferenceMode::SingleStep,
            cfg.clone(),
        )
        .unwrap();
        let mut pop = Population::new(cfg, 3);
        cluster.evaluate(&mut pop).unwrap();
        let ledger = cluster.ledger();
        assert_eq!(ledger.entry(MessageKind::SendGenomes).messages, 2);
        assert_eq!(ledger.entry(MessageKind::SendFitness).messages, 2);
        let overhead = ledger.framing_overhead().expect("both measures recorded");
        assert!(
            overhead > 1.0,
            "real f64 wire format must cost more than the 4-byte/gene model: {overhead}"
        );
        assert!(cluster.control_wire_bytes() > 0, "Configure was sent");
    }

    #[test]
    fn drop_shuts_down_cleanly() {
        let cfg = cfg(4);
        for cluster in spawn_both(2, &cfg) {
            assert_eq!(cluster.n_agents(), 2);
            drop(cluster); // must not hang or panic
        }
    }

    #[test]
    fn more_agents_than_genomes_is_fine() {
        let cfg = cfg(3);
        for mut cluster in spawn_both(8, &cfg) {
            let mut pop = Population::new(cfg.clone(), 1);
            cluster.evaluate(&mut pop).unwrap();
            assert!(pop.genomes().values().all(|g| g.fitness().is_some()));
            cluster.shutdown();
        }
    }

    #[test]
    fn zero_agent_spawn_is_a_typed_error_not_a_panic() {
        let cfg = cfg(4);
        let spec = ClusterSpec::new(Workload::CartPole, InferenceMode::MultiStep, cfg);
        assert!(matches!(
            EdgeCluster::spawn_spec(0, spec.clone()),
            Err(ClanError::InvalidSetup { .. })
        ));
        assert!(matches!(
            EdgeCluster::spawn_local_spec(0, spec.clone()),
            Err(ClanError::InvalidSetup { .. })
        ));
        assert!(matches!(
            EdgeCluster::connect_transports(vec![], spec),
            Err(ClanError::InvalidSetup { .. })
        ));
    }

    #[test]
    fn weighted_partition_busies_every_agent() {
        // The even-split chunks(div_ceil) bug: 5 genomes on 4 agents
        // became 2/2/1 with one agent fully idle. The partitioner must
        // give every agent a share, visible in the per-agent ledger.
        let cfg = cfg(5);
        for mut cluster in spawn_both(4, &cfg) {
            let mut pop = Population::new(cfg.clone(), 3);
            cluster.evaluate(&mut pop).unwrap();
            let rows = cluster.ledger().agent_entries();
            assert_eq!(rows.len(), 4);
            for (i, row) in rows.iter().enumerate() {
                assert!(row.messages > 0, "agent {i} was starved: {rows:?}");
            }
            cluster.shutdown();
        }
    }

    #[test]
    fn skewed_weights_change_partition_but_not_results() {
        let cfg = cfg(16);
        let fitness_of = |cluster: &mut EdgeCluster| {
            let mut pop = Population::new(cfg.clone(), 21);
            cluster.evaluate(&mut pop).unwrap();
            pop.genomes()
                .values()
                .map(|g| g.fitness().unwrap())
                .collect::<Vec<f64>>()
        };
        let mut even =
            EdgeCluster::spawn(4, Workload::CartPole, InferenceMode::MultiStep, cfg.clone())
                .unwrap();
        let mut skewed =
            EdgeCluster::spawn(4, Workload::CartPole, InferenceMode::MultiStep, cfg.clone())
                .unwrap()
                .with_weights(&[1.0, 5.0, 2.0, 8.0])
                .unwrap();
        assert_eq!(fitness_of(&mut even), fitness_of(&mut skewed));
        // The heavy agent carried more genome traffic than the light one.
        let rows = skewed.ledger().agent_entries();
        assert!(
            rows[3].floats > rows[0].floats,
            "weight 8 vs 1 must skew traffic: {rows:?}"
        );
        even.shutdown();
        skewed.shutdown();
    }

    #[test]
    fn calibration_measures_throughput_and_keeps_results_identical() {
        let cfg = cfg(12);
        let mut plain =
            EdgeCluster::spawn(3, Workload::CartPole, InferenceMode::MultiStep, cfg.clone())
                .unwrap();
        let mut calibrated =
            EdgeCluster::spawn(3, Workload::CartPole, InferenceMode::MultiStep, cfg.clone())
                .unwrap()
                .with_calibration(true);
        let mut a = Population::new(cfg.clone(), 9);
        let mut b = Population::new(cfg.clone(), 9);
        for _ in 0..3 {
            plain.step_dcs_generation(&mut a).unwrap();
            calibrated.step_dcs_generation(&mut b).unwrap();
        }
        assert_eq!(a.genomes(), b.genomes());
        // After a round, every link has a measured throughput and the
        // effective weights switched to it.
        assert!(calibrated.effective_weights().iter().all(|w| *w > 0.0));
        assert_ne!(calibrated.effective_weights(), calibrated.weights());
        plain.shutdown();
        calibrated.shutdown();
    }

    #[test]
    fn gather_stats_accumulate_makespan_and_busy_time() {
        let cfg = cfg(8);
        let mut cluster =
            EdgeCluster::spawn(2, Workload::CartPole, InferenceMode::MultiStep, cfg.clone())
                .unwrap();
        assert_eq!(cluster.gather_stats().gathers, 0);
        let mut pop = Population::new(cfg, 4);
        cluster.evaluate(&mut pop).unwrap();
        let stats = cluster.gather_stats();
        assert_eq!(stats.gathers, 1);
        assert!(stats.makespan_s > 0.0);
        assert!(
            stats.busy_s >= stats.makespan_s,
            "busy time sums over links"
        );
        assert!(stats.mean_makespan_s() > 0.0);
        assert!(stats.overlap().unwrap() >= 1.0);
        cluster.shutdown();
    }

    #[test]
    fn killed_agent_chunk_is_reassigned_and_results_match_serial() {
        let cfg = cfg(12);
        let serial_fitness = {
            let mut pop = Population::new(cfg.clone(), 17);
            let mut ev = Evaluator::new(Workload::CartPole, InferenceMode::MultiStep);
            crate::orchestra::evaluate_partitioned(&mut pop, &mut ev, &[12]).unwrap();
            pop.genomes()
                .values()
                .map(|g| g.fitness().unwrap())
                .collect::<Vec<f64>>()
        };
        let mut cluster = spawn_uncached(3, cfg.clone());
        cluster.kill_agent(1).unwrap();
        let mut pop = Population::new(cfg, 17);
        cluster.evaluate(&mut pop).unwrap();
        let churned: Vec<f64> = pop
            .genomes()
            .values()
            .map(|g| g.fitness().unwrap())
            .collect();
        assert_eq!(
            churned, serial_fitness,
            "reassignment must not change results"
        );
        let stats = cluster.recovery_stats();
        assert_eq!(stats.reassigned_chunks, 1);
        assert!(stats.reassigned_items > 0);
        assert_eq!(stats.agent_failures[1], 1);
        let health = cluster.membership();
        assert_eq!(health[1].health, LinkHealth::Suspected, "one strike");
        assert_eq!(health[0].health, LinkHealth::Alive);
        // A second round: the dead agent is probed, fails again, dies.
        cluster.evaluate(&mut pop).unwrap();
        assert_eq!(cluster.membership()[1].health, LinkHealth::Dead);
        assert_eq!(cluster.live_agents(), 2);
        // A third round scatters to survivors only — no more failures.
        let failures = cluster.recovery_stats().failures;
        cluster.evaluate(&mut pop).unwrap();
        assert_eq!(cluster.recovery_stats().failures, failures);
        cluster.shutdown();
    }

    #[test]
    fn churn_schedule_kill_and_revive_keeps_run_identical() {
        let cfg = cfg(12);
        let run = |churn: Option<ChurnSchedule>| {
            let mut cluster =
                EdgeCluster::spawn(3, Workload::CartPole, InferenceMode::MultiStep, cfg.clone())
                    .unwrap();
            if let Some(plan) = churn {
                cluster.set_churn(plan).unwrap();
            }
            let mut pop = Population::new(cfg.clone(), 23);
            for _ in 0..4 {
                cluster.step_dcs_generation(&mut pop).unwrap();
            }
            let genomes = pop.genomes().clone();
            let stats = cluster.recovery_stats();
            cluster.shutdown();
            (genomes, stats)
        };
        let (clean, clean_stats) = run(None);
        let (churned, stats) = run(Some(ChurnSchedule::new().kill(2, 1).revive(2, 3)));
        assert_eq!(clean, churned, "churned run must stay bit-identical");
        assert!(!clean_stats.any_recovery());
        assert_eq!(stats.kills, 1);
        assert!(stats.joins >= 1);
        assert!(stats.failures >= 1);
        assert!(stats.reassigned_chunks >= 1);
    }

    #[test]
    fn churn_during_reproduction_scatter_keeps_dds_identical() {
        // DDS generations perform two scatters (evaluate, then
        // build_children); killing an agent on an odd round lands the
        // failure inside the reproduction scatter specifically.
        let cfg = cfg(12);
        let run = |churn: Option<ChurnSchedule>| {
            let mut cluster =
                EdgeCluster::spawn(3, Workload::CartPole, InferenceMode::MultiStep, cfg.clone())
                    .unwrap();
            if let Some(plan) = churn {
                cluster.set_churn(plan).unwrap();
            }
            let mut pop = Population::new(cfg.clone(), 37);
            for _ in 0..3 {
                cluster.step_dds_generation(&mut pop).unwrap();
            }
            let genomes = pop.genomes().clone();
            let stats = cluster.recovery_stats();
            cluster.shutdown();
            (genomes, stats)
        };
        let (clean, _) = run(None);
        // Round 1 is generation 0's build_children scatter.
        let (churned, stats) = run(Some(ChurnSchedule::new().kill(0, 1).revive(0, 3)));
        assert_eq!(clean, churned, "reproduction churn must not change results");
        assert!(stats.reassigned_chunks >= 1);
        assert!(stats.failures >= 1);
    }

    #[test]
    fn poisoned_remote_link_resyncs_with_a_fresh_session() {
        // A churn-class failure poisons a link's session (a late reply
        // from a timed-out round must never answer the next round's
        // request). For a *remote* link the next scatter re-establishes
        // a fresh session to the original address, so a transiently
        // slow-but-alive agent recovers instead of striking out — and
        // without any protocol desync.
        let cfg = cfg(8);
        let server = AgentServer::bind("127.0.0.1:0").unwrap();
        let addr = server.local_addr();
        let handle = std::thread::spawn(move || {
            // Two sequential sessions: the original and the resynced.
            for _ in 0..2 {
                if server.serve_once().is_err() {
                    break;
                }
            }
        });
        let spec = uncached_spec(cfg.clone());
        let mut cluster = EdgeCluster::connect(&[addr.to_string()], spec).unwrap();
        let mut pop = Population::new(cfg, 43);
        cluster.evaluate(&mut pop).unwrap();
        let clean: Vec<f64> = pop
            .genomes()
            .values()
            .map(|g| g.fitness().unwrap())
            .collect();
        // Simulate the aftermath of a transient churn-class failure:
        // session poisoned, link suspected, origin intact.
        let peer = cluster.links[0].transport.peer();
        cluster.links[0].transport = Box::new(crate::transport::DeadTransport::new(peer));
        cluster.links[0].poisoned = true;
        cluster.links[0].health = LinkHealth::Suspected;
        // The next round reconnects and probes over the new session.
        cluster.evaluate(&mut pop).unwrap();
        let resynced: Vec<f64> = pop
            .genomes()
            .values()
            .map(|g| g.fitness().unwrap())
            .collect();
        assert_eq!(clean, resynced);
        assert_eq!(
            cluster.recovery_stats().failures,
            0,
            "resync heals the link without a strike"
        );
        assert_eq!(cluster.membership()[0].health, LinkHealth::Alive);
        assert!(!cluster.links[0].poisoned);
        cluster.shutdown();
        handle.join().unwrap();
    }

    #[test]
    fn revived_agent_serves_work_again() {
        let cfg = cfg(8);
        let mut cluster = spawn_uncached(2, cfg.clone());
        cluster.kill_agent(0).unwrap();
        let mut pop = Population::new(cfg, 3);
        cluster.evaluate(&mut pop).unwrap();
        cluster.evaluate(&mut pop).unwrap();
        assert_eq!(cluster.membership()[0].health, LinkHealth::Dead);
        cluster.revive_agent(0).unwrap();
        assert_eq!(cluster.membership()[0].health, LinkHealth::Alive);
        assert_eq!(cluster.live_agents(), 2);
        let failures = cluster.recovery_stats().failures;
        cluster.evaluate(&mut pop).unwrap();
        assert_eq!(
            cluster.recovery_stats().failures,
            failures,
            "revived agent answers"
        );
        cluster.shutdown();
    }

    #[test]
    fn mid_run_join_scales_out_and_keeps_results_identical() {
        let cfg = cfg(10);
        let serial_fitness = |pop: &Population| {
            pop.genomes()
                .values()
                .map(|g| g.fitness().unwrap())
                .collect::<Vec<f64>>()
        };
        let mut a = Population::new(cfg.clone(), 29);
        let mut b = Population::new(cfg.clone(), 29);
        let mut small = spawn_uncached(2, cfg.clone());
        let mut growing = spawn_uncached(2, cfg.clone());
        small.evaluate(&mut a).unwrap();
        growing.evaluate(&mut b).unwrap();
        // Scale out between generations; the newcomer is configured over
        // the wire and takes a share of the next scatter.
        let slot = growing.admit_local().unwrap();
        assert_eq!(slot, 2);
        assert_eq!(growing.n_agents(), 3);
        small.evaluate(&mut a).unwrap();
        growing.evaluate(&mut b).unwrap();
        assert_eq!(serial_fitness(&a), serial_fitness(&b));
        assert!(
            growing.ledger().agent_entries()[2].messages > 0,
            "joined agent must carry traffic"
        );
        assert_eq!(growing.recovery_stats().joins, 1);
        small.shutdown();
        growing.shutdown();
    }

    #[test]
    fn degraded_cluster_is_a_typed_error() {
        let cfg = cfg(6);
        // All agents dead: the last link error surfaces.
        let mut cluster =
            EdgeCluster::spawn(2, Workload::CartPole, InferenceMode::MultiStep, cfg.clone())
                .unwrap();
        cluster.kill_agent(0).unwrap();
        cluster.kill_agent(1).unwrap();
        let mut pop = Population::new(cfg.clone(), 5);
        assert!(matches!(
            cluster.evaluate(&mut pop),
            Err(ClanError::Transport { .. })
        ));
        cluster.shutdown();
        // Policy floor: one failure on a 2-agent cluster with
        // min_agents 2 refuses to continue on the lone survivor.
        let mut strict =
            EdgeCluster::spawn(2, Workload::CartPole, InferenceMode::MultiStep, cfg.clone())
                .unwrap()
                .with_recovery_policy(RecoveryPolicy::default().with_min_agents(2));
        strict.kill_agent(1).unwrap();
        let err = strict.evaluate(&mut pop).unwrap_err();
        assert!(
            matches!(
                err,
                ClanError::Transport { .. } | ClanError::Degraded { .. }
            ),
            "{err}"
        );
        strict.shutdown();
    }

    #[test]
    fn churn_schedule_validation() {
        let cfg = cfg(6);
        let mut cluster =
            EdgeCluster::spawn(2, Workload::CartPole, InferenceMode::MultiStep, cfg.clone())
                .unwrap();
        assert!(matches!(
            cluster.set_churn(ChurnSchedule::new().kill(5, 1)),
            Err(ClanError::InvalidSetup { .. })
        ));
        cluster
            .set_churn(ChurnSchedule::new().kill(1, 1).revive(1, 2))
            .unwrap();
        cluster.shutdown();
        // Caller-supplied transports cannot mint replacements.
        let (coord, mut agent_side) = channel_pair();
        let handle = std::thread::spawn(move || {
            let _ = serve_session(&mut agent_side);
        });
        let spec = ClusterSpec::new(Workload::CartPole, InferenceMode::MultiStep, cfg);
        let mut external = EdgeCluster::connect_transports(vec![Box::new(coord)], spec).unwrap();
        assert!(matches!(
            external.set_churn(ChurnSchedule::new().kill(0, 1).revive(0, 2)),
            Err(ClanError::InvalidSetup { .. })
        ));
        external.set_churn(ChurnSchedule::new().kill(0, 9)).unwrap();
        external.shutdown();
        handle.join().unwrap();
    }

    #[test]
    fn weight_validation_rejects_bad_inputs() {
        let cfg = cfg(4);
        let mut cluster =
            EdgeCluster::spawn(2, Workload::CartPole, InferenceMode::MultiStep, cfg).unwrap();
        assert!(cluster.set_weights(&[1.0]).is_err(), "length mismatch");
        assert!(cluster.set_weights(&[1.0, -1.0]).is_err(), "negative");
        assert!(cluster.set_weights(&[0.0, 0.0]).is_err(), "all zero");
        assert!(cluster.set_weights(&[f64::NAN, 1.0]).is_err(), "NaN");
        cluster.set_weights(&[2.0, 0.5]).unwrap();
        assert_eq!(cluster.weights(), vec![2.0, 0.5]);
        cluster.shutdown();
    }
}
