//! A real edge cluster: agents behind a pluggable [`Transport`],
//! exchanging the binary cluster protocol.
//!
//! The analytic simulator (`clan-distsim`) models *time*; this runtime
//! demonstrates that the CLAN protocols actually *execute* — genomes are
//! shipped to workers as encoded frames, evaluated in true parallelism,
//! children are built remotely from serialized
//! [`ChildSpec`](clan_neat::reproduction::ChildSpec)s, and the
//! deterministic RNG discipline makes the distributed result
//! bit-identical to a serial run (asserted in tests and, over real TCP
//! sockets, by `tests/net_equivalence.rs`).
//!
//! Three deployments of the same protocol:
//!
//! - [`EdgeCluster::spawn`] — agent threads over in-process channels;
//! - [`EdgeCluster::spawn_local`] — agent threads serving **real TCP
//!   sockets** on `127.0.0.1` ephemeral ports (the whole networked stack
//!   in one process, which is what CI smokes);
//! - [`EdgeCluster::connect`] — remote agent processes started with
//!   `clan-cli agent --listen ADDR` on actual edge devices.
//!
//! Every message's *measured* bytes-on-the-wire are recorded in a
//! [`CommLedger`] next to the analytic model's float accounting, so the
//! modeled traffic of `clan-netsim` can be validated against what a
//! real wire format costs (see [`CommLedger::framing_overhead`]).

use crate::error::ClanError;
use crate::evaluator::InferenceMode;
use crate::transport::agent::{serve_session, AgentServer};
use crate::transport::{
    channel_pair, recv_message, send_message, ClusterSpec, TcpTransport, Transport, WireEvaluation,
    WireMessage,
};
use clan_envs::Workload;
use clan_neat::{Genome, GenomeId, NeatConfig, Population};
use clan_netsim::{CommLedger, MessageKind};
use std::thread::JoinHandle;

/// One agent as the coordinator sees it.
struct AgentLink {
    transport: Box<dyn Transport>,
    /// Join handle for in-process agents; `None` for remote ones.
    handle: Option<JoinHandle<()>>,
}

/// A live cluster of agents evaluating and reproducing genomes over a
/// real transport.
///
/// Use [`evaluate`](EdgeCluster::evaluate) and
/// [`build_children`](EdgeCluster::build_children) as the distributed
/// counterparts of `Population::evaluate` and
/// `Population::reproduce_centrally`, or attach the cluster to an
/// [`Evaluator`](crate::Evaluator) with
/// [`Evaluator::with_remote`](crate::Evaluator::with_remote) to fan all
/// four CLAN orchestrators' inference out across it. Call
/// [`shutdown`](EdgeCluster::shutdown) for an orderly stop; dropping the
/// cluster also stops it.
pub struct EdgeCluster {
    links: Vec<AgentLink>,
    cfg: NeatConfig,
    ledger: CommLedger,
    control_bytes: u64,
}

impl std::fmt::Debug for EdgeCluster {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EdgeCluster")
            .field("agents", &self.links.len())
            .field("wire_bytes", &self.ledger.total_wire_bytes())
            .finish_non_exhaustive()
    }
}

impl EdgeCluster {
    /// Spawns `n_agents` worker threads connected over in-process
    /// channels (frames still cross as encoded bytes).
    ///
    /// # Panics
    ///
    /// Panics if `n_agents` is zero or a thread cannot be spawned.
    pub fn spawn(
        n_agents: usize,
        workload: Workload,
        mode: InferenceMode,
        cfg: NeatConfig,
    ) -> EdgeCluster {
        Self::spawn_spec(n_agents, ClusterSpec::new(workload, mode, cfg))
    }

    /// [`spawn`](EdgeCluster::spawn) with a full [`ClusterSpec`]
    /// (episodes per evaluation etc.).
    ///
    /// # Panics
    ///
    /// Panics if `n_agents` is zero or a thread cannot be spawned.
    pub fn spawn_spec(n_agents: usize, spec: ClusterSpec) -> EdgeCluster {
        assert!(n_agents > 0, "cluster needs at least one agent");
        let links = (0..n_agents)
            .map(|i| {
                let (coord, mut agent_side) = channel_pair();
                let handle = std::thread::Builder::new()
                    .name(format!("clan-agent-{i}"))
                    .spawn(move || {
                        if let Err(e) = serve_session(&mut agent_side) {
                            eprintln!("clan-agent-{i}: {e}");
                        }
                    })
                    .expect("spawning agent thread");
                AgentLink {
                    transport: Box::new(coord),
                    handle: Some(handle),
                }
            })
            .collect();
        Self::configured(links, spec).expect("channel agents accept configuration")
    }

    /// Spawns `n_agents` agent threads each serving a **real TCP
    /// socket** bound to `127.0.0.1` on an ephemeral port, and connects
    /// to them — the entire networked stack, loopback, in one process.
    ///
    /// # Errors
    ///
    /// [`ClanError::Transport`] if binding or connecting fails.
    ///
    /// # Panics
    ///
    /// Panics if `n_agents` is zero or a thread cannot be spawned.
    pub fn spawn_local(
        n_agents: usize,
        workload: Workload,
        mode: InferenceMode,
        cfg: NeatConfig,
    ) -> Result<EdgeCluster, ClanError> {
        Self::spawn_local_spec(n_agents, ClusterSpec::new(workload, mode, cfg))
    }

    /// [`spawn_local`](EdgeCluster::spawn_local) with a full
    /// [`ClusterSpec`].
    ///
    /// # Errors
    ///
    /// [`ClanError::Transport`] if binding or connecting fails.
    ///
    /// # Panics
    ///
    /// Panics if `n_agents` is zero or a thread cannot be spawned.
    pub fn spawn_local_spec(n_agents: usize, spec: ClusterSpec) -> Result<EdgeCluster, ClanError> {
        assert!(n_agents > 0, "cluster needs at least one agent");
        let mut links = Vec::with_capacity(n_agents);
        for i in 0..n_agents {
            let server = AgentServer::bind("127.0.0.1:0")?;
            // Connect before spawning the serving thread: the pending
            // connection waits in the listener's backlog, and a connect
            // failure leaves no thread parked forever in accept().
            let transport = TcpTransport::connect(server.local_addr())?;
            let handle = std::thread::Builder::new()
                .name(format!("clan-agent-{i}"))
                .spawn(move || {
                    if let Err(e) = server.serve_once() {
                        eprintln!("clan-agent-{i}: {e}");
                    }
                })
                .expect("spawning agent thread");
            links.push(AgentLink {
                transport: Box::new(transport),
                handle: Some(handle),
            });
        }
        Self::configured(links, spec)
    }

    /// Connects to already-running agent processes (started with
    /// `clan-cli agent --listen ADDR`) and pushes the session
    /// configuration to each.
    ///
    /// # Errors
    ///
    /// [`ClanError::Transport`] if any agent is unreachable, and
    /// [`ClanError::InvalidSetup`] on an empty address list.
    pub fn connect(addrs: &[String], spec: ClusterSpec) -> Result<EdgeCluster, ClanError> {
        if addrs.is_empty() {
            return Err(ClanError::InvalidSetup {
                reason: "cluster needs at least one agent address".into(),
            });
        }
        let mut links = Vec::with_capacity(addrs.len());
        for addr in addrs {
            links.push(AgentLink {
                transport: Box::new(TcpTransport::connect(addr.as_str())?),
                handle: None,
            });
        }
        Self::configured(links, spec)
    }

    /// Pushes `Configure` to every link (control traffic: counted in
    /// bytes, invisible to the analytic model).
    fn configured(mut links: Vec<AgentLink>, spec: ClusterSpec) -> Result<EdgeCluster, ClanError> {
        let msg = WireMessage::Configure(Box::new(spec.clone()));
        let mut control_bytes = 0;
        for link in &mut links {
            control_bytes += send_message(link.transport.as_mut(), &msg)?;
        }
        Ok(EdgeCluster {
            links,
            cfg: spec.cfg,
            ledger: CommLedger::new(),
            control_bytes,
        })
    }

    /// Number of live agents.
    pub fn n_agents(&self) -> usize {
        self.links.len()
    }

    /// Traffic observed on this cluster's transport, with both the
    /// analytic model's float accounting and the measured wire bytes.
    ///
    /// Kinds map onto the protocol: `Evaluate` → `SendGenomes`,
    /// `Fitness` → `SendFitness`, `BuildChildren` → `SendParentGenomes`
    /// (its spec list contributes the parent-list floats), `Children` →
    /// `SendChildren`.
    pub fn ledger(&self) -> &CommLedger {
        &self.ledger
    }

    /// Wire bytes spent on control messages (`Configure`/`Shutdown`)
    /// that the analytic model does not account at all.
    pub fn control_wire_bytes(&self) -> u64 {
        self.control_bytes
    }

    /// The NEAT configuration agents compile genomes with.
    pub fn neat_config(&self) -> &NeatConfig {
        &self.cfg
    }

    /// Distributed inference, returning per-genome results in genome-id
    /// order together with each compiled network's per-activation gene
    /// cost — everything the orchestrators need to replay the paper's
    /// cost accounting bit-identically to a serial run. Does **not**
    /// touch the population's fitness or counters.
    ///
    /// # Errors
    ///
    /// Transport/frame errors, and [`ClanError::Protocol`] if an agent
    /// returns results for the wrong genomes.
    pub fn evaluate_collect(&mut self, pop: &Population) -> Result<Vec<WireEvaluation>, ClanError> {
        let ids: Vec<GenomeId> = pop.genomes().keys().copied().collect();
        let master_seed = pop.master_seed();
        let generation = pop.generation();
        let per = ids.len().div_ceil(self.links.len()).max(1);
        let chunks: Vec<&[GenomeId]> = ids.chunks(per).collect();
        let EdgeCluster { links, ledger, .. } = self;
        // Scatter contiguous id-ordered chunks...
        for (link, chunk) in links.iter_mut().zip(&chunks) {
            let msg = WireMessage::Evaluate {
                generation,
                master_seed,
                genomes: chunk
                    .iter()
                    .map(|id| pop.genome(*id).expect("id from population").clone())
                    .collect(),
            };
            let bytes = send_message(link.transport.as_mut(), &msg)?;
            ledger.record_wire(MessageKind::SendGenomes, msg.modeled_floats(), bytes);
        }
        // ...and gather in link order, which concatenates back to
        // genome-id order.
        let mut results = Vec::with_capacity(ids.len());
        for (link, chunk) in links.iter_mut().zip(&chunks) {
            let (msg, bytes) = recv_message(link.transport.as_mut())?;
            ledger.record_wire(MessageKind::SendFitness, msg.modeled_floats(), bytes);
            let batch = match msg {
                WireMessage::Fitness(batch) => batch,
                other => {
                    return Err(ClanError::Protocol {
                        peer: link.transport.peer(),
                        reason: format!("expected Fitness, got {other:?}"),
                    })
                }
            };
            if batch.len() != chunk.len()
                || batch.iter().zip(chunk.iter()).any(|(r, id)| r.0 != *id)
            {
                return Err(ClanError::Protocol {
                    peer: link.transport.peer(),
                    reason: "fitness batch does not match the genomes sent".into(),
                });
            }
            results.extend(batch);
        }
        Ok(results)
    }

    /// Distributed inference with write-back: scatters the population's
    /// genomes across agents, gathers fitness, and stores it — the
    /// runtime equivalent of CLAN_DCS's inference phase.
    ///
    /// # Errors
    ///
    /// Propagates [`evaluate_collect`](EdgeCluster::evaluate_collect).
    pub fn evaluate(&mut self, pop: &mut Population) -> Result<(), ClanError> {
        for (id, eval, _) in self.evaluate_collect(pop)? {
            pop.set_fitness(id, eval.fitness)?;
        }
        Ok(())
    }

    /// Distributed reproduction: ships child specs plus the needed
    /// parent genomes to agents and gathers the children — CLAN_DDS's
    /// reproduction phase over a real transport.
    ///
    /// # Errors
    ///
    /// Transport/frame errors, and [`ClanError::Protocol`] on a
    /// mismatched response.
    pub fn build_children(
        &mut self,
        pop: &Population,
        plan: &clan_neat::GenerationPlan,
    ) -> Result<Vec<Genome>, ClanError> {
        let per = plan.children.len().div_ceil(self.links.len()).max(1);
        let chunks: Vec<_> = plan.children.chunks(per).collect();
        let EdgeCluster { links, ledger, .. } = self;
        for (link, chunk) in links.iter_mut().zip(&chunks) {
            // Only the parents this chunk needs travel to the agent.
            let mut parent_ids: Vec<GenomeId> = chunk.iter().flat_map(|s| s.parent_ids()).collect();
            parent_ids.sort_unstable();
            parent_ids.dedup();
            let msg = WireMessage::BuildChildren {
                generation: plan.generation,
                master_seed: pop.master_seed(),
                specs: chunk.to_vec(),
                parents: parent_ids
                    .iter()
                    .map(|id| pop.genome(*id).expect("parent resident").clone())
                    .collect(),
            };
            let bytes = send_message(link.transport.as_mut(), &msg)?;
            ledger.record_wire(MessageKind::SendParentGenomes, msg.modeled_floats(), bytes);
        }
        let mut children = Vec::with_capacity(plan.children.len());
        for (link, chunk) in links.iter_mut().zip(&chunks) {
            let (msg, bytes) = recv_message(link.transport.as_mut())?;
            ledger.record_wire(MessageKind::SendChildren, msg.modeled_floats(), bytes);
            let batch = match msg {
                WireMessage::Children(batch) => batch,
                other => {
                    return Err(ClanError::Protocol {
                        peer: link.transport.peer(),
                        reason: format!("expected Children, got {other:?}"),
                    })
                }
            };
            if batch.len() != chunk.len()
                || batch
                    .iter()
                    .zip(chunk.iter())
                    .any(|(child, spec)| child.id() != spec.child_id)
            {
                return Err(ClanError::Protocol {
                    peer: link.transport.peer(),
                    reason: format!(
                        "children batch does not match the {} specs sent",
                        chunk.len()
                    ),
                });
            }
            children.extend(batch);
        }
        Ok(children)
    }

    /// Runs one full DCS-style generation over the real cluster:
    /// distributed inference, then central evolution.
    ///
    /// # Errors
    ///
    /// Propagates transport and NEAT failures.
    pub fn step_dcs_generation(&mut self, pop: &mut Population) -> Result<f64, ClanError> {
        self.evaluate(pop)?;
        let best = pop
            .best()
            .and_then(Genome::fitness)
            .expect("population was just evaluated");
        crate::orchestra::central_evolution(pop)?;
        Ok(best)
    }

    /// Runs one full DDS-style generation: distributed inference,
    /// central speciation/planning, distributed reproduction.
    ///
    /// # Errors
    ///
    /// Propagates transport and NEAT failures.
    pub fn step_dds_generation(&mut self, pop: &mut Population) -> Result<f64, ClanError> {
        self.evaluate(pop)?;
        let best = pop
            .best()
            .and_then(Genome::fitness)
            .expect("population was just evaluated");
        pop.speciate();
        match pop.plan_generation() {
            Ok(plan) => {
                let children = self.build_children(pop, &plan)?;
                for child in &children {
                    pop.counters_mut().record_reproduction(child.num_genes());
                }
                pop.install_next_generation(children);
            }
            Err(clan_neat::NeatError::Extinction) => pop.reset_population(),
            Err(e) => return Err(e.into()),
        }
        Ok(best)
    }

    /// Stops all agents (best-effort `Shutdown`) and joins in-process
    /// agent threads.
    pub fn shutdown(mut self) {
        self.shutdown_inner();
    }

    fn shutdown_inner(&mut self) {
        let frame = crate::transport::encode(&WireMessage::Shutdown);
        for link in &mut self.links {
            if link.transport.send_frame(&frame).is_ok() {
                self.control_bytes += crate::transport::wire_bytes(&frame);
            }
        }
        for link in &mut self.links {
            if let Some(h) = link.handle.take() {
                let _ = h.join();
            }
        }
        self.links.clear();
    }
}

impl Drop for EdgeCluster {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluator::Evaluator;

    fn cfg(pop: usize) -> NeatConfig {
        let w = Workload::CartPole;
        NeatConfig::builder(w.obs_dim(), w.n_actions())
            .population_size(pop)
            .build()
            .unwrap()
    }

    fn spawn_both(n: usize, cfg: &NeatConfig) -> Vec<EdgeCluster> {
        vec![
            EdgeCluster::spawn(n, Workload::CartPole, InferenceMode::MultiStep, cfg.clone()),
            EdgeCluster::spawn_local(n, Workload::CartPole, InferenceMode::MultiStep, cfg.clone())
                .expect("loopback cluster binds"),
        ]
    }

    #[test]
    fn distributed_evaluation_matches_serial_on_both_transports() {
        let cfg = cfg(16);
        for mut cluster in spawn_both(4, &cfg) {
            let mut distributed = Population::new(cfg.clone(), 11);
            cluster.evaluate(&mut distributed).unwrap();

            let mut serial = Population::new(cfg.clone(), 11);
            let mut ev = Evaluator::new(Workload::CartPole, InferenceMode::MultiStep);
            crate::orchestra::evaluate_partitioned(&mut serial, &mut ev, &[16]).unwrap();

            for (a, b) in distributed
                .genomes()
                .values()
                .zip(serial.genomes().values())
            {
                assert_eq!(a.fitness(), b.fitness());
            }
            cluster.shutdown();
        }
    }

    #[test]
    fn real_dcs_generations_match_serial_evolution() {
        let cfg = cfg(12);
        let mut cluster =
            EdgeCluster::spawn(3, Workload::CartPole, InferenceMode::MultiStep, cfg.clone());
        let mut real = Population::new(cfg.clone(), 5);
        let mut serial = Population::new(cfg.clone(), 5);
        let mut ev = Evaluator::new(Workload::CartPole, InferenceMode::MultiStep);
        for _ in 0..3 {
            let real_best = cluster.step_dcs_generation(&mut real).unwrap();
            crate::orchestra::evaluate_partitioned(&mut serial, &mut ev, &[12]).unwrap();
            let serial_best = serial.best().and_then(Genome::fitness).unwrap();
            crate::orchestra::central_evolution(&mut serial).unwrap();
            assert_eq!(real_best, serial_best);
        }
        assert_eq!(real.genomes(), serial.genomes());
        cluster.shutdown();
    }

    #[test]
    fn real_dds_generations_match_serial_evolution_over_tcp() {
        let cfg = cfg(12);
        let mut cluster =
            EdgeCluster::spawn_local(3, Workload::CartPole, InferenceMode::MultiStep, cfg.clone())
                .unwrap();
        let mut real = Population::new(cfg.clone(), 6);
        let mut serial = Population::new(cfg.clone(), 6);
        let mut ev = Evaluator::new(Workload::CartPole, InferenceMode::MultiStep);
        for _ in 0..3 {
            cluster.step_dds_generation(&mut real).unwrap();
            crate::orchestra::evaluate_partitioned(&mut serial, &mut ev, &[12]).unwrap();
            crate::orchestra::central_evolution(&mut serial).unwrap();
        }
        assert_eq!(real.genomes(), serial.genomes());
        assert!(
            cluster
                .ledger()
                .entry(MessageKind::SendParentGenomes)
                .messages
                > 0,
            "DDS must ship parents over the wire"
        );
        cluster.shutdown();
    }

    #[test]
    fn ledger_measures_real_bytes_above_model() {
        let cfg = cfg(10);
        let mut cluster = EdgeCluster::spawn_local(
            2,
            Workload::CartPole,
            InferenceMode::SingleStep,
            cfg.clone(),
        )
        .unwrap();
        let mut pop = Population::new(cfg, 3);
        cluster.evaluate(&mut pop).unwrap();
        let ledger = cluster.ledger();
        assert_eq!(ledger.entry(MessageKind::SendGenomes).messages, 2);
        assert_eq!(ledger.entry(MessageKind::SendFitness).messages, 2);
        let overhead = ledger.framing_overhead().expect("both measures recorded");
        assert!(
            overhead > 1.0,
            "real f64 wire format must cost more than the 4-byte/gene model: {overhead}"
        );
        assert!(cluster.control_wire_bytes() > 0, "Configure was sent");
    }

    #[test]
    fn drop_shuts_down_cleanly() {
        let cfg = cfg(4);
        for cluster in spawn_both(2, &cfg) {
            assert_eq!(cluster.n_agents(), 2);
            drop(cluster); // must not hang or panic
        }
    }

    #[test]
    fn more_agents_than_genomes_is_fine() {
        let cfg = cfg(3);
        for mut cluster in spawn_both(8, &cfg) {
            let mut pop = Population::new(cfg.clone(), 1);
            cluster.evaluate(&mut pop).unwrap();
            assert!(pop.genomes().values().all(|g| g.fitness().is_some()));
            cluster.shutdown();
        }
    }
}
