//! CLAN configuration naming: `CLAN_<IRS>` (paper Figure 2).
//!
//! > "Naming scheme of distributed system configurations in CLAN is
//! > `CLAN_<IRS>` for Inference, Reproduction and Speciation respectively
//! > where I, R can be Distributed (D) or Central (C) and S can be
//! > Synchronous (S) or Asynchronous (A)."

use serde::{Deserialize, Serialize};
use std::fmt;

/// Where a compute block runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Placement {
    /// On the central node only.
    Central,
    /// Partitioned across agents.
    Distributed,
}

/// How speciation is performed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum SpeciationMode {
    /// One global speciation over the whole population (requires every
    /// genome at the center).
    Synchronous,
    /// Independent speciation on per-agent clans (the paper's
    /// Asynchronous Speciation / Asynchronous NeuroEvolution).
    Asynchronous {
        /// Number of independent clans (one per agent in the paper).
        clans: usize,
    },
}

/// A full CLAN configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct ClanTopology {
    /// Placement of the inference block.
    pub inference: Placement,
    /// Placement of the reproduction block.
    pub reproduction: Placement,
    /// Speciation mode.
    pub speciation: SpeciationMode,
}

impl ClanTopology {
    /// The serial baseline: everything on one node.
    pub fn serial() -> ClanTopology {
        ClanTopology {
            inference: Placement::Central,
            reproduction: Placement::Central,
            speciation: SpeciationMode::Synchronous,
        }
    }

    /// `CLAN_DCS`: distributed inference, central reproduction,
    /// synchronous speciation.
    pub fn dcs() -> ClanTopology {
        ClanTopology {
            inference: Placement::Distributed,
            reproduction: Placement::Central,
            speciation: SpeciationMode::Synchronous,
        }
    }

    /// `CLAN_DDS`: distributed inference and reproduction, synchronous
    /// speciation.
    pub fn dds() -> ClanTopology {
        ClanTopology {
            inference: Placement::Distributed,
            reproduction: Placement::Distributed,
            speciation: SpeciationMode::Synchronous,
        }
    }

    /// `CLAN_DDA`: distributed inference and reproduction, asynchronous
    /// speciation over `clans` independent clans.
    ///
    /// # Panics
    ///
    /// Panics if `clans` is zero.
    pub fn dda(clans: usize) -> ClanTopology {
        assert!(clans > 0, "DDA needs at least one clan");
        ClanTopology {
            inference: Placement::Distributed,
            reproduction: Placement::Distributed,
            speciation: SpeciationMode::Asynchronous { clans },
        }
    }

    /// The paper's name for this configuration.
    pub fn name(&self) -> String {
        if *self == ClanTopology::serial() {
            return "Serial".to_string();
        }
        let i = match self.inference {
            Placement::Central => 'C',
            Placement::Distributed => 'D',
        };
        let r = match self.reproduction {
            Placement::Central => 'C',
            Placement::Distributed => 'D',
        };
        let s = match self.speciation {
            SpeciationMode::Synchronous => 'S',
            SpeciationMode::Asynchronous { .. } => 'A',
        };
        format!("CLAN_{i}{r}{s}")
    }

    /// Number of clans (1 unless asynchronous).
    pub fn clan_count(&self) -> usize {
        match self.speciation {
            SpeciationMode::Synchronous => 1,
            SpeciationMode::Asynchronous { clans } => clans,
        }
    }
}

impl fmt::Display for ClanTopology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.name())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_match_paper() {
        assert_eq!(ClanTopology::serial().name(), "Serial");
        assert_eq!(ClanTopology::dcs().name(), "CLAN_DCS");
        assert_eq!(ClanTopology::dds().name(), "CLAN_DDS");
        assert_eq!(ClanTopology::dda(8).name(), "CLAN_DDA");
    }

    #[test]
    fn clan_counts() {
        assert_eq!(ClanTopology::serial().clan_count(), 1);
        assert_eq!(ClanTopology::dds().clan_count(), 1);
        assert_eq!(ClanTopology::dda(16).clan_count(), 16);
    }

    #[test]
    #[should_panic(expected = "at least one clan")]
    fn zero_clans_rejected() {
        ClanTopology::dda(0);
    }
}
