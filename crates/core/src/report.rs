//! Run reports: everything a CLAN run produces, ready for the benches.

use crate::orchestra::GenerationReport;
use clan_distsim::GenerationTimeline;
use clan_envs::Workload;
use clan_netsim::CommLedger;
use serde::{Deserialize, Serialize};
use std::fmt::Write as _;

/// Complete record of one CLAN run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct RunReport {
    /// Workload evaluated.
    pub workload: Workload,
    /// Configuration name (`Serial`, `CLAN_DCS`, ...).
    pub topology_name: String,
    /// Agents in the simulated cluster.
    pub n_agents: usize,
    /// Per-generation reports, in order.
    pub generations: Vec<GenerationReport>,
    /// Communication ledger over the whole run (analytic model).
    pub ledger: CommLedger,
    /// Measured wire traffic when inference ran over a real transport
    /// (threads, loopback TCP, or remote agents); `None` for purely
    /// simulated runs. Kept separate from `ledger` so modeled floats are
    /// never double-counted against measured bytes.
    pub transport: Option<CommLedger>,
    /// Measured scatter/gather timing of the real transport: summed
    /// per-round makespan (slowest link) against summed per-link busy
    /// time — how balanced the partitions actually were. `None` for
    /// purely simulated runs.
    pub gather: Option<crate::runtime::GatherStats>,
    /// Churn-recovery accounting of the real transport: link failures,
    /// chunks reassigned to survivors, injected kills, mid-run joins,
    /// and the measured recovery makespan. `None` for purely simulated
    /// runs.
    pub recovery: Option<crate::membership::RecoveryStats>,
    /// Sum of all generation timelines.
    pub total_timeline: GenerationTimeline,
    /// Mean generation timeline.
    pub mean_timeline: GenerationTimeline,
    /// Best fitness observed across the run.
    pub best_fitness: f64,
    /// First generation whose best fitness reached the workload's
    /// convergence score, if any.
    pub solved_at_generation: Option<u64>,
    /// Estimated cluster energy over the run, joules (0 until
    /// [`with_energy`](RunReport::with_energy) is applied — the driver
    /// does this automatically).
    pub total_energy_j: f64,
    /// Fitness-cache hits summed over all generations (0 when the cache
    /// is disabled).
    #[serde(default)]
    pub cache_hits: u64,
    /// Fitness-cache lookups summed over all generations (0 when the
    /// cache is disabled).
    #[serde(default)]
    pub cache_lookups: u64,
    /// Async steady-state accounting when the run was barrier-free
    /// (`--async`): eval throughput, wasted idle, insertion stats, and
    /// the event-log fingerprint. `None` for generational runs.
    #[serde(default)]
    pub asynchronous: Option<crate::asynchronous::AsyncStats>,
    /// Unified telemetry when the run was traced (`--trace`): event
    /// counts per class, the logical-stream fingerprint, the metrics
    /// registry, and one aligned per-agent row set. Empty (default)
    /// when tracing was off.
    #[serde(default)]
    pub telemetry: crate::telemetry::TelemetryReport,
}

impl RunReport {
    /// Assembles a report from a finished run's parts.
    pub fn from_parts(
        workload: Workload,
        topology_name: String,
        n_agents: usize,
        generations: Vec<GenerationReport>,
        ledger: CommLedger,
    ) -> RunReport {
        let total_timeline = generations
            .iter()
            .fold(GenerationTimeline::default(), |acc, g| acc + g.timeline);
        let n = generations.len().max(1) as f64;
        let mean_timeline = GenerationTimeline {
            inference_s: total_timeline.inference_s / n,
            evolution_s: total_timeline.evolution_s / n,
            communication_s: total_timeline.communication_s / n,
        };
        let best_fitness = generations
            .iter()
            .map(|g| g.best_fitness)
            .fold(f64::NEG_INFINITY, f64::max);
        let solved_at_generation = generations
            .iter()
            .find(|g| g.best_fitness >= workload.solved_at())
            .map(|g| g.generation);
        let cache_hits = generations.iter().map(|g| g.cache_hits).sum();
        let cache_lookups = generations.iter().map(|g| g.cache_lookups).sum();
        RunReport {
            workload,
            topology_name,
            n_agents,
            generations,
            ledger,
            transport: None,
            gather: None,
            recovery: None,
            total_timeline,
            mean_timeline,
            best_fitness,
            solved_at_generation,
            total_energy_j: 0.0,
            cache_hits,
            cache_lookups,
            asynchronous: None,
            telemetry: crate::telemetry::TelemetryReport::default(),
        }
    }

    /// Fraction of fitness lookups served from the cache over the run
    /// (0.0 when the cache never fielded a lookup).
    pub fn cache_hit_rate(&self) -> f64 {
        if self.cache_lookups == 0 {
            0.0
        } else {
            self.cache_hits as f64 / self.cache_lookups as f64
        }
    }

    /// Attaches the measured wire traffic of a real transport run.
    pub fn with_transport(mut self, transport: Option<CommLedger>) -> RunReport {
        self.transport = transport;
        self
    }

    /// Attaches the measured scatter/gather timing of a real transport
    /// run.
    pub fn with_gather(mut self, gather: Option<crate::runtime::GatherStats>) -> RunReport {
        self.gather = gather;
        self
    }

    /// Attaches the churn-recovery accounting of a real transport run.
    pub fn with_recovery(
        mut self,
        recovery: Option<crate::membership::RecoveryStats>,
    ) -> RunReport {
        self.recovery = recovery;
        self
    }

    /// Attaches an async steady-state run's accounting. A barrier-free
    /// run has no generations, so the run-level best fitness and the
    /// solved flag are taken from the async stats instead.
    pub fn with_async(mut self, stats: crate::asynchronous::AsyncStats) -> RunReport {
        self.best_fitness = self.best_fitness.max(stats.best_fitness);
        if self.best_fitness >= self.workload.solved_at() {
            self.solved_at_generation.get_or_insert(0);
        }
        self.asynchronous = Some(stats);
        self
    }

    /// Attaches the unified telemetry section of a traced run.
    pub fn with_telemetry(mut self, telemetry: crate::telemetry::TelemetryReport) -> RunReport {
        self.telemetry = telemetry;
        self
    }

    /// Fills in the energy estimate: every node draws active power during
    /// the compute phases (they work their partitions in parallel) and
    /// idle power while the medium is busy.
    pub fn with_energy(mut self, model: clan_hw::EnergyModel) -> RunReport {
        let busy = self.total_timeline.inference_s + self.total_timeline.evolution_s;
        let idle = self.total_timeline.communication_s;
        self.total_energy_j = self.n_agents as f64 * model.energy_j(busy, idle);
        self
    }

    /// Mean energy per generation, joules.
    pub fn mean_generation_energy_j(&self) -> f64 {
        self.total_energy_j / self.generations.len().max(1) as f64
    }

    /// Average seconds per generation (the paper's Fig 11 y-axis).
    pub fn mean_generation_s(&self) -> f64 {
        self.mean_timeline.total_s()
    }

    /// Human-readable run summary.
    pub fn summary(&self) -> String {
        let mut s = String::new();
        let _ = writeln!(
            s,
            "{} on {} with {} agent(s): {} generations",
            self.topology_name,
            self.workload,
            self.n_agents,
            self.generations.len()
        );
        let _ = writeln!(
            s,
            "  best fitness {:.2} (solved at {:?})",
            self.best_fitness, self.solved_at_generation
        );
        let _ = writeln!(
            s,
            "  mean generation: {:.3} s (inference {:.3}, evolution {:.3}, comm {:.3})",
            self.mean_timeline.total_s(),
            self.mean_timeline.inference_s,
            self.mean_timeline.evolution_s,
            self.mean_timeline.communication_s
        );
        let _ = writeln!(
            s,
            "  comm: {} floats in {} messages",
            self.ledger.total_floats(),
            self.ledger.total_messages()
        );
        if let Some(t) = &self.transport {
            // framing_overhead is None on modeled-only ledgers (zero
            // denominator); print n/a instead of a NaN ratio.
            let framing = t
                .framing_overhead()
                .map_or_else(|| "n/a vs".into(), |x| format!("{x:.2}x"));
            let _ = writeln!(
                s,
                "  wire (measured): {} bytes in {} messages ({} the 4-byte/gene model)",
                t.total_wire_bytes(),
                t.total_messages(),
                framing
            );
            if t.total_retrans_bytes() > 0 {
                let _ = writeln!(
                    s,
                    "  loss recovery: {} retransmitted/duplicate bytes ({:.1}% of wire traffic)",
                    t.total_retrans_bytes(),
                    100.0 * t.retrans_overhead().unwrap_or(0.0)
                );
            }
        }
        if let Some(g) = &self.gather {
            if g.gathers > 0 {
                let overlap = g
                    .overlap()
                    .map_or_else(|| "n/a".into(), |x| format!("{x:.2}x"));
                let _ = writeln!(
                    s,
                    "  gather (measured): {} rounds, makespan {:.3} s vs per-agent busy {:.3} s (overlap {})",
                    g.gathers, g.makespan_s, g.busy_s, overlap
                );
            }
        }
        if self.cache_lookups > 0 {
            let _ = writeln!(
                s,
                "  fitness cache: {} hit(s) / {} lookup(s) ({:.1}% hit rate)",
                self.cache_hits,
                self.cache_lookups,
                100.0 * self.cache_hit_rate()
            );
        }
        if let Some(a) = &self.asynchronous {
            let _ = writeln!(
                s,
                "  async steady-state: {} eval(s) over {} agent(s) ({}), tournament {}",
                a.total_evals,
                a.agents,
                if a.virtual_time {
                    "virtual time"
                } else {
                    "streamed"
                },
                a.tournament_size
            );
            let _ = writeln!(
                s,
                "  async throughput: makespan {:.3} s, {:.1} evals/s, busy {:.3} s, wasted idle {:.3} s",
                a.makespan_s, a.evals_per_s, a.busy_s, a.wasted_idle_s
            );
            let _ = writeln!(
                s,
                "  async evolution: {} insertion(s), {} best improvement(s), {} redispatch(es)",
                a.insertions, a.best_improvements, a.redispatches
            );
            let _ = writeln!(s, "  async event log hash: {:#018X}", a.event_log_hash);
        }
        if !self.telemetry.is_empty() {
            let _ = writeln!(
                s,
                "  telemetry: {} logical + {} timing event(s), logical hash {:#018X}",
                self.telemetry.logical_events,
                self.telemetry.timing_events,
                self.telemetry.logical_hash
            );
            for line in self.telemetry.agent_table().lines() {
                let _ = writeln!(s, "    {line}");
            }
        }
        if let Some(r) = &self.recovery {
            if r.any_recovery() {
                let _ = writeln!(
                    s,
                    "  recovery: {} link failure(s), {} chunk(s)/{} item(s) reassigned, \
                     {} kill(s) + {} join(s), {} retry attempt(s) costing {:.3} s",
                    r.failures,
                    r.reassigned_chunks,
                    r.reassigned_items,
                    r.kills,
                    r.joins,
                    r.retry_attempts,
                    r.recovery_s
                );
            }
        }
        s
    }
}

/// Renders an ASCII table: header row plus data rows, columns padded.
///
/// Shared by the figure binaries so every experiment prints uniformly.
pub fn text_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let ncols = headers.len();
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(ncols) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        let mut line = String::new();
        for (i, c) in cells.iter().enumerate() {
            if i > 0 {
                line.push_str("  ");
            }
            let _ = write!(line, "{:>width$}", c, width = widths[i]);
        }
        line
    };
    let header_cells: Vec<String> = headers.iter().map(|h| h.to_string()).collect();
    out.push_str(&fmt_row(&header_cells, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (ncols - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use clan_neat::counters::GenerationCosts;

    fn gen_report(generation: u64, best: f64) -> GenerationReport {
        GenerationReport {
            generation,
            best_fitness: best,
            num_species: 2,
            timeline: GenerationTimeline {
                inference_s: 1.0,
                evolution_s: 0.5,
                communication_s: 0.25,
            },
            costs: GenerationCosts::default(),
            extinction: false,
            cache_hits: 3,
            cache_lookups: 10,
        }
    }

    #[test]
    fn cache_totals_aggregate_and_print() {
        let r = RunReport::from_parts(
            Workload::CartPole,
            "Serial".into(),
            1,
            vec![gen_report(0, 10.0), gen_report(1, 20.0)],
            CommLedger::new(),
        );
        assert_eq!(r.cache_hits, 6);
        assert_eq!(r.cache_lookups, 20);
        assert!((r.cache_hit_rate() - 0.3).abs() < 1e-12);
        assert!(r.summary().contains("fitness cache"));
    }

    #[test]
    fn from_parts_aggregates() {
        let r = RunReport::from_parts(
            Workload::CartPole,
            "CLAN_DCS".into(),
            4,
            vec![gen_report(0, 10.0), gen_report(1, 200.0)],
            CommLedger::new(),
        );
        assert_eq!(r.best_fitness, 200.0);
        assert_eq!(r.solved_at_generation, Some(1));
        assert!((r.total_timeline.total_s() - 3.5).abs() < 1e-12);
        assert!((r.mean_generation_s() - 1.75).abs() < 1e-12);
    }

    #[test]
    fn unsolved_run_has_no_convergence_generation() {
        let r = RunReport::from_parts(
            Workload::CartPole,
            "Serial".into(),
            1,
            vec![gen_report(0, 10.0)],
            CommLedger::new(),
        );
        assert_eq!(r.solved_at_generation, None);
        assert!(r.summary().contains("Serial"));
    }

    #[test]
    fn text_table_alignment() {
        let t = text_table(
            &["n", "time"],
            &[
                vec!["1".into(), "10.0".into()],
                vec!["100".into(), "3.5".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains('n'));
        assert!(lines[2].ends_with("10.0"));
    }
}
