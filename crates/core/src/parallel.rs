//! Deterministic parallel evaluation engine: the paper's headline
//! speedup — scaling the Inference block across parallel workers —
//! realized with a persistent `std::thread` pool on one host.
//!
//! # Determinism contract
//!
//! A genome's evaluation depends only on `(genome content,
//! master_seed)`: the episode seed is derived exactly as
//! [`Evaluator::episode_seed`] derives it on the serial path, every
//! worker owns a private [`Environment`](clan_envs::Environment) reset from that seed, and
//! results are merged back in genome-id order. Fitness, `CostCounters`,
//! and therefore the entire downstream evolutionary trajectory are
//! bit-identical to a serial run at any thread count — asserted by
//! `tests/equivalence.rs`.
//!
//! Workers mirror the message-passing idiom of
//! [`runtime::EdgeCluster`](crate::runtime::EdgeCluster): one OS thread
//! per worker, `mpsc` channels, shards scattered and gathered per
//! generation. Each worker holds its own environment instance and
//! [`Scratch`](clan_neat::Scratch) buffers (inside its [`Evaluator`]), so the per-step hot
//! loop performs no heap allocation and no cross-thread synchronization.
//! Genomes are cloned into the shard messages — deliberate: a persistent
//! pool owns its inputs (no lifetime coupling to the population), and
//! the clone mirrors the genome transfer a real CLAN deployment performs
//! anyway; episode rollouts dominate the clone cost on every workload
//! bigger than a dying CartPole genome.
//!
//! `clan_neat::Population::evaluate_parallel` implements the same
//! contract with borrowed data and scoped threads for library callers
//! that own no pool; the shard-in-id-order / merge-in-id-order invariant
//! is shared between the two and pinned by the same equivalence suite —
//! change one, check the other.

use crate::evaluator::{EngineOptions, Evaluator, InferenceMode};
use clan_envs::Workload;
use clan_neat::population::Evaluation;
use clan_neat::{Genome, GenomeId, NeatConfig, Population};
use std::sync::mpsc::{channel, Receiver, Sender};
use std::sync::Arc;
use std::thread::JoinHandle;

/// One genome's evaluation plus the compiled network's per-activation
/// gene cost (needed for the paper's inference accounting).
pub type GenomeEvaluation = (GenomeId, Evaluation, u64);

struct EvaluateJob {
    genomes: Vec<Genome>,
    /// Shared, not cloned per worker: the config is invariant across a
    /// generation (only the I/O dimensions matter for compilation).
    cfg: Arc<NeatConfig>,
    generation: u64,
    master_seed: u64,
}

enum Request {
    Evaluate(Box<EvaluateJob>),
    Shutdown,
}

struct Worker {
    tx: Sender<Request>,
    rx: Receiver<Vec<GenomeEvaluation>>,
    handle: Option<JoinHandle<()>>,
}

/// A persistent pool of evaluation workers.
///
/// Spawned once and reused across generations (thread startup is not
/// paid per generation). Dropping the pool shuts the workers down.
pub struct ParallelEvaluator {
    workers: Vec<Worker>,
    workload: Workload,
    mode: InferenceMode,
    episodes: u32,
    options: EngineOptions,
}

impl std::fmt::Debug for ParallelEvaluator {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("ParallelEvaluator")
            .field("threads", &self.workers.len())
            .field("workload", &self.workload)
            .field("mode", &self.mode)
            .field("episodes", &self.episodes)
            .field("options", &self.options)
            .finish()
    }
}

impl ParallelEvaluator {
    /// Spawns `threads` persistent evaluation workers for `workload`.
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero.
    pub fn spawn(
        workload: Workload,
        mode: InferenceMode,
        episodes: u32,
        threads: usize,
    ) -> ParallelEvaluator {
        // Workers never cache: their coordinator filters cache hits
        // before sharding, so every genome they see is a miss.
        ParallelEvaluator::spawn_with(
            workload,
            mode,
            episodes,
            threads,
            EngineOptions {
                cache: false,
                ..EngineOptions::default()
            },
        )
    }

    /// [`spawn`](Self::spawn) with explicit per-worker [`EngineOptions`]
    /// (batching tier and caching policy inside each worker).
    ///
    /// # Panics
    ///
    /// Panics if `threads` is zero.
    pub fn spawn_with(
        workload: Workload,
        mode: InferenceMode,
        episodes: u32,
        threads: usize,
        options: EngineOptions,
    ) -> ParallelEvaluator {
        assert!(
            threads > 0,
            "a parallel evaluator needs at least one thread"
        );
        let workers = (0..threads)
            .map(|i| {
                let (req_tx, req_rx) = channel::<Request>();
                let (resp_tx, resp_rx) = channel::<Vec<GenomeEvaluation>>();
                let handle = std::thread::Builder::new()
                    .name(format!("clan-eval-{i}"))
                    .spawn(move || worker_loop(req_rx, resp_tx, workload, mode, episodes, options))
                    .expect("spawning evaluation worker");
                Worker {
                    tx: req_tx,
                    rx: resp_rx,
                    handle: Some(handle),
                }
            })
            .collect();
        ParallelEvaluator {
            workers,
            workload,
            mode,
            episodes,
            options,
        }
    }

    /// Number of worker threads.
    pub fn n_threads(&self) -> usize {
        self.workers.len()
    }

    /// The workload workers evaluate on.
    pub fn workload(&self) -> Workload {
        self.workload
    }

    /// Evaluates every genome of `pop` across the pool and returns the
    /// results in genome-id order (episodes seeded exactly as the serial
    /// path seeds them). Does **not** touch the population's fitness or
    /// counters — callers apply the batch so cost accounting happens in
    /// one deterministic place.
    ///
    /// # Panics
    ///
    /// Panics if a worker thread died (only possible if an evaluation
    /// itself panicked).
    pub fn evaluate_population(&self, pop: &Population) -> Vec<GenomeEvaluation> {
        let genomes: Vec<Genome> = pop.genomes().values().cloned().collect();
        let results =
            self.evaluate_genomes(genomes, pop.config(), pop.master_seed(), pop.generation());
        debug_assert!(results.windows(2).all(|w| w[0].0 < w[1].0));
        results
    }

    /// Evaluates an explicit genome list across the pool (contiguous
    /// shards in input order, gathered back in worker order), returning
    /// results in input order. This is the subset entry point the cache
    /// filter uses: the coordinator ships only cache misses.
    ///
    /// # Panics
    ///
    /// Panics if a worker thread died (only possible if an evaluation
    /// itself panicked).
    pub fn evaluate_genomes(
        &self,
        genomes: Vec<Genome>,
        cfg: &NeatConfig,
        master_seed: u64,
        generation: u64,
    ) -> Vec<GenomeEvaluation> {
        let total = genomes.len();
        if total == 0 {
            return Vec::new();
        }
        let cfg = Arc::new(cfg.clone());
        let shard_len = total.div_ceil(self.workers.len()).max(1);
        // Scatter contiguous input-ordered shards...
        let mut sent = 0usize;
        let mut genomes = genomes;
        let mut shards: Vec<Vec<Genome>> = Vec::with_capacity(self.workers.len());
        while !genomes.is_empty() {
            let rest = genomes.split_off(shard_len.min(genomes.len()));
            shards.push(std::mem::replace(&mut genomes, rest));
        }
        for (worker, shard) in self.workers.iter().zip(shards) {
            worker
                .tx
                .send(Request::Evaluate(Box::new(EvaluateJob {
                    genomes: shard,
                    cfg: Arc::clone(&cfg),
                    generation,
                    master_seed,
                })))
                .expect("evaluation worker disconnected");
            sent += 1;
        }
        // ...and gather in worker order, which concatenates back to
        // input order.
        let mut results: Vec<GenomeEvaluation> = Vec::with_capacity(total);
        for worker in self.workers.iter().take(sent) {
            results.extend(worker.rx.recv().expect("evaluation worker disconnected"));
        }
        results
    }

    fn shutdown_inner(&mut self) {
        for w in &self.workers {
            let _ = w.tx.send(Request::Shutdown);
        }
        for w in &mut self.workers {
            if let Some(h) = w.handle.take() {
                let _ = h.join();
            }
        }
        self.workers.clear();
    }
}

impl Drop for ParallelEvaluator {
    fn drop(&mut self) {
        self.shutdown_inner();
    }
}

fn worker_loop(
    rx: Receiver<Request>,
    tx: Sender<Vec<GenomeEvaluation>>,
    workload: Workload,
    mode: InferenceMode,
    episodes: u32,
    options: EngineOptions,
) {
    // Each worker owns one Evaluator: a private environment instance plus
    // private Scratch buffers — the zero-allocation, zero-contention
    // steady state.
    let mut evaluator = Evaluator::with_options(workload, mode, episodes, 1, options);
    while let Ok(req) = rx.recv() {
        match req {
            Request::Evaluate(job) => {
                let results = evaluator.evaluate_genomes(
                    &job.genomes,
                    &job.cfg,
                    job.master_seed,
                    job.generation,
                );
                if tx.send(results).is_err() {
                    return;
                }
            }
            Request::Shutdown => return,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use clan_neat::FeedForwardNetwork;

    fn pop_for(w: Workload, n: usize, seed: u64) -> Population {
        let cfg = clan_neat::NeatConfig::builder(w.obs_dim(), w.n_actions())
            .population_size(n)
            .build()
            .unwrap();
        Population::new(cfg, seed)
    }

    fn pop(n: usize, seed: u64) -> Population {
        pop_for(Workload::CartPole, n, seed)
    }

    #[test]
    fn pool_results_match_serial_evaluator() {
        let pop = pop(17, 3);
        let pool = ParallelEvaluator::spawn(Workload::CartPole, InferenceMode::MultiStep, 1, 4);
        let parallel = pool.evaluate_population(&pop);

        let mut serial_eval = Evaluator::new(Workload::CartPole, InferenceMode::MultiStep);
        let serial: Vec<GenomeEvaluation> = pop
            .genomes()
            .values()
            .map(|g| {
                let net = FeedForwardNetwork::compile(g, pop.config());
                let seed = serial_eval.seed_for(pop.master_seed(), g);
                (
                    g.id(),
                    serial_eval.evaluate(&net, seed),
                    net.genes_per_activation(),
                )
            })
            .collect();
        assert_eq!(parallel, serial);
    }

    #[test]
    fn results_arrive_in_genome_id_order() {
        let pop = pop(23, 4);
        let pool = ParallelEvaluator::spawn(Workload::CartPole, InferenceMode::MultiStep, 1, 5);
        let results = pool.evaluate_population(&pop);
        assert_eq!(results.len(), 23);
        assert!(results.windows(2).all(|w| w[0].0 < w[1].0));
    }

    #[test]
    fn more_threads_than_genomes_is_fine() {
        let pop = pop(3, 5);
        let pool = ParallelEvaluator::spawn(Workload::CartPole, InferenceMode::SingleStep, 1, 8);
        let results = pool.evaluate_population(&pop);
        assert_eq!(results.len(), 3);
        assert!(results.iter().all(|&(_, e, _)| e.activations == 1));
    }

    #[test]
    fn multi_episode_pools_match_serial_too() {
        let pop = pop_for(Workload::MountainCar, 9, 6);
        let pool = ParallelEvaluator::spawn(Workload::MountainCar, InferenceMode::MultiStep, 3, 2);
        let parallel = pool.evaluate_population(&pop);
        let mut serial_eval =
            Evaluator::with_episodes(Workload::MountainCar, InferenceMode::MultiStep, 3);
        for (id, eval, _) in parallel {
            let g = pop.genome(id).unwrap();
            let net = FeedForwardNetwork::compile(g, pop.config());
            let seed = serial_eval.seed_for(pop.master_seed(), g);
            assert_eq!(eval, serial_eval.evaluate(&net, seed));
        }
    }

    #[test]
    fn drop_shuts_down_cleanly() {
        let pool = ParallelEvaluator::spawn(Workload::CartPole, InferenceMode::SingleStep, 1, 2);
        assert_eq!(pool.n_threads(), 2);
        drop(pool); // must not hang or panic
    }

    #[test]
    #[should_panic(expected = "at least one thread")]
    fn zero_threads_rejected() {
        ParallelEvaluator::spawn(Workload::CartPole, InferenceMode::MultiStep, 1, 0);
    }
}
