//! `CLAN_DDA` — Distributed inference and reproduction with
//! **Asynchronous Speciation** (paper §III-D-2, "Soft Scaling").
//!
//! The population is split into *clans*, one per agent. Each clan runs
//! the entire NEAT loop — inference, speciation, planning, reproduction —
//! locally and independently; after the one-time initial distribution,
//! **no genomes ever cross the network again**. Only a per-generation
//! best-fitness scalar flows to the center for convergence monitoring,
//! which is why DDA's communication bar in Figure 4 is orders of
//! magnitude below DCS/DDS.
//!
//! The price is algorithmic: speciation over `1/k` of the population
//! explores less, so convergence takes more generations as clans grow
//! (Figure 7b). The paper sketches *periodic global speciation* as future
//! work; [`DdaOrchestrator::with_resync_every`] implements it — every `R`
//! generations all genomes are pooled and redistributed round-robin,
//! at the cost of one genome-broadcast round.

use crate::error::ClanError;
use crate::evaluator::Evaluator;
use crate::orchestra::{
    central_evolution, emit_generation_end, evaluate_partitioned, genome_payload, track_best, Comm,
    GenerationReport, Orchestrator,
};
use crate::topology::ClanTopology;
use clan_distsim::{Cluster, TimelineRecorder};
use clan_neat::counters::GenerationCosts;
use clan_neat::rng::derive_seed;
use clan_neat::{Genome, NeatConfig, Population};
use clan_netsim::{CommLedger, MessageKind};

/// Id space reserved for genomes reassigned during global resync, far
/// above any id a clan allocates naturally.
const RESYNC_ID_BASE: u64 = 1 << 40;

/// The asynchronous-speciation configuration.
#[derive(Debug)]
pub struct DdaOrchestrator {
    clans: Vec<Population>,
    evaluator: Evaluator,
    cluster: Cluster,
    recorder: TimelineRecorder,
    comm: Comm,
    best_ever: Option<Genome>,
    generation: u64,
    total_population: usize,
    resync_every: Option<u64>,
    next_resync_id: u64,
}

impl DdaOrchestrator {
    /// Creates a `CLAN_DDA` run: `cfg.population_size` genomes split into
    /// one clan per agent of `cluster`, **sized by device throughput**
    /// ([`Cluster::partition_by_throughput`]) so a Jetson's clan evolves
    /// proportionally more genomes than a Pi's and asynchronous
    /// generations stay balanced. On a homogeneous cluster (the paper's
    /// testbed) the throughput weights are equal and the split degrades
    /// bit-for-bit to the historical even partition.
    ///
    /// # Errors
    ///
    /// Returns [`ClanError::InvalidSetup`] if any clan would have fewer
    /// than two genomes.
    pub fn new(
        cfg: NeatConfig,
        evaluator: Evaluator,
        cluster: Cluster,
        seed: u64,
    ) -> Result<DdaOrchestrator, ClanError> {
        let total = cfg.population_size;
        let sizes = cluster.partition_by_throughput(total);
        if sizes.iter().any(|&s| s < 2) {
            return Err(ClanError::InvalidSetup {
                reason: format!(
                    "population {total} split over {} clans leaves a clan with < 2 genomes",
                    cluster.n_agents()
                ),
            });
        }
        let clans = sizes
            .iter()
            .enumerate()
            .map(|(i, &size)| {
                let mut clan_cfg = cfg.clone();
                clan_cfg.population_size = size;
                let clan_seed = derive_seed(seed, &[0xC1A2, i as u64]);
                Population::new(clan_cfg, clan_seed)
            })
            .collect();
        Ok(DdaOrchestrator {
            clans,
            evaluator,
            cluster,
            recorder: TimelineRecorder::new(),
            comm: Comm::new(),
            best_ever: None,
            generation: 0,
            total_population: total,
            resync_every: None,
            next_resync_id: RESYNC_ID_BASE,
        })
    }

    /// Enables the paper's future-work extension: every `generations`
    /// generations, pool all clans' genomes and redistribute them
    /// round-robin (periodic global speciation).
    ///
    /// # Panics
    ///
    /// Panics if `generations` is zero.
    pub fn with_resync_every(mut self, generations: u64) -> DdaOrchestrator {
        assert!(generations > 0, "resync interval must be positive");
        self.resync_every = Some(generations);
        self
    }

    /// The independent clan populations.
    pub fn clans(&self) -> &[Population] {
        &self.clans
    }

    /// Pools every clan's genomes and deals them back round-robin,
    /// charging the genome broadcast to the ledger.
    fn global_resync(&mut self) {
        let n = self.clans.len();
        let mut pooled: Vec<Genome> = Vec::with_capacity(self.total_population);
        for clan in &self.clans {
            pooled.extend(clan.genomes().values().cloned());
        }
        // Fresh globally unique ids keep per-clan id spaces disjoint.
        for g in &mut pooled {
            g.set_id(clan_neat::GenomeId(self.next_resync_id));
            self.next_resync_id += 1;
        }
        // Each genome crosses the network twice: agent -> center -> agent.
        let payloads: Vec<u64> = pooled
            .iter()
            .flat_map(|g| [genome_payload(g), genome_payload(g)])
            .collect();
        let t = self
            .comm
            .phase(&self.cluster, MessageKind::SendGenomes, 2 * n, payloads);
        self.recorder.add_communication(t);

        let mut buckets: Vec<Vec<Genome>> = (0..n).map(|_| Vec::new()).collect();
        for (i, g) in pooled.into_iter().enumerate() {
            buckets[i % n].push(g);
        }
        for (clan, bucket) in self.clans.iter_mut().zip(buckets) {
            clan.replace_genomes(bucket);
        }
    }
}

impl Orchestrator for DdaOrchestrator {
    fn topology(&self) -> ClanTopology {
        ClanTopology::dda(self.clans.len())
    }

    fn cluster(&self) -> &Cluster {
        &self.cluster
    }

    fn step_generation(&mut self) -> Result<GenerationReport, ClanError> {
        let generation = self.generation;
        let n_agents = self.cluster.n_agents();

        // COMM (generation 0 only) — initial clan distribution. After
        // this, genomes never travel again (absent resync).
        if generation == 0 {
            let payloads: Vec<u64> = self
                .clans
                .iter()
                .flat_map(|c| c.genomes().values().map(genome_payload))
                .collect();
            let t = self
                .comm
                .phase(&self.cluster, MessageKind::SendGenomes, n_agents, payloads);
            self.recorder.add_communication(t);
        }

        // Each clan runs a full local generation.
        let mut inference_genes = Vec::with_capacity(n_agents);
        let mut evolution_genes = Vec::with_capacity(n_agents);
        let mut best_fitness = f64::NEG_INFINITY;
        let mut num_species = 0;
        let mut extinction = false;
        let mut costs = GenerationCosts::default();
        for clan in &mut self.clans {
            let size = clan.len();
            let genes = evaluate_partitioned(clan, &mut self.evaluator, &[size])?;
            inference_genes.push(genes[0]);
            if let Some(f) = clan.best().and_then(Genome::fitness) {
                best_fitness = best_fitness.max(f);
            }
            track_best(&mut self.best_ever, clan);
            let evo = central_evolution(clan)?;
            evolution_genes.push(evo.speciation_genes + evo.reproduction_genes);
            num_species += evo.num_species;
            extinction |= evo.extinction;
            costs += clan.counters_mut().finish_generation();
        }
        self.recorder
            .add_inference(self.cluster.parallel_inference_time_s(&inference_genes));
        self.recorder
            .add_evolution(self.cluster.parallel_evolution_time_s(&evolution_genes));

        // COMM — one best-fitness scalar per clan for convergence
        // monitoring (clan id + fitness).
        let t = self.comm.phase(
            &self.cluster,
            MessageKind::SendFitness,
            n_agents,
            (0..n_agents).map(|_| 2u64),
        );
        self.recorder.add_communication(t);

        self.generation += 1;

        // Optional periodic global speciation (future-work extension).
        if let Some(r) = self.resync_every {
            if self.generation.is_multiple_of(r) {
                self.global_resync();
            }
        }

        let (cache_hits, cache_lookups) = self.evaluator.take_cache_window();
        let report = GenerationReport {
            generation,
            best_fitness,
            num_species,
            timeline: self.recorder.finish_generation(),
            costs,
            extinction,
            cache_hits,
            cache_lookups,
        };
        emit_generation_end(self.evaluator.tracer(), &report);
        Ok(report)
    }

    fn best_ever(&self) -> Option<&Genome> {
        self.best_ever.as_ref()
    }

    fn ledger(&self) -> &CommLedger {
        self.comm.ledger()
    }

    fn transport_ledger(&self) -> Option<&CommLedger> {
        self.evaluator.remote_ledger()
    }

    fn gather_stats(&self) -> Option<crate::runtime::GatherStats> {
        self.evaluator.remote_gather_stats()
    }

    fn recovery_stats(&self) -> Option<crate::membership::RecoveryStats> {
        self.evaluator.remote_recovery_stats()
    }

    fn membership(&self) -> Option<Vec<crate::membership::AgentHealth>> {
        self.evaluator.remote_membership()
    }

    fn recorder(&self) -> &TimelineRecorder {
        &self.recorder
    }

    fn population_size(&self) -> usize {
        self.total_population
    }

    fn install_tracer(&mut self, tracer: crate::telemetry::Tracer) {
        self.evaluator.set_tracer(tracer);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluator::InferenceMode;
    use clan_envs::Workload;
    use clan_hw::Platform;
    use clan_netsim::WifiModel;

    fn make(pop: usize, agents: usize, seed: u64) -> DdaOrchestrator {
        let w = Workload::CartPole;
        let cfg = NeatConfig::builder(w.obs_dim(), w.n_actions())
            .population_size(pop)
            .build()
            .unwrap();
        DdaOrchestrator::new(
            cfg,
            Evaluator::new(w, InferenceMode::MultiStep),
            Cluster::homogeneous(Platform::raspberry_pi(), agents, WifiModel::default()),
            seed,
        )
        .unwrap()
    }

    #[test]
    fn clans_partition_population() {
        let o = make(30, 4, 1);
        let sizes: Vec<usize> = o.clans().iter().map(Population::len).collect();
        assert_eq!(sizes, vec![8, 8, 7, 7]);
        assert_eq!(o.population_size(), 30);
    }

    #[test]
    fn heterogeneous_clusters_size_clans_by_throughput() {
        use clan_hw::PlatformKind;
        let w = Workload::CartPole;
        let cfg = NeatConfig::builder(w.obs_dim(), w.n_actions())
            .population_size(36)
            .build()
            .unwrap();
        // A Jetson CPU models 3.5x a Pi's inference throughput: its clan
        // gets ~3.5x the genomes instead of the old even split.
        let fast = clan_hw::Platform::new(PlatformKind::JetsonCpu);
        let slow = clan_hw::Platform::raspberry_pi();
        let cluster = Cluster::new(slow, vec![fast, slow], WifiModel::default());
        let o = DdaOrchestrator::new(cfg, Evaluator::new(w, InferenceMode::MultiStep), cluster, 1)
            .unwrap();
        let sizes: Vec<usize> = o.clans().iter().map(Population::len).collect();
        assert_eq!(sizes.iter().sum::<usize>(), 36);
        assert_eq!(sizes, vec![28, 8], "3.5:1 throughput ratio sizes the clans");
        // And the run still steps.
        let mut o = o;
        o.step_generation().unwrap();
    }

    #[test]
    fn too_small_clans_rejected() {
        let w = Workload::CartPole;
        let cfg = NeatConfig::builder(w.obs_dim(), w.n_actions())
            .population_size(5)
            .build()
            .unwrap();
        let err = DdaOrchestrator::new(
            cfg,
            Evaluator::new(w, InferenceMode::MultiStep),
            Cluster::homogeneous(Platform::raspberry_pi(), 4, WifiModel::default()),
            1,
        );
        assert!(matches!(err, Err(ClanError::InvalidSetup { .. })));
    }

    #[test]
    fn genomes_only_travel_at_init() {
        let mut o = make(20, 4, 2);
        o.step_generation().unwrap();
        let after_g0 = o.ledger().entry(MessageKind::SendGenomes);
        assert_eq!(after_g0.messages, 20);
        for _ in 0..3 {
            o.step_generation().unwrap();
        }
        assert_eq!(
            o.ledger().entry(MessageKind::SendGenomes).messages,
            20,
            "no genome traffic after initialization"
        );
        assert_eq!(o.ledger().entry(MessageKind::SendFitness).messages, 16);
        assert_eq!(o.ledger().entry(MessageKind::SendChildren).messages, 0);
        assert_eq!(o.ledger().entry(MessageKind::SendParentGenomes).messages, 0);
    }

    #[test]
    fn communication_far_below_dds() {
        let mut dda = make(20, 4, 3);
        let mut dds = {
            let w = Workload::CartPole;
            let cfg = NeatConfig::builder(w.obs_dim(), w.n_actions())
                .population_size(20)
                .build()
                .unwrap();
            crate::dds::DdsOrchestrator::new(
                Population::new(cfg, 3),
                Evaluator::new(w, InferenceMode::MultiStep),
                Cluster::homogeneous(Platform::raspberry_pi(), 4, WifiModel::default()),
            )
        };
        for _ in 0..3 {
            dda.step_generation().unwrap();
            dds.step_generation().unwrap();
        }
        assert!(
            dda.ledger().total_floats() * 3 < dds.ledger().total_floats(),
            "DDA {} vs DDS {}",
            dda.ledger().total_floats(),
            dds.ledger().total_floats()
        );
    }

    #[test]
    fn clans_evolve_independently_and_deterministically() {
        let run = |seed: u64| {
            let mut o = make(24, 3, seed);
            for _ in 0..3 {
                o.step_generation().unwrap();
            }
            o.clans()
                .iter()
                .flat_map(|c| c.genomes().values().cloned())
                .collect::<Vec<Genome>>()
        };
        let a = run(9);
        let b = run(9);
        assert_eq!(a, b);
        assert_ne!(a, run(10));
    }

    #[test]
    fn resync_shuffles_genomes_across_clans() {
        let mut o = make(24, 3, 4).with_resync_every(2);
        let genome_msgs_before = o.ledger().entry(MessageKind::SendGenomes).messages;
        o.step_generation().unwrap();
        o.step_generation().unwrap(); // resync fires after this one
        let genome_msgs_after = o.ledger().entry(MessageKind::SendGenomes).messages;
        assert!(
            genome_msgs_after > genome_msgs_before + 24,
            "resync must move genomes: {genome_msgs_before} -> {genome_msgs_after}"
        );
        // Populations remain well-formed.
        for clan in o.clans() {
            assert_eq!(clan.len(), 8);
        }
        // And the run can continue.
        o.step_generation().unwrap();
    }

    #[test]
    fn reports_aggregate_species_across_clans() {
        let mut o = make(24, 3, 5);
        let r = o.step_generation().unwrap();
        assert!(r.num_species >= 3, "each clan has at least one species");
        assert!(r.best_fitness.is_finite());
        assert!(r.costs.episodes == 24);
    }
}
