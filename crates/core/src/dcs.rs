//! `CLAN_DCS` — Distributed inference, Central reproduction, Synchronous
//! speciation (paper §III-D-1).
//!
//! Every generation the center ships each genome to an agent, agents
//! evaluate in parallel (population-level parallelism), fitness flows
//! back, and the center runs speciation + planning + reproduction alone.
//! Simple and effective while multi-step inference dominates; Amdahl's law
//! catches up once evolution and communication stop shrinking.

use crate::error::ClanError;
use crate::evaluator::Evaluator;
use crate::orchestra::{
    central_evolution, emit_generation_end, evaluate_partitioned, genome_payload, track_best, Comm,
    GenerationReport, Orchestrator, FITNESS_ENTRY_FLOATS,
};
use crate::topology::ClanTopology;
use clan_distsim::{Cluster, TimelineRecorder};
use clan_neat::{Genome, Population};
use clan_netsim::{CommLedger, MessageKind};

/// The distributed-inference configuration.
#[derive(Debug)]
pub struct DcsOrchestrator {
    pop: Population,
    evaluator: Evaluator,
    cluster: Cluster,
    recorder: TimelineRecorder,
    comm: Comm,
    best_ever: Option<Genome>,
}

impl DcsOrchestrator {
    /// Creates a `CLAN_DCS` run of `pop` over `cluster`.
    pub fn new(pop: Population, evaluator: Evaluator, cluster: Cluster) -> DcsOrchestrator {
        DcsOrchestrator {
            pop,
            evaluator,
            cluster,
            recorder: TimelineRecorder::new(),
            comm: Comm::new(),
            best_ever: None,
        }
    }

    /// The underlying population.
    pub fn population(&self) -> &Population {
        &self.pop
    }
}

impl Orchestrator for DcsOrchestrator {
    fn topology(&self) -> ClanTopology {
        ClanTopology::dcs()
    }

    fn cluster(&self) -> &Cluster {
        &self.cluster
    }

    fn step_generation(&mut self) -> Result<GenerationReport, ClanError> {
        let generation = self.pop.generation();
        let n_agents = self.cluster.n_agents();
        let center = *self.cluster.center();
        let counts = self.cluster.partition(self.pop.len());

        // COMM — center sends every genome to its assigned agent
        // (one message per genome; one channel per agent).
        let payloads: Vec<u64> = self.pop.genomes().values().map(genome_payload).collect();
        let t = self
            .comm
            .phase(&self.cluster, MessageKind::SendGenomes, n_agents, payloads);
        self.recorder.add_communication(t);

        // I — distributed inference, barrier-synchronized.
        let genes = evaluate_partitioned(&mut self.pop, &mut self.evaluator, &counts)?;
        self.recorder
            .add_inference(self.cluster.parallel_inference_time_s(&genes));

        // COMM — agents return fitness (one batched message per agent).
        let fitness_payloads = counts.iter().map(|&c| c as u64 * FITNESS_ENTRY_FLOATS);
        let t = self.comm.phase(
            &self.cluster,
            MessageKind::SendFitness,
            n_agents,
            fitness_payloads,
        );
        self.recorder.add_communication(t);

        let best_fitness = self
            .pop
            .best()
            .and_then(Genome::fitness)
            .expect("population was just evaluated");
        track_best(&mut self.best_ever, &self.pop);

        // S, GP, R — central.
        let evo = central_evolution(&mut self.pop)?;
        self.recorder
            .add_evolution(center.evolution_time_s(evo.speciation_genes + evo.reproduction_genes));

        let (cache_hits, cache_lookups) = self.evaluator.take_cache_window();
        let report = GenerationReport {
            generation,
            best_fitness,
            num_species: evo.num_species,
            timeline: self.recorder.finish_generation(),
            costs: self.pop.counters_mut().finish_generation(),
            extinction: evo.extinction,
            cache_hits,
            cache_lookups,
        };
        emit_generation_end(self.evaluator.tracer(), &report);
        Ok(report)
    }

    fn best_ever(&self) -> Option<&Genome> {
        self.best_ever.as_ref()
    }

    fn ledger(&self) -> &CommLedger {
        self.comm.ledger()
    }

    fn transport_ledger(&self) -> Option<&CommLedger> {
        self.evaluator.remote_ledger()
    }

    fn gather_stats(&self) -> Option<crate::runtime::GatherStats> {
        self.evaluator.remote_gather_stats()
    }

    fn recovery_stats(&self) -> Option<crate::membership::RecoveryStats> {
        self.evaluator.remote_recovery_stats()
    }

    fn membership(&self) -> Option<Vec<crate::membership::AgentHealth>> {
        self.evaluator.remote_membership()
    }

    fn recorder(&self) -> &TimelineRecorder {
        &self.recorder
    }

    fn population_size(&self) -> usize {
        self.pop.config().population_size
    }

    fn install_tracer(&mut self, tracer: crate::telemetry::Tracer) {
        self.evaluator.set_tracer(tracer);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::evaluator::InferenceMode;
    use crate::serial::SerialOrchestrator;
    use clan_envs::Workload;
    use clan_hw::Platform;
    use clan_neat::NeatConfig;
    use clan_netsim::WifiModel;

    fn make(pop_size: usize, agents: usize, seed: u64) -> DcsOrchestrator {
        let w = Workload::CartPole;
        let cfg = NeatConfig::builder(w.obs_dim(), w.n_actions())
            .population_size(pop_size)
            .build()
            .unwrap();
        DcsOrchestrator::new(
            Population::new(cfg, seed),
            Evaluator::new(w, InferenceMode::MultiStep),
            Cluster::homogeneous(Platform::raspberry_pi(), agents, WifiModel::default()),
        )
    }

    #[test]
    fn records_genome_and_fitness_traffic() {
        let mut o = make(12, 3, 1);
        o.step_generation().unwrap();
        let genomes = o.ledger().entry(MessageKind::SendGenomes);
        let fitness = o.ledger().entry(MessageKind::SendFitness);
        assert_eq!(genomes.messages, 12, "one message per genome");
        assert_eq!(fitness.messages, 3, "one fitness batch per agent");
        assert_eq!(fitness.floats, 24);
        assert_eq!(o.ledger().entry(MessageKind::SendChildren).messages, 0);
    }

    #[test]
    fn inference_time_shrinks_with_agents() {
        let t = |agents: usize| {
            let mut o = make(30, agents, 2);
            o.step_generation().unwrap().timeline.inference_s
        };
        let t1 = t(1);
        let t5 = t(5);
        assert!(t5 < t1 * 0.5, "5 agents should beat 1 by >2x: {t1} vs {t5}");
    }

    #[test]
    fn communication_grows_with_agents() {
        let c = |agents: usize| {
            let mut o = make(30, agents, 3);
            o.step_generation().unwrap().timeline.communication_s
        };
        assert!(c(8) > c(2), "channel setup scales with agent count");
    }

    #[test]
    fn dcs_matches_serial_trajectory_exactly() {
        // The paper's implicit invariant (and our order-independent RNG
        // guarantee): distributing inference must not change evolution.
        let w = Workload::CartPole;
        let cfg = NeatConfig::builder(w.obs_dim(), w.n_actions())
            .population_size(20)
            .build()
            .unwrap();
        let mut serial = SerialOrchestrator::new(
            Population::new(cfg.clone(), 7),
            Evaluator::new(w, InferenceMode::MultiStep),
            Cluster::homogeneous(Platform::raspberry_pi(), 1, WifiModel::default()),
        );
        let mut dcs = make(20, 4, 7);
        for _ in 0..4 {
            let a = serial.step_generation().unwrap();
            let b = dcs.step_generation().unwrap();
            assert_eq!(a.best_fitness, b.best_fitness);
            assert_eq!(a.num_species, b.num_species);
        }
        assert_eq!(
            serial.population().genomes(),
            dcs.population().genomes(),
            "populations must be bit-identical"
        );
    }
}
