//! In-process transport: frames over `std::sync::mpsc` byte channels.
//!
//! The encoded-bytes boundary is deliberate — even between threads of
//! one process, messages cross as the same frames TCP would carry, so
//! byte accounting and malformed-frame behavior are transport-invariant.

use super::Transport;
use crate::error::ClanError;
use std::sync::mpsc::{channel, Receiver, Sender};

/// One endpoint of an in-process frame pipe.
#[derive(Debug)]
pub struct ChannelTransport {
    tx: Sender<Vec<u8>>,
    rx: Receiver<Vec<u8>>,
    label: String,
}

/// Creates a connected pair of in-process transports.
pub fn channel_pair() -> (ChannelTransport, ChannelTransport) {
    let (tx_ab, rx_ab) = channel();
    let (tx_ba, rx_ba) = channel();
    (
        ChannelTransport {
            tx: tx_ab,
            rx: rx_ba,
            label: "channel:agent".into(),
        },
        ChannelTransport {
            tx: tx_ba,
            rx: rx_ab,
            label: "channel:coordinator".into(),
        },
    )
}

impl Transport for ChannelTransport {
    fn send_frame(&mut self, frame: &[u8]) -> Result<(), ClanError> {
        self.tx
            .send(frame.to_vec())
            .map_err(|_| ClanError::Transport {
                peer: self.label.clone(),
                reason: "peer disconnected".into(),
            })
    }

    fn recv_frame(&mut self) -> Result<Vec<u8>, ClanError> {
        // clan-lint: allow(L2, reason="in-process channel: a dead peer thread drops its Sender and recv unblocks with Err; silent-but-alive peers are a cross-process hazard this transport cannot have")
        self.rx.recv().map_err(|_| ClanError::Transport {
            peer: self.label.clone(),
            reason: "peer disconnected".into(),
        })
    }

    fn peer(&self) -> String {
        self.label.clone()
    }
}
