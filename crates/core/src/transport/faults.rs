//! Deterministic fault injection for datagram links.
//!
//! Real shared-medium WiFi loses, duplicates, reorders, and delays
//! frames; reproducing that in a test or bench requires the faults to be
//! *seeded*, not left to the kernel's mood. [`FaultyTransport`] wraps
//! any inner [`DatagramLink`] — a real UDP socket, an in-process
//! channel — and perturbs the datagram stream with a per-link RNG:
//!
//! - **drop** — outbound and inbound datagrams vanish with probability
//!   `drop_p` (independent streams per direction, so one wrapper on the
//!   coordinator side makes the whole link bidirectionally lossy);
//! - **duplicate** — an outbound datagram is sent twice with
//!   probability `dup_p`;
//! - **reorder** — an outbound datagram is held back and transmitted
//!   after the next one with probability `reorder_p`;
//! - **delay / bandwidth** — every outbound datagram charges
//!   `delay_s + bytes * 8 / bandwidth_bps` of wall-clock before leaving,
//!   emulating a link like the paper's measured
//!   62.24 Mbps / 8.83 ms WiFi so measured transfer times can be
//!   compared against
//!   [`WifiModel::transfer_time_s`](clan_netsim::WifiModel::transfer_time_s).
//!
//! Faults sit *below* the ARQ layer
//! ([`UdpTransport`](super::UdpTransport)), which is what makes them
//! recoverable: the reliability protocol retransmits, deduplicates, and
//! reorders back, so a run under injected loss stays bit-identical to a
//! clean one — only timing and the retransmission overhead recorded in
//! [`LinkStats`](super::LinkStats) change. (Injecting loss *above* a
//! reliable transport would simply corrupt the session — that layering
//! is the point of this module.)

use super::udp::DatagramLink;
use crate::error::ClanError;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};
use std::time::{Duration, Instant};

/// Mixes a seed and a link index into an independent per-link seed
/// (splitmix64 finalizer — one shared seed must not give every link the
/// same loss pattern).
fn mix_seed(seed: u64, salt: u64) -> u64 {
    let mut z = seed ^ salt.wrapping_mul(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// Seeded fault plan for one link (probabilities per datagram).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct FaultConfig {
    /// Probability a datagram is dropped (applied independently to each
    /// direction).
    pub drop_p: f64,
    /// Probability an outbound datagram is sent twice.
    pub dup_p: f64,
    /// Probability an outbound datagram is held and sent after its
    /// successor.
    pub reorder_p: f64,
    /// Fixed latency charged per outbound datagram, seconds.
    pub delay_s: f64,
    /// Emulated link bandwidth, bits per second (`0` = unlimited).
    pub bandwidth_bps: f64,
    /// RNG seed the fault decisions derive from.
    pub seed: u64,
}

impl Default for FaultConfig {
    /// No faults, no emulated medium, seed 0.
    fn default() -> FaultConfig {
        FaultConfig {
            drop_p: 0.0,
            dup_p: 0.0,
            reorder_p: 0.0,
            delay_s: 0.0,
            bandwidth_bps: 0.0,
            seed: 0,
        }
    }
}

impl FaultConfig {
    /// A pure-loss plan: drop each datagram with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not a probability in `[0, 1)`.
    pub fn loss(p: f64) -> FaultConfig {
        FaultConfig::default().with_drop(p)
    }

    fn check_p(p: f64, what: &str) {
        assert!(
            p.is_finite() && (0.0..1.0).contains(&p),
            "{what} must be a probability in [0, 1), got {p}"
        );
    }

    /// Sets the drop probability.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1)`.
    pub fn with_drop(mut self, p: f64) -> FaultConfig {
        Self::check_p(p, "drop_p");
        self.drop_p = p;
        self
    }

    /// Sets the duplication probability.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1)`.
    pub fn with_dup(mut self, p: f64) -> FaultConfig {
        Self::check_p(p, "dup_p");
        self.dup_p = p;
        self
    }

    /// Sets the reorder probability.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1)`.
    pub fn with_reorder(mut self, p: f64) -> FaultConfig {
        Self::check_p(p, "reorder_p");
        self.reorder_p = p;
        self
    }

    /// Sets the fixed per-datagram latency of the emulated medium.
    pub fn with_delay_s(mut self, s: f64) -> FaultConfig {
        assert!(s.is_finite() && s >= 0.0, "delay_s cannot be negative");
        self.delay_s = s;
        self
    }

    /// Sets the emulated bandwidth (bits per second; `0` = unlimited).
    pub fn with_bandwidth_bps(mut self, bps: f64) -> FaultConfig {
        assert!(
            bps.is_finite() && bps >= 0.0,
            "bandwidth_bps cannot be negative"
        );
        self.bandwidth_bps = bps;
        self
    }

    /// Sets the RNG seed.
    pub fn with_seed(mut self, seed: u64) -> FaultConfig {
        self.seed = seed;
        self
    }

    /// The same plan reseeded for link `index`, so every link of a
    /// cluster draws an independent, reproducible fault stream.
    pub fn for_link(&self, index: usize) -> FaultConfig {
        let mut cfg = self.clone();
        cfg.seed = mix_seed(self.seed, index as u64 + 1);
        cfg
    }

    /// Seconds the emulated medium occupies for one `bytes`-byte
    /// datagram (`delay_s` + serialization at `bandwidth_bps`).
    pub fn medium_time_s(&self, bytes: usize) -> f64 {
        let serialization = if self.bandwidth_bps > 0.0 {
            bytes as f64 * 8.0 / self.bandwidth_bps
        } else {
            0.0
        };
        self.delay_s + serialization
    }
}

/// Counters of faults actually injected by one [`FaultyTransport`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct InjectedFaults {
    /// Outbound datagrams silently discarded.
    pub dropped_tx: u64,
    /// Inbound datagrams silently discarded.
    pub dropped_rx: u64,
    /// Outbound datagrams transmitted twice.
    pub duplicated: u64,
    /// Outbound datagrams held back behind their successor.
    pub reordered: u64,
}

impl InjectedFaults {
    /// Total datagrams perturbed in any way.
    pub fn total(&self) -> u64 {
        self.dropped_tx + self.dropped_rx + self.duplicated + self.reordered
    }
}

/// A [`DatagramLink`] wrapper that perturbs the datagram stream with
/// seeded drop / duplicate / reorder / delay faults (see the module
/// docs for the exact semantics and why this sits below the ARQ layer).
#[derive(Debug)]
pub struct FaultyTransport<L: DatagramLink> {
    inner: L,
    cfg: FaultConfig,
    tx_rng: StdRng,
    rx_rng: StdRng,
    /// The reorder slot: a held datagram goes out after the next send.
    held: Option<Vec<u8>>,
    injected: InjectedFaults,
}

impl<L: DatagramLink> FaultyTransport<L> {
    /// Wraps `inner` with the given fault plan. Send-side and
    /// receive-side decisions draw from independent streams derived from
    /// `cfg.seed`.
    pub fn new(inner: L, cfg: FaultConfig) -> FaultyTransport<L> {
        FaultyTransport {
            tx_rng: StdRng::seed_from_u64(mix_seed(cfg.seed, 0x7478)), // "tx"
            rx_rng: StdRng::seed_from_u64(mix_seed(cfg.seed, 0x7278)), // "rx"
            inner,
            cfg,
            held: None,
            injected: InjectedFaults::default(),
        }
    }

    /// The faults injected so far.
    pub fn injected(&self) -> InjectedFaults {
        self.injected
    }

    /// The wrapped link.
    pub fn inner(&self) -> &L {
        &self.inner
    }

    /// One physical transmission attempt: medium emulation, then drop /
    /// duplicate decisions.
    fn transmit(&mut self, datagram: &[u8]) -> Result<(), ClanError> {
        let medium = self.cfg.medium_time_s(datagram.len());
        if medium > 0.0 {
            // The medium is occupied whether or not the frame survives.
            std::thread::sleep(Duration::from_secs_f64(medium));
        }
        if self.cfg.drop_p > 0.0 && self.tx_rng.gen_bool(self.cfg.drop_p) {
            self.injected.dropped_tx += 1;
            return Ok(());
        }
        self.inner.send(datagram)?;
        if self.cfg.dup_p > 0.0 && self.tx_rng.gen_bool(self.cfg.dup_p) {
            self.injected.duplicated += 1;
            self.inner.send(datagram)?;
        }
        Ok(())
    }
}

impl<L: DatagramLink> DatagramLink for FaultyTransport<L> {
    fn send(&mut self, datagram: &[u8]) -> Result<(), ClanError> {
        if self.cfg.reorder_p > 0.0
            && self.held.is_none()
            && self.tx_rng.gen_bool(self.cfg.reorder_p)
        {
            // Hold this datagram; it leaves right after the next one.
            // (If no further send comes, the ARQ layer's retransmission
            // re-sends the data anyway — exactly like a long reorder.)
            self.injected.reordered += 1;
            self.held = Some(datagram.to_vec());
            return Ok(());
        }
        self.transmit(datagram)?;
        if let Some(held) = self.held.take() {
            self.transmit(&held)?;
        }
        Ok(())
    }

    fn recv(&mut self, timeout: Duration) -> Result<Option<Vec<u8>>, ClanError> {
        let deadline = Instant::now() + timeout;
        loop {
            let remaining = deadline.saturating_duration_since(Instant::now());
            let Some(datagram) = self.inner.recv(remaining)? else {
                return Ok(None);
            };
            if self.cfg.drop_p > 0.0 && self.rx_rng.gen_bool(self.cfg.drop_p) {
                self.injected.dropped_rx += 1;
                if Instant::now() >= deadline {
                    return Ok(None);
                }
                continue;
            }
            return Ok(Some(datagram));
        }
    }

    fn peer(&self) -> String {
        format!("{} (faulty)", self.inner.peer())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::udp::datagram_channel_pair;

    #[test]
    fn zero_fault_plan_is_transparent() {
        let (a, mut b) = datagram_channel_pair();
        let mut faulty = FaultyTransport::new(a, FaultConfig::default());
        faulty.send(b"hello").unwrap();
        assert_eq!(
            b.recv(Duration::from_millis(100)).unwrap().unwrap(),
            b"hello"
        );
        b.send(b"back").unwrap();
        assert_eq!(
            faulty.recv(Duration::from_millis(100)).unwrap().unwrap(),
            b"back"
        );
        assert_eq!(faulty.injected().total(), 0);
    }

    #[test]
    fn full_loss_drops_everything_deterministically() {
        let (a, mut b) = datagram_channel_pair();
        let mut faulty = FaultyTransport::new(a, FaultConfig::loss(0.999_999).with_seed(1));
        for _ in 0..20 {
            faulty.send(b"x").unwrap();
        }
        assert!(b.recv(Duration::from_millis(20)).unwrap().is_none());
        assert_eq!(faulty.injected().dropped_tx, 20);
    }

    #[test]
    fn same_seed_same_fault_pattern() {
        let survivors = |seed: u64| -> Vec<usize> {
            let (a, mut b) = datagram_channel_pair();
            let mut faulty = FaultyTransport::new(a, FaultConfig::loss(0.5).with_seed(seed));
            for i in 0..64u8 {
                faulty.send(&[i]).unwrap();
            }
            let mut got = Vec::new();
            while let Some(d) = b.recv(Duration::from_millis(5)).unwrap() {
                got.push(d[0] as usize);
            }
            got
        };
        let a = survivors(7);
        assert_eq!(a, survivors(7), "seeded faults must replay exactly");
        assert_ne!(a, survivors(8), "different seeds must differ");
        assert!(!a.is_empty() && a.len() < 64, "p=0.5 drops some, not all");
    }

    #[test]
    fn per_link_seeds_are_independent() {
        let base = FaultConfig::loss(0.3).with_seed(42);
        assert_ne!(base.for_link(0).seed, base.for_link(1).seed);
        assert_eq!(base.for_link(3).seed, base.for_link(3).seed);
        assert_ne!(base.for_link(0).seed, base.seed);
    }

    #[test]
    fn reorder_swaps_adjacent_datagrams() {
        let (a, mut b) = datagram_channel_pair();
        // reorder_p ~ 1: the first datagram is always held.
        let cfg = FaultConfig::default().with_reorder(0.999_999).with_seed(3);
        let mut faulty = FaultyTransport::new(a, cfg);
        faulty.send(b"1").unwrap();
        faulty.send(b"2").unwrap();
        let first = b.recv(Duration::from_millis(100)).unwrap().unwrap();
        let second = b.recv(Duration::from_millis(100)).unwrap().unwrap();
        assert_eq!(
            (first.as_slice(), second.as_slice()),
            (&b"2"[..], &b"1"[..])
        );
        assert!(faulty.injected().reordered >= 1);
    }

    #[test]
    fn duplication_sends_twice() {
        let (a, mut b) = datagram_channel_pair();
        let cfg = FaultConfig::default().with_dup(0.999_999).with_seed(4);
        let mut faulty = FaultyTransport::new(a, cfg);
        faulty.send(b"d").unwrap();
        assert!(b.recv(Duration::from_millis(100)).unwrap().is_some());
        assert!(b.recv(Duration::from_millis(100)).unwrap().is_some());
        assert_eq!(faulty.injected().duplicated, 1);
    }

    #[test]
    fn emulated_medium_charges_bandwidth_and_latency() {
        let cfg = FaultConfig::default()
            .with_delay_s(8.83e-3)
            .with_bandwidth_bps(62.24e6);
        // 64 B at the paper's constants: latency dominates (~8.84 ms).
        let t = cfg.medium_time_s(64);
        assert!((t - (8.83e-3 + 64.0 * 8.0 / 62.24e6)).abs() < 1e-12);
        let (a, mut b) = datagram_channel_pair();
        let mut faulty = FaultyTransport::new(a, cfg);
        let start = Instant::now();
        faulty.send(&[0u8; 64]).unwrap();
        assert!(start.elapsed() >= Duration::from_millis(8));
        assert!(b.recv(Duration::from_millis(100)).unwrap().is_some());
    }

    #[test]
    #[should_panic(expected = "drop_p must be a probability")]
    fn out_of_range_probability_rejected() {
        let _ = FaultConfig::loss(1.5);
    }
}
