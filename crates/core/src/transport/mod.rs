//! Pluggable cluster transports: how coordinator and agents actually
//! exchange frames.
//!
//! The CLAN protocols are transport-agnostic: one [`codec`] defines the
//! binary frame vocabulary ([`WireMessage`]), and a [`Transport`] moves
//! opaque frames between two endpoints. Two implementations ship:
//!
//! - [`ChannelTransport`] — in-process `mpsc` byte channels, the
//!   zero-configuration default for threaded clusters and tests;
//! - [`TcpTransport`] — length-prefixed frames over `std::net`
//!   sockets, connecting real processes on real machines (or loopback
//!   agents spawned by
//!   [`EdgeCluster::spawn_local`](crate::runtime::EdgeCluster::spawn_local)).
//!
//! Both move the *same encoded bytes*, so byte accounting, determinism,
//! and malformed-frame behavior are identical regardless of transport:
//! a TCP cluster run is bit-identical to a serial run (asserted by
//! `tests/net_equivalence.rs`), and every decode failure is a typed
//! [`FrameError`](crate::error::FrameError), never a panic or a hang.
//!
//! The agent side of the protocol lives in [`agent`]: a session loop
//! shared by in-process worker threads and `clan-cli agent` processes.

pub mod agent;
mod channel;
pub mod churn;
pub mod codec;
mod delay;
pub mod faults;
mod tcp;
pub mod udp;

pub use channel::{channel_pair, ChannelTransport};
pub use churn::{ChurnAction, ChurnEvent, ChurnSchedule, DeadTransport};
pub use codec::{
    decode, encode, ClusterSpec, WireEvaluation, WireMessage, LENGTH_PREFIX_BYTES, MAX_FRAME_BYTES,
};
pub use delay::DelayTransport;
pub use faults::{FaultConfig, FaultyTransport, InjectedFaults};
pub use tcp::TcpTransport;
pub use udp::{
    datagram_channel_pair, ChannelDatagramLink, DatagramLink, LinkStats, UdpConfig, UdpLink,
    UdpTransport,
};

use crate::error::ClanError;
use std::time::Duration;

/// A bidirectional, ordered, reliable frame pipe between a coordinator
/// and one agent.
///
/// Implementations move frames verbatim; the [`codec`] gives the bytes
/// meaning. `recv_frame` blocks until a frame arrives or the peer is
/// gone — disconnection is a typed error, never a hang.
pub trait Transport: Send {
    /// Sends one frame.
    ///
    /// # Errors
    ///
    /// [`ClanError::Transport`] if the peer is unreachable.
    fn send_frame(&mut self, frame: &[u8]) -> Result<(), ClanError>;

    /// Receives the next frame, blocking.
    ///
    /// # Errors
    ///
    /// [`ClanError::Transport`] on disconnect or I/O failure, and
    /// [`ClanError::Frame`] if the stream announces an oversized frame.
    fn recv_frame(&mut self) -> Result<Vec<u8>, ClanError>;

    /// Human-readable peer label (address or transport kind), used in
    /// error messages.
    fn peer(&self) -> String;

    /// Returns and resets the loss-recovery overhead observed since the
    /// last call (retransmitted / duplicate datagrams). Reliable
    /// transports have none; [`UdpTransport`] measures it.
    fn take_link_stats(&mut self) -> LinkStats {
        LinkStats::default()
    }

    /// Best-effort flush: blocks until every frame already sent is known
    /// to have reached the peer, or `deadline` elapses. A no-op on
    /// transports whose `send_frame` is already synchronous (channel,
    /// TCP); [`UdpTransport`] retransmits until everything is
    /// acknowledged — `EdgeCluster::shutdown` uses this so a lossy link
    /// still delivers the final `Shutdown`.
    ///
    /// # Errors
    ///
    /// [`ClanError::Timeout`] if unacknowledged frames remain at the
    /// deadline, plus any transport failure.
    fn drain(&mut self, deadline: Duration) -> Result<(), ClanError> {
        let _ = deadline;
        Ok(())
    }
}

/// Bytes a frame occupies on the wire: its encoded length plus the
/// stream framing (length prefix) every transport charges uniformly.
///
/// This is deliberately *frame-level* accounting, identical on every
/// transport so ledgers stay comparable across TCP/channel/UDP runs: a
/// datagram transport's per-fragment and ack headers are not charged
/// here (its loss-recovery overhead is measured separately in
/// [`LinkStats`], in the same frame-byte units).
pub fn wire_bytes(frame: &[u8]) -> u64 {
    frame.len() as u64 + LENGTH_PREFIX_BYTES
}

/// Sends a message and returns its measured wire size.
///
/// # Errors
///
/// Propagates transport failures.
pub fn send_message(t: &mut dyn Transport, msg: &WireMessage) -> Result<u64, ClanError> {
    let frame = encode(msg);
    t.send_frame(&frame)?;
    Ok(wire_bytes(&frame))
}

/// Receives and decodes the next message, returning it with its
/// measured wire size.
///
/// # Errors
///
/// Propagates transport failures and typed frame errors.
pub fn recv_message(t: &mut dyn Transport) -> Result<(WireMessage, u64), ClanError> {
    // clan-lint: allow(L2, reason="free-fn wrapper: the concrete transport's recv_frame owns the deadline (TCP read_timeout, UDP idle_timeout)")
    let frame = t.recv_frame()?;
    let msg = decode(&frame)?;
    Ok((msg, wire_bytes(&frame)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn channel_pair_moves_messages_both_ways() {
        let (mut a, mut b) = channel_pair();
        send_message(&mut a, &WireMessage::Shutdown).unwrap();
        let (msg, bytes) = recv_message(&mut b).unwrap();
        assert_eq!(msg, WireMessage::Shutdown);
        assert_eq!(bytes, 6 + LENGTH_PREFIX_BYTES);
        send_message(&mut b, &WireMessage::Shutdown).unwrap();
        assert!(recv_message(&mut a).is_ok());
    }

    #[test]
    fn dropped_peer_is_a_typed_error() {
        let (mut a, b) = channel_pair();
        drop(b);
        assert!(matches!(
            send_message(&mut a, &WireMessage::Shutdown),
            Err(ClanError::Transport { .. })
        ));
        assert!(matches!(
            recv_message(&mut a),
            Err(ClanError::Transport { .. })
        ));
    }
}
