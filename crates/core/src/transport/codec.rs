//! Binary frame codec for the CLAN cluster protocol.
//!
//! One frame is one protocol message:
//!
//! ```text
//! "CLAN"  u8 version  u8 tag  payload...
//! ```
//!
//! All integers are little-endian; floats are IEEE-754 `f64` bits. The
//! codec is transport-agnostic: a frame is a `Vec<u8>` that a
//! [`Transport`](crate::transport::Transport) moves verbatim, and
//! decoding a frame produced by [`encode`] on any platform yields a
//! bit-identical message — the wire never perturbs the deterministic
//! RNG discipline.
//!
//! Genomes travel as their full gene tables (ids, `f64` attributes,
//! transfer-function indices). The paper's analytic model charges 4
//! bytes per gene (one 32-bit datum, Table II); this real format costs
//! more per gene, and the gap — measured by
//! [`CommLedger::framing_overhead`](clan_netsim::CommLedger::framing_overhead) —
//! is exactly what `clan-netsim`'s modeled traffic understates.
//!
//! Every decode failure is a typed [`FrameError`]; malformed input must
//! never panic the runtime (pinned by proptests in `tests/net_frames.rs`).

use crate::error::FrameError;
use crate::evaluator::{EngineOptions, InferenceMode};
use clan_envs::Workload;
use clan_neat::population::Evaluation;
use clan_neat::reproduction::{ChildKind, ChildSpec};
use clan_neat::{
    Activation, Aggregation, ConnGene, ConnKey, Genome, GenomeId, NeatConfig, NodeGene, NodeId,
    SpeciesId,
};
use serde::{Deserialize, Serialize};
use std::collections::BTreeMap;

/// Frame magic: every CLAN frame starts with these bytes.
pub const MAGIC: [u8; 4] = *b"CLAN";
/// Protocol version this build speaks.
pub const VERSION: u8 = 1;
/// Hard ceiling on one frame's size. A length prefix above this is
/// rejected before any allocation happens, so a hostile or corrupt peer
/// cannot OOM the process.
pub const MAX_FRAME_BYTES: u64 = 64 * 1024 * 1024;
/// Bytes of length prefix the stream transports add around each frame.
pub const LENGTH_PREFIX_BYTES: u64 = 4;

/// Message tags (byte 5 of a frame).
mod tag {
    pub const CONFIGURE: u8 = 1;
    pub const EVALUATE: u8 = 2;
    pub const FITNESS: u8 = 3;
    pub const BUILD_CHILDREN: u8 = 4;
    pub const CHILDREN: u8 = 5;
    pub const SHUTDOWN: u8 = 6;
}

/// The session parameters a coordinator pushes to an agent before any
/// work: everything an agent needs to evaluate and reproduce genomes
/// exactly as the center would.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ClusterSpec {
    /// Workload every agent evaluates on.
    pub workload: Workload,
    /// Multi-step or single-step inference.
    pub mode: InferenceMode,
    /// Episodes averaged per genome evaluation.
    pub episodes: u32,
    /// Full NEAT configuration (genome compilation + reproduction).
    pub cfg: NeatConfig,
    /// Maximum batched-SoA lanes in each agent's evaluation engine
    /// (`<= 1` = scalar tier only). Defaulted for wire compatibility
    /// with peers that predate the field.
    #[serde(default = "default_batch_lanes")]
    pub batch_lanes: usize,
    /// Whether the coordinator memoizes evaluations by genome content
    /// (hits are served center-side and never reach the agents).
    #[serde(default = "default_cache")]
    pub cache: bool,
}

fn default_batch_lanes() -> usize {
    EngineOptions::default().batch_lanes
}

fn default_cache() -> bool {
    EngineOptions::default().cache
}

impl ClusterSpec {
    /// Spec with the default single episode per evaluation and default
    /// engine options (batching + caching on).
    pub fn new(workload: Workload, mode: InferenceMode, cfg: NeatConfig) -> ClusterSpec {
        ClusterSpec {
            workload,
            mode,
            episodes: 1,
            cfg,
            batch_lanes: default_batch_lanes(),
            cache: default_cache(),
        }
    }

    /// Sets the episodes averaged per evaluation.
    pub fn with_episodes(mut self, episodes: u32) -> ClusterSpec {
        self.episodes = episodes;
        self
    }

    /// Sets the evaluation-engine options (batch lanes + fitness cache).
    pub fn with_engine(mut self, options: EngineOptions) -> ClusterSpec {
        self.batch_lanes = options.batch_lanes;
        self.cache = options.cache;
        self
    }

    /// The engine options an *agent* session runs with: the spec's
    /// batching tier, caching off — the coordinator's cache filters hits
    /// before anything crosses the wire, so agents only ever see misses.
    pub fn agent_engine_options(&self) -> EngineOptions {
        EngineOptions {
            batch_lanes: self.batch_lanes,
            cache: false,
        }
    }
}

/// One genome evaluation as reported over the wire: the genome, its
/// outcome, and the compiled network's per-activation gene cost (needed
/// for the paper's Figure-3 inference accounting at the center).
pub type WireEvaluation = (GenomeId, Evaluation, u64);

/// A protocol message — the CLAN cluster's entire vocabulary.
///
/// Request/response pairing: the coordinator sends `Configure` once,
/// then any number of `Evaluate` (answered by `Fitness`) and
/// `BuildChildren` (answered by `Children`), then `Shutdown`.
#[derive(Debug, Clone, PartialEq)]
pub enum WireMessage {
    /// Coordinator → agent, once per session: workload + NEAT config.
    /// Boxed: the config dwarfs every other variant's fixed part.
    Configure(Box<ClusterSpec>),
    /// Coordinator → agent: evaluate these genomes.
    Evaluate {
        /// Generation the genomes belong to (seeds episode RNG).
        generation: u64,
        /// The run's master seed (seeds episode RNG).
        master_seed: u64,
        /// The genomes to evaluate.
        genomes: Vec<Genome>,
    },
    /// Agent → coordinator: evaluation results, in the order received.
    Fitness(Vec<WireEvaluation>),
    /// Coordinator → agent: build these children from these parents.
    BuildChildren {
        /// Generation being reproduced (seeds reproduction RNG).
        generation: u64,
        /// The run's master seed (seeds reproduction RNG).
        master_seed: u64,
        /// Recipes for the children this agent builds.
        specs: Vec<ChildSpec>,
        /// Parent genomes the specs reference.
        parents: Vec<Genome>,
    },
    /// Agent → coordinator: the children, in spec order.
    Children(Vec<Genome>),
    /// Coordinator → agent: end the session.
    Shutdown,
}

impl WireMessage {
    /// The payload size in the analytic model's unit — 32-bit
    /// floats/genes — using the same framing constants the simulated
    /// orchestrators charge ([`crate::orchestra`]). Comparing this
    /// against the encoded frame's byte length measures real framing
    /// overhead.
    pub fn modeled_floats(&self) -> u64 {
        use crate::orchestra::{
            FITNESS_ENTRY_FLOATS, GENOME_HEADER_FLOATS, PARENT_LIST_ENTRY_FLOATS,
        };
        let genome_floats = |gs: &[Genome]| -> u64 {
            gs.iter()
                .map(|g| g.num_genes() + GENOME_HEADER_FLOATS)
                .sum()
        };
        match self {
            WireMessage::Configure(_) | WireMessage::Shutdown => 0,
            WireMessage::Evaluate { genomes, .. } => genome_floats(genomes),
            WireMessage::Fitness(results) => results.len() as u64 * FITNESS_ENTRY_FLOATS,
            WireMessage::BuildChildren { specs, parents, .. } => {
                specs.len() as u64 * PARENT_LIST_ENTRY_FLOATS + genome_floats(parents)
            }
            WireMessage::Children(children) => genome_floats(children),
        }
    }
}

// ----------------------------------------------------------------------
// Encoding
// ----------------------------------------------------------------------

fn put_u32(out: &mut Vec<u8>, v: u32) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_u64(out: &mut Vec<u8>, v: u64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_i64(out: &mut Vec<u8>, v: i64) {
    out.extend_from_slice(&v.to_le_bytes());
}

fn put_f64(out: &mut Vec<u8>, v: f64) {
    out.extend_from_slice(&v.to_bits().to_le_bytes());
}

fn put_genome(out: &mut Vec<u8>, g: &Genome) {
    put_u64(out, g.id().0);
    match g.fitness() {
        Some(f) => {
            out.push(1);
            put_f64(out, f);
        }
        None => {
            out.push(0);
            put_f64(out, 0.0);
        }
    }
    put_u32(out, g.nodes().len() as u32);
    for (id, node) in g.nodes() {
        put_i64(out, id.0);
        put_f64(out, node.bias);
        put_f64(out, node.response);
        out.push(activation_index(node.activation));
        out.push(aggregation_index(node.aggregation));
    }
    put_u32(out, g.conns().len() as u32);
    for (key, conn) in g.conns() {
        put_i64(out, key.input.0);
        put_i64(out, key.output.0);
        put_f64(out, conn.weight);
        out.push(u8::from(conn.enabled));
    }
}

fn put_spec(out: &mut Vec<u8>, spec: &ChildSpec) {
    put_u64(out, spec.child_id.0);
    put_u32(out, spec.species.0);
    match spec.kind {
        ChildKind::Elite { source } => {
            out.push(0);
            put_u64(out, source.0);
            put_u64(out, source.0);
        }
        ChildKind::Crossover { parent1, parent2 } => {
            out.push(1);
            put_u64(out, parent1.0);
            put_u64(out, parent2.0);
        }
    }
}

fn activation_index(a: Activation) -> u8 {
    Activation::ALL
        .iter()
        .position(|&x| x == a)
        // clan-lint: allow(L1, reason="encode side: the enum value is host-built, ALL is exhaustive by its own test; not wire-derived")
        .expect("activation is in ALL") as u8
}

fn aggregation_index(a: Aggregation) -> u8 {
    Aggregation::ALL
        .iter()
        .position(|&x| x == a)
        // clan-lint: allow(L1, reason="encode side: the enum value is host-built, ALL is exhaustive by its own test; not wire-derived")
        .expect("aggregation is in ALL") as u8
}

/// Encodes one message into a frame (magic + version + tag + payload).
pub fn encode(msg: &WireMessage) -> Vec<u8> {
    let mut out = Vec::with_capacity(64);
    out.extend_from_slice(&MAGIC);
    out.push(VERSION);
    match msg {
        WireMessage::Configure(spec) => {
            out.push(tag::CONFIGURE);
            let json =
                // clan-lint: allow(L1, reason="encode side: serializing a host-built spec struct cannot fail; not wire-derived")
                serde_json::to_string(spec.as_ref()).expect("spec serialization cannot fail");
            put_u32(&mut out, json.len() as u32);
            out.extend_from_slice(json.as_bytes());
        }
        WireMessage::Evaluate {
            generation,
            master_seed,
            genomes,
        } => {
            out.push(tag::EVALUATE);
            put_u64(&mut out, *generation);
            put_u64(&mut out, *master_seed);
            put_u32(&mut out, genomes.len() as u32);
            for g in genomes {
                put_genome(&mut out, g);
            }
        }
        WireMessage::Fitness(results) => {
            out.push(tag::FITNESS);
            put_u32(&mut out, results.len() as u32);
            for (id, eval, genes_per_activation) in results {
                put_u64(&mut out, id.0);
                put_f64(&mut out, eval.fitness);
                put_u64(&mut out, eval.activations);
                put_u64(&mut out, *genes_per_activation);
            }
        }
        WireMessage::BuildChildren {
            generation,
            master_seed,
            specs,
            parents,
        } => {
            out.push(tag::BUILD_CHILDREN);
            put_u64(&mut out, *generation);
            put_u64(&mut out, *master_seed);
            put_u32(&mut out, specs.len() as u32);
            for spec in specs {
                put_spec(&mut out, spec);
            }
            put_u32(&mut out, parents.len() as u32);
            for g in parents {
                put_genome(&mut out, g);
            }
        }
        WireMessage::Children(children) => {
            out.push(tag::CHILDREN);
            put_u32(&mut out, children.len() as u32);
            for g in children {
                put_genome(&mut out, g);
            }
        }
        WireMessage::Shutdown => out.push(tag::SHUTDOWN),
    }
    out
}

// ----------------------------------------------------------------------
// Decoding
// ----------------------------------------------------------------------

struct Reader<'a> {
    buf: &'a [u8],
    pos: usize,
}

impl<'a> Reader<'a> {
    fn new(buf: &'a [u8]) -> Reader<'a> {
        Reader { buf, pos: 0 }
    }

    fn remaining(&self) -> usize {
        self.buf.len() - self.pos
    }

    fn take(&mut self, n: usize) -> Result<&'a [u8], FrameError> {
        if self.remaining() < n {
            return Err(FrameError::Truncated {
                needed: n,
                remaining: self.remaining(),
            });
        }
        // clan-lint: allow(L1, reason="bounds checked immediately above; every other reader routes through here")
        let s = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(s)
    }

    /// Takes exactly `N` bytes as an array — the panic-free spine of
    /// every fixed-width reader below.
    fn array<const N: usize>(&mut self) -> Result<[u8; N], FrameError> {
        let s = self.take(N)?;
        let mut a = [0u8; N];
        a.copy_from_slice(s);
        Ok(a)
    }

    fn u8(&mut self) -> Result<u8, FrameError> {
        Ok(self.array::<1>()?[0])
    }

    fn u32(&mut self) -> Result<u32, FrameError> {
        Ok(u32::from_le_bytes(self.array()?))
    }

    fn u64(&mut self) -> Result<u64, FrameError> {
        Ok(u64::from_le_bytes(self.array()?))
    }

    fn i64(&mut self) -> Result<i64, FrameError> {
        Ok(i64::from_le_bytes(self.array()?))
    }

    fn f64(&mut self) -> Result<f64, FrameError> {
        Ok(f64::from_bits(self.u64()?))
    }

    /// Bounds a declared element count by what the remaining bytes could
    /// possibly hold, so a corrupt count fails fast instead of reserving
    /// gigabytes.
    fn count(&mut self, min_elem_bytes: usize) -> Result<usize, FrameError> {
        let n = self.u32()? as usize;
        if n.saturating_mul(min_elem_bytes) > self.remaining() {
            return Err(FrameError::Truncated {
                needed: n.saturating_mul(min_elem_bytes),
                remaining: self.remaining(),
            });
        }
        Ok(n)
    }
}

fn get_genome(r: &mut Reader<'_>) -> Result<Genome, FrameError> {
    let id = GenomeId(r.u64()?);
    let has_fitness = match r.u8()? {
        0 => false,
        1 => true,
        _ => return Err(FrameError::BadValue("fitness flag")),
    };
    let fitness = r.f64()?;
    let n_nodes = r.count(26)?;
    let mut nodes = BTreeMap::new();
    for _ in 0..n_nodes {
        let nid = NodeId(r.i64()?);
        let bias = r.f64()?;
        let response = r.f64()?;
        let act = r.u8()? as usize;
        let agg = r.u8()? as usize;
        let gene = NodeGene {
            bias,
            response,
            activation: *Activation::ALL
                .get(act)
                .ok_or(FrameError::BadValue("activation index"))?,
            aggregation: *Aggregation::ALL
                .get(agg)
                .ok_or(FrameError::BadValue("aggregation index"))?,
        };
        nodes.insert(nid, gene);
    }
    let n_conns = r.count(25)?;
    let mut conns = BTreeMap::new();
    for _ in 0..n_conns {
        let input = NodeId(r.i64()?);
        let output = NodeId(r.i64()?);
        let weight = r.f64()?;
        let enabled = match r.u8()? {
            0 => false,
            1 => true,
            _ => return Err(FrameError::BadValue("enabled flag")),
        };
        conns.insert(ConnKey::new(input, output), ConnGene { weight, enabled });
    }
    let mut g = Genome::from_parts(id, nodes, conns);
    if has_fitness {
        g.set_fitness(fitness);
    }
    Ok(g)
}

fn get_spec(r: &mut Reader<'_>) -> Result<ChildSpec, FrameError> {
    let child_id = GenomeId(r.u64()?);
    let species = SpeciesId(r.u32()?);
    let kind_tag = r.u8()?;
    let a = GenomeId(r.u64()?);
    let b = GenomeId(r.u64()?);
    let kind = match kind_tag {
        0 => ChildKind::Elite { source: a },
        1 => ChildKind::Crossover {
            parent1: a,
            parent2: b,
        },
        _ => return Err(FrameError::BadValue("child kind")),
    };
    Ok(ChildSpec {
        child_id,
        species,
        kind,
    })
}

/// Decodes one frame into a message.
///
/// # Errors
///
/// A typed [`FrameError`] on any malformation: wrong magic, unknown
/// version or tag, truncated structures, out-of-domain fields, or
/// trailing bytes.
pub fn decode(frame: &[u8]) -> Result<WireMessage, FrameError> {
    let mut r = Reader::new(frame);
    if r.take(4)? != MAGIC {
        return Err(FrameError::BadMagic);
    }
    let version = r.u8()?;
    if version != VERSION {
        return Err(FrameError::BadVersion(version));
    }
    let tag = r.u8()?;
    let msg = match tag {
        tag::CONFIGURE => {
            let len = r.count(1)?;
            let bytes = r.take(len)?;
            let json =
                std::str::from_utf8(bytes).map_err(|_| FrameError::BadValue("spec utf-8"))?;
            let spec: ClusterSpec =
                serde_json::from_str(json).map_err(|_| FrameError::BadValue("spec json"))?;
            WireMessage::Configure(Box::new(spec))
        }
        tag::EVALUATE => {
            let generation = r.u64()?;
            let master_seed = r.u64()?;
            let n = r.count(17)?;
            let genomes = (0..n)
                .map(|_| get_genome(&mut r))
                .collect::<Result<Vec<_>, _>>()?;
            WireMessage::Evaluate {
                generation,
                master_seed,
                genomes,
            }
        }
        tag::FITNESS => {
            let n = r.count(32)?;
            let mut results = Vec::with_capacity(n);
            for _ in 0..n {
                let id = GenomeId(r.u64()?);
                let fitness = r.f64()?;
                let activations = r.u64()?;
                let genes_per_activation = r.u64()?;
                results.push((
                    id,
                    Evaluation {
                        fitness,
                        activations,
                    },
                    genes_per_activation,
                ));
            }
            WireMessage::Fitness(results)
        }
        tag::BUILD_CHILDREN => {
            let generation = r.u64()?;
            let master_seed = r.u64()?;
            let n_specs = r.count(29)?;
            let specs = (0..n_specs)
                .map(|_| get_spec(&mut r))
                .collect::<Result<Vec<_>, _>>()?;
            let n_parents = r.count(17)?;
            let parents = (0..n_parents)
                .map(|_| get_genome(&mut r))
                .collect::<Result<Vec<_>, _>>()?;
            WireMessage::BuildChildren {
                generation,
                master_seed,
                specs,
                parents,
            }
        }
        tag::CHILDREN => {
            let n = r.count(17)?;
            let children = (0..n)
                .map(|_| get_genome(&mut r))
                .collect::<Result<Vec<_>, _>>()?;
            WireMessage::Children(children)
        }
        tag::SHUTDOWN => WireMessage::Shutdown,
        other => return Err(FrameError::BadTag(other)),
    };
    if r.remaining() != 0 {
        return Err(FrameError::TrailingBytes(r.remaining()));
    }
    Ok(msg)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn sample_genomes(n: usize) -> (NeatConfig, Vec<Genome>) {
        let cfg = NeatConfig::builder(4, 2)
            .population_size(8)
            .build()
            .unwrap();
        let mut rng = StdRng::seed_from_u64(42);
        let genomes = (0..n)
            .map(|i| {
                let mut g = Genome::new_initial(&cfg, GenomeId(i as u64), &mut rng);
                for _ in 0..i {
                    g.mutate(&cfg, &mut rng);
                }
                if i % 2 == 0 {
                    g.set_fitness(i as f64 * 1.5 - 3.0);
                }
                g
            })
            .collect();
        (cfg, genomes)
    }

    #[test]
    fn genome_messages_round_trip_bit_identically() {
        let (_, genomes) = sample_genomes(5);
        let msg = WireMessage::Evaluate {
            generation: 7,
            master_seed: 0xDEADBEEF,
            genomes,
        };
        let back = decode(&encode(&msg)).unwrap();
        assert_eq!(back, msg);
    }

    #[test]
    fn all_message_kinds_round_trip() {
        let (cfg, genomes) = sample_genomes(3);
        let spec =
            ClusterSpec::new(Workload::CartPole, InferenceMode::MultiStep, cfg).with_episodes(3);
        let msgs = vec![
            WireMessage::Configure(Box::new(spec)),
            WireMessage::Fitness(vec![
                (
                    GenomeId(1),
                    Evaluation {
                        fitness: 1.25,
                        activations: 200,
                    },
                    11,
                ),
                (
                    GenomeId(9),
                    Evaluation {
                        fitness: -0.5,
                        activations: 1,
                    },
                    3,
                ),
            ]),
            WireMessage::BuildChildren {
                generation: 3,
                master_seed: 99,
                specs: vec![
                    ChildSpec {
                        child_id: GenomeId(50),
                        species: SpeciesId(2),
                        kind: ChildKind::Elite {
                            source: GenomeId(1),
                        },
                    },
                    ChildSpec {
                        child_id: GenomeId(51),
                        species: SpeciesId(2),
                        kind: ChildKind::Crossover {
                            parent1: GenomeId(1),
                            parent2: GenomeId(2),
                        },
                    },
                ],
                parents: genomes.clone(),
            },
            WireMessage::Children(genomes),
            WireMessage::Shutdown,
        ];
        for msg in msgs {
            assert_eq!(decode(&encode(&msg)).unwrap(), msg, "{msg:?}");
        }
    }

    #[test]
    fn bad_magic_version_and_tag_are_typed_errors() {
        let mut frame = encode(&WireMessage::Shutdown);
        frame[0] = b'X';
        assert_eq!(decode(&frame), Err(FrameError::BadMagic));

        let mut frame = encode(&WireMessage::Shutdown);
        frame[4] = 200;
        assert_eq!(decode(&frame), Err(FrameError::BadVersion(200)));

        let mut frame = encode(&WireMessage::Shutdown);
        frame[5] = 99;
        assert_eq!(decode(&frame), Err(FrameError::BadTag(99)));
    }

    #[test]
    fn truncation_at_every_prefix_is_an_error_not_a_panic() {
        let (_, genomes) = sample_genomes(4);
        let frame = encode(&WireMessage::Evaluate {
            generation: 1,
            master_seed: 2,
            genomes,
        });
        for cut in 0..frame.len() {
            let r = decode(&frame[..cut]);
            assert!(r.is_err(), "prefix of {cut} bytes must not decode");
        }
        assert!(decode(&frame).is_ok());
    }

    #[test]
    fn trailing_bytes_rejected() {
        let mut frame = encode(&WireMessage::Shutdown);
        frame.push(0);
        assert_eq!(decode(&frame), Err(FrameError::TrailingBytes(1)));
    }

    #[test]
    fn hostile_count_fails_fast_without_allocation() {
        // A Fitness frame announcing u32::MAX entries but carrying none.
        let mut frame = Vec::new();
        frame.extend_from_slice(&MAGIC);
        frame.push(VERSION);
        frame.push(3); // FITNESS
        frame.extend_from_slice(&u32::MAX.to_le_bytes());
        assert!(matches!(decode(&frame), Err(FrameError::Truncated { .. })));
    }

    #[test]
    fn modeled_floats_match_orchestra_constants() {
        let (_, genomes) = sample_genomes(2);
        let genes: u64 = genomes.iter().map(Genome::num_genes).sum();
        let msg = WireMessage::Evaluate {
            generation: 0,
            master_seed: 0,
            genomes,
        };
        assert_eq!(msg.modeled_floats(), genes + 2 * 2);
        assert_eq!(WireMessage::Shutdown.modeled_floats(), 0);
    }
}
