//! A transport wrapper that emulates a slow agent.
//!
//! Heterogeneity tests and benches need an agent that is *measurably*
//! slower than its peers without changing any computed result.
//! [`DelayTransport`] wraps any [`Transport`] and sleeps after each
//! received frame: a fixed per-message latency plus a per-KiB cost
//! proportional to the frame size, so a big `Evaluate` chunk stalls the
//! wrapped agent the way a large partition stalls a Pi 3 in a swarm of
//! Pi 4s. Frames themselves are moved verbatim — determinism is
//! untouched, only timing changes.
//!
//! `clan-cli agent --delay-ms N` wraps its session transport in one of
//! these, which is how CI's skewed-agent smoke run slows a real agent
//! process down.

use super::Transport;
use crate::error::ClanError;
use std::time::Duration;

/// Wraps a transport, delaying after every received frame.
#[derive(Debug)]
pub struct DelayTransport<T> {
    inner: T,
    fixed: Duration,
    per_kib: Duration,
}

impl<T: Transport> DelayTransport<T> {
    /// Delays `fixed` after each received frame.
    pub fn new(inner: T, fixed: Duration) -> DelayTransport<T> {
        DelayTransport {
            inner,
            fixed,
            per_kib: Duration::ZERO,
        }
    }

    /// Adds a work-proportional delay: `per_kib` per 1024 bytes of
    /// received frame. This is the knob that makes weighted
    /// partitioning measurable — the delay shrinks with the chunk.
    pub fn with_per_kib(mut self, per_kib: Duration) -> DelayTransport<T> {
        self.per_kib = per_kib;
        self
    }
}

impl<T: Transport> Transport for DelayTransport<T> {
    fn send_frame(&mut self, frame: &[u8]) -> Result<(), ClanError> {
        self.inner.send_frame(frame)
    }

    fn recv_frame(&mut self) -> Result<Vec<u8>, ClanError> {
        // clan-lint: allow(L2, reason="pure delegation: the wrapped transport owns the idle deadline")
        let frame = self.inner.recv_frame()?;
        let delay = self.fixed + self.per_kib.mul_f64(frame.len() as f64 / 1024.0);
        if !delay.is_zero() {
            std::thread::sleep(delay);
        }
        Ok(frame)
    }

    fn peer(&self) -> String {
        format!("{} (delayed)", self.inner.peer())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::{channel_pair, recv_message, send_message, WireMessage};
    use std::time::Instant;

    #[test]
    fn frames_pass_through_unchanged_but_late() {
        let (a, mut b) = channel_pair();
        let mut delayed = DelayTransport::new(a, Duration::from_millis(20));
        send_message(&mut b, &WireMessage::Shutdown).unwrap();
        let start = Instant::now();
        let (msg, _) = recv_message(&mut delayed).unwrap();
        assert_eq!(msg, WireMessage::Shutdown);
        assert!(start.elapsed() >= Duration::from_millis(20));
        assert!(delayed.peer().contains("delayed"));
    }

    #[test]
    fn per_kib_delay_scales_with_frame_size() {
        let (a, mut b) = channel_pair();
        let mut delayed =
            DelayTransport::new(a, Duration::ZERO).with_per_kib(Duration::from_millis(8));
        // ~2 KiB frame => ~16 ms.
        let frame = vec![0u8; 2048];
        b.send_frame(&frame).unwrap();
        let start = Instant::now();
        delayed.recv_frame().unwrap();
        assert!(start.elapsed() >= Duration::from_millis(15));
    }

    #[test]
    fn errors_propagate_without_sleeping() {
        let (a, b) = channel_pair();
        drop(b);
        let mut delayed = DelayTransport::new(a, Duration::from_secs(60));
        let start = Instant::now();
        assert!(delayed.recv_frame().is_err());
        assert!(start.elapsed() < Duration::from_secs(1));
    }
}
