//! Deterministic agent-churn injection: kill an agent at round *r*,
//! revive it at round *r'*.
//!
//! [`super::faults`] perturbs *datagrams* below the ARQ layer — loss the
//! transport recovers by itself. This module injects the failures the
//! transport *cannot* recover: a whole agent crashing mid-run. A
//! [`ChurnSchedule`] names which link dies (and optionally revives)
//! before which scatter round; the
//! [`EdgeCluster`](crate::runtime::EdgeCluster) applies it by swapping
//! the victim's transport for a [`DeadTransport`] — every subsequent
//! frame errors exactly like an unplugged device — and, at the revive
//! round, by respawning a replacement agent into the same slot and
//! `Configure`-ing it with the current session.
//!
//! Crucially the kill is invisible to the membership layer until the
//! failure is *observed* through the normal error path: the recovery
//! machinery under test is the production machinery, only the device
//! crash is simulated. And because rounds are logical scatter indices
//! (not wall-clock), a churned run is exactly reproducible — which is
//! what lets `tests/churn_equivalence.rs` pin a kill/revive run
//! bit-identical to a serial one.

use crate::error::ClanError;
use crate::transport::{LinkStats, Transport};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// What a churn event does to its agent.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum ChurnAction {
    /// The agent's link starts failing every operation (device crash).
    Kill,
    /// A replacement agent is spawned/connected into the slot and
    /// configured with the current session.
    Revive,
}

/// One scheduled membership change.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ChurnEvent {
    /// Scatter round the event fires before (0-based; every
    /// `evaluate`/`build_children` call advances the round).
    pub round: u64,
    /// Link slot the event targets.
    pub agent: usize,
    /// Kill or revive.
    pub action: ChurnAction,
}

/// A deterministic plan of agent kills and revivals, applied by the
/// cluster at scatter-round boundaries.
///
/// Events at the same round apply in insertion order, so
/// `kill(0, 2).revive(0, 2)` models a crash-and-reboot that completes
/// between rounds 1 and 2.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ChurnSchedule {
    events: Vec<ChurnEvent>,
}

impl ChurnSchedule {
    /// An empty schedule (no churn).
    pub fn new() -> ChurnSchedule {
        ChurnSchedule::default()
    }

    /// Adds a kill of `agent` before round `round`.
    pub fn kill(mut self, agent: usize, round: u64) -> ChurnSchedule {
        self.events.push(ChurnEvent {
            round,
            agent,
            action: ChurnAction::Kill,
        });
        self
    }

    /// Adds a revival of `agent` before round `round`.
    pub fn revive(mut self, agent: usize, round: u64) -> ChurnSchedule {
        self.events.push(ChurnEvent {
            round,
            agent,
            action: ChurnAction::Revive,
        });
        self
    }

    /// A seeded random plan: over `rounds` rounds on `n_agents` agents,
    /// each (round, agent) pair is killed with probability `kill_p` and
    /// revived two rounds later — a reproducible stand-in for "devices
    /// flake at random". The same seed always yields the same schedule.
    ///
    /// # Panics
    ///
    /// Panics if `kill_p` is not a probability in `[0, 1)`.
    pub fn seeded(seed: u64, n_agents: usize, rounds: u64, kill_p: f64) -> ChurnSchedule {
        assert!(
            kill_p.is_finite() && (0.0..1.0).contains(&kill_p),
            "kill_p must be a probability in [0, 1), got {kill_p}"
        );
        let mut rng = StdRng::seed_from_u64(seed);
        let mut plan = ChurnSchedule::new();
        let mut down_until = vec![0u64; n_agents];
        for round in 1..=rounds {
            for (agent, down) in down_until.iter_mut().enumerate() {
                if *down > round {
                    continue;
                }
                if kill_p > 0.0 && rng.gen_bool(kill_p) {
                    plan = plan.kill(agent, round).revive(agent, round + 2);
                    *down = round + 2;
                }
            }
        }
        plan
    }

    /// The scheduled events, in application order.
    pub fn events(&self) -> &[ChurnEvent] {
        &self.events
    }

    /// True when nothing is scheduled.
    pub fn is_empty(&self) -> bool {
        self.events.is_empty()
    }

    /// The highest agent slot any event names, if any.
    pub fn max_agent(&self) -> Option<usize> {
        self.events.iter().map(|e| e.agent).max()
    }

    /// Whether any revival is scheduled (revivals need a cluster that
    /// can respawn or reconnect agents).
    pub fn has_revivals(&self) -> bool {
        self.events.iter().any(|e| e.action == ChurnAction::Revive)
    }

    /// Events firing before round `round`, in insertion order.
    pub fn events_at(&self, round: u64) -> impl Iterator<Item = ChurnEvent> + '_ {
        self.events
            .iter()
            .copied()
            .filter(move |e| e.round == round)
    }
}

impl std::str::FromStr for ChurnSchedule {
    type Err = String;

    /// Parses the CLI grammar: a comma-separated list of
    /// `k<agent>@<round>` (kill) and `r<agent>@<round>` (revive), e.g.
    /// `k1@2,r1@4` — kill agent 1 before round 2, revive it before
    /// round 4.
    fn from_str(s: &str) -> Result<ChurnSchedule, String> {
        let mut plan = ChurnSchedule::new();
        for seg in s.split(',') {
            let seg = seg.trim();
            if seg.is_empty() {
                continue;
            }
            // Split on the first *character*, not byte: a multi-byte
            // typo (e.g. a Greek kappa) must be a parse error, not a
            // char-boundary panic.
            let mut chars = seg.chars();
            let action = match chars.next() {
                Some('k') => ChurnAction::Kill,
                Some('r') => ChurnAction::Revive,
                other => {
                    return Err(format!(
                        "churn event `{seg}` must start with k (kill) or r (revive), got `{}`",
                        other.map(String::from).unwrap_or_default()
                    ))
                }
            };
            let rest = chars.as_str();
            let (agent, round) = rest
                .split_once('@')
                .ok_or_else(|| format!("churn event `{seg}` must look like k<agent>@<round>"))?;
            let agent: usize = agent
                .parse()
                .map_err(|_| format!("invalid agent index in churn event `{seg}`"))?;
            let round: u64 = round
                .parse()
                .map_err(|_| format!("invalid round in churn event `{seg}`"))?;
            plan.events.push(ChurnEvent {
                round,
                agent,
                action,
            });
        }
        if plan.is_empty() {
            return Err("churn schedule needs at least one k<agent>@<round> event".into());
        }
        Ok(plan)
    }
}

/// A transport whose peer has crashed: every operation fails with a
/// typed [`ClanError::Transport`], immediately — the deterministic
/// stand-in for an unplugged device. The cluster swaps a killed link's
/// transport for this, so the failure is observed through the exact
/// production error path.
#[derive(Debug)]
pub struct DeadTransport {
    peer: String,
}

impl DeadTransport {
    /// A dead link that used to talk to `peer`.
    pub fn new(peer: String) -> DeadTransport {
        DeadTransport { peer }
    }

    fn err(&self) -> ClanError {
        ClanError::Transport {
            peer: self.peer.clone(),
            reason: "agent killed by churn injector".into(),
        }
    }
}

impl Transport for DeadTransport {
    fn send_frame(&mut self, _frame: &[u8]) -> Result<(), ClanError> {
        Err(self.err())
    }

    fn recv_frame(&mut self) -> Result<Vec<u8>, ClanError> {
        Err(self.err())
    }

    fn peer(&self) -> String {
        format!("{} (dead)", self.peer)
    }

    fn take_link_stats(&mut self) -> LinkStats {
        LinkStats::default()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_builder_and_lookup() {
        let plan = ChurnSchedule::new().kill(1, 2).revive(1, 4).kill(0, 2);
        assert_eq!(plan.events().len(), 3);
        assert!(plan.has_revivals());
        assert_eq!(plan.max_agent(), Some(1));
        let at2: Vec<ChurnEvent> = plan.events_at(2).collect();
        assert_eq!(at2.len(), 2);
        assert_eq!(at2[0].agent, 1, "insertion order preserved");
        assert_eq!(at2[0].action, ChurnAction::Kill);
        assert_eq!(plan.events_at(3).count(), 0);
        assert_eq!(plan.events_at(4).count(), 1);
    }

    #[test]
    fn parse_round_trips_the_cli_grammar() {
        let plan: ChurnSchedule = "k1@2,r1@4".parse().unwrap();
        assert_eq!(plan, ChurnSchedule::new().kill(1, 2).revive(1, 4));
        let padded: ChurnSchedule = " k0@1 , r0@3 ,".parse().unwrap();
        assert_eq!(padded, ChurnSchedule::new().kill(0, 1).revive(0, 3));
        assert!("".parse::<ChurnSchedule>().is_err());
        assert!("x1@2".parse::<ChurnSchedule>().is_err());
        // Multi-byte first character: typed error, not a slice panic.
        assert!("κ1@2".parse::<ChurnSchedule>().is_err());
        assert!("k1".parse::<ChurnSchedule>().is_err());
        assert!("k@2".parse::<ChurnSchedule>().is_err());
        assert!("k1@two".parse::<ChurnSchedule>().is_err());
    }

    #[test]
    fn seeded_schedules_replay_exactly_and_differ_by_seed() {
        let a = ChurnSchedule::seeded(7, 4, 10, 0.3);
        assert_eq!(a, ChurnSchedule::seeded(7, 4, 10, 0.3));
        assert_ne!(a, ChurnSchedule::seeded(8, 4, 10, 0.3));
        assert!(!a.is_empty(), "p=0.3 over 40 slots should kill something");
        // Every kill is paired with a revival two rounds later.
        let kills = a
            .events()
            .iter()
            .filter(|e| e.action == ChurnAction::Kill)
            .count();
        let revives = a
            .events()
            .iter()
            .filter(|e| e.action == ChurnAction::Revive)
            .count();
        assert_eq!(kills, revives);
        assert!(ChurnSchedule::seeded(7, 4, 10, 0.0).is_empty());
    }

    #[test]
    #[should_panic(expected = "kill_p must be a probability")]
    fn seeded_rejects_bad_probability() {
        let _ = ChurnSchedule::seeded(0, 2, 2, 1.5);
    }

    #[test]
    fn dead_transport_fails_every_operation_typed() {
        let mut t = DeadTransport::new("channel:agent".into());
        assert!(matches!(
            t.send_frame(b"hello"),
            Err(ClanError::Transport { .. })
        ));
        assert!(matches!(t.recv_frame(), Err(ClanError::Transport { .. })));
        assert!(t.peer().contains("dead"));
        assert_eq!(t.take_link_stats(), LinkStats::default());
    }
}
